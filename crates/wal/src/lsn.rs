use std::fmt;

/// Log sequence number.
///
/// LSNs are assigned by the log manager at append time and are strictly
/// monotonically increasing. The paper (§10.1) exploits exactly this
/// property to use LSNs as node sequence numbers (NSNs): "These LSNs are
/// guaranteed to be monotonically increasing, which makes the LSN of the
/// last log record written an ideal candidate for the global counter
/// value."
///
/// `Lsn::NULL` (zero) is reserved and never assigned to a record; it marks
/// the end of a backchain.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The null LSN: end-of-chain marker, smaller than every real LSN.
    pub const NULL: Lsn = Lsn(0);
    /// Largest representable LSN.
    pub const MAX: Lsn = Lsn(u64::MAX);

    /// Whether this is the null (end-of-chain) LSN.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "Lsn(NULL)")
        } else {
            write!(f, "Lsn({})", self.0)
        }
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Transaction identifier.
///
/// `TxnId::NONE` (zero) marks log records not ascribed to any transaction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TxnId(pub u64);

impl TxnId {
    /// Sentinel for "no transaction".
    pub const NONE: TxnId = TxnId(0);

    /// Whether this is the no-transaction sentinel.
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_lsn_is_smallest() {
        assert!(Lsn::NULL < Lsn(1));
        assert!(Lsn::NULL.is_null());
        assert!(!Lsn(1).is_null());
        assert!(Lsn(1) < Lsn(2));
        assert!(Lsn(2) < Lsn::MAX);
    }

    #[test]
    fn txn_id_none() {
        assert!(TxnId::NONE.is_none());
        assert!(!TxnId(3).is_none());
        assert_eq!(format!("{}", TxnId(3)), "T3");
    }
}
