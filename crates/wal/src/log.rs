//! The log manager: reserve-then-fill append, durability, scan, and
//! crash simulation.
//!
//! Appends are two-phase (PR 6): a *reservation* draws the next LSN from
//! an atomic counter and pins a slot in a segmented buffer; the *fill*
//! publishes the record into that slot. No mutex is held across record
//! construction, so the log is no longer the global serialization point
//! it was when every append pushed onto a `Vec` under one lock. A
//! contiguous *filled* watermark trails the reservation counter; only the
//! filled prefix can become durable, so a reservation abandoned mid-fill
//! (a crash between reserve and fill) fences durability exactly like a
//! torn tail in the on-disk format.

use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use gist_sync::{Condvar, Mutex, RwLock};

use crate::codec;
use crate::{audit, LogRecord, Lsn, NestedTopAction, RecordBody, TxnId};

/// Anything that can force the log durable up to an LSN.
///
/// The buffer pool uses this to enforce the write-ahead rule: before a
/// dirty page with page-LSN `l` goes to disk, `flush_until(l)` must have
/// completed.
pub trait LogFlusher: Send + Sync {
    /// Make every record with LSN ≤ `lsn` durable.
    fn flush_until(&self, lsn: Lsn);
}

/// Slots per segment (power of two so slot lookup is a mask).
const SEGMENT_BITS: u32 = 9;
const SEGMENT_SIZE: usize = 1 << SEGMENT_BITS;

/// One fixed-size run of record slots. A slot is written exactly once
/// (by the reservation's owner) and read many times.
struct Segment {
    cells: Vec<OnceLock<LogRecord>>,
}

impl Segment {
    fn new() -> Arc<Segment> {
        Arc::new(Segment { cells: (0..SEGMENT_SIZE).map(|_| OnceLock::new()).collect() })
    }
}

/// A reserved LSN whose slot has not been filled yet.
///
/// Dropping a reservation without [`LogManager::fill`]ing it leaves a
/// hole that permanently fences the durable horizon — callers must fill
/// every reservation on all non-crash paths (see
/// [`LogManager::fill_noop`] for the graceful abandonment path).
#[must_use = "an unfilled reservation fences the durable horizon forever"]
pub struct Reservation {
    lsn: Lsn,
    txn: TxnId,
    prev_lsn: Lsn,
}

impl Reservation {
    /// The LSN this reservation pinned.
    pub fn lsn(&self) -> Lsn {
        self.lsn
    }
}

/// In-memory write-ahead log with an explicit durable prefix.
///
/// LSNs are dense (`1, 2, 3, …`), which keeps them strictly monotonically
/// increasing as §10.1 requires for NSN generation. [`LogManager::crash`]
/// models a system failure by discarding the non-durable suffix.
///
/// Three watermarks order the pipeline:
/// `durable ≤ filled ≤ reserved`. Reservation moves `reserved`, a fill at
/// the frontier moves `filled`, and an fsync (simulated by
/// [`LogManager::fsync_to`]) moves `durable`.
pub struct LogManager {
    /// Segment directory: `segments[i]` holds LSNs
    /// `[i·SEGMENT_SIZE + 1, (i+1)·SEGMENT_SIZE]`. The write lock is taken
    /// only to extend the directory or to rebuild after a crash.
    segments: RwLock<Vec<Arc<Segment>>>,
    /// Last reserved LSN (the paper's global NSN counter, §10.1).
    reserved: AtomicU64,
    /// Contiguous filled prefix: every LSN ≤ `filled` has its record
    /// published.
    filled: AtomicU64,
    /// Durable prefix: everything with LSN ≤ `durable` survives a crash.
    /// Advances only under `sync_mutex`.
    durable: AtomicU64,
    /// Simulated device sync cost in microseconds (benches model a real
    /// fsync; tests leave it at zero). Paid once per durability advance,
    /// serialized by `sync_mutex` like a real single log device.
    sync_micros: AtomicU64,
    /// Serializes durability advances (one fsync in flight at a time).
    sync_mutex: Mutex<()>,
    /// Wakeup generation for group-commit waiters: [`LogManager::notify_durable`]
    /// bumps it under this mutex before signalling, and
    /// [`LogManager::wait_durable`] checks the horizon and snapshots the
    /// generation under the same mutex before parking — so a notify can
    /// never land unseen between a waiter's check and its park.
    wait_mutex: Mutex<u64>,
    /// Signalled whenever the durable prefix advances; committers parked
    /// on their commit LSN wake here (the commit pipeline batches the
    /// fsync and then calls [`LogManager::notify_durable`]).
    flush_cv: Condvar,
    /// Backpressure high-watermark on the in-flight backlog
    /// (`reserved − durable`); `0` disables the gate.
    bp_limit: AtomicU64,
    /// How long a gated reservation parks (microseconds) before
    /// escalating to an inline flush and proceeding anyway.
    bp_timeout_micros: AtomicU64,
    /// Reservations that parked on the backpressure gate.
    bp_parks: AtomicU64,
    /// Parks that expired with the backlog still over the limit — the
    /// flusher was stalled or absent, and the reservation escalated to
    /// an inline flush.
    bp_stalls: AtomicU64,
    /// Model-checker shadow cells for the three watermarks (see
    /// `crate::audit`); zero when the `latch-audit` feature is off.
    hb_reserved: u64,
    hb_filled: u64,
    hb_durable: u64,
}

impl Default for LogManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LogManager {
    /// Empty log.
    pub fn new() -> Self {
        LogManager {
            segments: RwLock::new(Vec::new()),
            reserved: AtomicU64::new(0),
            filled: AtomicU64::new(0),
            durable: AtomicU64::new(0),
            sync_micros: AtomicU64::new(0),
            sync_mutex: Mutex::new(()),
            wait_mutex: Mutex::new(0),
            flush_cv: Condvar::new(),
            bp_limit: AtomicU64::new(0),
            bp_timeout_micros: AtomicU64::new(100_000),
            bp_parks: AtomicU64::new(0),
            bp_stalls: AtomicU64::new(0),
            hb_reserved: audit::new_cell_id(),
            hb_filled: audit::new_cell_id(),
            hb_durable: audit::new_cell_id(),
        }
    }

    fn from_records(records: Vec<LogRecord>) -> LogManager {
        let log = LogManager::new();
        let n = records.len() as u64;
        log.install_records(records);
        log.reserved.store(n, Ordering::SeqCst);
        log.filled.store(n, Ordering::SeqCst);
        log.durable.store(n, Ordering::SeqCst);
        log
    }

    /// Replace the segment directory with exactly `records` (dense from
    /// LSN 1). Caller updates the watermarks.
    fn install_records(&self, records: Vec<LogRecord>) {
        let mut segs = self.segments.write();
        segs.clear();
        for rec in records {
            let idx = ((rec.lsn.0 - 1) >> SEGMENT_BITS) as usize;
            while segs.len() <= idx {
                segs.push(Segment::new());
            }
            let cell = &segs[idx].cells[((rec.lsn.0 - 1) as usize) & (SEGMENT_SIZE - 1)];
            // OnceLock::set into cells just cleared above can only
            // succeed; not an I/O result.
            let _ = cell.set(rec); // lint: allow-ignored-io
        }
    }

    fn segment_for(&self, lsn: u64) -> Arc<Segment> {
        let idx = ((lsn - 1) >> SEGMENT_BITS) as usize;
        self.segments.read()[idx].clone()
    }

    fn cell_get(&self, lsn: u64) -> Option<LogRecord> {
        let seg = self.segment_for(lsn);
        seg.cells[((lsn - 1) as usize) & (SEGMENT_SIZE - 1)].get().cloned()
    }

    fn cell_is_set(&self, lsn: u64) -> bool {
        let seg = self.segment_for(lsn);
        seg.cells[((lsn - 1) as usize) & (SEGMENT_SIZE - 1)].get().is_some()
    }

    /// Reserve the next LSN for `txn` (backchain `prev_lsn`). The slot is
    /// pinned; [`LogManager::fill`] publishes the record. The two-phase
    /// split exists so the commit pipeline can inject crash points between
    /// reservation and publication; ordinary appenders use
    /// [`LogManager::append`].
    pub fn reserve(&self, txn: TxnId, prev_lsn: Lsn) -> Reservation {
        self.backpressure_gate();
        audit::atomic_rmw(self.hb_reserved, "wal-reserve");
        let lsn = self.reserved.fetch_add(1, Ordering::SeqCst) + 1;
        // Make sure the slot's segment exists before returning: the fill
        // (and any concurrent reader) must never see a missing segment.
        let idx = ((lsn - 1) >> SEGMENT_BITS) as usize;
        if self.segments.read().len() <= idx {
            let mut segs = self.segments.write();
            while segs.len() <= idx {
                segs.push(Segment::new());
            }
        }
        Reservation { lsn: Lsn(lsn), txn, prev_lsn }
    }

    /// Configure reservation backpressure: once the in-flight backlog
    /// (`reserved − durable`) reaches `limit` records, new reservations
    /// park until the durable horizon advances or `timeout` elapses.
    /// `limit == 0` disables the gate (the default).
    pub fn set_backpressure(&self, limit: u64, timeout: Duration) {
        self.bp_limit.store(limit, Ordering::Relaxed);
        self.bp_timeout_micros.store(timeout.as_micros() as u64, Ordering::Relaxed);
    }

    /// Snapshot of the backpressure gate for `robustness_stats()`.
    pub fn backpressure_stats(&self) -> WalBackpressureStats {
        audit::atomic_load(self.hb_reserved, "wal-reserved-read");
        let reserved = self.reserved.load(Ordering::Acquire);
        audit::atomic_load(self.hb_durable, "wal-durable-read");
        let durable = self.durable.load(Ordering::Acquire);
        WalBackpressureStats {
            limit: self.bp_limit.load(Ordering::Relaxed),
            backlog: reserved.saturating_sub(durable),
            parks: self.bp_parks.load(Ordering::Relaxed),
            stalls: self.bp_stalls.load(Ordering::Relaxed),
        }
    }

    /// Reservation-side backpressure: park (deadline-bounded, on the
    /// same generation handshake group-commit waiters use, so every
    /// [`LogManager::notify_durable`] releases parked writers too) while
    /// the backlog sits at its high-watermark. A park that expires with
    /// the backlog still full means the flusher is stalled or absent;
    /// the writer then *escalates to an inline flush* of the filled
    /// prefix — the same degradation the commit pipeline uses — and
    /// proceeds regardless. Reservations therefore never fail and never
    /// wait unboundedly: shedding is the admission controller's job, and
    /// the bounded park is what makes the parking provably
    /// deadlock-free against the flusher (the `wal-backpressure`
    /// model-check scenario pins this).
    fn backpressure_gate(&self) {
        let limit = self.bp_limit.load(Ordering::Relaxed);
        if limit == 0 {
            return;
        }
        let backlog = || {
            audit::atomic_load(self.hb_reserved, "wal-reserved-read");
            let reserved = self.reserved.load(Ordering::Acquire);
            audit::atomic_load(self.hb_durable, "wal-durable-read");
            reserved.saturating_sub(self.durable.load(Ordering::Acquire))
        };
        if backlog() < limit {
            return;
        }
        self.bp_parks.fetch_add(1, Ordering::Relaxed);
        let timeout = Duration::from_micros(self.bp_timeout_micros.load(Ordering::Relaxed));
        let deadline = Instant::now() + timeout;
        let mut gen = self.wait_mutex.lock();
        loop {
            if backlog() < limit {
                return;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let seen = *gen;
            let timed_out = self.flush_cv.wait_for(&mut gen, deadline - now).timed_out();
            if timed_out && *gen == seen {
                break;
            }
        }
        drop(gen);
        if backlog() < limit {
            return;
        }
        // Stalled flusher (or a durable horizon fenced by a hole):
        // degrade to an inline flush and let the reservation through.
        // Over-cap excursions are bounded by the number of concurrently
        // escalating writers, never unbounded growth.
        self.bp_stalls.fetch_add(1, Ordering::Relaxed);
        self.flush(self.filled_lsn());
    }

    /// Publish the record for a reservation and advance the filled
    /// watermark over any newly contiguous prefix.
    pub fn fill(&self, res: Reservation, body: RecordBody) -> Lsn {
        let lsn = res.lsn;
        let rec = LogRecord { lsn, prev_lsn: res.prev_lsn, txn: res.txn, body };
        let seg = self.segment_for(lsn.0);
        let set = seg.cells[((lsn.0 - 1) as usize) & (SEGMENT_SIZE - 1)].set(rec);
        debug_assert!(set.is_ok(), "slot {lsn} filled twice");
        self.advance_filled();
        lsn
    }

    /// Publish a no-op filler for a reservation that is being abandoned
    /// gracefully (e.g. a chaos *error* injection between reserve and
    /// fill). Keeps the log dense so the durable horizon is not fenced; a
    /// *panic* between reserve and fill skips this and leaves a real hole.
    pub fn fill_noop(&self, res: Reservation) -> Lsn {
        let lsn = res.lsn;
        self.fill(Reservation { lsn, txn: TxnId::NONE, prev_lsn: Lsn::NULL }, RecordBody::Noop)
    }

    /// Cooperatively advance `filled` while the next slot is published.
    fn advance_filled(&self) {
        loop {
            audit::atomic_rmw(self.hb_filled, "wal-filled-advance");
            audit::atomic_load(self.hb_reserved, "wal-reserved-read");
            let f = self.filled.load(Ordering::Acquire);
            if f >= self.reserved.load(Ordering::Acquire) || !self.cell_is_set(f + 1) {
                return;
            }
            // Lost races just mean another filler advanced it; retry from
            // the new frontier either way (not an I/O result).
            let _ = self.filled.compare_exchange( // lint: allow-ignored-io
                f,
                f + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            );
        }
    }

    /// Append a record; returns its LSN.
    ///
    /// `prev_lsn` is the transaction's backchain pointer (the caller —
    /// normally the transaction manager — tracks each transaction's last
    /// LSN).
    pub fn append(&self, txn: TxnId, prev_lsn: Lsn, body: RecordBody) -> Lsn {
        let res = self.reserve(txn, prev_lsn);
        self.fill(res, body)
    }

    /// LSN of the most recently reserved record ([`Lsn::NULL`] if empty).
    ///
    /// This is the paper's "global NSN" counter when NSNs are sourced from
    /// the log (§10.1).
    pub fn last_lsn(&self) -> Lsn {
        audit::atomic_load(self.hb_reserved, "wal-reserved-read");
        Lsn(self.reserved.load(Ordering::Acquire))
    }

    /// Contiguous published prefix: every record with LSN ≤ this has been
    /// filled. Only this prefix can become durable.
    pub fn filled_lsn(&self) -> Lsn {
        audit::atomic_load(self.hb_filled, "wal-filled-read");
        Lsn(self.filled.load(Ordering::Acquire))
    }

    /// Durable prefix of the log.
    pub fn flushed_lsn(&self) -> Lsn {
        audit::atomic_load(self.hb_durable, "wal-durable-read");
        Lsn(self.durable.load(Ordering::Acquire))
    }

    /// Set the simulated per-fsync device latency (benches model a real
    /// log device; zero — the default — makes durability advances free).
    pub fn set_sync_latency(&self, latency: Duration) {
        self.sync_micros.store(latency.as_micros() as u64, Ordering::Relaxed);
    }

    /// Advance the durable horizon to `min(lsn, filled)` *without* waking
    /// waiters — the commit pipeline's flusher separates the fsync from
    /// the wakeup so a crash between them is testable. Returns the new
    /// durable horizon.
    ///
    /// A caller that finds its target already durable returns for free
    /// (real code checks the horizon before issuing a sync). A caller
    /// that decided to sync pays the full simulated device latency even
    /// when a concurrent sync covered its target while it was queued for
    /// the device: each sync is its own device barrier, which is exactly
    /// the per-commit cost a group-commit flusher amortizes away.
    pub fn fsync_to(&self, lsn: Lsn) -> Lsn {
        audit::atomic_load(self.hb_filled, "wal-filled-read");
        let target = lsn.0.min(self.filled.load(Ordering::Acquire));
        audit::atomic_load(self.hb_durable, "wal-durable-read");
        if target <= self.durable.load(Ordering::Acquire) {
            return self.flushed_lsn();
        }
        let _device = self.sync_mutex.lock();
        let micros = self.sync_micros.load(Ordering::Relaxed);
        if micros > 0 {
            std::thread::sleep(Duration::from_micros(micros));
        }
        // Only fsync_to moves the horizon, always under the device lock,
        // so a monotonicity check suffices.
        if target > self.durable.load(Ordering::Acquire) {
            audit::atomic_store(self.hb_durable, "wal-durable-store");
            self.durable.store(target, Ordering::Release);
        }
        self.flushed_lsn()
    }

    /// Wake everyone parked in [`LogManager::wait_durable`]: bump the
    /// wakeup generation under the wait mutex, then signal. A waiter
    /// checks the horizon and snapshots the generation under the same
    /// mutex before parking, so this bump is impossible to miss — the
    /// waiter either sees the new horizon, sees the new generation, or
    /// is already parked and receives the signal.
    pub fn notify_durable(&self) {
        let mut gen = self.wait_mutex.lock();
        *gen = gen.wrapping_add(1);
        drop(gen);
        self.flush_cv.notify_all();
    }

    /// Park until the durable horizon reaches `lsn` or `timeout` elapses;
    /// returns whether the horizon was reached.
    ///
    /// The wait is a generation handshake with [`LogManager::notify_durable`]
    /// (no polling): each loop checks the horizon under the wait mutex,
    /// then parks for the full remaining time. A timed-out wait whose
    /// generation is unchanged means no durability advance was
    /// announced while parked, so one final horizon check decides
    /// (covering [`LogManager::fsync_to`] callers that advance the
    /// horizon without a notify, which is that method's contract). The
    /// `wal-lost-wakeup` model-check scenario pins the no-missed-notify
    /// property across every explored schedule.
    pub fn wait_durable(&self, lsn: Lsn, timeout: Duration) -> bool {
        #[cfg(feature = "mutations")]
        if gist_audit::mutation::armed("wal.wait-durable-unguarded-park") {
            return self.wait_durable_unguarded_park(lsn, timeout);
        }
        let deadline = Instant::now() + timeout;
        let mut gen = self.wait_mutex.lock();
        loop {
            if self.flushed_lsn() >= lsn {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let seen = *gen;
            let timed_out = self.flush_cv.wait_for(&mut gen, deadline - now).timed_out();
            if timed_out && *gen == seen {
                return self.flushed_lsn() >= lsn;
            }
        }
    }

    /// Historical lost-wakeup bug, compiled in only under the
    /// `mutations` feature and armed at runtime by model-checker
    /// self-tests: the horizon check happens *outside* the wait mutex
    /// and the park ignores the generation, so a notify that lands
    /// between the check and the park is lost and the waiter sleeps its
    /// full timeout.
    #[cfg(feature = "mutations")]
    fn wait_durable_unguarded_park(&self, lsn: Lsn, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.flushed_lsn() >= lsn {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let mut gen = self.wait_mutex.lock();
            // The buggy wait ignores the result on purpose: this body
            // reproduces the historical race verbatim.
            let _ = self.flush_cv.wait_for(&mut gen, deadline - now); // lint: allow-ignored-io
            drop(gen);
        }
    }

    /// Force everything up to (and including) `lsn` durable and wake
    /// waiters. (Internal to the WAL/commit-pipeline layers; everything
    /// above them requests durability through the pipeline — the
    /// `no-inline-flush` lint enforces this.)
    pub fn flush(&self, lsn: Lsn) {
        self.fsync_to(lsn);
        self.notify_durable();
    }

    /// Force the entire filled prefix durable.
    pub fn flush_all(&self) {
        self.fsync_to(Lsn::MAX);
        self.notify_durable();
    }

    /// Fetch the record with the given LSN.
    ///
    /// # Panics
    /// Panics if `lsn` is null or beyond the end of the log — both indicate
    /// a corrupted backchain, which must not be silently ignored. Recovery
    /// code paths use [`LogManager::try_get`] instead and surface a
    /// recovery error rather than taking the process down.
    pub fn get(&self, lsn: Lsn) -> LogRecord {
        match self.try_get(lsn) {
            Some(rec) => rec,
            None => panic!("lsn {lsn} is null or beyond end of log ({})", self.len()),
        }
    }

    /// Fetch the record with the given LSN, or `None` when `lsn` is null,
    /// beyond the end of the log (a corrupt backchain pointer), or a
    /// reserved-but-unfilled hole.
    pub fn try_get(&self, lsn: Lsn) -> Option<LogRecord> {
        if lsn.is_null() || lsn.0 > self.reserved.load(Ordering::Acquire) {
            return None;
        }
        self.cell_get(lsn.0)
    }

    /// Clone of every record with LSN ≥ `from` in LSN order, up to the
    /// filled watermark.
    pub fn scan_from(&self, from: Lsn) -> Vec<LogRecord> {
        let upto = self.filled.load(Ordering::Acquire);
        let start = from.0.max(1);
        let mut out = Vec::with_capacity(upto.saturating_sub(start - 1) as usize);
        for lsn in start..=upto {
            if let Some(rec) = self.cell_get(lsn) {
                out.push(rec);
            }
        }
        out
    }

    /// Number of contiguously published records currently in the log.
    pub fn len(&self) -> usize {
        self.filled.load(Ordering::Acquire) as usize
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Simulate a system crash: every record past the durable prefix is
    /// lost (including reserved-but-unfilled holes), exactly as if the
    /// machine died after its last `fsync`.
    ///
    /// Returns the number of reservations discarded.
    pub fn crash(&self) -> usize {
        let durable = self.durable.load(Ordering::Acquire);
        let lost = self.reserved.load(Ordering::Acquire).saturating_sub(durable);
        let keep: Vec<LogRecord> =
            (1..=durable).filter_map(|l| self.cell_get(l)).collect();
        debug_assert_eq!(keep.len() as u64, durable, "durable prefix must be contiguous");
        self.install_records(keep);
        self.filled.store(durable, Ordering::SeqCst);
        self.reserved.store(durable, Ordering::SeqCst);
        lost as usize
    }

    /// LSN of the most recent checkpoint record, if any.
    pub fn last_checkpoint(&self) -> Option<Lsn> {
        let upto = self.filled.load(Ordering::Acquire);
        (1..=upto)
            .rev()
            .find(|&l| {
                matches!(
                    self.cell_get(l).map(|r| r.body),
                    Some(RecordBody::Checkpoint { .. })
                )
            })
            .map(Lsn)
    }

    /// Begin a nested top action for `txn` whose backchain currently ends
    /// at `txn_last_lsn`.
    pub fn begin_nta(&self, txn_last_lsn: Lsn) -> NestedTopAction {
        NestedTopAction { undo_next: txn_last_lsn }
    }

    /// Finish a nested top action: writes the dummy CLR that makes the
    /// whole unit of work invisible to rollback. Returns the new last LSN
    /// for the transaction's backchain.
    ///
    /// The terminator is *not* forced here: durability policy belongs to
    /// the caller. The transaction layer forces it through the commit
    /// pipeline before the unit's latches are released, so concurrent
    /// units and committers share one device sync instead of each paying
    /// an inline flush.
    pub fn end_nta(&self, txn: TxnId, txn_last_lsn: Lsn, nta: NestedTopAction) -> Lsn {
        self.append(txn, txn_last_lsn, RecordBody::NtaEnd { undo_next: nta.undo_next })
    }

    /// Persist the durable prefix to a file (see [`LogManager::load_file`]).
    ///
    /// Format: an 8-byte magic, then one frame per record —
    /// `[len: u32][checksum: u64][body]` with the checksum (FNV-1a +
    /// fmix64) over the encoded body. The framing is what lets
    /// [`LogManager::load_file`] tell a torn tail from interior
    /// corruption.
    pub fn persist_file(&self, path: &Path) -> io::Result<()> {
        let durable = self.durable.load(Ordering::Acquire);
        let mut buf = Vec::with_capacity(16 + durable as usize * 64);
        buf.extend_from_slice(WAL_MAGIC);
        for lsn in 1..=durable {
            let Some(rec) = self.cell_get(lsn) else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("durable prefix has a hole at lsn {lsn}"),
                ));
            };
            let enc = codec::encode_record(&rec);
            buf.extend_from_slice(&(enc.len() as u32).to_le_bytes());
            buf.extend_from_slice(&gist_striped::stable_hash_bytes(&enc).to_le_bytes());
            buf.extend_from_slice(&enc);
        }
        let mut f = fs::File::create(path)?;
        f.write_all(&buf)?;
        f.sync_all()
    }

    /// Load a log persisted by [`LogManager::persist_file`]; the loaded
    /// prefix is entirely durable. Equivalent to
    /// [`LogManager::load_file_report`] with the report discarded.
    pub fn load_file(path: &Path) -> io::Result<LogManager> {
        Self::load_file_report(path).map(|(log, _)| log)
    }

    /// Load a log file, classifying malformed bytes:
    ///
    /// - A **torn or corrupt tail** — the *final* frame is incomplete
    ///   (truncated mid-frame), fails its checksum, fails to decode, or
    ///   breaks LSN density — is what a crash during the last append
    ///   leaves behind. It is *truncated*: the log loads up to the last
    ///   good record and the report says what was dropped.
    /// - The same damage **before the durable tail** (a frame followed by
    ///   further bytes) cannot be explained by a crash mid-append and
    ///   stays a hard `InvalidData` error.
    ///
    /// A missing or wrong magic is always a hard error. One inherent
    /// ambiguity: interior corruption *of a length field* that makes the
    /// frame overshoot EOF is indistinguishable from a tear and is
    /// truncated.
    pub fn load_file_report(path: &Path) -> io::Result<(LogManager, WalTailReport)> {
        let mut bytes = Vec::new();
        fs::File::open(path)?.read_to_end(&mut bytes)?;
        if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "log file magic missing or wrong (not a WAL file)",
            ));
        }
        let mut records = Vec::new();
        let mut off = WAL_MAGIC.len();
        let mut report = WalTailReport::default();
        while off < bytes.len() {
            // Frame header: length + body checksum.
            if off + 12 > bytes.len() {
                report.tail_truncated = true;
                break;
            }
            let mut len4 = [0u8; 4];
            len4.copy_from_slice(&bytes[off..off + 4]);
            let len = u32::from_le_bytes(len4) as usize;
            let mut sum8 = [0u8; 8];
            sum8.copy_from_slice(&bytes[off + 4..off + 12]);
            let stored_sum = u64::from_le_bytes(sum8);
            let body_start = off + 12;
            let Some(body_end) = body_start.checked_add(len) else {
                report.tail_truncated = true;
                break;
            };
            if body_end > bytes.len() {
                // Frame runs past EOF: torn tail.
                report.tail_truncated = true;
                break;
            }
            let is_final = body_end == bytes.len();
            let body = &bytes[body_start..body_end];
            let recno = records.len() + 1;
            if gist_striped::stable_hash_bytes(body) != stored_sum {
                if is_final {
                    report.tail_truncated = true;
                    break;
                }
                return Err(interior_corruption(recno, "checksum mismatch"));
            }
            let rec = match codec::decode_record(body) {
                Ok(rec) => rec,
                Err(e) => {
                    if is_final {
                        report.tail_truncated = true;
                        break;
                    }
                    return Err(interior_corruption(recno, &format!("decode: {e}")));
                }
            };
            let expect = Lsn(records.len() as u64 + 1);
            if rec.lsn != expect {
                if is_final {
                    report.tail_truncated = true;
                    break;
                }
                return Err(interior_corruption(
                    recno,
                    &format!("not dense: got {} expected {}", rec.lsn, expect),
                ));
            }
            records.push(rec);
            off = body_end;
        }
        if report.tail_truncated {
            report.dropped_bytes = bytes.len() - off;
        }
        report.loaded = records.len();
        Ok((LogManager::from_records(records), report))
    }
}

/// Magic prefix of a persisted WAL file.
const WAL_MAGIC: &[u8; 8] = b"GISTWAL1";

fn interior_corruption(recno: usize, what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("log corrupt before the durable tail (record {recno}): {what}"),
    )
}

/// Snapshot of the reservation backpressure gate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalBackpressureStats {
    /// Configured backlog high-watermark (`0` = gate disabled).
    pub limit: u64,
    /// Current in-flight backlog (`reserved − durable`).
    pub backlog: u64,
    /// Reservations that parked on the gate.
    pub parks: u64,
    /// Parks that expired and escalated to an inline flush.
    pub stalls: u64,
}

/// What [`LogManager::load_file_report`] found at the end of the file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalTailReport {
    /// Records successfully loaded.
    pub loaded: usize,
    /// Whether a torn/corrupt tail was detected and truncated.
    pub tail_truncated: bool,
    /// Bytes dropped with the tail.
    pub dropped_bytes: usize,
}

impl LogFlusher for LogManager {
    fn flush_until(&self, lsn: Lsn) {
        self.flush(lsn);
    }
}
