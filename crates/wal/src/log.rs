//! The log manager: append, flush, scan, and crash simulation.

use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

use parking_lot::{Condvar, Mutex};

use crate::codec;
use crate::{LogRecord, Lsn, NestedTopAction, RecordBody, TxnId};

/// Anything that can force the log durable up to an LSN.
///
/// The buffer pool uses this to enforce the write-ahead rule: before a
/// dirty page with page-LSN `l` goes to disk, `flush_until(l)` must have
/// completed.
pub trait LogFlusher: Send + Sync {
    /// Make every record with LSN ≤ `lsn` durable.
    fn flush_until(&self, lsn: Lsn);
}

struct LogInner {
    /// All records, `records[i].lsn == Lsn(i as u64 + 1)`.
    records: Vec<LogRecord>,
    /// Durable prefix: everything with LSN ≤ `flushed` survives a crash.
    flushed: Lsn,
}

/// In-memory write-ahead log with an explicit durable prefix.
///
/// LSNs are dense (`1, 2, 3, …`), which keeps them strictly monotonically
/// increasing as §10.1 requires for NSN generation. [`LogManager::crash`]
/// models a system failure by discarding the non-durable suffix.
pub struct LogManager {
    inner: Mutex<LogInner>,
    /// Signalled whenever the durable prefix advances (group-commit style
    /// waiters; kept simple here since flushes are synchronous).
    flush_cv: Condvar,
}

impl Default for LogManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LogManager {
    /// Empty log.
    pub fn new() -> Self {
        LogManager {
            inner: Mutex::new(LogInner { records: Vec::new(), flushed: Lsn::NULL }),
            flush_cv: Condvar::new(),
        }
    }

    /// Append a record; returns its LSN.
    ///
    /// `prev_lsn` is the transaction's backchain pointer (the caller —
    /// normally the transaction manager — tracks each transaction's last
    /// LSN).
    pub fn append(&self, txn: TxnId, prev_lsn: Lsn, body: RecordBody) -> Lsn {
        let mut inner = self.inner.lock();
        let lsn = Lsn(inner.records.len() as u64 + 1);
        inner.records.push(LogRecord { lsn, prev_lsn, txn, body });
        lsn
    }

    /// LSN of the most recently appended record ([`Lsn::NULL`] if empty).
    ///
    /// This is the paper's "global NSN" counter when NSNs are sourced from
    /// the log (§10.1).
    pub fn last_lsn(&self) -> Lsn {
        Lsn(self.inner.lock().records.len() as u64)
    }

    /// Durable prefix of the log.
    pub fn flushed_lsn(&self) -> Lsn {
        self.inner.lock().flushed
    }

    /// Force everything up to (and including) `lsn` durable.
    pub fn flush(&self, lsn: Lsn) {
        let mut inner = self.inner.lock();
        let limit = Lsn(lsn.0.min(inner.records.len() as u64));
        if limit > inner.flushed {
            inner.flushed = limit;
            self.flush_cv.notify_all();
        }
    }

    /// Force the entire log durable.
    pub fn flush_all(&self) {
        let mut inner = self.inner.lock();
        inner.flushed = Lsn(inner.records.len() as u64);
        self.flush_cv.notify_all();
    }

    /// Fetch the record with the given LSN.
    ///
    /// # Panics
    /// Panics if `lsn` is null or beyond the end of the log — both indicate
    /// a corrupted backchain, which must not be silently ignored.
    pub fn get(&self, lsn: Lsn) -> LogRecord {
        assert!(!lsn.is_null(), "fetching the NULL lsn");
        let inner = self.inner.lock();
        inner
            .records
            .get(lsn.0 as usize - 1)
            .unwrap_or_else(|| panic!("lsn {lsn} beyond end of log ({})", inner.records.len()))
            .clone()
    }

    /// Clone of every record with LSN ≥ `from` in LSN order.
    pub fn scan_from(&self, from: Lsn) -> Vec<LogRecord> {
        let inner = self.inner.lock();
        let start = (from.0.max(1) - 1) as usize;
        inner.records.get(start..).unwrap_or(&[]).to_vec()
    }

    /// Number of records currently in the log.
    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Simulate a system crash: every record past the durable prefix is
    /// lost, exactly as if the machine died after its last `fsync`.
    ///
    /// Returns the number of records discarded.
    pub fn crash(&self) -> usize {
        let mut inner = self.inner.lock();
        let keep = inner.flushed.0 as usize;
        let lost = inner.records.len().saturating_sub(keep);
        inner.records.truncate(keep);
        lost
    }

    /// LSN of the most recent checkpoint record, if any.
    pub fn last_checkpoint(&self) -> Option<Lsn> {
        let inner = self.inner.lock();
        inner
            .records
            .iter()
            .rev()
            .find(|r| matches!(r.body, RecordBody::Checkpoint { .. }))
            .map(|r| r.lsn)
    }

    /// Begin a nested top action for `txn` whose backchain currently ends
    /// at `txn_last_lsn`.
    pub fn begin_nta(&self, txn_last_lsn: Lsn) -> NestedTopAction {
        NestedTopAction { undo_next: txn_last_lsn }
    }

    /// Finish a nested top action: writes the dummy CLR that makes the
    /// whole unit of work invisible to rollback. Returns the new last LSN
    /// for the transaction's backchain.
    ///
    /// The terminator is flushed immediately: once the unit's effects can
    /// reach disk (its latches are released right after this call), the
    /// fact that it completed must be durable too, otherwise restart would
    /// undo a structure modification whose pages concurrent operations have
    /// already built upon.
    pub fn end_nta(&self, txn: TxnId, txn_last_lsn: Lsn, nta: NestedTopAction) -> Lsn {
        let lsn = self.append(txn, txn_last_lsn, RecordBody::NtaEnd { undo_next: nta.undo_next });
        self.flush(lsn);
        lsn
    }

    /// Persist the durable prefix to a file (see [`LogManager::load_file`]).
    pub fn persist_file(&self, path: &Path) -> io::Result<()> {
        let inner = self.inner.lock();
        let durable = &inner.records[..inner.flushed.0 as usize];
        let mut buf = Vec::new();
        for rec in durable {
            let enc = codec::encode_record(rec);
            buf.extend_from_slice(&(enc.len() as u32).to_le_bytes());
            buf.extend_from_slice(&enc);
        }
        let mut f = fs::File::create(path)?;
        f.write_all(&buf)?;
        f.sync_all()
    }

    /// Load a log persisted by [`LogManager::persist_file`]; the loaded prefix is
    /// entirely durable.
    pub fn load_file(path: &Path) -> io::Result<LogManager> {
        let mut bytes = Vec::new();
        fs::File::open(path)?.read_to_end(&mut bytes)?;
        let mut records = Vec::new();
        let mut off = 0usize;
        while off + 4 <= bytes.len() {
            let mut len4 = [0u8; 4];
            len4.copy_from_slice(&bytes[off..off + 4]);
            let len = u32::from_le_bytes(len4) as usize;
            off += 4;
            let rec = codec::decode_record(&bytes[off..off + len]).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("log decode: {e}"))
            })?;
            off += len;
            let expect = Lsn(records.len() as u64 + 1);
            if rec.lsn != expect {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("log not dense: got {} expected {}", rec.lsn, expect),
                ));
            }
            records.push(rec);
        }
        let flushed = Lsn(records.len() as u64);
        Ok(LogManager {
            inner: Mutex::new(LogInner { records, flushed }),
            flush_cv: Condvar::new(),
        })
    }
}

impl LogFlusher for LogManager {
    fn flush_until(&self, lsn: Lsn) {
        self.flush(lsn);
    }
}
