//! The log manager: append, flush, scan, and crash simulation.

use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

use parking_lot::{Condvar, Mutex};

use crate::codec;
use crate::{LogRecord, Lsn, NestedTopAction, RecordBody, TxnId};

/// Anything that can force the log durable up to an LSN.
///
/// The buffer pool uses this to enforce the write-ahead rule: before a
/// dirty page with page-LSN `l` goes to disk, `flush_until(l)` must have
/// completed.
pub trait LogFlusher: Send + Sync {
    /// Make every record with LSN ≤ `lsn` durable.
    fn flush_until(&self, lsn: Lsn);
}

struct LogInner {
    /// All records, `records[i].lsn == Lsn(i as u64 + 1)`.
    records: Vec<LogRecord>,
    /// Durable prefix: everything with LSN ≤ `flushed` survives a crash.
    flushed: Lsn,
}

/// In-memory write-ahead log with an explicit durable prefix.
///
/// LSNs are dense (`1, 2, 3, …`), which keeps them strictly monotonically
/// increasing as §10.1 requires for NSN generation. [`LogManager::crash`]
/// models a system failure by discarding the non-durable suffix.
pub struct LogManager {
    inner: Mutex<LogInner>,
    /// Signalled whenever the durable prefix advances (group-commit style
    /// waiters; kept simple here since flushes are synchronous).
    flush_cv: Condvar,
}

impl Default for LogManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LogManager {
    /// Empty log.
    pub fn new() -> Self {
        LogManager {
            inner: Mutex::new(LogInner { records: Vec::new(), flushed: Lsn::NULL }),
            flush_cv: Condvar::new(),
        }
    }

    /// Append a record; returns its LSN.
    ///
    /// `prev_lsn` is the transaction's backchain pointer (the caller —
    /// normally the transaction manager — tracks each transaction's last
    /// LSN).
    pub fn append(&self, txn: TxnId, prev_lsn: Lsn, body: RecordBody) -> Lsn {
        let mut inner = self.inner.lock();
        let lsn = Lsn(inner.records.len() as u64 + 1);
        inner.records.push(LogRecord { lsn, prev_lsn, txn, body });
        lsn
    }

    /// LSN of the most recently appended record ([`Lsn::NULL`] if empty).
    ///
    /// This is the paper's "global NSN" counter when NSNs are sourced from
    /// the log (§10.1).
    pub fn last_lsn(&self) -> Lsn {
        Lsn(self.inner.lock().records.len() as u64)
    }

    /// Durable prefix of the log.
    pub fn flushed_lsn(&self) -> Lsn {
        self.inner.lock().flushed
    }

    /// Force everything up to (and including) `lsn` durable.
    pub fn flush(&self, lsn: Lsn) {
        let mut inner = self.inner.lock();
        let limit = Lsn(lsn.0.min(inner.records.len() as u64));
        if limit > inner.flushed {
            inner.flushed = limit;
            self.flush_cv.notify_all();
        }
    }

    /// Force the entire log durable.
    pub fn flush_all(&self) {
        let mut inner = self.inner.lock();
        inner.flushed = Lsn(inner.records.len() as u64);
        self.flush_cv.notify_all();
    }

    /// Fetch the record with the given LSN.
    ///
    /// # Panics
    /// Panics if `lsn` is null or beyond the end of the log — both indicate
    /// a corrupted backchain, which must not be silently ignored. Recovery
    /// code paths use [`LogManager::try_get`] instead and surface a
    /// recovery error rather than taking the process down.
    pub fn get(&self, lsn: Lsn) -> LogRecord {
        match self.try_get(lsn) {
            Some(rec) => rec,
            None => panic!("lsn {lsn} is null or beyond end of log ({})", self.len()),
        }
    }

    /// Fetch the record with the given LSN, or `None` when `lsn` is null
    /// or beyond the end of the log (a corrupt backchain pointer).
    pub fn try_get(&self, lsn: Lsn) -> Option<LogRecord> {
        if lsn.is_null() {
            return None;
        }
        let inner = self.inner.lock();
        inner.records.get(lsn.0 as usize - 1).cloned()
    }

    /// Clone of every record with LSN ≥ `from` in LSN order.
    pub fn scan_from(&self, from: Lsn) -> Vec<LogRecord> {
        let inner = self.inner.lock();
        let start = (from.0.max(1) - 1) as usize;
        inner.records.get(start..).unwrap_or(&[]).to_vec()
    }

    /// Number of records currently in the log.
    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Simulate a system crash: every record past the durable prefix is
    /// lost, exactly as if the machine died after its last `fsync`.
    ///
    /// Returns the number of records discarded.
    pub fn crash(&self) -> usize {
        let mut inner = self.inner.lock();
        let keep = inner.flushed.0 as usize;
        let lost = inner.records.len().saturating_sub(keep);
        inner.records.truncate(keep);
        lost
    }

    /// LSN of the most recent checkpoint record, if any.
    pub fn last_checkpoint(&self) -> Option<Lsn> {
        let inner = self.inner.lock();
        inner
            .records
            .iter()
            .rev()
            .find(|r| matches!(r.body, RecordBody::Checkpoint { .. }))
            .map(|r| r.lsn)
    }

    /// Begin a nested top action for `txn` whose backchain currently ends
    /// at `txn_last_lsn`.
    pub fn begin_nta(&self, txn_last_lsn: Lsn) -> NestedTopAction {
        NestedTopAction { undo_next: txn_last_lsn }
    }

    /// Finish a nested top action: writes the dummy CLR that makes the
    /// whole unit of work invisible to rollback. Returns the new last LSN
    /// for the transaction's backchain.
    ///
    /// The terminator is flushed immediately: once the unit's effects can
    /// reach disk (its latches are released right after this call), the
    /// fact that it completed must be durable too, otherwise restart would
    /// undo a structure modification whose pages concurrent operations have
    /// already built upon.
    pub fn end_nta(&self, txn: TxnId, txn_last_lsn: Lsn, nta: NestedTopAction) -> Lsn {
        let lsn = self.append(txn, txn_last_lsn, RecordBody::NtaEnd { undo_next: nta.undo_next });
        self.flush(lsn);
        lsn
    }

    /// Persist the durable prefix to a file (see [`LogManager::load_file`]).
    ///
    /// Format: an 8-byte magic, then one frame per record —
    /// `[len: u32][checksum: u64][body]` with the checksum (FNV-1a +
    /// fmix64) over the encoded body. The framing is what lets
    /// [`LogManager::load_file`] tell a torn tail from interior
    /// corruption.
    pub fn persist_file(&self, path: &Path) -> io::Result<()> {
        let inner = self.inner.lock();
        let durable = &inner.records[..inner.flushed.0 as usize];
        let mut buf = Vec::with_capacity(16 + durable.len() * 64);
        buf.extend_from_slice(WAL_MAGIC);
        for rec in durable {
            let enc = codec::encode_record(rec);
            buf.extend_from_slice(&(enc.len() as u32).to_le_bytes());
            buf.extend_from_slice(&gist_striped::stable_hash_bytes(&enc).to_le_bytes());
            buf.extend_from_slice(&enc);
        }
        let mut f = fs::File::create(path)?;
        f.write_all(&buf)?;
        f.sync_all()
    }

    /// Load a log persisted by [`LogManager::persist_file`]; the loaded
    /// prefix is entirely durable. Equivalent to
    /// [`LogManager::load_file_report`] with the report discarded.
    pub fn load_file(path: &Path) -> io::Result<LogManager> {
        Self::load_file_report(path).map(|(log, _)| log)
    }

    /// Load a log file, classifying malformed bytes:
    ///
    /// - A **torn or corrupt tail** — the *final* frame is incomplete
    ///   (truncated mid-frame), fails its checksum, fails to decode, or
    ///   breaks LSN density — is what a crash during the last append
    ///   leaves behind. It is *truncated*: the log loads up to the last
    ///   good record and the report says what was dropped.
    /// - The same damage **before the durable tail** (a frame followed by
    ///   further bytes) cannot be explained by a crash mid-append and
    ///   stays a hard `InvalidData` error.
    ///
    /// A missing or wrong magic is always a hard error. One inherent
    /// ambiguity: interior corruption *of a length field* that makes the
    /// frame overshoot EOF is indistinguishable from a tear and is
    /// truncated.
    pub fn load_file_report(path: &Path) -> io::Result<(LogManager, WalTailReport)> {
        let mut bytes = Vec::new();
        fs::File::open(path)?.read_to_end(&mut bytes)?;
        if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "log file magic missing or wrong (not a WAL file)",
            ));
        }
        let mut records = Vec::new();
        let mut off = WAL_MAGIC.len();
        let mut report = WalTailReport::default();
        while off < bytes.len() {
            // Frame header: length + body checksum.
            if off + 12 > bytes.len() {
                report.tail_truncated = true;
                break;
            }
            let mut len4 = [0u8; 4];
            len4.copy_from_slice(&bytes[off..off + 4]);
            let len = u32::from_le_bytes(len4) as usize;
            let mut sum8 = [0u8; 8];
            sum8.copy_from_slice(&bytes[off + 4..off + 12]);
            let stored_sum = u64::from_le_bytes(sum8);
            let body_start = off + 12;
            let Some(body_end) = body_start.checked_add(len) else {
                report.tail_truncated = true;
                break;
            };
            if body_end > bytes.len() {
                // Frame runs past EOF: torn tail.
                report.tail_truncated = true;
                break;
            }
            let is_final = body_end == bytes.len();
            let body = &bytes[body_start..body_end];
            let recno = records.len() + 1;
            if gist_striped::stable_hash_bytes(body) != stored_sum {
                if is_final {
                    report.tail_truncated = true;
                    break;
                }
                return Err(interior_corruption(recno, "checksum mismatch"));
            }
            let rec = match codec::decode_record(body) {
                Ok(rec) => rec,
                Err(e) => {
                    if is_final {
                        report.tail_truncated = true;
                        break;
                    }
                    return Err(interior_corruption(recno, &format!("decode: {e}")));
                }
            };
            let expect = Lsn(records.len() as u64 + 1);
            if rec.lsn != expect {
                if is_final {
                    report.tail_truncated = true;
                    break;
                }
                return Err(interior_corruption(
                    recno,
                    &format!("not dense: got {} expected {}", rec.lsn, expect),
                ));
            }
            records.push(rec);
            off = body_end;
        }
        if report.tail_truncated {
            report.dropped_bytes = bytes.len() - off;
        }
        report.loaded = records.len();
        let flushed = Lsn(records.len() as u64);
        Ok((
            LogManager {
                inner: Mutex::new(LogInner { records, flushed }),
                flush_cv: Condvar::new(),
            },
            report,
        ))
    }
}

/// Magic prefix of a persisted WAL file.
const WAL_MAGIC: &[u8; 8] = b"GISTWAL1";

fn interior_corruption(recno: usize, what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("log corrupt before the durable tail (record {recno}): {what}"),
    )
}

/// What [`LogManager::load_file_report`] found at the end of the file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalTailReport {
    /// Records successfully loaded.
    pub loaded: usize,
    /// Whether a torn/corrupt tail was detected and truncated.
    pub tail_truncated: bool,
    /// Bytes dropped with the tail.
    pub dropped_bytes: usize,
}

impl LogFlusher for LogManager {
    fn flush_until(&self, lsn: Lsn) {
        self.flush(lsn);
    }
}
