#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! ARIES-style write-ahead logging for the GiST reproduction.
//!
//! This crate implements the recovery substrate assumed by §9 of
//! *Concurrency and Recovery in Generalized Search Trees* (SIGMOD 1997):
//! a write-ahead log with
//!
//! - log sequence numbers ([`Lsn`]) and per-transaction backchains,
//! - compensation log records (CLRs) with `undo_next` pointers,
//! - **nested top actions** ("atomic units of work", §9.1 footnote 12):
//!   a sequence of page updates whose log records are skipped during
//!   transaction rollback by a dummy CLR, so that structure modifications
//!   commit independently of the surrounding transaction,
//! - a restart driver with the classic three passes — analysis,
//!   page-oriented redo, and undo with *logical undo* delegated to a
//!   resource-manager callback ([`RecoveryHandler`]).
//!
//! The log itself is kept in memory with an explicit *durable prefix*
//! (`flushed_lsn`): [`LogManager::crash`] discards everything past the
//! prefix, which is exactly what a real system loses when it crashes after
//! its last `fsync`. This makes crash-injection tests deterministic without
//! giving up any of the protocol's structure. A byte-level codec
//! ([`codec`]) and file persistence ([`LogManager::persist_file`]) are
//! also provided for round-trip realism.

mod audit;
mod lsn;
mod record;
pub mod codec;
pub mod faults;
pub mod log;
pub mod recovery;

pub use lsn::{Lsn, TxnId};
pub use record::{LogRecord, Payload, RecordBody};
pub use log::{LogFlusher, LogManager, Reservation, WalBackpressureStats, WalTailReport};
pub use recovery::{
    restart, restart_with_floor, rollback, AnalysisResult, RecoveryError, RecoveryHandler,
    RestartOutcome, RollbackKind,
};

/// Token bracketing a nested top action (§9.1).
///
/// Created when the atomic unit of work starts; carries the transaction's
/// backchain position at that point. When the unit finishes,
/// [`LogManager::end_nta`] writes a dummy CLR whose `undo_next` points to
/// that position, so a later rollback of the surrounding transaction skips
/// every record the unit wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NestedTopAction {
    /// The transaction's `last_lsn` before the unit's first record.
    pub undo_next: Lsn,
}

#[cfg(test)]
mod tests;
