//! WAL-file fault shim: byte-level damage for persisted log files.
//!
//! These helpers model what a crash or failing device does to the log
//! file itself — truncating it mid-frame (a torn append) or flipping
//! bits (media corruption) — so tests can drive
//! [`LogManager::load_file_report`](crate::LogManager::load_file_report)'s
//! torn-tail-vs-interior-corruption classification against real files.

use std::fs::OpenOptions;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Current length of `path` in bytes.
pub fn file_len(path: &Path) -> io::Result<u64> {
    Ok(std::fs::metadata(path)?.len())
}

/// Cut the last `n` bytes off `path` (a crash mid-append: the tail frame
/// is partially written). Truncating more than the file holds leaves an
/// empty file.
pub fn truncate_tail(path: &Path, n: u64) -> io::Result<()> {
    let f = OpenOptions::new().write(true).open(path)?;
    let len = f.metadata()?.len();
    f.set_len(len.saturating_sub(n))?;
    f.sync_all()
}

/// XOR the byte at absolute offset `pos` with `mask` (bit rot). `mask`
/// must be non-zero for the byte to actually change.
pub fn flip_byte(path: &Path, pos: u64, mask: u8) -> io::Result<()> {
    let mut f = OpenOptions::new().read(true).write(true).open(path)?;
    let len = f.metadata()?.len();
    if pos >= len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("flip_byte at {pos} beyond file length {len}"),
        ));
    }
    f.seek(SeekFrom::Start(pos))?;
    let mut b = [0u8; 1];
    f.read_exact(&mut b)?;
    b[0] ^= mask;
    f.seek(SeekFrom::Start(pos))?;
    f.write_all(&b)?;
    f.sync_all()
}

/// XOR a byte `back` bytes from the end of the file (damage inside the
/// final record for small `back`).
pub fn flip_tail_byte(path: &Path, back: u64, mask: u8) -> io::Result<()> {
    let len = file_len(path)?;
    if back >= len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("flip_tail_byte {back} bytes back in a {len}-byte file"),
        ));
    }
    flip_byte(path, len - 1 - back, mask)
}
