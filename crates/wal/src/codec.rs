//! Byte-level encoding of log records.
//!
//! A hand-written, dependency-free codec used by the file-backed log
//! ([`LogManager::persist_file`](crate::LogManager::persist_file)). The
//! format is little-endian, length-prefixed, and versioned by a single
//! leading tag byte per record body.

use crate::{LogRecord, Lsn, Payload, RecordBody, TxnId};

/// Codec failure (truncated input or unknown tag).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "log codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

const TAG_BEGIN: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_ABORT: u8 = 3;
const TAG_END: u8 = 4;
const TAG_SAVEPOINT: u8 = 5;
const TAG_CLR: u8 = 6;
const TAG_NTA_END: u8 = 7;
const TAG_CHECKPOINT: u8 = 8;
const TAG_PAYLOAD: u8 = 9;
const TAG_NOOP: u8 = 10;

/// Append a `u64` to `out`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u32` to `out`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u16` to `out`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed byte string to `out`.
pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// Cursor for decoding; tracks position and reports truncation.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start decoding `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.buf.len() {
            return Err(CodecError(format!(
                "truncated: need {n} bytes at {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        let mut b = [0u8; 2];
        b.copy_from_slice(self.take(2)?);
        Ok(u16::from_le_bytes(b))
    }

    /// Read a single byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Whether the whole buffer has been consumed.
    pub fn exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn put_payload(out: &mut Vec<u8>, p: &Payload) {
    put_u32(out, p.pages.len() as u32);
    for pg in &p.pages {
        put_u32(out, *pg);
    }
    put_bytes(out, &p.bytes);
}

fn read_payload(r: &mut Reader<'_>) -> Result<Payload, CodecError> {
    let n = r.u32()? as usize;
    let mut pages = Vec::with_capacity(n);
    for _ in 0..n {
        pages.push(r.u32()?);
    }
    let bytes = r.bytes()?;
    Ok(Payload { pages, bytes })
}

/// Encode one record (without any outer length prefix).
pub fn encode_record(rec: &LogRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    put_u64(&mut out, rec.lsn.0);
    put_u64(&mut out, rec.prev_lsn.0);
    put_u64(&mut out, rec.txn.0);
    match &rec.body {
        RecordBody::TxnBegin => out.push(TAG_BEGIN),
        RecordBody::TxnCommit => out.push(TAG_COMMIT),
        RecordBody::TxnAbort => out.push(TAG_ABORT),
        RecordBody::TxnEnd => out.push(TAG_END),
        RecordBody::Savepoint { id } => {
            out.push(TAG_SAVEPOINT);
            put_u32(&mut out, *id);
        }
        RecordBody::Clr { undo_next, redo } => {
            out.push(TAG_CLR);
            put_u64(&mut out, undo_next.0);
            put_payload(&mut out, redo);
        }
        RecordBody::NtaEnd { undo_next } => {
            out.push(TAG_NTA_END);
            put_u64(&mut out, undo_next.0);
        }
        RecordBody::Checkpoint { scan_start, active_txns, dirty_pages } => {
            out.push(TAG_CHECKPOINT);
            put_u64(&mut out, scan_start.0);
            put_u32(&mut out, active_txns.len() as u32);
            for (t, l) in active_txns {
                put_u64(&mut out, t.0);
                put_u64(&mut out, l.0);
            }
            put_u32(&mut out, dirty_pages.len() as u32);
            for (p, l) in dirty_pages {
                put_u32(&mut out, *p);
                put_u64(&mut out, l.0);
            }
        }
        RecordBody::Payload(p) => {
            out.push(TAG_PAYLOAD);
            put_payload(&mut out, p);
        }
        RecordBody::Noop => out.push(TAG_NOOP),
    }
    out
}

/// Decode one record previously produced by [`encode_record`].
pub fn decode_record(buf: &[u8]) -> Result<LogRecord, CodecError> {
    let mut r = Reader::new(buf);
    let lsn = Lsn(r.u64()?);
    let prev_lsn = Lsn(r.u64()?);
    let txn = TxnId(r.u64()?);
    let tag = r.u8()?;
    let body = match tag {
        TAG_BEGIN => RecordBody::TxnBegin,
        TAG_COMMIT => RecordBody::TxnCommit,
        TAG_ABORT => RecordBody::TxnAbort,
        TAG_END => RecordBody::TxnEnd,
        TAG_SAVEPOINT => RecordBody::Savepoint { id: r.u32()? },
        TAG_CLR => {
            let undo_next = Lsn(r.u64()?);
            let redo = read_payload(&mut r)?;
            RecordBody::Clr { undo_next, redo }
        }
        TAG_NTA_END => RecordBody::NtaEnd { undo_next: Lsn(r.u64()?) },
        TAG_CHECKPOINT => {
            let scan_start = Lsn(r.u64()?);
            let n = r.u32()? as usize;
            let mut active_txns = Vec::with_capacity(n);
            for _ in 0..n {
                let t = TxnId(r.u64()?);
                let l = Lsn(r.u64()?);
                active_txns.push((t, l));
            }
            let m = r.u32()? as usize;
            let mut dirty_pages = Vec::with_capacity(m);
            for _ in 0..m {
                let p = r.u32()?;
                let l = Lsn(r.u64()?);
                dirty_pages.push((p, l));
            }
            RecordBody::Checkpoint { scan_start, active_txns, dirty_pages }
        }
        TAG_PAYLOAD => RecordBody::Payload(read_payload(&mut r)?),
        TAG_NOOP => RecordBody::Noop,
        other => return Err(CodecError(format!("unknown record tag {other}"))),
    };
    if !r.exhausted() {
        return Err(CodecError("trailing bytes after record".into()));
    }
    Ok(LogRecord { lsn, prev_lsn, txn, body })
}
