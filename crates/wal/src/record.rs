use crate::{Lsn, TxnId};

/// Resource-manager-specific log payload.
///
/// The WAL layer treats index content as opaque bytes; the GiST layer
/// encodes its Table 1 record set (`Split`, `Parent-Entry-Update`,
/// `Add-Leaf-Entry`, …) into `bytes` and registers a `RecoveryHandler`
/// (see [`crate::recovery`]) that interprets them during redo and undo.
///
/// `pages` lists every page the record touches, so the analysis pass can
/// build a dirty-page table without understanding the payload.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Payload {
    /// Raw page numbers touched by this record (for analysis).
    pub pages: Vec<u32>,
    /// Opaque, resource-manager-encoded record body.
    pub bytes: Vec<u8>,
}

impl Payload {
    /// Payload touching the given pages with the given encoded body.
    pub fn new(pages: Vec<u32>, bytes: Vec<u8>) -> Self {
        Payload { pages, bytes }
    }
}

/// The body of a log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordBody {
    /// Transaction start.
    TxnBegin,
    /// Transaction commit (forces the log).
    TxnCommit,
    /// Transaction abort decided; undo follows, then [`RecordBody::TxnEnd`].
    TxnAbort,
    /// Transaction fully finished (committed or rolled back).
    TxnEnd,
    /// A savepoint was established (§10.2).
    Savepoint {
        /// Transaction-local savepoint number.
        id: u32,
    },
    /// Compensation log record: describes (redo-only) an undo that was
    /// performed, and points the rollback past the undone record.
    Clr {
        /// Next record to undo (skips the compensated one).
        undo_next: Lsn,
        /// Page-oriented redo description of the performed undo.
        redo: Payload,
    },
    /// Dummy CLR closing a nested top action (§9.1): rollback jumps to
    /// `undo_next`, skipping every record of the atomic unit of work.
    NtaEnd {
        /// The transaction's last LSN before the unit began.
        undo_next: Lsn,
    },
    /// Fuzzy checkpoint (§ ARIES-style): taken without quiescing the
    /// system. Restart analysis seeds its transaction and dirty-page
    /// tables from the latest checkpoint and scans forward from
    /// `scan_start` instead of the log start.
    Checkpoint {
        /// Last LSN appended before the checkpoint began capturing its
        /// tables; analysis resumes its forward scan here. Any record
        /// after `scan_start` is re-observed by the scan, so tables the
        /// checkpoint captured slightly stale are repaired.
        scan_start: Lsn,
        /// Active transactions and their last LSNs at checkpoint time.
        active_txns: Vec<(TxnId, Lsn)>,
        /// Dirty-page table: `(page, recLSN)` — the first LSN that may
        /// have dirtied each page since it was last written back. Redo
        /// starts at the minimum recLSN.
        dirty_pages: Vec<(u32, Lsn)>,
    },
    /// Resource-manager content record (redo/undo via handler).
    Payload(Payload),
    /// Filler for a gracefully abandoned log reservation (PR 6 commit
    /// pipeline): keeps LSNs dense when an append is cancelled between
    /// reserve and fill. No transaction, no redo, no undo.
    Noop,
}

impl RecordBody {
    /// Short tag for diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            RecordBody::TxnBegin => "TxnBegin",
            RecordBody::TxnCommit => "TxnCommit",
            RecordBody::TxnAbort => "TxnAbort",
            RecordBody::TxnEnd => "TxnEnd",
            RecordBody::Savepoint { .. } => "Savepoint",
            RecordBody::Clr { .. } => "Clr",
            RecordBody::NtaEnd { .. } => "NtaEnd",
            RecordBody::Checkpoint { .. } => "Checkpoint",
            RecordBody::Payload(_) => "Payload",
            RecordBody::Noop => "Noop",
        }
    }

    /// Whether rollback must invoke the resource-manager undo for this
    /// record. Only content records are undone; CLRs and NTA terminators
    /// only redirect the chain.
    pub fn is_undoable(&self) -> bool {
        matches!(self, RecordBody::Payload(_))
    }
}

/// A log record as stored by the log manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// This record's LSN (assigned at append).
    pub lsn: Lsn,
    /// Backchain: previous record of the same transaction, or
    /// [`Lsn::NULL`].
    pub prev_lsn: Lsn,
    /// Owning transaction, or [`TxnId::NONE`].
    pub txn: TxnId,
    /// The record body.
    pub body: RecordBody,
}

impl LogRecord {
    /// The next record to examine when rolling back past this one.
    ///
    /// CLRs and NTA terminators redirect via their `undo_next`; everything
    /// else follows the plain backchain.
    pub fn undo_next(&self) -> Lsn {
        match &self.body {
            RecordBody::Clr { undo_next, .. } => *undo_next,
            RecordBody::NtaEnd { undo_next } => *undo_next,
            _ => self.prev_lsn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(body: RecordBody) -> LogRecord {
        LogRecord { lsn: Lsn(10), prev_lsn: Lsn(5), txn: TxnId(1), body }
    }

    #[test]
    fn undo_next_follows_backchain_for_content() {
        assert_eq!(rec(RecordBody::Payload(Payload::default())).undo_next(), Lsn(5));
        assert_eq!(rec(RecordBody::TxnBegin).undo_next(), Lsn(5));
    }

    #[test]
    fn undo_next_redirects_for_clr_and_nta() {
        let clr = rec(RecordBody::Clr { undo_next: Lsn(2), redo: Payload::default() });
        assert_eq!(clr.undo_next(), Lsn(2));
        let nta = rec(RecordBody::NtaEnd { undo_next: Lsn(3) });
        assert_eq!(nta.undo_next(), Lsn(3));
    }

    #[test]
    fn only_payload_records_are_undoable() {
        assert!(rec(RecordBody::Payload(Payload::default())).body.is_undoable());
        assert!(!rec(RecordBody::TxnBegin).body.is_undoable());
        assert!(!rec(RecordBody::NtaEnd { undo_next: Lsn::NULL }).body.is_undoable());
        assert!(!rec(RecordBody::Clr { undo_next: Lsn::NULL, redo: Payload::default() })
            .body
            .is_undoable());
    }
}
