//! Restart recovery: analysis, page-oriented redo, and undo with logical
//! undo delegated to the resource manager (§9.2 of the paper).

use std::collections::HashMap;
use std::fmt;

use crate::{LogManager, LogRecord, Lsn, Payload, RecordBody, TxnId};

/// Error surfaced by a [`RecoveryHandler`] or the driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryError(pub String);

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "recovery error: {}", self.0)
    }
}

impl std::error::Error for RecoveryError {}

/// Resource-manager callbacks used by the restart driver and by live
/// transaction rollback.
///
/// The GiST layer implements this for its Table 1 record set.
pub trait RecoveryHandler {
    /// Page-oriented redo of a content payload (or of a CLR's redo
    /// payload). Must be idempotent: implementations compare the page LSN
    /// against `lsn` and skip already-applied updates. Returns whether the
    /// update was (re)applied.
    fn redo(&self, lsn: Lsn, payload: &Payload) -> Result<bool, RecoveryError>;

    /// Undo one content record during rollback.
    ///
    /// `restart` distinguishes restart undo from live rollback: per §9.2,
    /// restart undo must not trigger structure modifications (no garbage
    /// collection, no BP shrinking, no node deletion), because unfinished
    /// structure modifications may still be present and unlatched.
    ///
    /// The handler must call `log_clr` with the page-oriented redo
    /// description of the compensation *before* touching any page, and
    /// stamp the modified pages with the returned CLR LSN. This is the
    /// ARIES discipline that makes undo idempotent: a page flushed with
    /// the CLR's LSN implies (by the WAL rule) the CLR is durable, so a
    /// post-crash redo of the CLR skips the page, and an unflushed page
    /// is simply re-compensated. Handlers with no page effects may skip
    /// the call; the driver then writes an empty CLR.
    fn undo(
        &self,
        rec: &LogRecord,
        payload: &Payload,
        restart: bool,
        log_clr: &mut dyn FnMut(Payload) -> Lsn,
    ) -> Result<(), RecoveryError>;
}

/// Why a rollback is being performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RollbackKind {
    /// Live transaction abort: logical undo may perform structure
    /// modifications (e.g. immediate garbage collection, Table 1
    /// Add-Leaf-Entry undo).
    Abort,
    /// Partial rollback to a savepoint (§10.2).
    Savepoint,
    /// Restart undo after a crash: structure modifications forbidden.
    Restart,
}

/// Roll back `txn`'s backchain starting at `last_lsn`, stopping once the
/// chain passes `stop_after` (use [`Lsn::NULL`] for a complete rollback,
/// or a savepoint LSN for partial rollback — records with LSN ≤
/// `stop_after` survive).
///
/// Writes one CLR per undone content record. Returns the transaction's new
/// last LSN.
pub fn rollback(
    log: &LogManager,
    handler: &dyn RecoveryHandler,
    txn: TxnId,
    last_lsn: Lsn,
    stop_after: Lsn,
    kind: RollbackKind,
) -> Result<Lsn, RecoveryError> {
    let mut cur = last_lsn;
    let mut chain_end = last_lsn;
    while !cur.is_null() && cur > stop_after {
        let Some(rec) = log.try_get(cur) else {
            // A backchain pointer past the end of the log: the chain is
            // corrupt. Surfaced as an error rather than a panic so a
            // damaged log degrades the restart, not the process.
            return Err(RecoveryError(format!(
                "rollback of {txn:?}: backchain lsn {cur} beyond end of log"
            )));
        };
        debug_assert_eq!(rec.txn, txn, "backchain crossed transactions");
        if let RecordBody::Payload(p) = &rec.body {
            let mut clr_lsn: Option<Lsn> = None;
            {
                let mut log_clr = |redo: Payload| {
                    let l = log.append(
                        txn,
                        chain_end,
                        RecordBody::Clr { undo_next: rec.prev_lsn, redo },
                    );
                    clr_lsn = Some(l);
                    l
                };
                handler.undo(&rec, p, kind == RollbackKind::Restart, &mut log_clr)?;
            }
            // A handler with no page effects gets an empty CLR so the
            // chain still skips this record on a re-rollback.
            chain_end = clr_lsn.unwrap_or_else(|| {
                log.append(
                    txn,
                    chain_end,
                    RecordBody::Clr { undo_next: rec.prev_lsn, redo: Payload::default() },
                )
            });
            cur = rec.prev_lsn;
        } else {
            cur = rec.undo_next();
        }
    }
    Ok(chain_end)
}

/// Transaction status as seen by the analysis pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnStatus {
    /// In flight at the crash: a loser, to be undone.
    Active,
    /// Commit record found but no end record: a winner, just needs its end
    /// record written.
    Committed,
    /// Abort record found but rollback unfinished: still a loser.
    Aborting,
}

/// Output of the analysis pass.
#[derive(Debug, Clone, Default)]
pub struct AnalysisResult {
    /// Transactions without a `TxnEnd` record, with their last LSN.
    pub txn_table: HashMap<TxnId, (Lsn, TxnStatus)>,
    /// Dirty-page table: checkpoint-recorded entries merged with pages
    /// referenced by payload records since the scan start, each with the
    /// smallest LSN that may have dirtied it.
    pub dirty_pages: HashMap<u32, Lsn>,
    /// Where the forward scan started (the last checkpoint's
    /// `scan_start`, or log start).
    pub start_lsn: Lsn,
}

/// Analysis pass: reconstruct the transaction table and dirty-page table
/// from the durable log.
///
/// Seeds both tables from the most recent fuzzy checkpoint and scans
/// forward from its `scan_start` — everything earlier is already
/// reflected in the checkpointed tables (the checkpoint captured them
/// *after* reading `scan_start` off the log tail, so any record the
/// capture missed has an LSN > `scan_start` and is re-observed here).
pub fn analysis(log: &LogManager) -> AnalysisResult {
    let mut res = AnalysisResult::default();
    let start = match log.last_checkpoint() {
        Some(cp_lsn) => {
            if let RecordBody::Checkpoint { scan_start, active_txns, dirty_pages } =
                log.get(cp_lsn).body
            {
                for (t, l) in active_txns {
                    res.txn_table.insert(t, (l, TxnStatus::Active));
                }
                for (p, l) in dirty_pages {
                    res.dirty_pages.insert(p, l);
                }
                scan_start.max(Lsn(1))
            } else {
                Lsn(1)
            }
        }
        None => Lsn(1),
    };
    res.start_lsn = start;
    for rec in log.scan_from(start) {
        if !rec.txn.is_none() {
            match rec.body {
                RecordBody::TxnEnd => {
                    res.txn_table.remove(&rec.txn);
                }
                RecordBody::TxnCommit => {
                    res.txn_table.insert(rec.txn, (rec.lsn, TxnStatus::Committed));
                }
                RecordBody::TxnAbort => {
                    res.txn_table.insert(rec.txn, (rec.lsn, TxnStatus::Aborting));
                }
                // Every other record only advances the transaction's last
                // LSN. Named exhaustively (no wildcard) so that a new
                // record kind forces a decision about its analysis
                // treatment — gist-lint checks this coverage.
                RecordBody::TxnBegin
                | RecordBody::Savepoint { .. }
                | RecordBody::NtaEnd { .. }
                | RecordBody::Clr { .. }
                | RecordBody::Checkpoint { .. }
                | RecordBody::Noop
                | RecordBody::Payload(_) => {
                    let status = res
                        .txn_table
                        .get(&rec.txn)
                        .map(|(_, s)| *s)
                        .unwrap_or(TxnStatus::Active);
                    res.txn_table.insert(rec.txn, (rec.lsn, status));
                }
            }
        }
        let payload = match &rec.body {
            RecordBody::Payload(p) => Some(p),
            RecordBody::Clr { redo, .. } => Some(redo),
            _ => None,
        };
        if let Some(p) = payload {
            for pg in &p.pages {
                res.dirty_pages
                    .entry(*pg)
                    .and_modify(|e| *e = (*e).min(rec.lsn))
                    .or_insert(rec.lsn);
            }
        }
    }
    res
}

/// Summary of a completed restart.
#[derive(Debug, Clone, Default)]
pub struct RestartOutcome {
    /// Loser transactions that were rolled back.
    pub losers: Vec<TxnId>,
    /// Winners that were missing only their end record.
    pub completed_winners: Vec<TxnId>,
    /// Payload/CLR records examined by the redo pass.
    pub redo_considered: usize,
    /// Records whose effects were actually re-applied (page LSN check
    /// failed open).
    pub redo_applied: usize,
    /// CLRs written by the undo pass.
    pub clrs_written: usize,
    /// Where the redo pass started: the minimum recLSN over the merged
    /// dirty-page table (log start when no checkpoint bounds it).
    pub redo_start: Lsn,
}

/// Full ARIES-style restart: analysis, redo-all (with page-LSN
/// idempotence in the handler), then undo of losers with logical undo and
/// no structure modifications (§9.2).
///
/// On return the log has been flushed; the caller is responsible for
/// flushing data pages (or leaving them to the buffer pool).
pub fn restart(
    log: &LogManager,
    handler: &dyn RecoveryHandler,
) -> Result<RestartOutcome, RecoveryError> {
    restart_with_floor(log, handler, Lsn(u64::MAX))
}

/// [`restart`] with a *redo floor*: the redo pass starts no later than
/// `floor`. Used by torn-page repair — a quarantined (zeroed) page has
/// page LSN 0 and its content exists only in the log, so redo must
/// repeat history from the log start (`floor = Lsn(1)`) regardless of
/// what the dirty-page table claims. Page-LSN idempotence makes the
/// wider scan safe for every healthy page.
pub fn restart_with_floor(
    log: &LogManager,
    handler: &dyn RecoveryHandler,
    floor: Lsn,
) -> Result<RestartOutcome, RecoveryError> {
    let analysis_res = analysis(log);
    let mut outcome = RestartOutcome::default();

    // Redo pass: repeat history from the smallest recLSN in the merged
    // dirty-page table. Any page missing from that table was written back
    // clean before the crash, so its page LSN already covers every earlier
    // record; the handler's page-LSN check keeps the pass idempotent
    // either way.
    let redo_start = analysis_res
        .dirty_pages
        .values()
        .copied()
        .min()
        .unwrap_or(analysis_res.start_lsn)
        .min(floor)
        .max(Lsn(1));
    outcome.redo_start = redo_start;
    for rec in log.scan_from(redo_start) {
        let payload = match &rec.body {
            RecordBody::Payload(p) => Some(p),
            RecordBody::Clr { redo, .. } => Some(redo),
            _ => None,
        };
        if let Some(p) = payload {
            outcome.redo_considered += 1;
            if handler.redo(rec.lsn, p)? {
                outcome.redo_applied += 1;
            }
        }
    }

    // Undo pass: roll back losers; finish winners that lack an end record.
    let mut losers: Vec<(TxnId, Lsn)> = Vec::new();
    for (txn, (last, status)) in &analysis_res.txn_table {
        match status {
            TxnStatus::Committed => {
                let end = log.append(*txn, *last, RecordBody::TxnEnd);
                log.flush(end);
                outcome.completed_winners.push(*txn);
            }
            TxnStatus::Active | TxnStatus::Aborting => losers.push((*txn, *last)),
        }
    }
    // Deterministic order (oldest first) for reproducible tests.
    losers.sort_by_key(|(t, _)| *t);
    for (txn, last) in losers {
        let before = log.len();
        let chain_end = rollback(log, handler, txn, last, Lsn::NULL, RollbackKind::Restart)?;
        outcome.clrs_written += log.len() - before;
        let end = log.append(txn, chain_end, RecordBody::TxnEnd);
        log.flush(end);
        outcome.losers.push(txn);
    }
    log.flush_all();
    Ok(outcome)
}
