//! Unit tests for the log manager, nested top actions, rollback and
//! restart, using a toy resource manager (an array of versioned cells).

use std::sync::Mutex;

use crate::codec::{decode_record, encode_record};
use crate::recovery::{analysis, restart, rollback, RollbackKind, TxnStatus};
use crate::{
    LogManager, LogRecord, Lsn, Payload, RecordBody, RecoveryError, RecoveryHandler, TxnId,
};

/// Toy resource manager: `cells[i]` holds `(value, page_lsn)`. Payload
/// bytes encode `op(1)=set, cell(u32), new(u64), old(u64)`.
struct Cells {
    cells: Mutex<Vec<(u64, Lsn)>>,
    log: std::sync::Arc<LogManager>,
}

impl Cells {
    fn new(n: usize, log: std::sync::Arc<LogManager>) -> Self {
        Cells { cells: Mutex::new(vec![(0, Lsn::NULL); n]), log }
    }

    fn payload(cell: u32, new: u64, old: u64) -> Payload {
        let mut b = vec![1u8];
        b.extend_from_slice(&cell.to_le_bytes());
        b.extend_from_slice(&new.to_le_bytes());
        b.extend_from_slice(&old.to_le_bytes());
        Payload::new(vec![cell], b)
    }

    fn decode(bytes: &[u8]) -> (u32, u64, u64) {
        let cell = u32::from_le_bytes(bytes[1..5].try_into().unwrap());
        let new = u64::from_le_bytes(bytes[5..13].try_into().unwrap());
        let old = u64::from_le_bytes(bytes[13..21].try_into().unwrap());
        (cell, new, old)
    }

    /// Forward operation: log then apply.
    fn set(&self, txn: TxnId, prev: Lsn, cell: u32, new: u64) -> Lsn {
        let mut cells = self.cells.lock().unwrap();
        let old = cells[cell as usize].0;
        let lsn = self.log.append(txn, prev, RecordBody::Payload(Self::payload(cell, new, old)));
        cells[cell as usize] = (new, lsn);
        lsn
    }

    fn get(&self, cell: u32) -> u64 {
        self.cells.lock().unwrap()[cell as usize].0
    }

    /// Simulate losing all in-memory state (cells revert to what "disk"
    /// had — here we model disk as empty, so redo must rebuild).
    fn wipe(&self) {
        let mut cells = self.cells.lock().unwrap();
        for c in cells.iter_mut() {
            *c = (0, Lsn::NULL);
        }
    }
}

impl RecoveryHandler for Cells {
    fn redo(&self, lsn: Lsn, payload: &Payload) -> Result<bool, RecoveryError> {
        if payload.bytes.is_empty() {
            return Ok(false);
        }
        let (cell, new, _old) = Self::decode(&payload.bytes);
        let mut cells = self.cells.lock().unwrap();
        let slot = &mut cells[cell as usize];
        if slot.1 < lsn {
            *slot = (new, lsn);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn undo(
        &self,
        _rec: &LogRecord,
        payload: &Payload,
        _restart: bool,
        log_clr: &mut dyn FnMut(Payload) -> Lsn,
    ) -> Result<(), RecoveryError> {
        let (cell, _new, old) = Self::decode(&payload.bytes);
        // ARIES discipline: log the CLR first, stamp the page (cell) with
        // its LSN.
        let clr_lsn = log_clr(Self::payload(cell, old, 0));
        let mut cells = self.cells.lock().unwrap();
        cells[cell as usize] = (old, clr_lsn);
        Ok(())
    }
}

fn setup(cells: usize) -> (std::sync::Arc<LogManager>, Cells) {
    let log = std::sync::Arc::new(LogManager::new());
    let rm = Cells::new(cells, log.clone());
    (log, rm)
}

#[test]
fn lsns_are_dense_and_monotonic() {
    let log = LogManager::new();
    let a = log.append(TxnId(1), Lsn::NULL, RecordBody::TxnBegin);
    let b = log.append(TxnId(1), a, RecordBody::TxnCommit);
    assert_eq!(a, Lsn(1));
    assert_eq!(b, Lsn(2));
    assert_eq!(log.last_lsn(), Lsn(2));
    assert_eq!(log.get(a).body.kind_name(), "TxnBegin");
}

#[test]
fn flush_and_crash_truncate_unflushed_suffix() {
    let log = LogManager::new();
    let a = log.append(TxnId(1), Lsn::NULL, RecordBody::TxnBegin);
    let _b = log.append(TxnId(1), a, RecordBody::TxnCommit);
    log.flush(a);
    assert_eq!(log.flushed_lsn(), a);
    let lost = log.crash();
    assert_eq!(lost, 1);
    assert_eq!(log.last_lsn(), a);
}

#[test]
fn flush_is_monotone_and_bounded() {
    let log = LogManager::new();
    let a = log.append(TxnId(1), Lsn::NULL, RecordBody::TxnBegin);
    log.flush(Lsn(100)); // beyond end: clamps
    assert_eq!(log.flushed_lsn(), a);
    log.flush(Lsn::NULL); // never regresses
    assert_eq!(log.flushed_lsn(), a);
}

#[test]
fn rollback_undoes_in_reverse_and_writes_clrs() {
    let (log, rm) = setup(4);
    let t = TxnId(1);
    let l0 = log.append(t, Lsn::NULL, RecordBody::TxnBegin);
    let l1 = rm.set(t, l0, 0, 10);
    let l2 = rm.set(t, l1, 1, 20);
    let l3 = rm.set(t, l2, 0, 30);
    assert_eq!(rm.get(0), 30);

    let end = rollback(&log, &rm, t, l3, Lsn::NULL, RollbackKind::Abort).unwrap();
    assert_eq!(rm.get(0), 0);
    assert_eq!(rm.get(1), 0);
    // Three CLRs were written and the chain end moved forward.
    assert!(end > l3);
    let clr = log.get(end);
    assert!(matches!(clr.body, RecordBody::Clr { .. }));
}

#[test]
fn partial_rollback_stops_at_savepoint() {
    let (log, rm) = setup(4);
    let t = TxnId(1);
    let l0 = log.append(t, Lsn::NULL, RecordBody::TxnBegin);
    let l1 = rm.set(t, l0, 0, 10);
    let sp = log.append(t, l1, RecordBody::Savepoint { id: 1 });
    let l2 = rm.set(t, sp, 1, 20);
    let l3 = rm.set(t, l2, 0, 30);

    rollback(&log, &rm, t, l3, sp, RollbackKind::Savepoint).unwrap();
    // Updates after the savepoint are gone; the one before survives.
    assert_eq!(rm.get(1), 0);
    assert_eq!(rm.get(0), 10);
}

#[test]
fn nta_records_are_skipped_by_rollback() {
    let (log, rm) = setup(4);
    let t = TxnId(1);
    let l0 = log.append(t, Lsn::NULL, RecordBody::TxnBegin);
    let l1 = rm.set(t, l0, 0, 10);
    // Structure modification: cells 2 and 3 updated inside an NTA.
    let nta = log.begin_nta(l1);
    let s1 = rm.set(t, l1, 2, 111);
    let s2 = rm.set(t, s1, 3, 222);
    let l2 = log.end_nta(t, s2, nta);
    let l3 = rm.set(t, l2, 1, 20);

    rollback(&log, &rm, t, l3, Lsn::NULL, RollbackKind::Abort).unwrap();
    // Content updates are undone, the NTA's updates survive.
    assert_eq!(rm.get(0), 0);
    assert_eq!(rm.get(1), 0);
    assert_eq!(rm.get(2), 111);
    assert_eq!(rm.get(3), 222);
}

#[test]
fn incomplete_nta_is_undone_at_restart() {
    let (log, rm) = setup(4);
    let t = TxnId(1);
    let l0 = log.append(t, Lsn::NULL, RecordBody::TxnBegin);
    let _nta = log.begin_nta(l0);
    let s1 = rm.set(t, l0, 2, 111);
    let _s2 = rm.set(t, s1, 3, 222);
    // Crash before end_nta: the NTA is incomplete and must be rolled back.
    log.flush_all();
    log.crash();
    rm.wipe();

    let out = restart(&log, &rm).unwrap();
    assert_eq!(out.losers, vec![t]);
    assert_eq!(rm.get(2), 0);
    assert_eq!(rm.get(3), 0);
}

#[test]
fn restart_redoes_committed_and_undoes_losers() {
    let (log, rm) = setup(4);
    let t1 = TxnId(1);
    let t2 = TxnId(2);
    let b1 = log.append(t1, Lsn::NULL, RecordBody::TxnBegin);
    let b2 = log.append(t2, Lsn::NULL, RecordBody::TxnBegin);
    let u1 = rm.set(t1, b1, 0, 10);
    let u2 = rm.set(t2, b2, 1, 20);
    let c1 = log.append(t1, u1, RecordBody::TxnCommit);
    log.flush(c1);
    let _u2b = rm.set(t2, u2, 2, 30);
    // Crash: t1 committed (flushed), t2 in flight; t2's second update was
    // never flushed and is lost entirely.
    log.crash();
    rm.wipe();

    let out = restart(&log, &rm).unwrap();
    assert_eq!(rm.get(0), 10, "committed update redone");
    assert_eq!(rm.get(1), 0, "loser update undone");
    assert_eq!(rm.get(2), 0, "unflushed update lost");
    assert!(out.losers.contains(&t2));
    assert!(out.completed_winners.contains(&t1));
}

#[test]
fn restart_is_idempotent() {
    let (log, rm) = setup(4);
    let t = TxnId(1);
    let b = log.append(t, Lsn::NULL, RecordBody::TxnBegin);
    let u = rm.set(t, b, 0, 42);
    let c = log.append(t, u, RecordBody::TxnCommit);
    log.flush(c);
    log.crash();
    rm.wipe();

    restart(&log, &rm).unwrap();
    let v1 = rm.get(0);
    // A second restart over the same (now longer) log must not change
    // anything.
    let out2 = restart(&log, &rm).unwrap();
    assert_eq!(rm.get(0), v1);
    assert!(out2.losers.is_empty());
}

#[test]
fn crash_during_restart_undo_converges() {
    let (log, rm) = setup(4);
    let t = TxnId(1);
    let b = log.append(t, Lsn::NULL, RecordBody::TxnBegin);
    let u1 = rm.set(t, b, 0, 10);
    let u2 = rm.set(t, u1, 1, 20);
    let _u3 = rm.set(t, u2, 2, 30);
    log.flush_all();
    rm.wipe();

    // First restart: runs fully, but we then simulate the *next* crash by
    // keeping only a prefix that contains some CLRs.
    restart(&log, &rm).unwrap();
    // Find the first CLR and flush only up to it.
    let first_clr = log
        .scan_from(Lsn(1))
        .into_iter()
        .find(|r| matches!(r.body, RecordBody::Clr { .. }))
        .unwrap()
        .lsn;
    // Rewind durability to just past the first CLR, losing later CLRs.
    let log2 = LogManager::new();
    for rec in log.scan_from(Lsn(1)) {
        if rec.lsn <= first_clr {
            log2.append(rec.txn, rec.prev_lsn, rec.body.clone());
        }
    }
    log2.flush_all();
    rm.wipe();
    restart(&log2, &rm).unwrap();
    // All three updates are undone regardless of the crash point.
    assert_eq!(rm.get(0), 0);
    assert_eq!(rm.get(1), 0);
    assert_eq!(rm.get(2), 0);
}

#[test]
fn analysis_tracks_statuses_and_checkpoint() {
    let (log, rm) = setup(4);
    let t1 = TxnId(1);
    let t2 = TxnId(2);
    let t3 = TxnId(3);
    let b1 = log.append(t1, Lsn::NULL, RecordBody::TxnBegin);
    let b2 = log.append(t2, Lsn::NULL, RecordBody::TxnBegin);
    let _cp = log.append(
        TxnId::NONE,
        Lsn::NULL,
        RecordBody::Checkpoint {
            scan_start: b2,
            active_txns: vec![(t1, b1), (t2, b2)],
            dirty_pages: vec![],
        },
    );
    let b3 = log.append(t3, Lsn::NULL, RecordBody::TxnBegin);
    let u1 = rm.set(t1, b1, 0, 1);
    let c1 = log.append(t1, u1, RecordBody::TxnCommit);
    let e1 = log.append(t1, c1, RecordBody::TxnEnd);
    let _a2 = log.append(t2, b2, RecordBody::TxnAbort);
    let u3 = rm.set(t3, b3, 1, 2);
    log.flush(e1);

    let res = analysis(&log);
    assert_eq!(res.start_lsn, b2, "scan resumes at the checkpoint's scan_start");
    assert!(!res.txn_table.contains_key(&t1), "ended txn dropped");
    assert_eq!(res.txn_table[&t2].1, TxnStatus::Aborting);
    assert_eq!(res.txn_table[&t3], (u3, TxnStatus::Active));
    assert!(res.dirty_pages.contains_key(&1));
}

#[test]
fn codec_roundtrips_all_record_kinds() {
    let bodies = vec![
        RecordBody::TxnBegin,
        RecordBody::TxnCommit,
        RecordBody::TxnAbort,
        RecordBody::TxnEnd,
        RecordBody::Savepoint { id: 7 },
        RecordBody::Clr {
            undo_next: Lsn(3),
            redo: Payload::new(vec![1, 2], vec![9, 8, 7]),
        },
        RecordBody::NtaEnd { undo_next: Lsn(5) },
        RecordBody::Checkpoint {
            scan_start: Lsn(9),
            active_txns: vec![(TxnId(1), Lsn(2)), (TxnId(3), Lsn(4))],
            dirty_pages: vec![(11, Lsn(6)), (12, Lsn(7))],
        },
        RecordBody::Payload(Payload::new(vec![], vec![])),
        RecordBody::Payload(Payload::new(vec![42], (0..255u8).collect())),
    ];
    for (i, body) in bodies.into_iter().enumerate() {
        let rec = LogRecord { lsn: Lsn(i as u64 + 1), prev_lsn: Lsn(i as u64), txn: TxnId(9), body };
        let enc = encode_record(&rec);
        let dec = decode_record(&enc).unwrap();
        assert_eq!(rec, dec);
    }
}

#[test]
fn codec_rejects_truncation_and_junk() {
    let rec = LogRecord {
        lsn: Lsn(1),
        prev_lsn: Lsn::NULL,
        txn: TxnId(1),
        body: RecordBody::Payload(Payload::new(vec![1], vec![1, 2, 3])),
    };
    let enc = encode_record(&rec);
    for cut in 0..enc.len() {
        assert!(decode_record(&enc[..cut]).is_err(), "cut at {cut} must fail");
    }
    let mut junk = enc.clone();
    junk[24] = 200; // invalid tag
    assert!(decode_record(&junk).is_err());
}

#[test]
fn file_persist_and_load_roundtrip() {
    let (log, rm) = setup(2);
    let t = TxnId(1);
    let b = log.append(t, Lsn::NULL, RecordBody::TxnBegin);
    let u = rm.set(t, b, 0, 5);
    let c = log.append(t, u, RecordBody::TxnCommit);
    log.flush(c);
    let _unflushed = log.append(t, c, RecordBody::TxnEnd);

    let dir = std::env::temp_dir().join(format!("gist-wal-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wal.log");
    log.persist_file(&path).unwrap();
    let loaded = LogManager::load_file(&path).unwrap();
    // Only the durable prefix survives the round trip.
    assert_eq!(loaded.last_lsn(), c);
    assert_eq!(loaded.get(u), log.get(u));
    std::fs::remove_dir_all(&dir).ok();
}

/// Persist a small committed log to a temp file and return
/// `(dir, path, durable_lsn_count)`. The caller removes `dir`.
fn persisted_log(tag: &str) -> (std::path::PathBuf, std::path::PathBuf, u64) {
    let (log, rm) = setup(2);
    let t = TxnId(1);
    let b = log.append(t, Lsn::NULL, RecordBody::TxnBegin);
    let u1 = rm.set(t, b, 0, 5);
    let u2 = rm.set(t, u1, 1, 9);
    let c = log.append(t, u2, RecordBody::TxnCommit);
    let e = log.append(t, c, RecordBody::TxnEnd);
    log.flush(e);
    let dir = std::env::temp_dir().join(format!("gist-wal-fault-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wal.log");
    log.persist_file(&path).unwrap();
    (dir, path, e.0)
}

#[test]
fn torn_tail_is_truncated_not_fatal() {
    let (dir, path, durable) = persisted_log("torn");
    // Cut into the final frame: a crash mid-append of the last record.
    crate::faults::truncate_tail(&path, 3).unwrap();
    let (loaded, report) = LogManager::load_file_report(&path).unwrap();
    assert!(report.tail_truncated, "tear detected");
    assert_eq!(loaded.last_lsn(), Lsn(durable - 1), "only the torn record dropped");
    assert!(report.dropped_bytes > 0);
    // The surviving prefix is intact and scannable.
    assert_eq!(loaded.scan_from(Lsn(1)).len() as u64, durable - 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bitflipped_final_record_is_truncated() {
    let (dir, path, durable) = persisted_log("flip-tail");
    // Flip a byte inside the final record's body: checksum catches it.
    crate::faults::flip_tail_byte(&path, 2, 0x40).unwrap();
    let (loaded, report) = LogManager::load_file_report(&path).unwrap();
    assert!(report.tail_truncated);
    assert_eq!(loaded.last_lsn(), Lsn(durable - 1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn interior_corruption_is_a_hard_error() {
    let (dir, path, _) = persisted_log("interior");
    // Flip a byte well before the durable tail (inside the first
    // record's frame, just past the 8-byte magic + 12-byte header).
    crate::faults::flip_byte(&path, 8 + 12 + 2, 0x10).unwrap();
    let Err(err) = LogManager::load_file(&path).map(|_| ()) else {
        panic!("interior corruption must not load");
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(
        err.to_string().contains("before the durable tail"),
        "classified as interior corruption: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncation_into_earlier_frames_drops_only_the_tail() {
    let (dir, path, durable) = persisted_log("deep-trunc");
    // Cut away the last frame and a bite of the one before it: both are
    // tail damage (nothing corrupt is *followed* by good bytes).
    let len = crate::faults::file_len(&path).unwrap();
    crate::faults::truncate_tail(&path, len / 3).unwrap();
    let (loaded, report) = LogManager::load_file_report(&path).unwrap();
    assert!(report.tail_truncated);
    assert!(loaded.last_lsn() < Lsn(durable));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wrong_magic_is_a_hard_error() {
    let dir = std::env::temp_dir().join(format!("gist-wal-fault-magic-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wal.log");
    std::fs::write(&path, b"NOTAWAL!rest of garbage").unwrap();
    assert!(LogManager::load_file(&path).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rollback_with_corrupt_backchain_errors_instead_of_panicking() {
    let (log, rm) = setup(2);
    let t = TxnId(1);
    let b = log.append(t, Lsn::NULL, RecordBody::TxnBegin);
    let _u = rm.set(t, b, 0, 5);
    // A backchain pointer beyond the end of the log (corrupt chain).
    let bogus = Lsn(999);
    let err = rollback(&log, &rm, t, bogus, Lsn::NULL, RollbackKind::Abort).unwrap_err();
    assert!(err.0.contains("beyond end of log"), "{err}");
}

#[test]
fn hole_fences_durable_horizon_until_filled() {
    let log = LogManager::new();
    let a = log.append(TxnId(1), Lsn::NULL, RecordBody::TxnBegin);
    // Reserve but do not fill: the filled watermark stops at `a`.
    let hole = log.reserve(TxnId(1), a);
    let after = log.append(TxnId(1), a, RecordBody::TxnCommit);
    assert_eq!(log.filled_lsn(), a, "fill past a hole must not publish");
    log.flush_all();
    assert_eq!(log.flushed_lsn(), a, "durability is fenced by the hole");
    // Filling the hole unblocks everything behind it.
    log.fill(hole, RecordBody::Noop);
    assert_eq!(log.filled_lsn(), after);
    log.flush_all();
    assert_eq!(log.flushed_lsn(), after);
}

#[test]
fn crash_discards_reserved_but_unfilled_hole() {
    let log = LogManager::new();
    let a = log.append(TxnId(1), Lsn::NULL, RecordBody::TxnBegin);
    log.flush(a);
    let _hole = log.reserve(TxnId(1), a);
    let _after = log.append(TxnId(1), a, RecordBody::TxnCommit);
    let lost = log.crash();
    assert_eq!(lost, 2, "the hole and the record behind it are both lost");
    assert_eq!(log.last_lsn(), a);
    assert_eq!(log.filled_lsn(), a);
    // The log accepts appends again and stays dense.
    let b = log.append(TxnId(2), Lsn::NULL, RecordBody::TxnBegin);
    assert_eq!(b, Lsn(a.0 + 1));
}

#[test]
fn fill_noop_keeps_log_dense_and_invisible_to_restart() {
    let (log, rm) = setup(2);
    let t = TxnId(1);
    let b = log.append(t, Lsn::NULL, RecordBody::TxnBegin);
    let res = log.reserve(t, b);
    let noop = log.fill_noop(res);
    let u = rm.set(t, b, 0, 7);
    let c = log.append(t, u, RecordBody::TxnCommit);
    log.flush(c);
    log.crash();
    rm.wipe();
    let out = restart(&log, &rm).unwrap();
    assert!(out.completed_winners.contains(&t));
    assert_eq!(rm.get(0), 7);
    assert_eq!(log.get(noop).body.kind_name(), "Noop");
    assert_eq!(log.get(noop).txn, TxnId::NONE, "noop filler carries no transaction");
}

#[test]
fn wait_durable_wakes_parked_waiter() {
    let log = std::sync::Arc::new(LogManager::new());
    let c = log.append(TxnId(1), Lsn::NULL, RecordBody::TxnCommit);
    let waiter = {
        let log = log.clone();
        std::thread::spawn(move || log.wait_durable(c, std::time::Duration::from_secs(5)))
    };
    // Advance silently, then wake: the waiter must observe the horizon.
    log.fsync_to(c);
    log.notify_durable();
    assert!(waiter.join().unwrap(), "waiter saw the durable horizon");
    assert!(
        !log.wait_durable(Lsn(c.0 + 1), std::time::Duration::from_millis(10)),
        "waiting for a non-existent LSN times out"
    );
}

#[test]
fn fsync_pays_serialized_device_latency_once_per_advance() {
    let log = LogManager::new();
    log.set_sync_latency(std::time::Duration::from_millis(5));
    let mut last = Lsn::NULL;
    for i in 0..8u64 {
        last = log.append(TxnId(i + 1), Lsn::NULL, RecordBody::TxnBegin);
    }
    let t0 = std::time::Instant::now();
    log.flush(last); // one batch: one device sync
    let one_batch = t0.elapsed();
    assert!(one_batch >= std::time::Duration::from_millis(5));
    assert!(
        one_batch < std::time::Duration::from_millis(40),
        "batched advance pays the device once, not per record: {one_batch:?}"
    );
    // Already durable: free.
    let t1 = std::time::Instant::now();
    log.flush(last);
    assert!(t1.elapsed() < std::time::Duration::from_millis(5));
}

#[test]
fn concurrent_appends_get_unique_lsns() {
    let log = std::sync::Arc::new(LogManager::new());
    let mut handles = Vec::new();
    for i in 0..8u64 {
        let log = log.clone();
        handles.push(std::thread::spawn(move || {
            let mut lsns = Vec::new();
            for _ in 0..500 {
                lsns.push(log.append(TxnId(i + 1), Lsn::NULL, RecordBody::TxnBegin));
            }
            lsns
        }));
    }
    let mut all: Vec<Lsn> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
    all.sort();
    all.dedup();
    assert_eq!(all.len(), 8 * 500);
    assert_eq!(log.last_lsn(), Lsn(4000));
}
