//! Model-checker hook shim: forwards watermark transitions to
//! `gist_audit::mc` when the `latch-audit` feature is on, and compiles
//! to nothing otherwise (the no-op twins keep `log.rs` free of
//! feature gates).
//!
//! Each `LogManager` watermark (`reserved`, `filled`, `durable`) gets a
//! shadow-state *cell id*; the hooks report every atomic transition on
//! those cells as a scheduling point plus a happens-before edge, so the
//! explorer can interleave watermark movements and the race detector
//! can prove `durable ≤ filled ≤ reserved` transitions are ordered.

#[cfg(feature = "latch-audit")]
pub(crate) use gist_audit::mc::{atomic_load, atomic_rmw, atomic_store};

/// Fresh shadow-cell id for a watermark (0 when auditing is off: the
/// hooks that would consume it are no-ops).
#[cfg(feature = "latch-audit")]
pub(crate) fn new_cell_id() -> u64 {
    gist_audit::mc::fresh_cell_id()
}

#[cfg(not(feature = "latch-audit"))]
mod noop {
    #![allow(clippy::missing_const_for_fn)]

    #[inline(always)]
    pub(crate) fn atomic_load(_cell: u64, _what: &'static str) {}

    #[inline(always)]
    pub(crate) fn atomic_rmw(_cell: u64, _what: &'static str) {}

    #[inline(always)]
    pub(crate) fn atomic_store(_cell: u64, _what: &'static str) {}

    #[inline(always)]
    pub(crate) fn new_cell_id() -> u64 {
        0
    }
}

#[cfg(not(feature = "latch-audit"))]
pub(crate) use noop::*;
