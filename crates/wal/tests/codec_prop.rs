//! Property tests for the log-record byte codec.

use proptest::prelude::*;

use gist_wal::codec::{decode_record, encode_record};
use gist_wal::{LogRecord, Lsn, Payload, RecordBody, TxnId};

fn payload() -> impl Strategy<Value = Payload> {
    (
        prop::collection::vec(any::<u32>(), 0..5),
        prop::collection::vec(any::<u8>(), 0..200),
    )
        .prop_map(|(pages, bytes)| Payload::new(pages, bytes))
}

fn body() -> impl Strategy<Value = RecordBody> {
    prop_oneof![
        Just(RecordBody::TxnBegin),
        Just(RecordBody::TxnCommit),
        Just(RecordBody::TxnAbort),
        Just(RecordBody::TxnEnd),
        any::<u32>().prop_map(|id| RecordBody::Savepoint { id }),
        (any::<u64>(), payload())
            .prop_map(|(u, redo)| RecordBody::Clr { undo_next: Lsn(u), redo }),
        any::<u64>().prop_map(|u| RecordBody::NtaEnd { undo_next: Lsn(u) }),
        prop::collection::vec((any::<u64>(), any::<u64>()), 0..6).prop_map(|v| {
            RecordBody::Checkpoint {
                active_txns: v.into_iter().map(|(t, l)| (TxnId(t), Lsn(l))).collect(),
            }
        }),
        payload().prop_map(RecordBody::Payload),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn roundtrip(lsn in any::<u64>(), prev in any::<u64>(), txn in any::<u64>(), b in body()) {
        let rec = LogRecord { lsn: Lsn(lsn), prev_lsn: Lsn(prev), txn: TxnId(txn), body: b };
        let enc = encode_record(&rec);
        let dec = decode_record(&enc).unwrap();
        prop_assert_eq!(rec, dec);
    }

    /// Truncation at any point is detected, never mis-decoded.
    #[test]
    fn truncation_always_fails(b in body(), cut_frac in 0.0f64..1.0) {
        let rec = LogRecord { lsn: Lsn(1), prev_lsn: Lsn(0), txn: TxnId(1), body: b };
        let enc = encode_record(&rec);
        let cut = ((enc.len() as f64) * cut_frac) as usize;
        if cut < enc.len() {
            prop_assert!(decode_record(&enc[..cut]).is_err());
        }
    }

    /// Appending junk after a record is rejected (records are framed by
    /// the caller; trailing garbage means corruption).
    #[test]
    fn trailing_bytes_rejected(b in body(), junk in prop::collection::vec(any::<u8>(), 1..10)) {
        let rec = LogRecord { lsn: Lsn(1), prev_lsn: Lsn(0), txn: TxnId(1), body: b };
        let mut enc = encode_record(&rec);
        enc.extend_from_slice(&junk);
        prop_assert!(decode_record(&enc).is_err());
    }
}
