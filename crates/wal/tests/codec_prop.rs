//! Randomized (but deterministic) tests for the log-record byte codec.
//!
//! Previously written against `proptest`; rewritten around a seeded
//! xorshift generator so the workspace carries no external dev-deps and
//! every CI run exercises the identical case set.

use gist_wal::codec::{decode_record, encode_record};
use gist_wal::{LogRecord, Lsn, Payload, RecordBody, TxnId};

/// Seeded xorshift64 generator.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform value in `0..n` (n > 0).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn bytes(&mut self, max_len: u64) -> Vec<u8> {
        let len = self.below(max_len) as usize;
        (0..len).map(|_| self.next() as u8).collect()
    }

    fn payload(&mut self) -> Payload {
        let npages = self.below(5) as usize;
        let pages: Vec<u32> = (0..npages).map(|_| self.next() as u32).collect();
        let bytes = self.bytes(200);
        Payload::new(pages, bytes)
    }

    fn body(&mut self) -> RecordBody {
        match self.below(9) {
            0 => RecordBody::TxnBegin,
            1 => RecordBody::TxnCommit,
            2 => RecordBody::TxnAbort,
            3 => RecordBody::TxnEnd,
            4 => RecordBody::Savepoint { id: self.next() as u32 },
            5 => RecordBody::Clr { undo_next: Lsn(self.next()), redo: self.payload() },
            6 => RecordBody::NtaEnd { undo_next: Lsn(self.next()) },
            7 => {
                let ntxn = self.below(6) as usize;
                let active_txns =
                    (0..ntxn).map(|_| (TxnId(self.next()), Lsn(self.next()))).collect();
                let ndirty = self.below(6) as usize;
                let dirty_pages =
                    (0..ndirty).map(|_| (self.next() as u32, Lsn(self.next()))).collect();
                RecordBody::Checkpoint {
                    scan_start: Lsn(self.next()),
                    active_txns,
                    dirty_pages,
                }
            }
            _ => RecordBody::Payload(self.payload()),
        }
    }

    fn record(&mut self) -> LogRecord {
        LogRecord {
            lsn: Lsn(self.next()),
            prev_lsn: Lsn(self.next()),
            txn: TxnId(self.next()),
            body: self.body(),
        }
    }
}

#[test]
fn roundtrip() {
    let mut g = Gen::new(0x9E37_79B9_7F4A_7C15);
    for case in 0..512 {
        let rec = g.record();
        let enc = encode_record(&rec);
        let dec = decode_record(&enc).unwrap_or_else(|e| panic!("case {case}: decode failed: {e:?}"));
        assert_eq!(rec, dec, "case {case}");
    }
}

/// Truncation at any point is detected, never mis-decoded.
#[test]
fn truncation_always_fails() {
    let mut g = Gen::new(0xA5A5_A5A5_5A5A_5A5A);
    for case in 0..64 {
        let rec = LogRecord { lsn: Lsn(1), prev_lsn: Lsn(0), txn: TxnId(1), body: g.body() };
        let enc = encode_record(&rec);
        for cut in 0..enc.len() {
            assert!(
                decode_record(&enc[..cut]).is_err(),
                "case {case}: truncation at {cut}/{} decoded",
                enc.len()
            );
        }
    }
}

/// Appending junk after a record is rejected (records are framed by the
/// caller; trailing garbage means corruption).
#[test]
fn trailing_bytes_rejected() {
    let mut g = Gen::new(0xFEED_FACE_CAFE_BEEF);
    for case in 0..128 {
        let rec = LogRecord { lsn: Lsn(1), prev_lsn: Lsn(0), txn: TxnId(1), body: g.body() };
        let mut enc = encode_record(&rec);
        let junk_len = 1 + g.below(9) as usize;
        for _ in 0..junk_len {
            enc.push(g.next() as u8);
        }
        assert!(decode_record(&enc).is_err(), "case {case}: trailing bytes accepted");
    }
}
