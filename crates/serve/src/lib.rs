#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # gist-serve — the fault-tolerant serving front-end
//!
//! A threaded server exposing a [`Db`](gist_core::Db) over the
//! `gist-wire` protocol, built so the **process boundary fails the
//! same way the engine does**: designed, counted, self-clearing.
//!
//! - **Session-owned transactions.** Each connection owns at most one
//!   transaction. When the session ends — clean EOF, reset mid-frame,
//!   protocol abuse, eviction, chaos injection — teardown aborts the
//!   owned transaction through the engine's `TxnEndObserver` funnel,
//!   so locks, predicate entries and the admission credit release
//!   exactly once. A vanished client leaks nothing.
//! - **Deadline-sliced I/O.** Every read and write is bounded (the
//!   `no-unbounded-read` lint rule keeps raw socket calls confined to
//!   [`io`]'s helpers). Clients idle past the deadline are evicted.
//! - **Shedding at the wire.** `Begin` uses
//!   [`try_begin`](gist_core::Db::try_begin); an admission shed comes
//!   back as a retryable [`Response::Busy`](gist_wire::Response::Busy)
//!   with a backoff hint, never a queued-forever connection.
//! - **Observability.** `Health`/`Stats` requests serialize
//!   [`Db::health`](gist_core::Db::health) and `robustness_stats()`
//!   plus the server's own counters.
//! - **Graceful drain.** [`Server::drain`] stops accepting, gives
//!   in-flight sessions a bounded window, then force-aborts stragglers
//!   (counted, via the same exactly-once funnel).
//!
//! Verification lives in `tests/serve.rs`: a deterministic
//! [`FaultTransport`] (torn writes, resets, stalls, short reads by
//! op-index schedule, mirroring `FaultStore`), chaos points across the
//! accept/decode/dispatch/drain path, and a protocol corpus asserting
//! malformed bytes can never panic the server or leak a transaction.

mod chaos;
mod client;
mod fault;
pub mod io;
mod session;

pub use client::Client;
pub use fault::{FaultKind, FaultPlan, FaultStats, FaultTransport, IoOp};
pub use io::{pipe_pair, PipeConn, TcpConn, Transport};

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use gist_am::BtreeExt;
use gist_core::{Db, GistIndex};
use parking_lot::Mutex;

use session::SessionShared;

/// Serving-layer tuning knobs. Defaults suit tests; the binary scales
/// them up.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// How long one blocking read slice may park. Between slices the
    /// session notices drain and eviction; smaller = snappier shutdown,
    /// larger = fewer wakeups.
    pub read_slice: Duration,
    /// Idle time (no bytes from the client) before a session is evicted
    /// as a slow client.
    pub idle_deadline: Duration,
    /// Bound on writing one response.
    pub write_deadline: Duration,
    /// How long [`Server::drain`] waits for sessions to finish before
    /// force-aborting their transactions.
    pub drain_deadline: Duration,
    /// Backoff hint carried by `Busy` responses, milliseconds.
    pub busy_retry_ms: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            read_slice: Duration::from_millis(25),
            idle_deadline: Duration::from_secs(2),
            write_deadline: Duration::from_millis(500),
            drain_deadline: Duration::from_millis(750),
            busy_retry_ms: 25,
        }
    }
}

/// Monotonic serving-layer counters (see [`ServeStats::snapshot`]).
#[derive(Default)]
pub struct ServeStats {
    pub(crate) sessions_opened: AtomicU64,
    pub(crate) sessions_closed: AtomicU64,
    pub(crate) requests: AtomicU64,
    pub(crate) protocol_errors: AtomicU64,
    pub(crate) busy_sheds: AtomicU64,
    pub(crate) evicted_slow: AtomicU64,
    pub(crate) teardown_aborts: AtomicU64,
    pub(crate) drain_forced_aborts: AtomicU64,
    pub(crate) io_errors: AtomicU64,
    pub(crate) injected_ends: AtomicU64,
}

/// Plain-value snapshot of [`ServeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStatsSnapshot {
    /// Sessions accepted.
    pub sessions_opened: u64,
    /// Sessions fully torn down.
    pub sessions_closed: u64,
    /// Frames dispatched as requests.
    pub requests: u64,
    /// Sessions ended for malformed frames/messages.
    pub protocol_errors: u64,
    /// `Begin` requests shed as `Busy`.
    pub busy_sheds: u64,
    /// Sessions evicted for idling past the deadline.
    pub evicted_slow: u64,
    /// Owned transactions aborted by session teardown.
    pub teardown_aborts: u64,
    /// Straggler transactions force-aborted by drain.
    pub drain_forced_aborts: u64,
    /// Sessions ended by transport errors.
    pub io_errors: u64,
    /// Sessions ended by chaos injection (`chaos` feature).
    pub injected_ends: u64,
}

impl ServeStats {
    /// Read every counter (each individually `SeqCst`; the set is not
    /// atomic as a whole).
    pub fn snapshot(&self) -> ServeStatsSnapshot {
        ServeStatsSnapshot {
            sessions_opened: self.sessions_opened.load(Ordering::SeqCst),
            sessions_closed: self.sessions_closed.load(Ordering::SeqCst),
            requests: self.requests.load(Ordering::SeqCst),
            protocol_errors: self.protocol_errors.load(Ordering::SeqCst),
            busy_sheds: self.busy_sheds.load(Ordering::SeqCst),
            evicted_slow: self.evicted_slow.load(Ordering::SeqCst),
            teardown_aborts: self.teardown_aborts.load(Ordering::SeqCst),
            drain_forced_aborts: self.drain_forced_aborts.load(Ordering::SeqCst),
            io_errors: self.io_errors.load(Ordering::SeqCst),
            injected_ends: self.injected_ends.load(Ordering::SeqCst),
        }
    }
}

/// What [`Server::drain`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Sessions alive when drain began.
    pub sessions_at_start: u64,
    /// Straggler transactions force-aborted at the deadline.
    pub forced_aborts: u64,
    /// Whether every session finished inside the drain window.
    pub clean: bool,
}

pub(crate) struct ServerInner {
    pub(crate) db: Arc<Db>,
    pub(crate) cfg: ServeConfig,
    pub(crate) stats: ServeStats,
    pub(crate) draining: AtomicBool,
    next_session: AtomicU64,
    pub(crate) sessions: Mutex<HashMap<u64, Arc<SessionShared>>>,
    pub(crate) indexes: Mutex<HashMap<String, Arc<GistIndex<BtreeExt>>>>,
}

/// The serving front-end. Cheap to clone-share via its inner `Arc`;
/// one instance serves many connections.
#[derive(Clone)]
pub struct Server {
    inner: Arc<ServerInner>,
}

impl Server {
    /// Build a server over `db`.
    pub fn new(db: Arc<Db>, cfg: ServeConfig) -> Self {
        Server {
            inner: Arc::new(ServerInner {
                db,
                cfg,
                stats: ServeStats::default(),
                draining: AtomicBool::new(false),
                next_session: AtomicU64::new(1),
                sessions: Mutex::new(HashMap::new()),
                indexes: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// The underlying database.
    pub fn db(&self) -> &Arc<Db> {
        &self.inner.db
    }

    /// Serving-layer counters.
    pub fn stats(&self) -> ServeStatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Sessions currently registered (open or mid-teardown).
    pub fn session_count(&self) -> usize {
        self.inner.sessions.lock().len()
    }

    /// Whether [`Server::drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Make an already-open index servable (e.g. one created before the
    /// server started, or re-opened after restart). Indexes created via
    /// the wire `CreateIndex` request register themselves.
    pub fn register_index(&self, idx: Arc<GistIndex<BtreeExt>>) {
        self.inner.indexes.lock().insert(idx.name().to_string(), idx);
    }

    /// Serve one connection on its own thread. The handle is for tests
    /// and binaries that want to join; dropping it detaches the session
    /// (teardown still runs — it is part of the session thread).
    pub fn serve_conn(&self, conn: Box<dyn Transport>) -> JoinHandle<()> {
        let id = self.inner.next_session.fetch_add(1, Ordering::SeqCst);
        let shared = SessionShared::new(id);
        self.inner.sessions.lock().insert(id, shared.clone());
        let inner = self.inner.clone();
        thread::spawn(move || session::run(&inner, conn, shared))
    }

    /// Accept TCP connections until drain. The listener is switched to
    /// non-blocking so the loop can observe [`Server::drain`] between
    /// accept attempts.
    pub fn accept_loop(&self, listener: std::net::TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        loop {
            if self.is_draining() {
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nodelay(true);
                    // Sessions do their own deadline slicing; the stream
                    // stays blocking with per-call timeouts. A failure
                    // configuring one accepted socket drops that socket,
                    // not the accept loop — the server keeps listening.
                    if stream.set_nonblocking(false).is_err() {
                        continue;
                    }
                    self.serve_conn(Box::new(TcpConn::new(stream)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Graceful drain: stop admitting new transactions and new
    /// connections, give in-flight sessions up to the configured drain
    /// deadline to finish, then force-abort whatever transactions are
    /// still owned by live sessions (counted). Cleanup is
    /// unconditional: even a chaos injection at the drain point only
    /// gets counted, never skips the abort.
    ///
    /// The sweep cannot race a concurrent `Begin` into leaking a fresh
    /// transaction: `Begin` re-checks the draining flag *under its
    /// session's slot lock*, so a transaction either lands in the slot
    /// before the sweep takes it (and is aborted here) or is refused as
    /// `ShuttingDown`. Drain does not wait for straggler session
    /// *threads* to observe their loss — callers about to tear the
    /// `Db` down should follow with [`Server::await_sessions`].
    pub fn drain(&self) -> DrainReport {
        let inner = &self.inner;
        inner.draining.store(true, Ordering::SeqCst);
        let sessions_at_start = inner.sessions.lock().len() as u64;
        let due = Instant::now() + inner.cfg.drain_deadline;
        while Instant::now() < due {
            if inner.sessions.lock().is_empty() {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        let stragglers: Vec<Arc<SessionShared>> =
            inner.sessions.lock().values().cloned().collect();
        let mut forced = 0u64;
        for s in &stragglers {
            let _ = chaos::point("serve.drain.before_force_abort");
            if let Some(txn) = s.txn.lock().take() {
                let _ = inner.db.end_session_txn(txn);
                forced += 1;
            }
        }
        inner.stats.drain_forced_aborts.fetch_add(forced, Ordering::SeqCst);
        DrainReport { sessions_at_start, forced_aborts: forced, clean: stragglers.is_empty() }
    }

    /// Wait (up to `deadline`) for every session thread to finish its
    /// teardown, i.e. for the session registry to empty. Sessions are
    /// registered *before* their thread spawns and deregistered as the
    /// last `Db`-touching step of teardown, so a `true` return means no
    /// session is still dispatching against the engine — the guarantee
    /// a caller needs between [`Server::drain`] and `Db::shutdown`.
    /// Returns `false` if stragglers remain at the deadline.
    pub fn await_sessions(&self, deadline: Duration) -> bool {
        let due = Instant::now() + deadline;
        while !self.inner.sessions.lock().is_empty() {
            if Instant::now() >= due {
                return false;
            }
            thread::sleep(Duration::from_millis(5));
        }
        true
    }
}
