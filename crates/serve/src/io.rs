//! Deadline-wrapped transport layer — the **only** file in this crate
//! allowed to touch raw `read`/`write` calls (the `no-unbounded-read`
//! lint rule pins that; everything else goes through [`Transport`]).
//!
//! Two concrete transports: [`TcpConn`] for the real server binary and
//! [`PipeConn`], an in-memory duplex byte pipe for tests and the bench
//! harness (deterministic, no ports, and `drop` behaves like a peer
//! reset — exactly what the disconnect-storm drill needs).

use std::collections::VecDeque;
use std::io;
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// Byte transport with bounded blocking. Every call carries an explicit
/// deadline; nothing in the serving layer may park on a peer forever.
pub trait Transport: Send {
    /// Read up to `buf.len()` bytes. `Ok(0)` means clean EOF; an error
    /// of kind [`io::ErrorKind::TimedOut`] means the deadline slice
    /// expired with no data (the caller decides whether that is idle
    /// time or eviction time).
    fn recv(&mut self, buf: &mut [u8], deadline: Duration) -> io::Result<usize>;

    /// Write the whole buffer within `deadline`.
    fn send(&mut self, bytes: &[u8], deadline: Duration) -> io::Result<()>;

    /// Close both directions; the peer observes EOF / broken pipe.
    fn close(&mut self);
}

// ---------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------

/// [`Transport`] over a [`TcpStream`], deadlines mapped onto socket
/// read/write timeouts.
pub struct TcpConn {
    stream: TcpStream,
}

impl TcpConn {
    /// Wrap an accepted or connected stream.
    pub fn new(stream: TcpStream) -> Self {
        TcpConn { stream }
    }
}

impl Transport for TcpConn {
    fn recv(&mut self, buf: &mut [u8], deadline: Duration) -> io::Result<usize> {
        use std::io::Read;
        // A zero Duration means "no timeout" to the socket API; clamp up.
        self.stream.set_read_timeout(Some(deadline.max(Duration::from_millis(1))))?;
        match self.stream.read(buf) {
            // Both kinds mean "timeout" depending on platform; normalize.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                Err(io::Error::new(io::ErrorKind::TimedOut, "read deadline"))
            }
            other => other,
        }
    }

    fn send(&mut self, bytes: &[u8], deadline: Duration) -> io::Result<()> {
        use std::io::Write;
        self.stream.set_write_timeout(Some(deadline.max(Duration::from_millis(1))))?;
        match self.stream.write_all(bytes) {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                Err(io::Error::new(io::ErrorKind::TimedOut, "write deadline"))
            }
            other => other,
        }
    }

    fn close(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

// ---------------------------------------------------------------------
// In-memory pipe
// ---------------------------------------------------------------------

struct ChanState {
    buf: VecDeque<u8>,
    closed: bool,
}

/// One direction of the duplex pipe.
struct Chan {
    state: Mutex<ChanState>,
    cv: Condvar,
}

impl Chan {
    fn new() -> Arc<Self> {
        Arc::new(Chan {
            state: Mutex::new(ChanState { buf: VecDeque::new(), closed: false }),
            cv: Condvar::new(),
        })
    }

    fn close(&self) {
        self.state.lock().closed = true;
        self.cv.notify_all();
    }
}

/// One end of an in-memory duplex connection (see [`pipe_pair`]).
/// Dropping an end closes both directions, so the peer sees EOF on
/// reads and broken pipe on writes — a faithful stand-in for a client
/// process dying mid-transaction.
pub struct PipeConn {
    rx: Arc<Chan>,
    tx: Arc<Chan>,
}

/// Build a connected pair of pipe ends.
pub fn pipe_pair() -> (PipeConn, PipeConn) {
    let a = Chan::new();
    let b = Chan::new();
    (
        PipeConn { rx: a.clone(), tx: b.clone() },
        PipeConn { rx: b, tx: a },
    )
}

impl Transport for PipeConn {
    fn recv(&mut self, buf: &mut [u8], deadline: Duration) -> io::Result<usize> {
        let due = Instant::now() + deadline;
        let mut st = self.rx.state.lock();
        while st.buf.is_empty() && !st.closed {
            if self.rx.cv.wait_until(&mut st, due).timed_out() && st.buf.is_empty() {
                if st.closed {
                    break;
                }
                return Err(io::Error::new(io::ErrorKind::TimedOut, "read deadline"));
            }
        }
        if st.buf.is_empty() {
            return Ok(0); // closed and drained: EOF
        }
        let n = buf.len().min(st.buf.len());
        for slot in buf.iter_mut().take(n) {
            *slot = st.buf.pop_front().unwrap_or_default();
        }
        Ok(n)
    }

    fn send(&mut self, bytes: &[u8], _deadline: Duration) -> io::Result<()> {
        let mut st = self.tx.state.lock();
        if st.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"));
        }
        st.buf.extend(bytes);
        self.tx.cv.notify_all();
        Ok(())
    }

    fn close(&mut self) {
        self.rx.close();
        self.tx.close();
    }
}

impl Drop for PipeConn {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_roundtrip_and_eof() {
        let (mut a, mut b) = pipe_pair();
        a.send(b"abc", Duration::from_millis(50)).unwrap();
        let mut buf = [0u8; 8];
        let n = b.recv(&mut buf, Duration::from_millis(50)).unwrap();
        assert_eq!(&buf[..n], b"abc");
        drop(a);
        assert_eq!(b.recv(&mut buf, Duration::from_millis(50)).unwrap(), 0, "EOF after drop");
        assert_eq!(
            b.send(b"x", Duration::from_millis(50)).unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
    }

    #[test]
    fn pipe_recv_times_out_without_data() {
        let (_a, mut b) = pipe_pair();
        let mut buf = [0u8; 8];
        let err = b.recv(&mut buf, Duration::from_millis(20)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn pipe_drains_buffered_bytes_after_close() {
        let (mut a, mut b) = pipe_pair();
        a.send(b"tail", Duration::from_millis(50)).unwrap();
        drop(a);
        let mut buf = [0u8; 2];
        // Buffered bytes survive the close; EOF only once drained.
        assert_eq!(b.recv(&mut buf, Duration::from_millis(50)).unwrap(), 2);
        assert_eq!(b.recv(&mut buf, Duration::from_millis(50)).unwrap(), 2);
        assert_eq!(b.recv(&mut buf, Duration::from_millis(50)).unwrap(), 0);
    }
}
