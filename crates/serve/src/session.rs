//! Per-connection session loop: deadline-sliced reads, frame pump,
//! request dispatch, and the teardown that makes a vanished client
//! indistinguishable (resource-wise) from one that aborted politely.

use std::io;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use gist_am::{BtreeExt, I64Query};
use gist_core::{GistError, GistIndex, IndexOptions};
use gist_pagestore::Rid;
use gist_txn::TxnError;
use gist_wal::TxnId;
use gist_wire::{
    encode_frame, encoded_row_size, ErrorCode, FrameDecoder, Request, Response, MAX_ROWS,
    ROWS_BYTE_BUDGET,
};
use parking_lot::Mutex;

use crate::chaos;
use crate::io::Transport;
use crate::ServerInner;

/// State a session shares with the server registry: the drain sweep
/// must be able to force-abort an owned transaction from outside the
/// session thread. `Option::take` under the mutex is the exactly-once
/// handoff — whichever of {session teardown, drain sweep, dispatch}
/// takes the `TxnId` owns the abort; everyone else sees `None`.
pub(crate) struct SessionShared {
    pub(crate) id: u64,
    pub(crate) txn: Mutex<Option<TxnId>>,
}

impl SessionShared {
    pub(crate) fn new(id: u64) -> Arc<Self> {
        Arc::new(SessionShared { id, txn: Mutex::new(None) })
    }
}

/// Why a session loop ended (stats classification).
enum SessionEnd {
    /// Peer closed cleanly.
    Eof,
    /// Transport error (reset, torn write, ...).
    Io,
    /// Malformed frame or message; error response sent best-effort.
    Protocol,
    /// Idle past the deadline; slow-client eviction.
    Evicted,
    /// Drain completed for this session (no owned transaction left).
    Drained,
    /// A chaos point killed the session mid-path.
    Injected,
}

/// Run one session to completion, then tear it down. This is the only
/// place a session's resources are released, and it runs no matter how
/// `serve_loop` ended — EOF, reset, protocol abuse, eviction, chaos.
pub(crate) fn run(inner: &Arc<ServerInner>, mut conn: Box<dyn Transport>, shared: Arc<SessionShared>) {
    inner.stats.sessions_opened.fetch_add(1, Ordering::SeqCst);
    let end = serve_loop(inner, conn.as_mut(), &shared);
    let s = &inner.stats;
    match end {
        SessionEnd::Eof | SessionEnd::Drained => {}
        SessionEnd::Io => {
            s.io_errors.fetch_add(1, Ordering::SeqCst);
        }
        SessionEnd::Protocol => {} // counted where detected
        SessionEnd::Evicted => {} // counted where detected
        SessionEnd::Injected => {
            s.injected_ends.fetch_add(1, Ordering::SeqCst);
        }
    }
    // Teardown: abort the owned transaction (if the drain sweep or a
    // failing dispatch hasn't already taken it). The abort funnels
    // through the transaction table's single removal and its
    // `TxnEndObserver` notification, so locks, predicates and the
    // admission credit release exactly once.
    if let Some(txn) = shared.txn.lock().take() {
        let _ = inner.db.end_session_txn(txn);
        s.teardown_aborts.fetch_add(1, Ordering::SeqCst);
    }
    conn.close();
    inner.sessions.lock().remove(&shared.id);
    s.sessions_closed.fetch_add(1, Ordering::SeqCst);
}

fn serve_loop(inner: &Arc<ServerInner>, conn: &mut dyn Transport, shared: &SessionShared) -> SessionEnd {
    if chaos::point("serve.session.after_accept").is_err() {
        return SessionEnd::Injected;
    }
    let cfg = &inner.cfg;
    let mut dec = FrameDecoder::new();
    let mut buf = vec![0u8; 4096];
    let mut last_activity = Instant::now();
    loop {
        // Pump every complete frame already buffered before reading more.
        loop {
            let body = match dec.next_frame() {
                Ok(Some(body)) => body,
                Ok(None) => break,
                Err(e) => {
                    // Stream-level garbage: say why, then hang up (the
                    // decoder is poisoned; there is no resync).
                    inner.stats.protocol_errors.fetch_add(1, Ordering::SeqCst);
                    let _ = reply(inner, conn, &protocol_error(&e.to_string()));
                    return SessionEnd::Protocol;
                }
            };
            last_activity = Instant::now();
            inner.stats.requests.fetch_add(1, Ordering::SeqCst);
            let req = match Request::decode(&body) {
                Ok(req) => req,
                Err(e) => {
                    inner.stats.protocol_errors.fetch_add(1, Ordering::SeqCst);
                    let _ = reply(inner, conn, &protocol_error(&e.to_string()));
                    return SessionEnd::Protocol;
                }
            };
            if chaos::point("serve.session.before_dispatch").is_err() {
                return SessionEnd::Injected;
            }
            let rsp = dispatch(inner, shared, req);
            match reply(inner, conn, &rsp) {
                Ok(()) => {}
                Err(end) => return end,
            }
        }
        // Drain check between pump and read: buffered requests were
        // answered (liveness holds through the flag), but once this
        // session owns no transaction it leaves before blocking for
        // more input — a chatty client cannot pin a draining server,
        // and a session whose transaction the drain sweep force-aborted
        // exits on its next pass instead of idling to the deadline.
        if inner.draining.load(Ordering::SeqCst) && shared.txn.lock().is_none() {
            return SessionEnd::Drained;
        }
        match conn.recv(&mut buf, cfg.read_slice) {
            Ok(0) => return SessionEnd::Eof,
            Ok(n) => {
                last_activity = Instant::now();
                dec.feed(&buf[..n]);
            }
            Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                // Idle slice: where slow-client eviction acts.
                if last_activity.elapsed() >= cfg.idle_deadline {
                    inner.stats.evicted_slow.fetch_add(1, Ordering::SeqCst);
                    return SessionEnd::Evicted;
                }
            }
            Err(_) => return SessionEnd::Io,
        }
    }
}

fn protocol_error(msg: &str) -> Response {
    Response::Error { code: ErrorCode::Protocol, message: msg.to_string() }
}

fn reply(inner: &ServerInner, conn: &mut dyn Transport, rsp: &Response) -> Result<(), SessionEnd> {
    if chaos::point("serve.session.before_reply").is_err() {
        return Err(SessionEnd::Injected);
    }
    // Every response encoder bounds its body below MAX_FRAME — `Rows`
    // by the frame byte budget (with its `truncated` flag), the other
    // collections by entry caps — so `None` here would be a server bug
    // and is treated as an I/O-level session end rather than a panic.
    let Some(frame) = encode_frame(&rsp.encode()) else {
        return Err(SessionEnd::Io);
    };
    conn.send(&frame, inner.cfg.write_deadline).map_err(|_| SessionEnd::Io)
}

/// Map an engine error to its wire classification.
fn map_code(e: &GistError) -> ErrorCode {
    match e {
        GistError::UniqueViolation => ErrorCode::UniqueViolation,
        GistError::NotFound => ErrorCode::NotFound,
        // Deadlock victim or lock timeout: transaction must be aborted
        // and retried — dispatch aborts it before replying.
        GistError::Lock(_) => ErrorCode::Retry,
        GistError::Txn(TxnError::AbortedByWatchdog(_)) => ErrorCode::Retry,
        // The transaction vanished under us: drain or eviction
        // force-aborted it between dispatch taking the id and the
        // engine looking it up.
        GistError::Txn(TxnError::NotActive(_)) => ErrorCode::Aborted,
        GistError::Txn(_) => ErrorCode::Retry,
        GistError::StorageFailed(_) => ErrorCode::ReadOnly,
        _ => ErrorCode::Internal,
    }
}

/// Whether an engine error leaves the transaction unusable, requiring
/// dispatch to abort it before replying. Benign logical failures
/// (unique violation holds an S-lock on the duplicate per §8; NotFound
/// is just a miss) leave the transaction open.
fn fatal_to_txn(e: &GistError) -> bool {
    !matches!(e, GistError::UniqueViolation | GistError::NotFound)
}

fn error_rsp(e: &GistError) -> Response {
    Response::Error { code: map_code(e), message: e.to_string() }
}

fn dispatch(inner: &Arc<ServerInner>, shared: &SessionShared, req: Request) -> Response {
    let db = &inner.db;
    match req {
        Request::Ping => Response::Pong,
        Request::Begin => {
            let mut slot = shared.txn.lock();
            // Checked *under the slot lock*: drain sets the flag before
            // sweeping slots, so either this Begin installs its txn
            // before the sweep reads the slot (the sweep aborts it), or
            // it acquires the lock after the sweep and observes the
            // flag here. No interleaving lets a fresh transaction slip
            // past the force-abort unseen.
            if inner.draining.load(Ordering::SeqCst) {
                return Response::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "server is draining".to_string(),
                };
            }
            if slot.is_some() {
                return Response::Error {
                    code: ErrorCode::TxnAlreadyOpen,
                    message: "session already owns a transaction".to_string(),
                };
            }
            match db.try_begin() {
                Ok(txn) => {
                    *slot = Some(txn);
                    Response::Begun
                }
                Err(GistError::Overloaded) => {
                    inner.stats.busy_sheds.fetch_add(1, Ordering::SeqCst);
                    Response::Busy { retry_after_ms: inner.cfg.busy_retry_ms }
                }
                Err(e) => error_rsp(&e),
            }
        }
        Request::Commit => match shared.txn.lock().take() {
            None => txn_required(),
            Some(txn) => match db.commit(txn) {
                Ok(()) => Response::Ok,
                Err(e) => {
                    // A failed commit may leave the transaction active
                    // (e.g. injected before the decision); make sure it
                    // is gone before reporting.
                    let _ = db.end_session_txn(txn);
                    error_rsp(&e)
                }
            },
        },
        Request::Abort => match shared.txn.lock().take() {
            None => txn_required(),
            Some(txn) => match db.end_session_txn(txn) {
                Ok(()) => Response::Ok,
                Err(e) => error_rsp(&e),
            },
        },
        Request::CreateIndex { name, unique } => {
            let mut indexes = inner.indexes.lock();
            if indexes.contains_key(&name) {
                return Response::Error {
                    code: ErrorCode::IndexExists,
                    message: format!("index {name:?} already exists"),
                };
            }
            match GistIndex::create(db.clone(), &name, BtreeExt, IndexOptions { unique }) {
                Ok(handle) => {
                    indexes.insert(name, handle);
                    Response::Ok
                }
                Err(e) => error_rsp(&e),
            }
        }
        Request::Insert { index, key, payload } => {
            data_op(inner, shared, &index, |txn, idx| {
                let rid = db.heap().insert(&payload).map_err(GistError::from)?;
                idx.insert(txn, &key, rid)?;
                Ok(Response::Ok)
            })
        }
        Request::Delete { index, key } => {
            data_op(inner, shared, &index, |txn, idx| {
                let hits = idx.search(txn, &I64Query::eq(key))?;
                if hits.is_empty() {
                    return Err(GistError::NotFound);
                }
                for (k, rid) in hits {
                    idx.delete(txn, &k, rid)?;
                }
                Ok(Response::Ok)
            })
        }
        Request::Get { index, key } => {
            data_op(inner, shared, &index, |txn, idx| {
                rows_rsp(db, idx.search(txn, &I64Query::eq(key))?)
            })
        }
        Request::Range { index, lo, hi } => {
            data_op(inner, shared, &index, |txn, idx| {
                rows_rsp(db, idx.search(txn, &I64Query::range(lo, hi))?)
            })
        }
        Request::Health => {
            let state = db.health();
            Response::Health {
                label: state.label().to_string(),
                reasons: state.reasons().to_vec(),
            }
        }
        Request::Stats => Response::Stats(stats_entries(inner)),
    }
}

fn txn_required() -> Response {
    Response::Error {
        code: ErrorCode::TxnRequired,
        message: "operation requires an open transaction (send Begin)".to_string(),
    }
}

/// Shared shape of the four data operations: resolve the index, read
/// the session transaction, run the op, and on an error that poisons
/// the transaction abort it *before* replying so the client's `Retry`
/// guidance ("begin a new transaction") is already true when the
/// response hits the wire.
fn data_op(
    inner: &ServerInner,
    shared: &SessionShared,
    index: &str,
    f: impl FnOnce(TxnId, &Arc<GistIndex<BtreeExt>>) -> Result<Response, GistError>,
) -> Response {
    let Some(idx) = inner.indexes.lock().get(index).cloned() else {
        return Response::Error {
            code: ErrorCode::NoSuchIndex,
            message: format!("no index named {index:?}"),
        };
    };
    let Some(txn) = *shared.txn.lock() else {
        return txn_required();
    };
    match f(txn, &idx) {
        Ok(rsp) => rsp,
        Err(e) => {
            if fatal_to_txn(&e) {
                if let Some(txn) = shared.txn.lock().take() {
                    let _ = inner.db.end_session_txn(txn);
                }
            }
            error_rsp(&e)
        }
    }
}

fn rows_rsp(db: &gist_core::Db, hits: Vec<(i64, Rid)>) -> Result<Response, GistError> {
    // Bound the result by the wire caps here, where rows are dropped —
    // row count and the frame byte budget — so the `truncated` flag the
    // client sees is authoritative and a legal oversized result set can
    // never produce a frame `encode_frame` would refuse (which used to
    // kill the session for a valid query).
    let mut rows = Vec::with_capacity(hits.len().min(MAX_ROWS));
    let mut used = 0usize;
    let mut truncated = false;
    for (key, rid) in hits {
        let payload = db.heap().get(rid).map_err(GistError::from)?.unwrap_or_default();
        let sz = encoded_row_size(payload.len());
        if rows.len() >= MAX_ROWS || used + sz > ROWS_BYTE_BUDGET {
            truncated = true;
            break;
        }
        used += sz;
        rows.push((key, payload));
    }
    Ok(Response::Rows { rows, truncated })
}

/// Flatten the engine's robustness counters plus this server's own
/// into the wire `Stats` shape. Curated, not exhaustive: the counters
/// an operator needs to explain a degraded verdict.
fn stats_entries(inner: &ServerInner) -> Vec<(String, i64)> {
    let rs = inner.db.robustness_stats();
    let ss = inner.stats.snapshot();
    let clamp = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
    vec![
        ("admission_in_flight".to_string(), clamp(rs.admission.in_flight)),
        ("admission_capacity".to_string(), clamp(rs.admission.capacity)),
        ("admission_shed".to_string(), clamp(rs.admission.shed)),
        ("admission_forced".to_string(), clamp(rs.admission.forced)),
        ("wal_bp_backlog".to_string(), clamp(rs.wal_bp_backlog)),
        ("wal_bp_stalls".to_string(), clamp(rs.wal_bp_stalls)),
        ("txn_retries".to_string(), clamp(rs.txn_retries)),
        ("watchdog_aborts".to_string(), clamp(rs.watchdog_aborts)),
        ("lock_deadlocks".to_string(), clamp(rs.lock_deadlocks)),
        ("epoch_pending".to_string(), clamp(rs.epoch_pending)),
        ("pool_poisoned".to_string(), i64::from(rs.pool_poisoned)),
        ("serve_sessions_opened".to_string(), clamp(ss.sessions_opened)),
        ("serve_sessions_closed".to_string(), clamp(ss.sessions_closed)),
        ("serve_requests".to_string(), clamp(ss.requests)),
        ("serve_protocol_errors".to_string(), clamp(ss.protocol_errors)),
        ("serve_busy_sheds".to_string(), clamp(ss.busy_sheds)),
        ("serve_evicted_slow".to_string(), clamp(ss.evicted_slow)),
        ("serve_teardown_aborts".to_string(), clamp(ss.teardown_aborts)),
        ("serve_drain_forced_aborts".to_string(), clamp(ss.drain_forced_aborts)),
        ("serve_io_errors".to_string(), clamp(ss.io_errors)),
    ]
}
