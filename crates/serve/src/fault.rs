//! Deterministic wire-fault injection, mirroring `FaultStore` in
//! `gist-pagestore`: faults are scheduled by **operation index** (the
//! Nth recv / Nth send on this connection), so a test can say "tear the
//! third write" and get exactly that, every run.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::io::Transport;

/// Which transport direction an entry addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// The Nth [`Transport::recv`] call.
    Recv,
    /// The Nth [`Transport::send`] call.
    Send,
}

/// What to do when a scheduled operation index comes up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Recv only: deliver at most this many bytes (a short read; the
    /// frame decoder must reassemble).
    ShortRead(usize),
    /// Send only: put this many prefix bytes on the wire, then fail
    /// with `ConnectionReset` — a torn write mid-frame.
    TornWrite(usize),
    /// Fail immediately with `ConnectionReset`.
    Reset,
    /// Sleep this many milliseconds first, then perform the operation
    /// normally (drives deadline/eviction paths).
    Stall(u64),
}

/// Counters for faults actually delivered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Short reads delivered.
    pub short_reads: u64,
    /// Torn writes delivered.
    pub torn_writes: u64,
    /// Resets delivered.
    pub resets: u64,
    /// Stalls delivered.
    pub stalls: u64,
}

/// Shared fault schedule; clone the `Arc` into the test and hand the
/// transport to the server.
pub struct FaultPlan {
    armed: AtomicBool,
    schedule: Mutex<HashMap<(IoOp, u64), FaultKind>>,
    short_reads: AtomicU64,
    torn_writes: AtomicU64,
    resets: AtomicU64,
    stalls: AtomicU64,
}

impl FaultPlan {
    /// Fresh, disarmed plan.
    pub fn new() -> Arc<Self> {
        Arc::new(FaultPlan {
            armed: AtomicBool::new(false),
            schedule: Mutex::new(HashMap::new()),
            short_reads: AtomicU64::new(0),
            torn_writes: AtomicU64::new(0),
            resets: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
        })
    }

    /// Schedule `kind` for the `index`-th operation of `op` (0-based,
    /// counted per transport).
    pub fn set(&self, op: IoOp, index: u64, kind: FaultKind) {
        self.schedule.lock().insert((op, index), kind);
    }

    /// Start delivering scheduled faults.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Stop delivering; the remaining schedule is kept.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Faults delivered so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            short_reads: self.short_reads.load(Ordering::SeqCst),
            torn_writes: self.torn_writes.load(Ordering::SeqCst),
            resets: self.resets.load(Ordering::SeqCst),
            stalls: self.stalls.load(Ordering::SeqCst),
        }
    }

    fn take(&self, op: IoOp, index: u64) -> Option<FaultKind> {
        if !self.armed.load(Ordering::SeqCst) {
            return None;
        }
        let kind = self.schedule.lock().remove(&(op, index))?;
        let counter = match kind {
            FaultKind::ShortRead(_) => &self.short_reads,
            FaultKind::TornWrite(_) => &self.torn_writes,
            FaultKind::Reset => &self.resets,
            FaultKind::Stall(_) => &self.stalls,
        };
        counter.fetch_add(1, Ordering::SeqCst);
        Some(kind)
    }
}

fn reset_err() -> io::Error {
    io::Error::new(io::ErrorKind::ConnectionReset, "injected reset")
}

/// [`Transport`] wrapper applying a [`FaultPlan`] to an inner transport.
pub struct FaultTransport {
    inner: Box<dyn Transport>,
    plan: Arc<FaultPlan>,
    recvs: u64,
    sends: u64,
}

impl FaultTransport {
    /// Wrap `inner` under `plan`'s schedule.
    pub fn new(inner: Box<dyn Transport>, plan: Arc<FaultPlan>) -> Self {
        FaultTransport { inner, plan, recvs: 0, sends: 0 }
    }
}

impl Transport for FaultTransport {
    fn recv(&mut self, buf: &mut [u8], deadline: Duration) -> io::Result<usize> {
        let idx = self.recvs;
        self.recvs += 1;
        match self.plan.take(IoOp::Recv, idx) {
            Some(FaultKind::Reset) => Err(reset_err()),
            Some(FaultKind::Stall(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                self.inner.recv(buf, deadline)
            }
            Some(FaultKind::ShortRead(n)) => {
                let cap = n.clamp(1, buf.len().max(1)).min(buf.len());
                self.inner.recv(&mut buf[..cap], deadline)
            }
            // TornWrite on the recv side is meaningless; ignore it.
            Some(FaultKind::TornWrite(_)) | None => self.inner.recv(buf, deadline),
        }
    }

    fn send(&mut self, bytes: &[u8], deadline: Duration) -> io::Result<()> {
        let idx = self.sends;
        self.sends += 1;
        match self.plan.take(IoOp::Send, idx) {
            Some(FaultKind::Reset) => Err(reset_err()),
            Some(FaultKind::Stall(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                self.inner.send(bytes, deadline)
            }
            Some(FaultKind::TornWrite(keep)) => {
                // Prefix bytes reach the peer, then the connection dies:
                // the peer's frame decoder is left holding a partial frame.
                self.inner.send(&bytes[..keep.min(bytes.len())], deadline)?;
                Err(reset_err())
            }
            Some(FaultKind::ShortRead(_)) | None => self.inner.send(bytes, deadline),
        }
    }

    fn close(&mut self) {
        self.inner.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::pipe_pair;

    #[test]
    fn scheduled_faults_fire_by_op_index() {
        let (server_end, mut client_end) = pipe_pair();
        let plan = FaultPlan::new();
        plan.set(IoOp::Send, 1, FaultKind::TornWrite(2));
        plan.set(IoOp::Recv, 0, FaultKind::ShortRead(1));
        plan.arm();
        let mut t = FaultTransport::new(Box::new(server_end), plan.clone());
        let d = Duration::from_millis(50);

        // Send 0 is clean; send 1 tears after 2 bytes.
        t.send(b"abcd", d).unwrap();
        assert_eq!(t.send(b"wxyz", d).unwrap_err().kind(), io::ErrorKind::ConnectionReset);
        let mut buf = [0u8; 16];
        let n = client_end.recv(&mut buf, d).unwrap();
        assert_eq!(&buf[..n], b"abcdwx", "peer saw full frame 0 + torn prefix of 1");

        // Recv 0 is capped at one byte even though more is buffered.
        client_end.send(b"hello", d).unwrap();
        assert_eq!(t.recv(&mut buf, d).unwrap(), 1);
        assert_eq!(t.recv(&mut buf, d).unwrap(), 4, "recv 1 unscheduled, sees the rest");

        let s = plan.stats();
        assert_eq!(s.torn_writes, 1);
        assert_eq!(s.short_reads, 1);
    }

    #[test]
    fn disarmed_plan_is_inert() {
        let (server_end, _client_end) = pipe_pair();
        let plan = FaultPlan::new();
        plan.set(IoOp::Send, 0, FaultKind::Reset);
        let mut t = FaultTransport::new(Box::new(server_end), plan.clone());
        t.send(b"ok", Duration::from_millis(50)).unwrap();
        assert_eq!(plan.stats(), FaultStats::default());
    }
}
