//! A minimal blocking client: one request, one response, bounded by a
//! call deadline. Used by the test harness, the bench storm, and the
//! `gist-serve` binary's self-check; real clients only need to speak
//! `gist-wire`, not this type.

use std::io;
use std::time::{Duration, Instant};

use gist_wire::{encode_frame, FrameDecoder, Request, Response, WireError};

use crate::io::Transport;

fn wire_to_io(e: WireError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

/// Blocking request/response client over any [`Transport`].
pub struct Client {
    conn: Box<dyn Transport>,
    dec: FrameDecoder,
    deadline: Duration,
}

impl Client {
    /// Wrap `conn`; every [`Client::call`] is bounded by `deadline`.
    pub fn new(conn: Box<dyn Transport>, deadline: Duration) -> Self {
        Client { conn, dec: FrameDecoder::new(), deadline }
    }

    /// Send `req` and block for its response (or the deadline).
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        let frame = encode_frame(&req.encode())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "oversized request"))?;
        self.conn.send(&frame, self.deadline)?;
        let start = Instant::now();
        let mut buf = [0u8; 4096];
        loop {
            if let Some(body) = self.dec.next_frame().map_err(wire_to_io)? {
                return Response::decode(&body).map_err(wire_to_io);
            }
            let left = self
                .deadline
                .checked_sub(start.elapsed())
                .filter(|d| !d.is_zero())
                .ok_or_else(|| io::Error::new(io::ErrorKind::TimedOut, "call deadline"))?;
            match self.conn.recv(&mut buf, left)? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed mid-call",
                    ))
                }
                n => self.dec.feed(&buf[..n]),
            }
        }
    }

    /// Close the connection.
    pub fn close(mut self) {
        self.conn.close();
    }
}
