//! Named crash points in the serving path (`chaos` feature), same
//! contract as `gist-core`'s shim: disarmed points cost one relaxed
//! atomic load; without the feature they compile to `Ok(())`. An
//! injected error terminates the session abruptly — exactly the
//! "process boundary failed mid-request" shape the teardown sweep in
//! `tests/serve.rs` drives through every point.

#[cfg(feature = "chaos")]
#[inline]
pub(crate) fn point(name: &'static str) -> Result<(), &'static str> {
    gist_chaos::point(name).map_err(|e| e.0)
}

#[cfg(not(feature = "chaos"))]
#[inline(always)]
pub(crate) fn point(_name: &'static str) -> Result<(), &'static str> {
    Ok(())
}
