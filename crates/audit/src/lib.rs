#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # gist-audit — dynamic latch/lock discipline analyzer
//!
//! The paper's concurrency argument (§5) rests on disciplines the code
//! itself nowhere enforces:
//!
//! 1. **Latch count** — an operation holds at most *one* latch at a time;
//!    two (or, inside a split's atomic unit, a short bottom-up chain) are
//!    legal only in blessed parent/child windows, which the instrumented
//!    code marks with [`enter_scope`] / [`enter_scope_rel`].
//! 2. **No latch across I/O** — a thread must not hold a latch on one
//!    page while a *different* page is read from or written to the store
//!    (the `LoadPending` window included). The blessed parent/child
//!    scopes may opt out (the split path may fault the parent in, a
//!    bounded exception the paper's ARIES/IM heritage shares).
//! 3. **No latch while blocking on a record lock** — the insert/scan
//!    coupling steps acquire record (RID) locks *before* latches are
//!    released only when the acquisition cannot block; a blocking wait
//!    must happen latch-free (§5: re-push the node, drop the latch,
//!    wait, re-visit).
//! 4. **NSN sanity** — node sequence numbers drawn from a tree-global
//!    counter are never reissued (a duplicate means the counter
//!    regressed, which would break split detection).
//! 5. **Latch-order acyclicity** — blocking latch acquisitions made
//!    while other latches are held contribute edges to a cross-thread
//!    acquisition-order graph; a cycle is a potential deadlock.
//!    Try-acquisitions (node deletion's deliberate parent→child probe)
//!    are excluded, exactly because they cannot deadlock.
//! 6. **Shard-lock ordering** — the striped synchronization tables
//!    (`gist-striped`) permit holding several shards of one table only
//!    in strictly ascending index order; a same-or-lower acquisition
//!    while a shard of the same table is held is deadlock-capable and
//!    reported by the `shard-order` rule.
//!
//! The analyzer keeps a **thread-local shadow state** (held latches,
//! active allowance scopes) plus small global registries (order graph,
//! NSN sets, counters). Instrumented crates call the hooks through
//! no-op shims unless built with their `latch-audit` feature, so release
//! hot paths are untouched.
//!
//! A violation **panics by default** (tests fail loudly, with the
//! acquisition backtrace). Deliberate-fault harnesses wrap the faulty
//! code in [`capture`], which collects [`Violation`]s on the calling
//! thread instead of panicking.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{LazyLock, Mutex, MutexGuard};

pub mod mc;
pub mod mutation;

/// One reported discipline violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which rule fired (e.g. `"latch-count"`, `"latch-across-io"`).
    pub rule: &'static str,
    /// Human-readable description with the offending state.
    pub message: String,
    /// Backtrace captured where the violation was detected.
    pub backtrace: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.rule, self.message)
    }
}

#[derive(Debug, Clone, Copy)]
struct HeldLatch {
    pool: u64,
    page: u64,
    exclusive: bool,
}

#[derive(Debug, Clone, Copy)]
struct Scope {
    name: &'static str,
    allowance: usize,
    io_ok: bool,
    lock_wait_ok: bool,
}

#[derive(Default)]
struct ThreadState {
    held: Vec<HeldLatch>,
    scopes: Vec<Scope>,
    /// Striped-table shard mutexes held: `(layer, shard index)`.
    shard_locks: Vec<(u64, usize)>,
    /// Open optimistic read sections: `(pool, page)` per live
    /// `OptimisticReadGuard` on this thread.
    optimistic: Vec<(u64, u64)>,
    /// Live epoch-reclamation pins (nested guards counted individually).
    epoch_pins: usize,
    capture: Option<Vec<Violation>>,
}

thread_local! {
    static TS: RefCell<ThreadState> = RefCell::new(ThreadState::default());
}

/// Global counters, exposed through [`summary`].
#[derive(Debug, Default)]
struct Stats {
    latch_acquires: AtomicU64,
    max_held: AtomicU64,
    io_events: AtomicU64,
    lock_waits: AtomicU64,
    nsn_draws: AtomicU64,
    shard_acquires: AtomicU64,
    optimistic_enters: AtomicU64,
    epoch_pins: AtomicU64,
    violations: AtomicU64,
}

static STATS: Stats = Stats {
    latch_acquires: AtomicU64::new(0),
    max_held: AtomicU64::new(0),
    io_events: AtomicU64::new(0),
    lock_waits: AtomicU64::new(0),
    nsn_draws: AtomicU64::new(0),
    shard_acquires: AtomicU64::new(0),
    optimistic_enters: AtomicU64::new(0),
    epoch_pins: AtomicU64::new(0),
    violations: AtomicU64::new(0),
};

static IDS: AtomicU64 = AtomicU64::new(0);

/// Latch-acquisition order graph: `(pool, page) → set of (pool, page)`
/// acquired (blocking) while the key was held.
type OrderGraph = HashMap<(u64, u64), HashSet<(u64, u64)>>;

static ORDER: LazyLock<Mutex<OrderGraph>> = LazyLock::new(|| Mutex::new(HashMap::new()));

/// NSN values drawn per counter instance (uniqueness check).
static NSN_SEEN: LazyLock<Mutex<HashMap<u64, HashSet<u64>>>> =
    LazyLock::new(|| Mutex::new(HashMap::new()));

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // The audit layer must not hide evidence behind poisoning: a panic
    // in one thread (often an audit violation itself) must not cascade
    // into unrelated lock failures.
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Allocate a fresh instance id for a buffer pool or NSN counter, so
/// events from independent databases (e.g. parallel tests in one
/// process) never alias in the global registries.
pub fn new_instance_id() -> u64 {
    IDS.fetch_add(1, Ordering::Relaxed) + 1
}

fn effective(scopes: &[Scope]) -> Scope {
    let mut eff =
        Scope { name: "(default)", allowance: 1, io_ok: false, lock_wait_ok: false };
    for s in scopes {
        if s.allowance > eff.allowance {
            eff.allowance = s.allowance;
            eff.name = s.name;
        }
        eff.io_ok |= s.io_ok;
        eff.lock_wait_ok |= s.lock_wait_ok;
    }
    eff
}

fn report(ts: &mut ThreadState, rule: &'static str, message: String) {
    STATS.violations.fetch_add(1, Ordering::Relaxed);
    let backtrace = std::backtrace::Backtrace::force_capture().to_string();
    match &mut ts.capture {
        Some(sink) => sink.push(Violation { rule, message, backtrace }),
        None => panic!("gist-audit[{rule}]: {message}\nacquisition backtrace:\n{backtrace}"),
    }
}

fn held_desc(held: &[HeldLatch]) -> String {
    let items: Vec<String> = held
        .iter()
        .map(|h| {
            format!("{}:{}{}", h.pool, h.page, if h.exclusive { "(X)" } else { "(S)" })
        })
        .collect();
    format!("[{}]", items.join(", "))
}

/// Record a latch acquisition on `(pool, page)`.
///
/// `blocking` marks acquisitions that may wait for another holder
/// (plain `fetch_read`/`fetch_write`); try-acquisitions and fresh-frame
/// latches pass `false` and contribute no order-graph edges.
pub fn latch_acquired(pool: u64, page: u64, exclusive: bool, blocking: bool) {
    mc::on_latch_acquired(pool, page);
    STATS.latch_acquires.fetch_add(1, Ordering::Relaxed);
    TS.with(|cell| {
        let mut ts = cell.borrow_mut();
        if !ts.optimistic.is_empty() {
            let msg = format!(
                "latch acquisition of {pool}:{page} inside an optimistic read \
                 section (open sections: {:?}) — the fast path must stay \
                 latch-free; exit the section (fall back) before latching",
                ts.optimistic,
            );
            report(&mut ts, "latch-in-optimistic", msg);
        }
        if blocking && !ts.held.is_empty() {
            let held: Vec<(u64, u64)> = ts.held.iter().map(|h| (h.pool, h.page)).collect();
            if let Some(cycle) = add_order_edges(&held, (pool, page)) {
                let msg = format!(
                    "blocking acquisition of {pool}:{page} closes a latch-order cycle \
                     (potential deadlock): {}",
                    cycle
                        .iter()
                        .map(|(pl, pg)| format!("{pl}:{pg}"))
                        .collect::<Vec<_>>()
                        .join(" -> "),
                );
                report(&mut ts, "latch-order-cycle", msg);
            }
        }
        ts.held.push(HeldLatch { pool, page, exclusive });
        let n = ts.held.len();
        STATS.max_held.fetch_max(n as u64, Ordering::Relaxed);
        let eff = effective(&ts.scopes);
        if n > eff.allowance {
            let msg = format!(
                "thread holds {n} latches after acquiring {pool}:{page} \
                 ({} allowed by scope {:?}); held: {}",
                eff.allowance,
                eff.name,
                held_desc(&ts.held),
            );
            report(&mut ts, "latch-count", msg);
        }
    });
}

/// Whether the calling thread is managed by a registered model-check
/// scheduler. Blocking frame-latch acquisitions consult this: a managed
/// task must not block inside the raw rwlock (the scheduler cannot see
/// the block and the exploration would freeze) and virtualizes the wait
/// through [`latch_contended`] instead. One relaxed load when no
/// scheduler is registered.
pub fn latch_managed() -> bool {
    mc::latch_managed()
}

/// A managed task's `try_` frame-latch acquisition failed inside its
/// virtualized blocking loop: park virtually until the holder releases
/// (or a short virtual timeout retries). No-op outside model checking.
pub fn latch_contended(pool: u64, page: u64) {
    mc::on_latch_contended(pool, page);
}

/// Record a latch release on `(pool, page)`.
pub fn latch_released(pool: u64, page: u64) {
    mc::on_latch_released(pool, page);
    TS.with(|cell| {
        let mut ts = cell.borrow_mut();
        match ts.held.iter().rposition(|h| h.pool == pool && h.page == page) {
            Some(i) => {
                ts.held.remove(i);
            }
            None => {
                let msg = format!(
                    "release of {pool}:{page} which this thread does not hold; held: {}",
                    held_desc(&ts.held),
                );
                report(&mut ts, "latch-release-unheld", msg);
            }
        }
    });
}

/// Record an X→S downgrade of a held latch (the latch stays held).
pub fn latch_downgraded(pool: u64, page: u64) {
    // An X→S downgrade publishes the holder's writes exactly like a
    // release, so it carries the same happens-before edge.
    mc::on_latch_released(pool, page);
    TS.with(|cell| {
        let mut ts = cell.borrow_mut();
        match ts.held.iter().rposition(|h| h.pool == pool && h.page == page) {
            Some(i) => ts.held[i].exclusive = false,
            None => {
                let msg = format!(
                    "downgrade of {pool}:{page} which this thread does not hold; held: {}",
                    held_desc(&ts.held),
                );
                report(&mut ts, "latch-downgrade-unheld", msg);
            }
        }
    });
}

/// A page was freshly formatted (allocation or reuse): drop its
/// order-graph node, because acquisition orders observed against the
/// page's previous life are meaningless for its new one.
pub fn latch_page_fresh(pool: u64, page: u64) {
    let key = (pool, page);
    let mut order = lock(&ORDER);
    order.remove(&key);
    for targets in order.values_mut() {
        targets.remove(&key);
    }
}

/// Record store I/O (or a `LoadPending`-style blocking load) on
/// `(pool, page)`. Any *other* latch held by the thread violates the
/// no-latch-across-I/O discipline, unless an active scope allows it.
pub fn io_event(pool: u64, page: u64, what: &'static str) {
    mc::on_io_event(pool, page, what);
    STATS.io_events.fetch_add(1, Ordering::Relaxed);
    TS.with(|cell| {
        let mut ts = cell.borrow_mut();
        let foreign: Vec<HeldLatch> = ts
            .held
            .iter()
            .filter(|h| !(h.pool == pool && h.page == page))
            .copied()
            .collect();
        if foreign.is_empty() {
            return;
        }
        let eff = effective(&ts.scopes);
        if !eff.io_ok {
            let msg = format!(
                "store I/O ({what}) on {pool}:{page} while holding latches {} \
                 outside an I/O-permitting scope",
                held_desc(&foreign),
            );
            report(&mut ts, "latch-across-io", msg);
        }
    });
}

/// Record that a lock-manager request is about to block. `is_record`
/// marks record (RID) locks — the §5 coupling discipline says those
/// waits must be latch-free; other lock classes (signaling locks on
/// nodes, transaction waits) have their own protocols.
pub fn lock_wait(is_record: bool, desc: &str) {
    mc::on_lock_wait("lock-wait");
    STATS.lock_waits.fetch_add(1, Ordering::Relaxed);
    if !is_record {
        return;
    }
    TS.with(|cell| {
        let mut ts = cell.borrow_mut();
        if ts.held.is_empty() {
            return;
        }
        let eff = effective(&ts.scopes);
        if !eff.lock_wait_ok {
            let msg = format!(
                "blocking record-lock wait ({desc}) while holding latches {}",
                held_desc(&ts.held),
            );
            report(&mut ts, "latch-during-lock-wait", msg);
        }
    });
}

/// Like [`lock_wait`], for the striped lock manager: `shard` identifies
/// the queue shard whose condvar the request is about to park on (pure
/// diagnostics — the discipline checked is the same latch-free-wait rule).
pub fn lock_wait_sharded(is_record: bool, desc: &str, shard: usize) {
    mc::on_lock_wait("lock-wait-sharded");
    STATS.lock_waits.fetch_add(1, Ordering::Relaxed);
    if !is_record {
        return;
    }
    TS.with(|cell| {
        let mut ts = cell.borrow_mut();
        if ts.held.is_empty() {
            return;
        }
        let eff = effective(&ts.scopes);
        if !eff.lock_wait_ok {
            let msg = format!(
                "blocking record-lock wait ({desc}, queue shard {shard}) \
                 while holding latches {}",
                held_desc(&ts.held),
            );
            report(&mut ts, "latch-during-lock-wait", msg);
        }
    });
}

/// Record acquisition of shard `index` of striped table `layer` (an id
/// from [`new_instance_id`]). Within one table a thread may hold several
/// shards only in strictly ascending index order — any same-or-lower
/// acquisition (including re-entry on the held shard) can deadlock
/// against a thread locking the same pair the other way around.
pub fn shard_lock_acquired(layer: u64, index: usize) {
    mc::on_shard_event(layer, index, "shard-acquire");
    STATS.shard_acquires.fetch_add(1, Ordering::Relaxed);
    TS.with(|cell| {
        let mut ts = cell.borrow_mut();
        if let Some(&(_, held)) =
            ts.shard_locks.iter().find(|&&(l, i)| l == layer && i >= index)
        {
            let msg = format!(
                "acquisition of shard {index} in striped table {layer} while \
                 holding shard {held} of the same table (non-ascending order \
                 is deadlock-capable)",
            );
            report(&mut ts, "shard-order", msg);
        }
        ts.shard_locks.push((layer, index));
    });
}

/// Record release of shard `index` of striped table `layer`.
pub fn shard_lock_released(layer: u64, index: usize) {
    mc::on_shard_event(layer, index, "shard-release");
    TS.with(|cell| {
        let mut ts = cell.borrow_mut();
        match ts.shard_locks.iter().rposition(|&(l, i)| l == layer && i == index) {
            Some(pos) => {
                ts.shard_locks.remove(pos);
            }
            None => {
                let msg = format!(
                    "release of shard {index} in striped table {layer} which \
                     this thread does not hold",
                );
                report(&mut ts, "shard-release-unheld", msg);
            }
        }
    });
}

/// Number of striped-table shard mutexes the calling thread holds.
pub fn shard_held_count() -> usize {
    TS.with(|cell| cell.borrow().shard_locks.len())
}

/// Record the opening of an optimistic read section on `(pool, page)`
/// (an `OptimisticReadGuard` was created). Until the matching
/// [`optimistic_exit`], the thread must not acquire any latch
/// (`latch-in-optimistic`), and the section must be covered by a live
/// epoch pin (`optimistic-unpinned`): an unpinned optimistic reader
/// races page reclamation.
pub fn optimistic_enter(pool: u64, page: u64) {
    mc::on_optimistic(pool, page, "optimistic-enter");
    STATS.optimistic_enters.fetch_add(1, Ordering::Relaxed);
    TS.with(|cell| {
        let mut ts = cell.borrow_mut();
        if ts.epoch_pins == 0 {
            let msg = format!(
                "optimistic read section on {pool}:{page} opened with no epoch \
                 pin — a drained page could be recycled under this reader",
            );
            report(&mut ts, "optimistic-unpinned", msg);
        }
        ts.optimistic.push((pool, page));
    });
}

/// Record the close of an optimistic read section on `(pool, page)`
/// (guard dropped — whether validation succeeded or not).
pub fn optimistic_exit(pool: u64, page: u64) {
    mc::on_optimistic(pool, page, "optimistic-exit");
    TS.with(|cell| {
        let mut ts = cell.borrow_mut();
        match ts.optimistic.iter().rposition(|&s| s == (pool, page)) {
            Some(i) => {
                ts.optimistic.remove(i);
            }
            None => {
                let msg = format!(
                    "exit of optimistic section {pool}:{page} which this \
                     thread never entered (open: {:?})",
                    ts.optimistic,
                );
                report(&mut ts, "optimistic-exit-unentered", msg);
            }
        }
    });
}

/// Record one optimistic dereference (`read_with`) on `(pool, page)`:
/// the epoch pin must still be live at the moment of the copy-out, not
/// just at guard creation.
pub fn optimistic_read(pool: u64, page: u64) {
    mc::on_optimistic(pool, page, "optimistic-read");
    TS.with(|cell| {
        let mut ts = cell.borrow_mut();
        if ts.epoch_pins == 0 {
            let msg = format!(
                "optimistic dereference of {pool}:{page} with no epoch pin \
                 (the guard outlived its pin)",
            );
            report(&mut ts, "optimistic-unpinned", msg);
        }
    });
}

/// Record an epoch-reclamation pin on domain `gc` (a `Guard` was
/// created; nested guards each count).
pub fn epoch_pinned(gc: u64) {
    mc::on_epoch(gc, "epoch-pin");
    STATS.epoch_pins.fetch_add(1, Ordering::Relaxed);
    TS.with(|cell| cell.borrow_mut().epoch_pins += 1);
}

/// Record an epoch-reclamation unpin (a `Guard` dropped).
pub fn epoch_unpinned(gc: u64) {
    mc::on_epoch(gc, "epoch-unpin");
    TS.with(|cell| {
        let mut ts = cell.borrow_mut();
        if ts.epoch_pins == 0 {
            report(
                &mut ts,
                "epoch-unpin-unpinned",
                format!("epoch unpin on domain {gc} with no pin recorded"),
            );
        } else {
            ts.epoch_pins -= 1;
        }
    });
}

/// Record an epoch collection attempt on domain `gc` (pure model-checker
/// yield point: collection is where deferred frees race live pins).
pub fn epoch_collect(gc: u64) {
    mc::on_epoch(gc, "epoch-collect");
}

/// Record an NSN drawn from counter instance `counter`. Each value must
/// be issued at most once per counter; a duplicate means the counter
/// regressed or was reissued, which would break split detection.
pub fn nsn_drawn(counter: u64, value: u64) {
    mc::on_nsn_drawn(counter);
    STATS.nsn_draws.fetch_add(1, Ordering::Relaxed);
    let fresh = lock(&NSN_SEEN).entry(counter).or_default().insert(value);
    if !fresh {
        TS.with(|cell| {
            let mut ts = cell.borrow_mut();
            let msg =
                format!("NSN {value} drawn twice from counter instance {counter}");
            report(&mut ts, "nsn-duplicate", msg);
        });
    }
}

/// RAII guard for a discipline scope; pops the scope when dropped.
#[must_use = "the scope ends when this guard is dropped"]
pub struct ScopeGuard {
    _priv: (),
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        TS.with(|cell| {
            cell.borrow_mut().scopes.pop();
        });
    }
}

/// Enter a discipline scope with an absolute latch allowance.
///
/// `io_ok` permits store I/O while latches are held; `lock_wait_ok`
/// permits blocking record-lock waits under latches. Baseline protocols
/// (which deliberately violate §5 for the paper's comparison
/// experiments) enter a fully permissive scope.
pub fn enter_scope(
    name: &'static str,
    allowance: usize,
    io_ok: bool,
    lock_wait_ok: bool,
) -> ScopeGuard {
    TS.with(|cell| {
        cell.borrow_mut().scopes.push(Scope { name, allowance, io_ok, lock_wait_ok });
    });
    ScopeGuard { _priv: () }
}

/// Enter a discipline scope allowing `extra` more latches than the
/// thread currently holds — the blessed parent/child window: "I hold a
/// child and may latch its parent". Implies `io_ok` (the parent may
/// have to be faulted in).
pub fn enter_scope_rel(name: &'static str, extra: usize) -> ScopeGuard {
    TS.with(|cell| {
        let mut ts = cell.borrow_mut();
        let allowance = ts.held.len() + extra;
        ts.scopes.push(Scope { name, allowance, io_ok: true, lock_wait_ok: false });
    });
    ScopeGuard { _priv: () }
}

/// Number of latches the calling thread currently holds.
pub fn held_count() -> usize {
    TS.with(|cell| cell.borrow().held.len())
}

/// Assert the calling thread holds no latches (leak detection between
/// work items / at operation boundaries).
pub fn assert_thread_clear(context: &str) {
    TS.with(|cell| {
        let mut ts = cell.borrow_mut();
        if !ts.held.is_empty() {
            let msg = format!("{context}: thread still holds latches {}", held_desc(&ts.held));
            report(&mut ts, "latch-leak", msg);
        }
        if !ts.shard_locks.is_empty() {
            let msg = format!(
                "{context}: thread still holds striped shard locks {:?}",
                ts.shard_locks,
            );
            report(&mut ts, "shard-leak", msg);
        }
        if !ts.optimistic.is_empty() {
            let msg = format!(
                "{context}: thread still has open optimistic sections {:?}",
                ts.optimistic,
            );
            report(&mut ts, "optimistic-leak", msg);
        }
        if ts.epoch_pins != 0 {
            let msg =
                format!("{context}: thread still holds {} epoch pin(s)", ts.epoch_pins);
            report(&mut ts, "epoch-pin-leak", msg);
        }
    });
}

/// After containing a panic (`catch_unwind`), assert the unwind left no
/// shadow-state residue on this thread: every latch, striped shard lock
/// and discipline scope must have been released by RAII guards during
/// unwinding. Residue is reported under rule `unwind-residue` and then
/// *cleared*, so a worker thread that contained one dead operation
/// audits its next operation from a clean slate instead of cascading
/// false positives.
pub fn assert_unwind_clear(context: &str) {
    TS.with(|cell| {
        let mut ts = cell.borrow_mut();
        if !ts.held.is_empty() {
            let msg =
                format!("{context}: unwind left latches held {}", held_desc(&ts.held));
            ts.held.clear();
            report(&mut ts, "unwind-residue", msg);
        }
        if !ts.shard_locks.is_empty() {
            let msg = format!(
                "{context}: unwind left striped shard locks {:?}",
                ts.shard_locks,
            );
            ts.shard_locks.clear();
            report(&mut ts, "unwind-residue", msg);
        }
        if !ts.scopes.is_empty() {
            let names: Vec<&'static str> = ts.scopes.iter().map(|s| s.name).collect();
            let msg = format!("{context}: unwind left discipline scopes {names:?}");
            ts.scopes.clear();
            report(&mut ts, "unwind-residue", msg);
        }
        if !ts.optimistic.is_empty() {
            let msg = format!(
                "{context}: unwind left optimistic sections open {:?}",
                ts.optimistic,
            );
            ts.optimistic.clear();
            report(&mut ts, "unwind-residue", msg);
        }
        if ts.epoch_pins != 0 {
            let msg =
                format!("{context}: unwind left {} epoch pin(s) held", ts.epoch_pins);
            ts.epoch_pins = 0;
            report(&mut ts, "unwind-residue", msg);
        }
    });
}

/// Run `f` with violations on this thread *captured* instead of
/// panicking. Used by deliberate-fault harnesses that prove the
/// analyzer fires. Nested captures compose (inner wins).
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<Violation>) {
    let prev = TS.with(|cell| cell.borrow_mut().capture.replace(Vec::new()));
    let result = f();
    let captured = TS.with(|cell| {
        let mut ts = cell.borrow_mut();
        let captured = ts.capture.take().unwrap_or_default();
        ts.capture = prev;
        captured
    });
    (result, captured)
}

fn add_order_edges(
    held: &[(u64, u64)],
    new: (u64, u64),
) -> Option<Vec<(u64, u64)>> {
    let mut order = lock(&ORDER);
    for &h in held {
        if h != new {
            order.entry(h).or_default().insert(new);
        }
    }
    // A cycle exists iff some held node is reachable from `new` (the
    // edge held→new was just added). BFS with parent links so the
    // cycle can be reported.
    let targets: HashSet<(u64, u64)> = held.iter().copied().filter(|&h| h != new).collect();
    if targets.is_empty() {
        return None;
    }
    let mut parent: HashMap<(u64, u64), (u64, u64)> = HashMap::new();
    let mut queue = std::collections::VecDeque::from([new]);
    let mut seen: HashSet<(u64, u64)> = HashSet::from([new]);
    while let Some(node) = queue.pop_front() {
        let Some(nexts) = order.get(&node) else { continue };
        for &n in nexts {
            if targets.contains(&n) {
                // Reconstruct new → … → node → n (the cycle closes with
                // the just-added held-edge n → new).
                let mut path = vec![node];
                let mut cur = node;
                while let Some(&p) = parent.get(&cur) {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                path.push(n);
                return Some(path);
            }
            if seen.insert(n) {
                parent.insert(n, node);
                queue.push_back(n);
            }
        }
    }
    None
}

/// Number of edges currently in the latch-order graph.
pub fn order_edge_count() -> usize {
    lock(&ORDER).values().map(|s| s.len()).sum()
}

/// A snapshot of the analyzer's global counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct AuditSummary {
    /// Latch acquisitions recorded.
    pub latch_acquires: u64,
    /// Maximum latches held by any one thread at once.
    pub max_held: u64,
    /// Store I/O events recorded.
    pub io_events: u64,
    /// Lock-manager blocking waits recorded.
    pub lock_waits: u64,
    /// NSN draws recorded.
    pub nsn_draws: u64,
    /// Striped-table shard-mutex acquisitions recorded.
    pub shard_acquires: u64,
    /// Optimistic read sections opened.
    pub optimistic_enters: u64,
    /// Epoch-reclamation pins recorded.
    pub epoch_pins: u64,
    /// Order-graph edges accumulated.
    pub order_edges: u64,
    /// Violations detected (captured or panicked).
    pub violations: u64,
}

impl fmt::Display for AuditSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "gist-audit summary")?;
        writeln!(f, "  latch acquisitions   {:>10}", self.latch_acquires)?;
        writeln!(f, "  max latches held     {:>10}", self.max_held)?;
        writeln!(f, "  store I/O events     {:>10}", self.io_events)?;
        writeln!(f, "  lock waits           {:>10}", self.lock_waits)?;
        writeln!(f, "  NSN draws            {:>10}", self.nsn_draws)?;
        writeln!(f, "  shard acquisitions   {:>10}", self.shard_acquires)?;
        writeln!(f, "  optimistic sections  {:>10}", self.optimistic_enters)?;
        writeln!(f, "  epoch pins           {:>10}", self.epoch_pins)?;
        writeln!(f, "  order-graph edges    {:>10}", self.order_edges)?;
        write!(f, "  violations           {:>10}", self.violations)
    }
}

/// Snapshot the analyzer's global counters.
pub fn summary() -> AuditSummary {
    AuditSummary {
        latch_acquires: STATS.latch_acquires.load(Ordering::Relaxed),
        max_held: STATS.max_held.load(Ordering::Relaxed),
        io_events: STATS.io_events.load(Ordering::Relaxed),
        lock_waits: STATS.lock_waits.load(Ordering::Relaxed),
        nsn_draws: STATS.nsn_draws.load(Ordering::Relaxed),
        shard_acquires: STATS.shard_acquires.load(Ordering::Relaxed),
        optimistic_enters: STATS.optimistic_enters.load(Ordering::Relaxed),
        epoch_pins: STATS.epoch_pins.load(Ordering::Relaxed),
        order_edges: order_edge_count() as u64,
        violations: STATS.violations.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests share one process: every test uses its own pool/counter ids
    // from `new_instance_id()` so global registries never alias.

    #[test]
    fn single_latch_is_fine_and_released() {
        let pool = new_instance_id();
        let ((), v) = capture(|| {
            latch_acquired(pool, 1, true, true);
            latch_released(pool, 1);
            assert_thread_clear("test");
        });
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn second_latch_without_scope_fires() {
        let pool = new_instance_id();
        let ((), v) = capture(|| {
            latch_acquired(pool, 1, false, true);
            latch_acquired(pool, 2, false, true);
            latch_released(pool, 2);
            latch_released(pool, 1);
        });
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "latch-count");
    }

    #[test]
    fn parent_child_scope_allows_exactly_one_more() {
        let pool = new_instance_id();
        let ((), v) = capture(|| {
            latch_acquired(pool, 1, true, true);
            let _scope = enter_scope_rel("parent-child", 1);
            latch_acquired(pool, 2, true, true); // fine: allowance 2
            latch_acquired(pool, 3, true, true); // third: violation
            latch_released(pool, 3);
            latch_released(pool, 2);
            latch_released(pool, 1);
        });
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "latch-count");
        assert!(v[0].message.contains("3 latches"), "{}", v[0].message);
    }

    #[test]
    fn io_under_foreign_latch_fires_and_scope_permits() {
        let pool = new_instance_id();
        let ((), v) = capture(|| {
            latch_acquired(pool, 1, true, true);
            io_event(pool, 2, "page-load"); // foreign: violation
            io_event(pool, 1, "page-load"); // own page: fine
            {
                let _scope = enter_scope("split-unit", 64, true, false);
                io_event(pool, 3, "page-load"); // permitted by scope
            }
            latch_released(pool, 1);
        });
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "latch-across-io");
    }

    #[test]
    fn record_lock_wait_under_latch_fires() {
        let pool = new_instance_id();
        let ((), v) = capture(|| {
            lock_wait(true, "free-standing"); // no latch: fine
            latch_acquired(pool, 1, false, true);
            lock_wait(false, "node signal"); // non-record: fine
            lock_wait(true, "rid"); // violation
            latch_released(pool, 1);
        });
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "latch-during-lock-wait");
    }

    #[test]
    fn leaked_latch_detected() {
        let pool = new_instance_id();
        let ((), v) = capture(|| {
            latch_acquired(pool, 9, true, true);
            assert_thread_clear("op end");
            latch_released(pool, 9); // clean up for the next test
        });
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "latch-leak");
    }

    #[test]
    fn nsn_duplicate_detected() {
        let ctr = new_instance_id();
        let ((), v) = capture(|| {
            nsn_drawn(ctr, 1);
            nsn_drawn(ctr, 2);
            nsn_drawn(ctr, 1);
        });
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "nsn-duplicate");
    }

    #[test]
    fn order_cycle_detected_across_operations() {
        let pool = new_instance_id();
        let ((), v) = capture(|| {
            let _scope = enter_scope("test-harness", usize::MAX, true, true);
            // Op 1: holds 10, blocking-acquires 20 → edge 10→20.
            latch_acquired(pool, 10, true, true);
            latch_acquired(pool, 20, true, true);
            latch_released(pool, 20);
            latch_released(pool, 10);
            // Op 2: holds 20, blocking-acquires 10 → edge 20→10: cycle.
            latch_acquired(pool, 20, true, true);
            latch_acquired(pool, 10, true, true);
            latch_released(pool, 10);
            latch_released(pool, 20);
        });
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "latch-order-cycle");
    }

    #[test]
    fn fresh_page_resets_order_edges() {
        let pool = new_instance_id();
        let ((), v) = capture(|| {
            let _scope = enter_scope("test-harness", usize::MAX, true, true);
            latch_acquired(pool, 30, true, true);
            latch_acquired(pool, 40, true, true); // edge 30→40
            latch_released(pool, 40);
            latch_released(pool, 30);
            // Page 40 is freed and reformatted: orders reset.
            latch_page_fresh(pool, 40);
            latch_acquired(pool, 40, true, true);
            latch_acquired(pool, 30, true, true); // no cycle: 30→40 was dropped
            latch_released(pool, 30);
            latch_released(pool, 40);
        });
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn try_acquisitions_contribute_no_edges() {
        let pool = new_instance_id();
        let before = order_edge_count();
        let ((), v) = capture(|| {
            let _scope = enter_scope("test-harness", usize::MAX, true, true);
            latch_acquired(pool, 50, true, true);
            latch_acquired(pool, 60, true, false); // try: no edge
            latch_released(pool, 60);
            latch_released(pool, 50);
            // Reverse order, also try-only: would be a cycle if edges
            // were recorded.
            latch_acquired(pool, 60, true, true);
            latch_acquired(pool, 50, true, false);
            latch_released(pool, 50);
            latch_released(pool, 60);
        });
        assert!(v.is_empty(), "unexpected: {v:?}");
        assert_eq!(order_edge_count(), before, "try-acquisitions added edges");
    }

    #[test]
    fn downgrade_keeps_latch_held() {
        let pool = new_instance_id();
        let ((), v) = capture(|| {
            latch_acquired(pool, 70, true, true);
            latch_downgraded(pool, 70);
            io_event(pool, 71, "page-load"); // still held: violation
            latch_released(pool, 70);
        });
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "latch-across-io");
    }

    #[test]
    fn capture_nests_and_restores() {
        let pool = new_instance_id();
        let ((), outer) = capture(|| {
            latch_acquired(pool, 80, true, true);
            let ((), inner) = capture(|| {
                latch_acquired(pool, 81, true, true);
                latch_released(pool, 81);
            });
            assert_eq!(inner.len(), 1, "inner capture got the latch-count violation");
            latch_released(pool, 80);
        });
        assert!(outer.is_empty(), "inner violations must not leak out: {outer:?}");
    }

    #[test]
    fn ascending_shard_acquisitions_are_fine() {
        let layer = new_instance_id();
        let ((), v) = capture(|| {
            shard_lock_acquired(layer, 0);
            shard_lock_acquired(layer, 3);
            shard_lock_acquired(layer, 7);
            shard_lock_released(layer, 7);
            shard_lock_released(layer, 3);
            shard_lock_released(layer, 0);
            assert_thread_clear("test");
        });
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn descending_shard_acquisition_fires() {
        let layer = new_instance_id();
        let ((), v) = capture(|| {
            shard_lock_acquired(layer, 5);
            shard_lock_acquired(layer, 2); // lower index: violation
            shard_lock_released(layer, 2);
            shard_lock_released(layer, 5);
        });
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "shard-order");
    }

    #[test]
    fn shard_reentry_fires() {
        let layer = new_instance_id();
        let ((), v) = capture(|| {
            shard_lock_acquired(layer, 4);
            shard_lock_acquired(layer, 4); // re-entry: self-deadlock
            shard_lock_released(layer, 4);
            shard_lock_released(layer, 4);
        });
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "shard-order");
    }

    #[test]
    fn distinct_layers_do_not_interact() {
        let a = new_instance_id();
        let b = new_instance_id();
        let ((), v) = capture(|| {
            shard_lock_acquired(a, 5);
            shard_lock_acquired(b, 1); // other table: no ordering rule
            shard_lock_released(b, 1);
            shard_lock_released(a, 5);
        });
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn shard_release_unheld_and_leak_detected() {
        let layer = new_instance_id();
        let ((), v) = capture(|| {
            shard_lock_released(layer, 9); // never acquired
            shard_lock_acquired(layer, 1);
            assert_thread_clear("op end"); // leaked
            shard_lock_released(layer, 1); // clean up for the next test
        });
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].rule, "shard-release-unheld");
        assert_eq!(v[1].rule, "shard-leak");
    }

    #[test]
    fn sharded_lock_wait_checks_record_waits() {
        let pool = new_instance_id();
        let ((), v) = capture(|| {
            lock_wait_sharded(true, "free-standing", 3); // no latch: fine
            latch_acquired(pool, 1, false, true);
            lock_wait_sharded(false, "node signal", 0); // non-record: fine
            lock_wait_sharded(true, "rid", 2); // violation
            latch_released(pool, 1);
        });
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "latch-during-lock-wait");
        assert!(v[0].message.contains("queue shard 2"), "{}", v[0].message);
    }

    #[test]
    fn unwind_residue_detected_and_cleared() {
        let pool = new_instance_id();
        let layer = new_instance_id();
        let ((), v) = capture(|| {
            // Simulate an unwind that somehow skipped its RAII releases:
            // a latch, a shard lock, and a scope are still recorded.
            latch_acquired(pool, 5, true, true);
            shard_lock_acquired(layer, 2);
            std::mem::forget(enter_scope("doomed-op", 8, true, true));
            assert_unwind_clear("after contained panic");
            // The residue was cleared: the thread is clean again.
            assert_thread_clear("post-clear");
        });
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "unwind-residue"), "{v:?}");
        assert!(v[0].message.contains("after contained panic"), "{}", v[0].message);
    }

    #[test]
    fn unwind_clear_is_silent_when_raii_did_its_job() {
        let pool = new_instance_id();
        let ((), v) = capture(|| {
            latch_acquired(pool, 6, true, true);
            latch_released(pool, 6);
            assert_unwind_clear("clean unwind");
        });
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn latch_inside_optimistic_section_fires() {
        let pool = new_instance_id();
        let gc = new_instance_id();
        let ((), v) = capture(|| {
            epoch_pinned(gc);
            optimistic_enter(pool, 7);
            latch_acquired(pool, 8, false, true); // violation
            latch_released(pool, 8);
            optimistic_exit(pool, 7);
            epoch_unpinned(gc);
        });
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "latch-in-optimistic");
    }

    #[test]
    fn latch_after_optimistic_exit_is_fine() {
        let pool = new_instance_id();
        let gc = new_instance_id();
        let ((), v) = capture(|| {
            epoch_pinned(gc);
            optimistic_enter(pool, 7);
            optimistic_read(pool, 7);
            optimistic_exit(pool, 7);
            epoch_unpinned(gc);
            // Fallback after the section closed: perfectly legal.
            latch_acquired(pool, 7, false, true);
            latch_released(pool, 7);
            assert_thread_clear("test");
        });
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn unpinned_optimistic_section_fires() {
        let pool = new_instance_id();
        let ((), v) = capture(|| {
            optimistic_enter(pool, 3); // no epoch pin: violation
            optimistic_exit(pool, 3);
        });
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "optimistic-unpinned");
    }

    #[test]
    fn dereference_after_unpin_fires() {
        let pool = new_instance_id();
        let gc = new_instance_id();
        let ((), v) = capture(|| {
            epoch_pinned(gc);
            optimistic_enter(pool, 4);
            epoch_unpinned(gc); // pin dropped while the guard lives
            optimistic_read(pool, 4); // violation
            optimistic_exit(pool, 4);
        });
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "optimistic-unpinned");
    }

    #[test]
    fn optimistic_leak_and_epoch_leak_detected() {
        let pool = new_instance_id();
        let gc = new_instance_id();
        let ((), v) = capture(|| {
            epoch_pinned(gc);
            optimistic_enter(pool, 5);
            assert_thread_clear("op end"); // both leaked
            optimistic_exit(pool, 5); // clean up for the next test
            epoch_unpinned(gc);
        });
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].rule, "optimistic-leak");
        assert_eq!(v[1].rule, "epoch-pin-leak");
    }

    #[test]
    fn unwind_clears_optimistic_residue() {
        let pool = new_instance_id();
        let gc = new_instance_id();
        let ((), v) = capture(|| {
            epoch_pinned(gc);
            optimistic_enter(pool, 6);
            assert_unwind_clear("after contained panic");
            assert_thread_clear("post-clear");
        });
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "unwind-residue"), "{v:?}");
    }

    #[test]
    fn summary_counts_accumulate() {
        let pool = new_instance_id();
        let before = summary();
        latch_acquired(pool, 90, false, true);
        latch_released(pool, 90);
        let after = summary();
        assert!(after.latch_acquires > before.latch_acquires);
        let shown = format!("{after}");
        assert!(shown.contains("latch acquisitions"), "{shown}");
    }
}
