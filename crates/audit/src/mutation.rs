//! Runtime-armed mutation registry for model-checker self-tests.
//!
//! A *mutation* reintroduces a fixed historical concurrency bug behind
//! a named switch so `crates/mc` can prove its explorer finds the bug
//! within a bounded schedule budget. The buggy branches are compiled in
//! only under the owning crate's `mutations` feature (enabled by the
//! umbrella `model-check` feature, never by default) and are inert
//! until a test arms them here; disarmed cost is one relaxed load.
//!
//! Names in use:
//! - `lockmgr.release-all-single-pass` — the pre-fix orphan-grant race
//!   (`release_all` takes one held-set snapshot instead of looping).
//! - `predlock.attach-skip-dedupe` — the pre-fix duplicate-FIFO race
//!   (`attach` pushes unconditionally instead of deduping against a
//!   racing `replicate`).
//! - `wal.wait-durable-unguarded-park` — the classic lost wakeup
//!   (`wait_durable` checks the horizon outside the wait mutex, then
//!   parks without a generation check).
//! - `epoch.skip-retire` — §7.2 reclamation without the epoch grace
//!   period (`EpochGc::retire` runs the deferred free immediately), so
//!   a drained page can be reallocated under a pinned optimistic
//!   reader.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{LazyLock, Mutex};

static ARMED_COUNT: AtomicUsize = AtomicUsize::new(0);
static ARMED: LazyLock<Mutex<HashSet<&'static str>>> =
    LazyLock::new(|| Mutex::new(HashSet::new()));

/// Arm the named mutation. Idempotent.
pub fn arm(name: &'static str) {
    let mut set = ARMED.lock().unwrap_or_else(|p| p.into_inner());
    if set.insert(name) {
        ARMED_COUNT.fetch_add(1, Ordering::SeqCst);
    }
}

/// Disarm the named mutation. Idempotent.
pub fn disarm(name: &'static str) {
    let mut set = ARMED.lock().unwrap_or_else(|p| p.into_inner());
    if set.remove(name) {
        ARMED_COUNT.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Disarm every mutation (test teardown).
pub fn disarm_all() {
    let mut set = ARMED.lock().unwrap_or_else(|p| p.into_inner());
    if !set.is_empty() {
        set.clear();
        ARMED_COUNT.store(0, Ordering::SeqCst);
    }
}

/// Whether the named mutation is armed (fast path: nothing armed).
pub fn armed(name: &str) -> bool {
    if ARMED_COUNT.load(Ordering::Relaxed) == 0 {
        return false;
    }
    ARMED.lock().unwrap_or_else(|p| p.into_inner()).contains(name)
}
