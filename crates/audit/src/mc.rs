//! Model-checker hook layer: the seam between the instrumentation
//! points and a deterministic scheduler.
//!
//! The audit hooks (latch/shard/NSN/IO events) and the `gist-sync`
//! wrappers (mutex/rwlock/condvar operations) all report here. When a
//! [`McScheduler`] is registered — `crates/mc` installs one for the
//! duration of an exploration — every hook on a *managed* thread becomes
//! a cooperative yield point: the scheduler serializes the managed
//! threads, picks which one runs next at each point, virtualizes
//! condvar parking (including timeouts, so no real time passes), and
//! feeds a vector-clock happens-before race detector with the
//! acquire/release edges and shadow-state accesses reported through
//! this module.
//!
//! With no scheduler registered (every production and ordinary-test
//! configuration) the fast path is one relaxed atomic load.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, LazyLock, RwLock};
use std::time::Duration;

/// What kind of synchronization object an event refers to. Object
/// identity is the `(kind, id)` pair, so id counters of different
/// layers never alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjKind {
    /// A `gist-sync` mutex.
    Mutex,
    /// A `gist-sync` reader/writer lock.
    RwLock,
    /// A `gist-sync` condition variable.
    Condvar,
    /// A buffer-pool page latch, id = `pool ⊕ page` packed.
    Latch,
    /// A striped-table shard, id = `layer ⊕ index` packed.
    Shard,
    /// An instrumented atomic cell (e.g. the WAL watermarks).
    Atomic,
    /// A named code region (explicit `yield_now`-style points).
    Region,
}

/// Identity of a synchronization object or shadow-state cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct McObj {
    /// Object kind (namespaces the id).
    pub kind: ObjKind,
    /// Object id, unique within its kind.
    pub id: u64,
}

impl McObj {
    /// Object of `kind` with `id`.
    pub fn new(kind: ObjKind, id: u64) -> McObj {
        McObj { kind, id }
    }
}

/// The operation about to run at a yield point (recorded into the
/// schedule trace; the scheduler may switch tasks before it executes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McOp {
    /// About to acquire a mutex (or retry after a virtual park).
    MutexLock,
    /// Just released a mutex.
    MutexUnlock,
    /// About to acquire a rwlock in shared mode.
    RwRead,
    /// About to acquire a rwlock in exclusive mode.
    RwWrite,
    /// Just released a rwlock (either mode).
    RwUnlock,
    /// About to notify a condition variable.
    CvNotify,
    /// About to perform an instrumented atomic operation.
    AtomicOp,
    /// A latch event forwarded from the buffer-pool hooks.
    Latch,
    /// A shard-lock event forwarded from the striped-table hooks.
    Shard,
    /// A store I/O event.
    Io,
    /// An explicit named region / NSN draw / other labelled point.
    Region,
}

/// A deterministic scheduler driving managed threads. Implemented by
/// `crates/mc`; everything here is called from the *managed* thread
/// itself, between two of its operations.
pub trait McScheduler: Send + Sync {
    /// Whether the calling thread is one of the scheduler's managed
    /// tasks. Hooks on unmanaged threads must behave as if no scheduler
    /// were registered.
    fn managed(&self) -> bool;

    /// Cooperative scheduling point: the calling task is about to
    /// perform `op` on `obj`. Blocks until the scheduler picks this
    /// task to run again.
    fn yield_point(&self, op: McOp, obj: McObj, what: &'static str);

    /// Happens-before *acquire* edge: join `obj`'s clock into the
    /// calling task's clock.
    fn acquire(&self, obj: McObj);

    /// Happens-before *release* edge: join the calling task's clock
    /// into `obj`'s clock.
    fn release(&self, obj: McObj);

    /// A shadow-state access to `cell` for the race detector.
    fn access(&self, cell: McObj, write: bool, what: &'static str);

    /// Park the calling task until [`McScheduler::unpark`] on `obj` or
    /// the *virtual* timeout elapses; returns whether it was notified
    /// (false = timed out). No real time passes.
    fn park(&self, obj: McObj, timeout: Option<Duration>) -> bool;

    /// Mark tasks parked on `obj` runnable (one in park order, or all).
    fn unpark(&self, obj: McObj, all: bool);
}

/// Fast-path gate: true only while a scheduler is registered.
static MC_ACTIVE: AtomicBool = AtomicBool::new(false);

#[allow(clippy::type_complexity)]
static SCHEDULER: LazyLock<RwLock<Option<Arc<dyn McScheduler>>>> =
    LazyLock::new(|| RwLock::new(None));

/// Install (or clear) the process-global scheduler. Explorations are
/// expected to serialize themselves; the last call wins.
pub fn set_scheduler(sched: Option<Arc<dyn McScheduler>>) {
    let mut slot = SCHEDULER.write().unwrap_or_else(|p| p.into_inner());
    MC_ACTIVE.store(sched.is_some(), Ordering::SeqCst);
    *slot = sched;
}

/// The registered scheduler, if the calling thread is one of its
/// managed tasks (the common fast path is one relaxed load + `None`).
pub fn scheduler() -> Option<Arc<dyn McScheduler>> {
    if !MC_ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    let slot = SCHEDULER.read().unwrap_or_else(|p| p.into_inner());
    match &*slot {
        Some(s) if s.managed() => Some(s.clone()),
        _ => None,
    }
}

/// Fresh id for an instrumented atomic cell (shared with the audit
/// instance-id space, so values never repeat within a process).
pub fn fresh_cell_id() -> u64 {
    crate::new_instance_id()
}

/// Instrumented atomic read-modify-write on `cell`: a yield point, an
/// acquire+release edge pair (RMWs totally order themselves on the
/// cell) and a write access.
pub fn atomic_rmw(cell: u64, what: &'static str) {
    if let Some(s) = scheduler() {
        let obj = McObj::new(ObjKind::Atomic, cell);
        s.yield_point(McOp::AtomicOp, obj, what);
        s.acquire(obj);
        s.access(obj, true, what);
        s.release(obj);
    }
}

/// Instrumented acquire-load of `cell`: a yield point, a read access,
/// and an acquire+release edge pair on the cell object. The release on
/// a load over-approximates real hardware ordering slightly, but it
/// keeps every pair of same-cell atomic operations HB-ordered —
/// atomics never data-race by definition, so the detector must never
/// flag two instrumented atomic ops against each other.
pub fn atomic_load(cell: u64, what: &'static str) {
    if let Some(s) = scheduler() {
        let obj = McObj::new(ObjKind::Atomic, cell);
        s.yield_point(McOp::AtomicOp, obj, what);
        s.acquire(obj);
        s.access(obj, false, what);
        s.release(obj);
    }
}

/// Instrumented release-store to `cell`: a yield point, a write access,
/// and an acquire+release edge pair (see [`atomic_load`] for why the
/// store also acquires).
pub fn atomic_store(cell: u64, what: &'static str) {
    if let Some(s) = scheduler() {
        let obj = McObj::new(ObjKind::Atomic, cell);
        s.yield_point(McOp::AtomicOp, obj, what);
        s.acquire(obj);
        s.access(obj, true, what);
        s.release(obj);
    }
}

/// Explicit named yield point (scenario code uses this to widen the
/// interleaving surface around un-instrumented steps).
pub fn region(what: &'static str) {
    if let Some(s) = scheduler() {
        s.yield_point(McOp::Region, McObj::new(ObjKind::Region, 0), what);
    }
}

/// Pack a `(hi, lo)` pair into one object id (latches: pool/page;
/// shards: layer/index).
fn pack(hi: u64, lo: u64) -> u64 {
    (hi << 32) ^ (lo & 0xffff_ffff)
}

/// Forward a latch acquisition from the buffer-pool hooks: yield point
/// plus an HB acquire edge on the latch object.
pub(crate) fn on_latch_acquired(pool: u64, page: u64) {
    if let Some(s) = scheduler() {
        let obj = McObj::new(ObjKind::Latch, pack(pool, page));
        s.yield_point(McOp::Latch, obj, "latch-acquire");
        s.acquire(obj);
    }
}

/// Forward a latch release (or X→S downgrade, which publishes writes
/// exactly like a release) from the buffer-pool hooks. Waiters spinning
/// virtually in [`on_latch_contended`] are unparked so the token
/// handoff reaches them promptly.
pub(crate) fn on_latch_released(pool: u64, page: u64) {
    if let Some(s) = scheduler() {
        let obj = McObj::new(ObjKind::Latch, pack(pool, page));
        s.release(obj);
        s.unpark(obj, true);
        s.yield_point(McOp::Latch, obj, "latch-release");
    }
}

/// Whether the calling thread is a managed model-check task. The buffer
/// pool consults this before a *blocking* frame-latch acquisition: a
/// managed task must never block inside the raw rwlock while holding
/// the scheduler token (the exploration would freeze on a block the
/// scheduler cannot see) and spins on the `try_` variant instead,
/// reporting each failed attempt through [`on_latch_contended`].
pub(crate) fn latch_managed() -> bool {
    scheduler().is_some()
}

/// A managed task failed a `try_` frame-latch acquisition inside its
/// virtualized blocking loop: park on the latch object until the
/// holder's release unparks us. The short *virtual* timeout covers
/// guard drops that bypass the release hook (load-error paths, evicted
/// frames) — no real time passes either way.
pub(crate) fn on_latch_contended(pool: u64, page: u64) {
    if let Some(s) = scheduler() {
        let obj = McObj::new(ObjKind::Latch, pack(pool, page));
        s.park(obj, Some(Duration::from_millis(1)));
    }
}

/// Forward a shard-lock event as a pure yield point (the shard mutex
/// itself is a `gist-sync` mutex, which already carries the HB edges).
pub(crate) fn on_shard_event(layer: u64, index: usize, what: &'static str) {
    if let Some(s) = scheduler() {
        let obj = McObj::new(ObjKind::Shard, pack(layer, index as u64));
        s.yield_point(McOp::Shard, obj, what);
    }
}

/// Forward an NSN draw: the counter is an atomic RMW, so order draws on
/// the same counter and record the access.
pub(crate) fn on_nsn_drawn(counter: u64) {
    atomic_rmw(counter, "nsn-counter");
}

/// Forward a store I/O event as a yield point.
pub(crate) fn on_io_event(pool: u64, page: u64, what: &'static str) {
    if let Some(s) = scheduler() {
        s.yield_point(McOp::Io, McObj::new(ObjKind::Latch, pack(pool, page)), what);
    }
}

/// Forward a lock-manager wait announcement as a yield point (the wait
/// itself is virtualized through the `gist-sync` condvar).
pub(crate) fn on_lock_wait(what: &'static str) {
    region(what);
}

/// Forward an optimistic read-path event (section enter/exit, each
/// dereference) as a pure yield point on the page's latch object. No HB
/// edge: the optimistic read is racy by design and synchronizes only
/// through its seqlock validation.
pub(crate) fn on_optimistic(pool: u64, page: u64, what: &'static str) {
    if let Some(s) = scheduler() {
        s.yield_point(McOp::Latch, McObj::new(ObjKind::Latch, pack(pool, page)), what);
    }
}

/// Forward an epoch-reclamation event (pin/unpin/collect) as a yield
/// point on the domain object — these are exactly the points where a
/// deferred free races a live reader.
pub(crate) fn on_epoch(gc: u64, what: &'static str) {
    if let Some(s) = scheduler() {
        s.yield_point(McOp::Region, McObj::new(ObjKind::Region, gc), what);
    }
}
