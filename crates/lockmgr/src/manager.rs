//! The lock manager proper: queues, grants, conversions, deadlock
//! detection.
//!
//! Lock queues are **striped** (`gist-striped`): a `LockName` hashes to
//! one of N shards, each an independent mutex + condvar, so requests on
//! distinct names never contend on a global manager lock. The §4
//! two-phase semantics and per-queue FIFO fairness are untouched — a
//! queue lives entirely inside one shard, and every grant/wait decision
//! is made under that shard's lock exactly as it was under the old
//! global one.
//!
//! Deadlock detection is **snapshot-based**: every shard keeps a version
//! counter bumped on each queue mutation, and a detector cache holds the
//! wait-for edges last computed per shard. A blocked request re-collects
//! edges only from shards whose version moved — never holding more than
//! one shard lock at a time — and runs the cycle search on the union.
//! All wait-for edges are intra-queue (waiter → holder, waiter → earlier
//! waiter, converter → other holder), so each shard's edge set is exact;
//! staleness across shards is resolved by re-checking grantability under
//! the shard lock before declaring the requester a victim.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use gist_sync::{Condvar, Mutex};

use gist_striped::Striped;
use gist_wal::TxnId;

use crate::audit;
use crate::{LockMode, LockName};

/// Why a lock request failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockError {
    /// Granting would close a waits-for cycle; the requester is the
    /// victim and should abort (e.g. the §8 unique-insert race, which the
    /// paper resolves "in a standard manner by the lock manager").
    Deadlock,
    /// The request waited longer than the manager's timeout (a safety net
    /// against undetected cross-resource waits, e.g. latch-lock mixes).
    Timeout,
}

impl std::fmt::Display for LockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockError::Deadlock => write!(f, "deadlock: requester chosen as victim"),
            LockError::Timeout => write!(f, "lock wait timed out"),
        }
    }
}

impl std::error::Error for LockError {}

#[derive(Debug)]
struct Entry {
    txn: TxnId,
    mode: LockMode,
    count: u32,
    granted: bool,
    /// Pending conversion target for a granted entry.
    convert_to: Option<LockMode>,
    seq: u64,
}

impl Entry {
    /// Mode other requests must be compatible with: the conversion target
    /// is claimed eagerly so converters cannot be starved by new grants.
    fn effective_mode(&self) -> LockMode {
        match self.convert_to {
            Some(t) => self.mode.supremum(t),
            None => self.mode,
        }
    }
}

/// One stripe of the lock table. A queue (and therefore every FIFO /
/// grant decision about it) lives entirely inside one shard.
#[derive(Default)]
struct Shard {
    queues: HashMap<LockName, Vec<Entry>>,
    /// Per-shard request sequencer (FIFO comparisons only ever happen
    /// within one queue, which never spans shards).
    seq: u64,
    /// Bumped on every queue mutation; the deadlock detector's cache key.
    version: u64,
}

impl Shard {
    fn touch(&mut self) {
        self.version = self.version.wrapping_add(1);
    }
}

/// Per-shard cache of wait-for edges, keyed by the shard version they
/// were computed at.
struct EdgeCache {
    version: u64,
    edges: Vec<(TxnId, TxnId)>,
}

/// Lock-manager counters.
#[derive(Debug, Default)]
pub struct LockStats {
    /// Requests granted immediately.
    pub immediate_grants: AtomicU64,
    /// Requests that had to wait at least once.
    pub waits: AtomicU64,
    /// Requests aborted as deadlock victims.
    pub deadlocks: AtomicU64,
    /// Requests that timed out.
    pub timeouts: AtomicU64,
}

/// The lock manager.
pub struct LockManager {
    shards: Striped<Shard>,
    /// `cvs[i]` pairs with shard `i`: waiters on any queue in the shard
    /// park here and are woken by mutations of that shard only.
    cvs: Box<[Condvar]>,
    /// Names held per transaction, striped by `TxnId`. Locked only
    /// *after* a queue shard (grant/unlock paths) or entirely before any
    /// queue shard is taken (`release_all` drops it first) — a single
    /// cross-table order, so the tables cannot deadlock against each
    /// other.
    held: Striped<HashMap<TxnId, HashSet<LockName>>>,
    /// Snapshot cache for the deadlock detector; serializes detection
    /// (which is off the grant fast path — only blocked requests enter).
    detector: Mutex<Vec<EdgeCache>>,
    timeout: Duration,
    /// Counters (grants/waits/deadlocks/timeouts).
    pub stats: LockStats,
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LockManager {
    /// Manager with the default 10 s wait timeout and shard count.
    pub fn new() -> Self {
        Self::with_timeout(Duration::from_secs(10))
    }

    /// Manager with a custom wait timeout and the default shard count.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::with_timeout_and_shards(timeout, 0)
    }

    /// Manager with an explicit queue shard count (rounded up to a power
    /// of two; `0` = `next_pow2(2×cores)`). Shard count 1 reproduces the
    /// pre-sharding single-mutex behavior exactly.
    pub fn with_timeout_and_shards(timeout: Duration, shards: usize) -> Self {
        let shards: Striped<Shard> = Striped::with_default(shards);
        let n = shards.shard_count();
        let cvs: Vec<Condvar> = (0..n).map(|_| Condvar::new()).collect();
        let detector =
            (0..n).map(|_| EdgeCache { version: u64::MAX, edges: Vec::new() }).collect();
        LockManager {
            shards,
            cvs: cvs.into_boxed_slice(),
            held: Striped::with_default(n),
            detector: Mutex::new(detector),
            timeout,
            stats: LockStats::default(),
        }
    }

    /// Number of queue shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.shard_count()
    }

    /// The queue shard `name` maps to (stable for the manager's lifetime;
    /// tests use this to build colliding / spread lock-name sets).
    pub fn shard_of(&self, name: &LockName) -> usize {
        self.shards.index_of(name)
    }

    /// Acquire `name` in `mode` for `txn`, blocking as needed.
    ///
    /// Re-acquisitions of covered modes are counted (see
    /// [`unlock`](Self::unlock)); stronger re-requests convert with
    /// priority over new waiters.
    pub fn lock(&self, txn: TxnId, name: LockName, mode: LockMode) -> Result<(), LockError> {
        assert!(!txn.is_none(), "locks must be owned by a transaction");
        let idx = self.shards.index_of(&name);
        let mut sh = self.shards.lock_index(idx);
        // Existing granted entry? Count or convert.
        if Self::granted_pos(&sh, &name, txn).is_some() {
            let entry = Self::entry_mut(&mut sh, &name, txn);
            if entry.mode.covers(mode) {
                entry.count += 1;
                self.stats.immediate_grants.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            let target = entry.mode.supremum(mode);
            entry.convert_to = Some(target);
            sh.touch();
            let mut waited = false;
            loop {
                if Self::conversion_compatible(&sh, &name, txn, target) {
                    let entry = Self::entry_mut(&mut sh, &name, txn);
                    entry.mode = target;
                    entry.convert_to = None;
                    entry.count += 1;
                    sh.touch();
                    drop(sh);
                    if waited {
                        self.cvs[idx].notify_all();
                    } else {
                        self.stats.immediate_grants.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(());
                }
                // Cycle-check on a cross-shard snapshot; the shard lock is
                // dropped first so detection never stacks shard mutexes.
                drop(sh);
                let dead = self.cycle_check(txn);
                sh = self.shards.lock_index(idx);
                // The world moved while unlocked: prefer granting over
                // aborting on a stale snapshot.
                if Self::conversion_compatible(&sh, &name, txn, target) {
                    continue;
                }
                if dead {
                    Self::entry_mut(&mut sh, &name, txn).convert_to = None;
                    sh.touch();
                    drop(sh);
                    self.stats.deadlocks.fetch_add(1, Ordering::Relaxed);
                    self.cvs[idx].notify_all();
                    return Err(LockError::Deadlock);
                }
                if !waited {
                    waited = true;
                    self.stats.waits.fetch_add(1, Ordering::Relaxed);
                    // §5 coupling discipline: a blocking record-lock wait
                    // must happen latch-free.
                    audit::lock_wait_sharded(
                        matches!(name, LockName::Rid(_)),
                        "lock conversion",
                        idx,
                    );
                }
                if self.cvs[idx].wait_for(sh.inner_mut(), self.timeout).timed_out() {
                    Self::entry_mut(&mut sh, &name, txn).convert_to = None;
                    sh.touch();
                    drop(sh);
                    self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                    self.cvs[idx].notify_all();
                    return Err(LockError::Timeout);
                }
            }
        }

        // Fresh request: enqueue, wait until grantable.
        sh.seq += 1;
        let seq = sh.seq;
        sh.queues.entry(name).or_default().push(Entry {
            txn,
            mode,
            count: 1,
            granted: false,
            convert_to: None,
            seq,
        });
        sh.touch();
        let mut waited = false;
        loop {
            if Self::grantable(&sh, &name, txn, seq) {
                let entry = Self::waiting_entry_mut(&mut sh, &name, txn, seq);
                entry.granted = true;
                sh.touch();
                drop(sh);
                self.held.lock(&txn).entry(txn).or_default().insert(name);
                if waited {
                    self.cvs[idx].notify_all();
                } else {
                    self.stats.immediate_grants.fetch_add(1, Ordering::Relaxed);
                }
                return Ok(());
            }
            drop(sh);
            let dead = self.cycle_check(txn);
            sh = self.shards.lock_index(idx);
            if Self::grantable(&sh, &name, txn, seq) {
                continue;
            }
            if dead {
                Self::remove_waiting(&mut sh, &name, txn, seq);
                drop(sh);
                self.stats.deadlocks.fetch_add(1, Ordering::Relaxed);
                self.cvs[idx].notify_all();
                return Err(LockError::Deadlock);
            }
            if !waited {
                waited = true;
                self.stats.waits.fetch_add(1, Ordering::Relaxed);
                // §5 coupling discipline: a blocking record-lock wait
                // must happen latch-free.
                audit::lock_wait_sharded(
                    matches!(name, LockName::Rid(_)),
                    "fresh lock request",
                    idx,
                );
            }
            if self.cvs[idx].wait_for(sh.inner_mut(), self.timeout).timed_out() {
                Self::remove_waiting(&mut sh, &name, txn, seq);
                drop(sh);
                self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                self.cvs[idx].notify_all();
                return Err(LockError::Timeout);
            }
        }
    }

    /// Non-blocking acquire: `Ok(true)` if granted immediately.
    pub fn try_lock(&self, txn: TxnId, name: LockName, mode: LockMode) -> bool {
        let mut sh = self.shards.lock(&name);
        if let Some(pos) = Self::granted_pos(&sh, &name, txn) {
            let (covers, target) = {
                let entry = &sh.queues[&name][pos];
                (entry.mode.covers(mode), entry.mode.supremum(mode))
            };
            if covers {
                Self::entry_mut(&mut sh, &name, txn).count += 1;
                return true;
            }
            if Self::conversion_compatible(&sh, &name, txn, target) {
                let entry = Self::entry_mut(&mut sh, &name, txn);
                entry.mode = target;
                entry.count += 1;
                sh.touch();
                return true;
            }
            return false;
        }
        sh.seq += 1;
        let seq = sh.seq;
        sh.queues.entry(name).or_default().push(Entry {
            txn,
            mode,
            count: 1,
            granted: false,
            convert_to: None,
            seq,
        });
        if Self::grantable(&sh, &name, txn, seq) {
            let entry = Self::waiting_entry_mut(&mut sh, &name, txn, seq);
            entry.granted = true;
            sh.touch();
            drop(sh);
            self.held.lock(&txn).entry(txn).or_default().insert(name);
            true
        } else {
            Self::remove_waiting(&mut sh, &name, txn, seq);
            false
        }
    }

    /// Release one acquisition of `name` by `txn` (used for signaling
    /// locks, which are released "as soon as the operation that set it
    /// visits that node", §7.2). Fully releases when the count drops to
    /// zero. Returns whether the entry was fully released.
    pub fn unlock(&self, txn: TxnId, name: LockName) -> bool {
        let idx = self.shards.index_of(&name);
        let mut sh = self.shards.lock_index(idx);
        let Some(queue) = sh.queues.get_mut(&name) else { return false };
        let Some(pos) = queue.iter().position(|e| e.txn == txn && e.granted) else {
            return false;
        };
        let entry = &mut queue[pos];
        entry.count -= 1;
        if entry.count > 0 {
            return false;
        }
        queue.remove(pos);
        if queue.is_empty() {
            sh.queues.remove(&name);
        }
        sh.touch();
        drop(sh);
        {
            let mut held = self.held.lock(&txn);
            if let Some(set) = held.get_mut(&txn) {
                set.remove(&name);
                if set.is_empty() {
                    held.remove(&txn);
                }
            }
        }
        self.cvs[idx].notify_all();
        true
    }

    /// Release every lock held by `txn` (commit/abort).
    pub fn release_all(&self, txn: TxnId) {
        // Historical orphan-grant race, compiled in only under the
        // `mutations` feature and armed at runtime by model-checker
        // self-tests: a single snapshot-and-purge pass misses a
        // replicated entry added by a concurrent `replicate_shared`.
        #[cfg(feature = "mutations")]
        let single_pass = gist_audit::mutation::armed("lockmgr.release-all-single-pass");
        #[cfg(not(feature = "mutations"))]
        let single_pass = false;
        // Take the held set first and drop its shard before touching any
        // queue shard (the one cross-table ordering rule; see `held`).
        //
        // Loop until the held set stays empty: a concurrent
        // [`replicate_shared`](Self::replicate_shared) that still sees
        // `txn` granted on the split node (its queue not yet purged here)
        // adds a granted entry on the new node and re-inserts it into the
        // held set after our snapshot. That insert happens *before*
        // `replicate_shared` drops the source queue shard — which we must
        // take to purge the source name — so re-reading the held set
        // after the purge pass is guaranteed to observe the addition, and
        // the loop terminates once the source queue no longer shows `txn`
        // granted (no further replication can name it).
        loop {
            let names: Vec<LockName> = {
                let mut held = self.held.lock(&txn);
                held.remove(&txn).map(|s| s.into_iter().collect()).unwrap_or_default()
            };
            if names.is_empty() {
                return;
            }
            for name in names {
                let idx = self.shards.index_of(&name);
                let mut sh = self.shards.lock_index(idx);
                if let Some(queue) = sh.queues.get_mut(&name) {
                    queue.retain(|e| e.txn != txn);
                    if queue.is_empty() {
                        sh.queues.remove(&name);
                    }
                    sh.touch();
                }
                drop(sh);
                self.cvs[idx].notify_all();
            }
            if single_pass {
                return;
            }
        }
    }

    /// The mode `txn` holds on `name`, if any.
    pub fn holds(&self, txn: TxnId, name: LockName) -> Option<LockMode> {
        let sh = self.shards.lock(&name);
        sh.queues
            .get(&name)?
            .iter()
            .find(|e| e.txn == txn && e.granted)
            .map(|e| e.mode)
    }

    /// All granted holders of `name`.
    pub fn holders(&self, name: LockName) -> Vec<(TxnId, LockMode)> {
        let sh = self.shards.lock(&name);
        sh.queues
            .get(&name)
            .map(|q| q.iter().filter(|e| e.granted).map(|e| (e.txn, e.mode)).collect())
            .unwrap_or_default()
    }

    /// Number of requests waiting on `name`.
    pub fn waiter_count(&self, name: LockName) -> usize {
        let sh = self.shards.lock(&name);
        sh.queues.get(&name).map(|q| q.iter().filter(|e| !e.granted).count()).unwrap_or(0)
    }

    /// Names held by `txn` (snapshot).
    pub fn held_by(&self, txn: TxnId) -> Vec<LockName> {
        let held = self.held.lock(&txn);
        held.get(&txn).map(|s| s.iter().copied().collect()).unwrap_or_default()
    }

    /// Force-add a granted S entry on `to` for every transaction holding
    /// a granted lock on `from`.
    ///
    /// This is the lock-manager extension §10.3 calls for: "it is also
    /// necessary to replicate the signaling locks set on a node" when it
    /// splits. Safe because the new node is not yet reachable, so `to` can
    /// have no conflicting holders. The two queue shards are taken in
    /// ascending index order ([`Striped::lock_pair`]), making the
    /// node-pair update atomic without a global lock.
    ///
    /// An owner may be terminating concurrently: replication is legal as
    /// long as it still appears granted on `from`, and the held-set insert
    /// below happens *before* the `from` queue shard is dropped, so the
    /// owner's [`release_all`](Self::release_all) (which loops over the
    /// held set until it stays empty) is guaranteed to pick up the
    /// replicated entry and purge it — no orphaned grants.
    pub fn replicate_shared(&self, from: LockName, to: LockName) {
        let (mut ga, mut gb) = self.shards.lock_pair(&from, &to);
        let owners: Vec<TxnId> = ga
            .queues
            .get(&from)
            .map(|q| q.iter().filter(|e| e.granted).map(|e| e.txn).collect())
            .unwrap_or_default();
        if owners.is_empty() {
            return;
        }
        let to_shard: &mut Shard = match gb.as_mut() {
            Some(g) => g,
            None => &mut ga,
        };
        for txn in owners {
            let already = to_shard
                .queues
                .get(&to)
                .map(|q| q.iter().any(|e| e.txn == txn && e.granted))
                .unwrap_or(false);
            if already {
                continue;
            }
            to_shard.seq += 1;
            let seq = to_shard.seq;
            to_shard.queues.entry(to).or_default().push(Entry {
                txn,
                mode: LockMode::S,
                count: 1,
                granted: true,
                convert_to: None,
                seq,
            });
            to_shard.touch();
            self.held.lock(&txn).entry(txn).or_default().insert(to);
        }
    }

    // ---- internals ----

    fn granted_pos(sh: &Shard, name: &LockName, txn: TxnId) -> Option<usize> {
        sh.queues.get(name)?.iter().position(|e| e.txn == txn && e.granted)
    }

    fn entry_mut<'a>(sh: &'a mut Shard, name: &LockName, txn: TxnId) -> &'a mut Entry {
        let found = sh
            .queues
            .get_mut(name)
            .and_then(|q| q.iter_mut().find(|e| e.txn == txn && e.granted));
        match found {
            Some(e) => e,
            None => unreachable!("granted entry vanished while converting"),
        }
    }

    fn waiting_entry_mut<'a>(
        sh: &'a mut Shard,
        name: &LockName,
        txn: TxnId,
        seq: u64,
    ) -> &'a mut Entry {
        let found = sh
            .queues
            .get_mut(name)
            .and_then(|q| q.iter_mut().find(|e| e.txn == txn && e.seq == seq));
        match found {
            Some(e) => e,
            None => unreachable!("waiting entry vanished"),
        }
    }

    fn remove_waiting(sh: &mut Shard, name: &LockName, txn: TxnId, seq: u64) {
        if let Some(q) = sh.queues.get_mut(name) {
            q.retain(|e| !(e.txn == txn && e.seq == seq && !e.granted));
            if q.is_empty() {
                sh.queues.remove(name);
            }
            sh.touch();
        }
    }

    /// A conversion to `target` by `txn` can proceed iff `target` is
    /// compatible with every *other* granted entry.
    fn conversion_compatible(sh: &Shard, name: &LockName, txn: TxnId, target: LockMode) -> bool {
        sh.queues
            .get(name)
            .map(|q| {
                q.iter()
                    .filter(|e| e.granted && e.txn != txn)
                    .all(|e| e.effective_mode().compatible(target))
            })
            .unwrap_or(true)
    }

    /// A waiting entry is grantable iff compatible with all granted
    /// entries of other transactions *and* it does not overtake an earlier
    /// conflicting waiter (fairness / starvation freedom).
    fn grantable(sh: &Shard, name: &LockName, txn: TxnId, seq: u64) -> bool {
        let Some(q) = sh.queues.get(name) else { return true };
        for e in q {
            if e.txn == txn && e.seq == seq {
                continue;
            }
            if e.granted {
                if e.txn != txn && !e.effective_mode().compatible(Self::mode_of(q, txn, seq)) {
                    return false;
                }
            } else if e.seq < seq
                && e.txn != txn
                && !e.mode.compatible(Self::mode_of(q, txn, seq))
            {
                return false;
            }
        }
        true
    }

    fn mode_of(q: &[Entry], txn: TxnId, seq: u64) -> LockMode {
        q.iter().find(|e| e.txn == txn && e.seq == seq).map(|e| e.mode).unwrap_or(LockMode::X)
    }

    /// Wait-for edges contributed by one shard. Every edge is intra-queue
    /// (waiter → conflicting granted holder, waiter → earlier conflicting
    /// waiter, converter → other conflicting granted holder), so the set
    /// is exact for the shard's current state.
    fn shard_edges(sh: &Shard) -> Vec<(TxnId, TxnId)> {
        let mut edges = Vec::new();
        for q in sh.queues.values() {
            for (i, e) in q.iter().enumerate() {
                if e.granted {
                    if let Some(target) = e.convert_to {
                        for other in q.iter().filter(|o| o.granted && o.txn != e.txn) {
                            if !other.effective_mode().compatible(target) {
                                edges.push((e.txn, other.txn));
                            }
                        }
                    }
                } else {
                    for (j, other) in q.iter().enumerate() {
                        if other.txn == e.txn {
                            continue;
                        }
                        let blocks = if other.granted {
                            !other.effective_mode().compatible(e.mode)
                        } else {
                            j < i && !other.mode.compatible(e.mode)
                        };
                        if blocks {
                            edges.push((e.txn, other.txn));
                        }
                    }
                }
            }
        }
        edges
    }

    /// Check whether `requester` is on a waits-for cycle, using the
    /// version-keyed snapshot cache: only shards mutated since the last
    /// detection recompute their edge set, and at most one shard lock is
    /// held at any moment (the caller holds none). The union can mix
    /// shard states observed at slightly different instants; the caller
    /// guards against the resulting (rare) stale positive by re-checking
    /// grantability under its shard lock before aborting.
    fn cycle_check(&self, requester: TxnId) -> bool {
        let mut det = self.detector.lock();
        for idx in 0..self.shards.shard_count() {
            let sh = self.shards.lock_index(idx);
            let cache = &mut det[idx];
            if cache.version != sh.version {
                cache.edges = Self::shard_edges(&sh);
                cache.version = sh.version;
            }
        }
        let mut edges: HashMap<TxnId, HashSet<TxnId>> = HashMap::new();
        for cache in det.iter() {
            for &(a, b) in &cache.edges {
                edges.entry(a).or_default().insert(b);
            }
        }
        // DFS from the requester looking for a path back to it.
        let mut stack: Vec<TxnId> =
            edges.get(&requester).map(|s| s.iter().copied().collect()).unwrap_or_default();
        let mut seen: HashSet<TxnId> = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == requester {
                return true;
            }
            if !seen.insert(t) {
                continue;
            }
            if let Some(next) = edges.get(&t) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }
}
