//! The lock manager proper: queues, grants, conversions, deadlock
//! detection.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use gist_wal::TxnId;

use crate::audit;
use crate::{LockMode, LockName};

/// Why a lock request failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockError {
    /// Granting would close a waits-for cycle; the requester is the
    /// victim and should abort (e.g. the §8 unique-insert race, which the
    /// paper resolves "in a standard manner by the lock manager").
    Deadlock,
    /// The request waited longer than the manager's timeout (a safety net
    /// against undetected cross-resource waits, e.g. latch-lock mixes).
    Timeout,
}

impl std::fmt::Display for LockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockError::Deadlock => write!(f, "deadlock: requester chosen as victim"),
            LockError::Timeout => write!(f, "lock wait timed out"),
        }
    }
}

impl std::error::Error for LockError {}

#[derive(Debug)]
struct Entry {
    txn: TxnId,
    mode: LockMode,
    count: u32,
    granted: bool,
    /// Pending conversion target for a granted entry.
    convert_to: Option<LockMode>,
    seq: u64,
}

impl Entry {
    /// Mode other requests must be compatible with: the conversion target
    /// is claimed eagerly so converters cannot be starved by new grants.
    fn effective_mode(&self) -> LockMode {
        match self.convert_to {
            Some(t) => self.mode.supremum(t),
            None => self.mode,
        }
    }
}

#[derive(Default)]
struct State {
    queues: HashMap<LockName, Vec<Entry>>,
    held: HashMap<TxnId, HashSet<LockName>>,
    seq: u64,
}

/// Lock-manager counters.
#[derive(Debug, Default)]
pub struct LockStats {
    /// Requests granted immediately.
    pub immediate_grants: AtomicU64,
    /// Requests that had to wait at least once.
    pub waits: AtomicU64,
    /// Requests aborted as deadlock victims.
    pub deadlocks: AtomicU64,
    /// Requests that timed out.
    pub timeouts: AtomicU64,
}

/// The lock manager.
pub struct LockManager {
    state: Mutex<State>,
    cv: Condvar,
    timeout: Duration,
    /// Counters (grants/waits/deadlocks/timeouts).
    pub stats: LockStats,
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LockManager {
    /// Manager with the default 10 s wait timeout.
    pub fn new() -> Self {
        Self::with_timeout(Duration::from_secs(10))
    }

    /// Manager with a custom wait timeout.
    pub fn with_timeout(timeout: Duration) -> Self {
        LockManager {
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
            timeout,
            stats: LockStats::default(),
        }
    }

    /// Acquire `name` in `mode` for `txn`, blocking as needed.
    ///
    /// Re-acquisitions of covered modes are counted (see
    /// [`unlock`](Self::unlock)); stronger re-requests convert with
    /// priority over new waiters.
    pub fn lock(&self, txn: TxnId, name: LockName, mode: LockMode) -> Result<(), LockError> {
        assert!(!txn.is_none(), "locks must be owned by a transaction");
        let mut st = self.state.lock();
        // Existing granted entry? Count or convert.
        if Self::granted_pos(&st, &name, txn).is_some() {
            let entry = Self::entry_mut(&mut st, &name, txn);
            if entry.mode.covers(mode) {
                entry.count += 1;
                self.stats.immediate_grants.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            let target = entry.mode.supremum(mode);
            entry.convert_to = Some(target);
            let mut waited = false;
            loop {
                if Self::conversion_compatible(&st, &name, txn, target) {
                    let entry = Self::entry_mut(&mut st, &name, txn);
                    entry.mode = target;
                    entry.convert_to = None;
                    entry.count += 1;
                    if waited {
                        self.cv.notify_all();
                    } else {
                        self.stats.immediate_grants.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(());
                }
                if self.would_deadlock(&st, txn) {
                    Self::entry_mut(&mut st, &name, txn).convert_to = None;
                    self.stats.deadlocks.fetch_add(1, Ordering::Relaxed);
                    self.cv.notify_all();
                    return Err(LockError::Deadlock);
                }
                if !waited {
                    waited = true;
                    self.stats.waits.fetch_add(1, Ordering::Relaxed);
                    // §5 coupling discipline: a blocking record-lock wait
                    // must happen latch-free.
                    audit::lock_wait(matches!(name, LockName::Rid(_)), "lock conversion");
                }
                if self.cv.wait_for(&mut st, self.timeout).timed_out() {
                    Self::entry_mut(&mut st, &name, txn).convert_to = None;
                    self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                    self.cv.notify_all();
                    return Err(LockError::Timeout);
                }
            }
        }

        // Fresh request: enqueue, wait until grantable.
        let seq = {
            st.seq += 1;
            st.seq
        };
        st.queues.entry(name).or_default().push(Entry {
            txn,
            mode,
            count: 1,
            granted: false,
            convert_to: None,
            seq,
        });
        let mut waited = false;
        loop {
            if Self::grantable(&st, &name, txn, seq) {
                let entry = Self::waiting_entry_mut(&mut st, &name, txn, seq);
                entry.granted = true;
                st.held.entry(txn).or_default().insert(name);
                if waited {
                    self.cv.notify_all();
                } else {
                    self.stats.immediate_grants.fetch_add(1, Ordering::Relaxed);
                }
                return Ok(());
            }
            if self.would_deadlock(&st, txn) {
                Self::remove_waiting(&mut st, &name, txn, seq);
                self.stats.deadlocks.fetch_add(1, Ordering::Relaxed);
                self.cv.notify_all();
                return Err(LockError::Deadlock);
            }
            if !waited {
                waited = true;
                self.stats.waits.fetch_add(1, Ordering::Relaxed);
                // §5 coupling discipline: a blocking record-lock wait
                // must happen latch-free.
                audit::lock_wait(matches!(name, LockName::Rid(_)), "fresh lock request");
            }
            if self.cv.wait_for(&mut st, self.timeout).timed_out() {
                Self::remove_waiting(&mut st, &name, txn, seq);
                self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                self.cv.notify_all();
                return Err(LockError::Timeout);
            }
        }
    }

    /// Non-blocking acquire: `Ok(true)` if granted immediately.
    pub fn try_lock(&self, txn: TxnId, name: LockName, mode: LockMode) -> bool {
        let mut st = self.state.lock();
        if let Some(pos) = Self::granted_pos(&st, &name, txn) {
            let (covers, target) = {
                let entry = &st.queues[&name][pos];
                (entry.mode.covers(mode), entry.mode.supremum(mode))
            };
            if covers {
                Self::entry_mut(&mut st, &name, txn).count += 1;
                return true;
            }
            if Self::conversion_compatible(&st, &name, txn, target) {
                let entry = Self::entry_mut(&mut st, &name, txn);
                entry.mode = target;
                entry.count += 1;
                return true;
            }
            return false;
        }
        let seq = {
            st.seq += 1;
            st.seq
        };
        st.queues.entry(name).or_default().push(Entry {
            txn,
            mode,
            count: 1,
            granted: false,
            convert_to: None,
            seq,
        });
        if Self::grantable(&st, &name, txn, seq) {
            let entry = Self::waiting_entry_mut(&mut st, &name, txn, seq);
            entry.granted = true;
            st.held.entry(txn).or_default().insert(name);
            true
        } else {
            Self::remove_waiting(&mut st, &name, txn, seq);
            false
        }
    }

    /// Release one acquisition of `name` by `txn` (used for signaling
    /// locks, which are released "as soon as the operation that set it
    /// visits that node", §7.2). Fully releases when the count drops to
    /// zero. Returns whether the entry was fully released.
    pub fn unlock(&self, txn: TxnId, name: LockName) -> bool {
        let mut st = self.state.lock();
        let Some(queue) = st.queues.get_mut(&name) else { return false };
        let Some(pos) = queue.iter().position(|e| e.txn == txn && e.granted) else {
            return false;
        };
        let entry = &mut queue[pos];
        entry.count -= 1;
        if entry.count > 0 {
            return false;
        }
        queue.remove(pos);
        if queue.is_empty() {
            st.queues.remove(&name);
        }
        if let Some(set) = st.held.get_mut(&txn) {
            set.remove(&name);
            if set.is_empty() {
                st.held.remove(&txn);
            }
        }
        self.cv.notify_all();
        true
    }

    /// Release every lock held by `txn` (commit/abort).
    pub fn release_all(&self, txn: TxnId) {
        let mut st = self.state.lock();
        let names: Vec<LockName> =
            st.held.remove(&txn).map(|s| s.into_iter().collect()).unwrap_or_default();
        for name in names {
            if let Some(queue) = st.queues.get_mut(&name) {
                queue.retain(|e| e.txn != txn);
                if queue.is_empty() {
                    st.queues.remove(&name);
                }
            }
        }
        self.cv.notify_all();
    }

    /// The mode `txn` holds on `name`, if any.
    pub fn holds(&self, txn: TxnId, name: LockName) -> Option<LockMode> {
        let st = self.state.lock();
        st.queues
            .get(&name)?
            .iter()
            .find(|e| e.txn == txn && e.granted)
            .map(|e| e.mode)
    }

    /// All granted holders of `name`.
    pub fn holders(&self, name: LockName) -> Vec<(TxnId, LockMode)> {
        let st = self.state.lock();
        st.queues
            .get(&name)
            .map(|q| q.iter().filter(|e| e.granted).map(|e| (e.txn, e.mode)).collect())
            .unwrap_or_default()
    }

    /// Number of requests waiting on `name`.
    pub fn waiter_count(&self, name: LockName) -> usize {
        let st = self.state.lock();
        st.queues.get(&name).map(|q| q.iter().filter(|e| !e.granted).count()).unwrap_or(0)
    }

    /// Names held by `txn` (snapshot).
    pub fn held_by(&self, txn: TxnId) -> Vec<LockName> {
        let st = self.state.lock();
        st.held.get(&txn).map(|s| s.iter().copied().collect()).unwrap_or_default()
    }

    /// Force-add a granted S entry on `to` for every transaction holding
    /// a granted lock on `from`.
    ///
    /// This is the lock-manager extension §10.3 calls for: "it is also
    /// necessary to replicate the signaling locks set on a node" when it
    /// splits. Safe because the new node is not yet reachable, so `to` can
    /// have no conflicting holders.
    pub fn replicate_shared(&self, from: LockName, to: LockName) {
        let mut st = self.state.lock();
        let owners: Vec<TxnId> = st
            .queues
            .get(&from)
            .map(|q| q.iter().filter(|e| e.granted).map(|e| e.txn).collect())
            .unwrap_or_default();
        for txn in owners {
            let already = st
                .queues
                .get(&to)
                .map(|q| q.iter().any(|e| e.txn == txn && e.granted))
                .unwrap_or(false);
            if already {
                continue;
            }
            st.seq += 1;
            let seq = st.seq;
            st.queues.entry(to).or_default().push(Entry {
                txn,
                mode: LockMode::S,
                count: 1,
                granted: true,
                convert_to: None,
                seq,
            });
            st.held.entry(txn).or_default().insert(to);
        }
    }

    // ---- internals ----

    fn granted_pos(st: &State, name: &LockName, txn: TxnId) -> Option<usize> {
        st.queues.get(name)?.iter().position(|e| e.txn == txn && e.granted)
    }

    fn entry_mut<'a>(st: &'a mut State, name: &LockName, txn: TxnId) -> &'a mut Entry {
        let found = st
            .queues
            .get_mut(name)
            .and_then(|q| q.iter_mut().find(|e| e.txn == txn && e.granted));
        match found {
            Some(e) => e,
            None => unreachable!("granted entry vanished while converting"),
        }
    }

    fn waiting_entry_mut<'a>(
        st: &'a mut State,
        name: &LockName,
        txn: TxnId,
        seq: u64,
    ) -> &'a mut Entry {
        let found = st
            .queues
            .get_mut(name)
            .and_then(|q| q.iter_mut().find(|e| e.txn == txn && e.seq == seq));
        match found {
            Some(e) => e,
            None => unreachable!("waiting entry vanished"),
        }
    }

    fn remove_waiting(st: &mut State, name: &LockName, txn: TxnId, seq: u64) {
        if let Some(q) = st.queues.get_mut(name) {
            q.retain(|e| !(e.txn == txn && e.seq == seq && !e.granted));
            if q.is_empty() {
                st.queues.remove(name);
            }
        }
    }

    /// A conversion to `target` by `txn` can proceed iff `target` is
    /// compatible with every *other* granted entry.
    fn conversion_compatible(st: &State, name: &LockName, txn: TxnId, target: LockMode) -> bool {
        st.queues
            .get(name)
            .map(|q| {
                q.iter()
                    .filter(|e| e.granted && e.txn != txn)
                    .all(|e| e.effective_mode().compatible(target))
            })
            .unwrap_or(true)
    }

    /// A waiting entry is grantable iff compatible with all granted
    /// entries of other transactions *and* it does not overtake an earlier
    /// conflicting waiter (fairness / starvation freedom).
    fn grantable(st: &State, name: &LockName, txn: TxnId, seq: u64) -> bool {
        let Some(q) = st.queues.get(name) else { return true };
        for e in q {
            if e.txn == txn && e.seq == seq {
                continue;
            }
            if e.granted {
                if e.txn != txn && !e.effective_mode().compatible(Self::mode_of(q, txn, seq)) {
                    return false;
                }
            } else if e.seq < seq
                && e.txn != txn
                && !e.mode.compatible(Self::mode_of(q, txn, seq))
            {
                return false;
            }
        }
        true
    }

    fn mode_of(q: &[Entry], txn: TxnId, seq: u64) -> LockMode {
        q.iter().find(|e| e.txn == txn && e.seq == seq).map(|e| e.mode).unwrap_or(LockMode::X)
    }

    /// Build the waits-for graph and check whether `requester` is on a
    /// cycle. Edges:
    /// - waiter → conflicting granted holder,
    /// - waiter → earlier conflicting waiter (FIFO implies waiting),
    /// - converter → other conflicting granted holder.
    fn would_deadlock(&self, st: &State, requester: TxnId) -> bool {
        let mut edges: HashMap<TxnId, HashSet<TxnId>> = HashMap::new();
        for q in st.queues.values() {
            for (i, e) in q.iter().enumerate() {
                if e.granted {
                    if let Some(target) = e.convert_to {
                        for other in q.iter().filter(|o| o.granted && o.txn != e.txn) {
                            if !other.effective_mode().compatible(target) {
                                edges.entry(e.txn).or_default().insert(other.txn);
                            }
                        }
                    }
                } else {
                    for (j, other) in q.iter().enumerate() {
                        if other.txn == e.txn {
                            continue;
                        }
                        let blocks = if other.granted {
                            !other.effective_mode().compatible(e.mode)
                        } else {
                            j < i && !other.mode.compatible(e.mode)
                        };
                        if blocks {
                            edges.entry(e.txn).or_default().insert(other.txn);
                        }
                    }
                }
            }
        }
        // DFS from the requester looking for a path back to it.
        let mut stack: Vec<TxnId> =
            edges.get(&requester).map(|s| s.iter().copied().collect()).unwrap_or_default();
        let mut seen: HashSet<TxnId> = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == requester {
                return true;
            }
            if !seen.insert(t) {
                continue;
            }
            if let Some(next) = edges.get(&t) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }
}
