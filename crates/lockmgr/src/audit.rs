//! Hooks into the gist-audit dynamic discipline analyzer (no-ops unless
//! the `latch-audit` feature is enabled). Call sites are identical in
//! both configurations.

#[cfg(feature = "latch-audit")]
pub(crate) use gist_audit::lock_wait_sharded;

#[cfg(not(feature = "latch-audit"))]
#[inline(always)]
pub(crate) fn lock_wait_sharded(_is_record: bool, _desc: &str, _shard: usize) {}
