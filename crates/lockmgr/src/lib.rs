#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Lock manager.
//!
//! Implements the *lock* half of the paper's latch/lock split (§5
//! footnote 8): logical, hash-table-organized, deadlock-checked locks on
//! record identifiers, nodes (the §7.2 *signaling locks*), and transaction
//! ids (used to "block on a predicate", §10.3 — every transaction holds an
//! X lock on its own id, so an S request on that id parks until the owner
//! terminates).
//!
//! Features: the standard six lock modes with the \[GR93\] compatibility
//! matrix, FIFO queues without conflicting overtakes (starvation-free),
//! lock conversion with conversion priority, waits-for-graph deadlock
//! detection with the requester as victim, per-transaction lock lists for
//! two-phase release, and individual unlock for signaling locks.

pub(crate) mod audit;
mod manager;
mod modes;
mod name;

pub use manager::{LockError, LockManager, LockStats};
pub use modes::LockMode;
pub use name::LockName;

#[cfg(test)]
mod tests;
