//! Lock modes and the compatibility/supremum matrices of \[GR93\].

use std::fmt;

/// The six standard lock modes.
///
/// The GiST protocols only need `S` and `X` (record locks, signaling
/// locks, transaction-id locks), but intention modes come for free and are
/// exercised by the tests and available to embedders that lock at table
/// granularity above the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockMode {
    /// Intention shared.
    IS,
    /// Intention exclusive.
    IX,
    /// Shared.
    S,
    /// Shared + intention exclusive.
    SIX,
    /// Update (asymmetric: compatible with S holders, not with other U/X).
    U,
    /// Exclusive.
    X,
}

impl LockMode {
    /// All modes, weakest-ish first (matrix order).
    pub const ALL: [LockMode; 6] =
        [LockMode::IS, LockMode::IX, LockMode::S, LockMode::SIX, LockMode::U, LockMode::X];

    /// Whether a holder of `self` permits a concurrent grant of `other`.
    ///
    /// `U` is asymmetric per \[GR93\]: a new S request is compatible with a
    /// granted U (readers may continue), but a new U request is not
    /// compatible with granted S (the updater must be the last reader in).
    /// We use the symmetric-conservative variant where granted-U blocks
    /// new-S as well, which is what most implementations (incl. DB2) ship:
    /// it keeps the matrix symmetric and avoids update-starvation.
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        match (self, other) {
            (IS, X) | (X, IS) => false,
            (IS, _) | (_, IS) => true,
            (IX, IX) => true,
            (IX, _) | (_, IX) => false,
            (S, S) => true,
            (S, _) | (_, S) => false,
            (SIX, _) | (_, SIX) => false,
            (U, _) | (_, U) => false,
            (X, X) => false,
        }
    }

    /// Least mode at least as strong as both (`sup` in \[GR93\]).
    pub fn supremum(self, other: LockMode) -> LockMode {
        use LockMode::*;
        if self == other {
            return self;
        }
        match (self, other) {
            (IS, m) | (m, IS) => m,
            (IX, S) | (S, IX) => SIX,
            (IX, SIX) | (SIX, IX) => SIX,
            (IX, m) | (m, IX) => {
                if m == X {
                    X
                } else {
                    // IX vs U: only X covers both.
                    X
                }
            }
            (S, SIX) | (SIX, S) => SIX,
            (S, U) | (U, S) => U,
            (S, X) | (X, S) => X,
            (SIX, U) | (U, SIX) => X,
            (SIX, X) | (X, SIX) => X,
            (U, X) | (X, U) => X,
            _ => X,
        }
    }

    /// Whether `self` is at least as strong as `other` (i.e. granting
    /// `self` covers a request for `other`).
    pub fn covers(self, other: LockMode) -> bool {
        self.supremum(other) == self
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::LockMode::{self, *};

    #[test]
    fn matrix_is_symmetric() {
        for a in LockMode::ALL {
            for b in LockMode::ALL {
                assert_eq!(a.compatible(b), b.compatible(a), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn classic_compatibilities() {
        assert!(S.compatible(S));
        assert!(!S.compatible(X));
        assert!(!X.compatible(X));
        assert!(IS.compatible(IX));
        assert!(IS.compatible(SIX));
        assert!(IX.compatible(IX));
        assert!(!IX.compatible(S));
        assert!(!SIX.compatible(SIX));
        assert!(!U.compatible(U));
        assert!(!U.compatible(X));
    }

    #[test]
    fn supremum_is_commutative_and_covering() {
        for a in LockMode::ALL {
            for b in LockMode::ALL {
                let s = a.supremum(b);
                assert_eq!(s, b.supremum(a), "{a} sup {b}");
                assert!(s.covers(a), "{s} covers {a}");
                assert!(s.covers(b), "{s} covers {b}");
            }
        }
    }

    #[test]
    fn supremum_examples() {
        assert_eq!(S.supremum(IX), SIX);
        assert_eq!(S.supremum(U), U);
        assert_eq!(U.supremum(IX), X);
        assert_eq!(IS.supremum(S), S);
        assert_eq!(X.supremum(IS), X);
    }

    #[test]
    fn covers_is_reflexive() {
        for a in LockMode::ALL {
            assert!(a.covers(a));
        }
        assert!(X.covers(S));
        assert!(!S.covers(X));
        assert!(SIX.covers(IX));
        assert!(SIX.covers(S));
    }
}
