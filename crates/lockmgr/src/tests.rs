//! Lock manager behavior tests: grants, blocking, conversion, deadlock,
//! fairness, signaling-lock replication.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use gist_pagestore::{PageId, Rid};
use gist_wal::TxnId;

use crate::{LockError, LockManager, LockMode, LockName};

fn rid(n: u32) -> LockName {
    LockName::Rid(Rid::new(PageId(n), 0))
}

#[test]
fn shared_locks_coexist() {
    let lm = LockManager::new();
    lm.lock(TxnId(1), rid(1), LockMode::S).unwrap();
    lm.lock(TxnId(2), rid(1), LockMode::S).unwrap();
    assert_eq!(lm.holders(rid(1)).len(), 2);
}

#[test]
fn exclusive_blocks_and_unblocks() {
    let lm = Arc::new(LockManager::new());
    lm.lock(TxnId(1), rid(1), LockMode::X).unwrap();
    let got_it = Arc::new(AtomicBool::new(false));
    let t = {
        let lm = lm.clone();
        let got_it = got_it.clone();
        std::thread::spawn(move || {
            lm.lock(TxnId(2), rid(1), LockMode::S).unwrap();
            got_it.store(true, Ordering::SeqCst);
        })
    };
    std::thread::sleep(Duration::from_millis(50));
    assert!(!got_it.load(Ordering::SeqCst), "S blocked behind X");
    assert_eq!(lm.waiter_count(rid(1)), 1);
    lm.release_all(TxnId(1));
    t.join().unwrap();
    assert!(got_it.load(Ordering::SeqCst));
}

#[test]
fn reacquisition_counts_and_unlock_releases_stepwise() {
    let lm = LockManager::new();
    lm.lock(TxnId(1), rid(1), LockMode::S).unwrap();
    lm.lock(TxnId(1), rid(1), LockMode::S).unwrap();
    assert!(!lm.unlock(TxnId(1), rid(1)), "count 2 -> 1, still held");
    assert_eq!(lm.holds(TxnId(1), rid(1)), Some(LockMode::S));
    assert!(lm.unlock(TxnId(1), rid(1)), "count 1 -> 0, released");
    assert_eq!(lm.holds(TxnId(1), rid(1)), None);
}

#[test]
fn weaker_rerequest_is_covered() {
    let lm = LockManager::new();
    lm.lock(TxnId(1), rid(1), LockMode::X).unwrap();
    lm.lock(TxnId(1), rid(1), LockMode::S).unwrap();
    assert_eq!(lm.holds(TxnId(1), rid(1)), Some(LockMode::X), "no downgrade");
}

#[test]
fn conversion_upgrades_when_alone() {
    let lm = LockManager::new();
    lm.lock(TxnId(1), rid(1), LockMode::S).unwrap();
    lm.lock(TxnId(1), rid(1), LockMode::X).unwrap();
    assert_eq!(lm.holds(TxnId(1), rid(1)), Some(LockMode::X));
}

#[test]
fn conversion_waits_for_other_readers() {
    let lm = Arc::new(LockManager::new());
    lm.lock(TxnId(1), rid(1), LockMode::S).unwrap();
    lm.lock(TxnId(2), rid(1), LockMode::S).unwrap();
    let done = Arc::new(AtomicBool::new(false));
    let t = {
        let lm = lm.clone();
        let done = done.clone();
        std::thread::spawn(move || {
            lm.lock(TxnId(1), rid(1), LockMode::X).unwrap();
            done.store(true, Ordering::SeqCst);
        })
    };
    std::thread::sleep(Duration::from_millis(50));
    assert!(!done.load(Ordering::SeqCst), "upgrade blocked by T2's S");
    lm.release_all(TxnId(2));
    t.join().unwrap();
    assert_eq!(lm.holds(TxnId(1), rid(1)), Some(LockMode::X));
}

#[test]
fn conversion_beats_new_waiters() {
    // T1 holds S and wants X; T3 is queued for X. When T2 releases its S,
    // the conversion must win over the queued fresh X.
    let lm = Arc::new(LockManager::new());
    lm.lock(TxnId(1), rid(1), LockMode::S).unwrap();
    lm.lock(TxnId(2), rid(1), LockMode::S).unwrap();
    let order = Arc::new(AtomicU32::new(0));
    let t1 = {
        let (lm, order) = (lm.clone(), order.clone());
        std::thread::spawn(move || {
            lm.lock(TxnId(1), rid(1), LockMode::X).unwrap();
            order.compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst).ok();
            lm.release_all(TxnId(1));
        })
    };
    std::thread::sleep(Duration::from_millis(30));
    let t3 = {
        let (lm, order) = (lm.clone(), order.clone());
        std::thread::spawn(move || {
            lm.lock(TxnId(3), rid(1), LockMode::X).unwrap();
            order.compare_exchange(0, 3, Ordering::SeqCst, Ordering::SeqCst).ok();
            lm.release_all(TxnId(3));
        })
    };
    std::thread::sleep(Duration::from_millis(30));
    lm.release_all(TxnId(2));
    t1.join().unwrap();
    t3.join().unwrap();
    assert_eq!(order.load(Ordering::SeqCst), 1, "converter granted first");
}

#[test]
fn deadlock_detected_two_txns() {
    // T1 holds A, T2 holds B; T1 wants B (blocks), T2 wants A (deadlock).
    let lm = Arc::new(LockManager::new());
    lm.lock(TxnId(1), rid(1), LockMode::X).unwrap();
    lm.lock(TxnId(2), rid(2), LockMode::X).unwrap();
    let t = {
        let lm = lm.clone();
        std::thread::spawn(move || lm.lock(TxnId(1), rid(2), LockMode::X))
    };
    std::thread::sleep(Duration::from_millis(50));
    let res = lm.lock(TxnId(2), rid(1), LockMode::X);
    assert_eq!(res, Err(LockError::Deadlock), "closing request is the victim");
    // The victim aborts; T1's request can now proceed.
    lm.release_all(TxnId(2));
    assert_eq!(t.join().unwrap(), Ok(()));
    assert_eq!(lm.stats.deadlocks.load(Ordering::Relaxed), 1);
}

#[test]
fn conversion_deadlock_detected() {
    // Both hold S on the same name and both upgrade to X: a classic
    // conversion deadlock (the §8 unique-insert race shape).
    let lm = Arc::new(LockManager::new());
    lm.lock(TxnId(1), rid(1), LockMode::S).unwrap();
    lm.lock(TxnId(2), rid(1), LockMode::S).unwrap();
    let t = {
        let lm = lm.clone();
        std::thread::spawn(move || lm.lock(TxnId(1), rid(1), LockMode::X))
    };
    std::thread::sleep(Duration::from_millis(50));
    let res = lm.lock(TxnId(2), rid(1), LockMode::X);
    assert_eq!(res, Err(LockError::Deadlock));
    lm.release_all(TxnId(2));
    assert_eq!(t.join().unwrap(), Ok(()));
}

#[test]
fn three_txn_cycle_detected() {
    let lm = Arc::new(LockManager::new());
    lm.lock(TxnId(1), rid(1), LockMode::X).unwrap();
    lm.lock(TxnId(2), rid(2), LockMode::X).unwrap();
    lm.lock(TxnId(3), rid(3), LockMode::X).unwrap();
    let t1 = {
        let lm = lm.clone();
        std::thread::spawn(move || lm.lock(TxnId(1), rid(2), LockMode::X))
    };
    let t2 = {
        let lm = lm.clone();
        std::thread::spawn(move || lm.lock(TxnId(2), rid(3), LockMode::X))
    };
    std::thread::sleep(Duration::from_millis(80));
    let res = lm.lock(TxnId(3), rid(1), LockMode::X);
    assert_eq!(res, Err(LockError::Deadlock));
    lm.release_all(TxnId(3));
    // T2 gets rid(3) now; then release the rest so T1 finishes too.
    assert_eq!(t2.join().unwrap(), Ok(()));
    lm.release_all(TxnId(2));
    assert_eq!(t1.join().unwrap(), Ok(()));
}

#[test]
fn fifo_no_conflicting_overtake() {
    // Granted S; X waits; a later S must not overtake the waiting X.
    let lm = Arc::new(LockManager::new());
    lm.lock(TxnId(1), rid(1), LockMode::S).unwrap();
    let x_granted = Arc::new(AtomicBool::new(false));
    let tx = {
        let (lm, xg) = (lm.clone(), x_granted.clone());
        std::thread::spawn(move || {
            lm.lock(TxnId(2), rid(1), LockMode::X).unwrap();
            xg.store(true, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(50));
            lm.release_all(TxnId(2));
        })
    };
    std::thread::sleep(Duration::from_millis(50));
    let s_granted = Arc::new(AtomicBool::new(false));
    let ts = {
        let (lm, sg) = (lm.clone(), s_granted.clone());
        std::thread::spawn(move || {
            lm.lock(TxnId(3), rid(1), LockMode::S).unwrap();
            sg.store(true, Ordering::SeqCst);
        })
    };
    std::thread::sleep(Duration::from_millis(50));
    assert!(!s_granted.load(Ordering::SeqCst), "S queued behind waiting X");
    lm.release_all(TxnId(1));
    tx.join().unwrap();
    ts.join().unwrap();
    assert!(x_granted.load(Ordering::SeqCst));
    assert!(s_granted.load(Ordering::SeqCst));
    lm.release_all(TxnId(3));
}

#[test]
fn timeout_fires() {
    let lm = LockManager::with_timeout(Duration::from_millis(50));
    lm.lock(TxnId(1), rid(1), LockMode::X).unwrap();
    let res = lm.lock(TxnId(2), rid(1), LockMode::S);
    assert_eq!(res, Err(LockError::Timeout));
    assert_eq!(lm.waiter_count(rid(1)), 0, "timed-out waiter removed");
}

#[test]
fn try_lock_does_not_block() {
    let lm = LockManager::new();
    lm.lock(TxnId(1), rid(1), LockMode::X).unwrap();
    assert!(!lm.try_lock(TxnId(2), rid(1), LockMode::S));
    assert!(lm.try_lock(TxnId(2), rid(2), LockMode::S));
    assert_eq!(lm.waiter_count(rid(1)), 0);
}

#[test]
fn release_all_clears_every_name() {
    let lm = LockManager::new();
    for i in 0..10 {
        lm.lock(TxnId(1), rid(i), LockMode::S).unwrap();
    }
    assert_eq!(lm.held_by(TxnId(1)).len(), 10);
    lm.release_all(TxnId(1));
    assert!(lm.held_by(TxnId(1)).is_empty());
    for i in 0..10 {
        assert!(lm.holders(rid(i)).is_empty());
    }
}

#[test]
fn txn_id_lock_blocks_until_owner_ends() {
    // The §10.3 "block on a predicate" pattern: owner X-locks its own id;
    // a blocker S-locks that id and parks until release_all.
    let lm = Arc::new(LockManager::new());
    let owner = TxnId(7);
    lm.lock(owner, LockName::Txn(owner), LockMode::X).unwrap();
    let unblocked = Arc::new(AtomicBool::new(false));
    let t = {
        let (lm, ub) = (lm.clone(), unblocked.clone());
        std::thread::spawn(move || {
            lm.lock(TxnId(8), LockName::Txn(owner), LockMode::S).unwrap();
            ub.store(true, Ordering::SeqCst);
            lm.unlock(TxnId(8), LockName::Txn(owner));
        })
    };
    std::thread::sleep(Duration::from_millis(50));
    assert!(!unblocked.load(Ordering::SeqCst));
    lm.release_all(owner);
    t.join().unwrap();
    assert!(unblocked.load(Ordering::SeqCst));
}

#[test]
fn replicate_shared_copies_signaling_locks() {
    // §10.3: a node split replicates the signaling locks of the original
    // node onto the new sibling.
    let lm = LockManager::new();
    let orig = LockName::Node { index: 1, page: PageId(10) };
    let sibling = LockName::Node { index: 1, page: PageId(11) };
    lm.lock(TxnId(1), orig, LockMode::S).unwrap();
    lm.lock(TxnId(2), orig, LockMode::S).unwrap();
    lm.replicate_shared(orig, sibling);
    let mut owners: Vec<TxnId> = lm.holders(sibling).into_iter().map(|(t, _)| t).collect();
    owners.sort();
    assert_eq!(owners, vec![TxnId(1), TxnId(2)]);
    // Replication is idempotent.
    lm.replicate_shared(orig, sibling);
    assert_eq!(lm.holders(sibling).len(), 2);
    // And release_all cleans up replicated entries too.
    lm.release_all(TxnId(1));
    assert_eq!(lm.holders(sibling).len(), 1);
}

#[test]
fn replicate_shared_racing_release_all_leaves_no_orphans() {
    // Regression: `release_all` used to snapshot the held set once; a
    // concurrent `replicate_shared` that still saw the txn granted on the
    // source node could add a granted S entry on the sibling *after* the
    // snapshot, orphaning it forever (every later conflicting request on
    // the sibling waited to timeout). `release_all` now loops until the
    // held set stays empty.
    let lm = Arc::new(LockManager::with_timeout_and_shards(Duration::from_secs(10), 8));
    let orig = LockName::Node { index: 1, page: PageId(10) };
    let sibling = LockName::Node { index: 1, page: PageId(11) };
    for round in 0..200u64 {
        let owner = TxnId(round + 1);
        lm.lock(owner, orig, LockMode::S).unwrap();
        let splitter = {
            let lm = lm.clone();
            std::thread::spawn(move || {
                for _ in 0..20 {
                    lm.replicate_shared(orig, sibling);
                }
            })
        };
        lm.release_all(owner);
        splitter.join().unwrap();
        // Whatever the interleaving, the terminated owner must survive
        // nowhere: not in its held set, not on either node.
        assert!(lm.held_by(owner).is_empty(), "round {round}: held set not empty");
        assert!(lm.holders(orig).is_empty(), "round {round}: source grant survived");
        assert!(
            lm.holders(sibling).is_empty(),
            "round {round}: orphaned replicated grant"
        );
    }
}

#[test]
fn node_deletion_drain_pattern() {
    // A deleter probes for signaling locks with try_lock X; present locks
    // make the probe fail, and once the scanner moves on the delete works.
    let lm = LockManager::new();
    let node = LockName::Node { index: 1, page: PageId(5) };
    lm.lock(TxnId(1), node, LockMode::S).unwrap(); // scanner's signal
    assert!(!lm.try_lock(TxnId(2), node, LockMode::X), "drain: deleter backs off");
    lm.unlock(TxnId(1), node); // scanner visited the node
    assert!(lm.try_lock(TxnId(2), node, LockMode::X), "no pointers left: delete ok");
}

#[test]
fn stress_many_threads_random_locks() {
    let lm = Arc::new(LockManager::with_timeout(Duration::from_secs(5)));
    let mut handles = Vec::new();
    for t in 1..=8u64 {
        let lm = lm.clone();
        handles.push(std::thread::spawn(move || {
            let mut granted = 0u32;
            for i in 0..200u32 {
                let txn = TxnId(t * 1000 + i as u64);
                let name = rid((t as u32 * 7 + i) % 5);
                let mode = if i % 3 == 0 { LockMode::X } else { LockMode::S };
                match lm.lock(txn, name, mode) {
                    Ok(()) => {
                        granted += 1;
                        lm.release_all(txn);
                    }
                    Err(LockError::Deadlock) => lm.release_all(txn),
                    Err(LockError::Timeout) => panic!("unexpected timeout"),
                }
            }
            granted
        }));
    }
    let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, 8 * 200, "single-lock txns never deadlock");
    for i in 0..5 {
        assert!(lm.holders(rid(i)).is_empty(), "all queues drained");
    }
}

#[test]
fn intention_modes_compose() {
    // Table-granularity protocol sketch: IS + IX coexist; S blocks IX.
    let lm = LockManager::new();
    let table = LockName::Custom(1);
    lm.lock(TxnId(1), table, LockMode::IS).unwrap();
    lm.lock(TxnId(2), table, LockMode::IX).unwrap();
    assert!(!lm.try_lock(TxnId(3), table, LockMode::S), "S vs IX conflicts");
    lm.release_all(TxnId(2));
    assert!(lm.try_lock(TxnId(3), table, LockMode::S), "S vs IS is fine");
    // T1 escalates IS -> SIX (covers S + IX): conflicts with T3's S.
    assert!(!lm.try_lock(TxnId(1), table, LockMode::SIX));
    lm.release_all(TxnId(3));
    assert!(lm.try_lock(TxnId(1), table, LockMode::SIX));
    assert_eq!(lm.holds(TxnId(1), table), Some(LockMode::SIX));
}

#[test]
fn upgrade_wins_over_queued_fresh_request_even_under_load() {
    // Converter priority must hold with several fresh waiters queued.
    let lm = Arc::new(LockManager::new());
    lm.lock(TxnId(1), rid(1), LockMode::S).unwrap();
    lm.lock(TxnId(2), rid(1), LockMode::S).unwrap();
    let mut fresh = Vec::new();
    for t in 10..13u64 {
        let lm = lm.clone();
        fresh.push(std::thread::spawn(move || {
            lm.lock(TxnId(t), rid(1), LockMode::X).unwrap();
            lm.release_all(TxnId(t));
        }));
    }
    std::thread::sleep(Duration::from_millis(50));
    let upgrader = {
        let lm = lm.clone();
        std::thread::spawn(move || {
            lm.lock(TxnId(1), rid(1), LockMode::X).unwrap();
            let got_x = lm.holds(TxnId(1), rid(1)) == Some(LockMode::X);
            lm.release_all(TxnId(1));
            got_x
        })
    };
    std::thread::sleep(Duration::from_millis(50));
    lm.release_all(TxnId(2)); // unblocks the upgrade first
    assert!(upgrader.join().unwrap(), "conversion granted X");
    for f in fresh {
        f.join().unwrap();
    }
    assert!(lm.holders(rid(1)).is_empty());
}

#[test]
fn replicate_shared_is_noop_without_holders() {
    let lm = LockManager::new();
    let a = LockName::Node { index: 1, page: PageId(1) };
    let b = LockName::Node { index: 1, page: PageId(2) };
    lm.replicate_shared(a, b);
    assert!(lm.holders(b).is_empty());
}

#[test]
fn unlock_of_unheld_lock_is_harmless() {
    let lm = LockManager::new();
    assert!(!lm.unlock(TxnId(1), rid(7)));
    lm.release_all(TxnId(1));
}

#[test]
fn single_shard_reproduces_preshard_semantics() {
    // Shard count 1 is exactly the old single-mutex manager: determinism
    // of the victim choice, FIFO fairness and stats must be unchanged.
    let lm = Arc::new(LockManager::with_timeout_and_shards(Duration::from_secs(10), 1));
    assert_eq!(lm.shard_count(), 1);
    assert_eq!(lm.shard_of(&rid(1)), 0);
    assert_eq!(lm.shard_of(&rid(999)), 0);
    // Two-txn deadlock: closing request is the victim, exactly once.
    lm.lock(TxnId(1), rid(1), LockMode::X).unwrap();
    lm.lock(TxnId(2), rid(2), LockMode::X).unwrap();
    let t = {
        let lm = lm.clone();
        std::thread::spawn(move || lm.lock(TxnId(1), rid(2), LockMode::X))
    };
    std::thread::sleep(Duration::from_millis(50));
    let res = lm.lock(TxnId(2), rid(1), LockMode::X);
    assert_eq!(res, Err(LockError::Deadlock), "closing request is the victim");
    lm.release_all(TxnId(2));
    assert_eq!(t.join().unwrap(), Ok(()));
    assert_eq!(lm.stats.deadlocks.load(Ordering::Relaxed), 1);
    lm.release_all(TxnId(1));
    // Re-acquisition counting still works through the single shard.
    lm.lock(TxnId(3), rid(5), LockMode::S).unwrap();
    lm.lock(TxnId(3), rid(5), LockMode::S).unwrap();
    assert!(!lm.unlock(TxnId(3), rid(5)));
    assert!(lm.unlock(TxnId(3), rid(5)));
}

#[test]
fn sharded_manager_spreads_names() {
    let lm = LockManager::with_timeout_and_shards(Duration::from_secs(10), 16);
    assert_eq!(lm.shard_count(), 16);
    let mut seen = std::collections::HashSet::new();
    for i in 0..64u32 {
        seen.insert(lm.shard_of(&rid(i)));
    }
    assert!(seen.len() >= 4, "sequential names collapsed to {} shard(s)", seen.len());
    // Independent names on (typically) different shards still grant and
    // release correctly, and held_by spans shards.
    for i in 0..64u32 {
        lm.lock(TxnId(1), rid(i), LockMode::S).unwrap();
    }
    assert_eq!(lm.held_by(TxnId(1)).len(), 64);
    lm.release_all(TxnId(1));
    assert!(lm.held_by(TxnId(1)).is_empty());
    for i in 0..64u32 {
        assert!(lm.holders(rid(i)).is_empty());
    }
}

#[test]
fn cross_shard_deadlock_detected() {
    // Force the two names into *different* shards so the cycle spans
    // shards and only the snapshot detector can see it.
    let lm = Arc::new(LockManager::with_timeout_and_shards(Duration::from_secs(10), 8));
    let mut a = rid(1);
    let mut b = rid(2);
    let mut n = 3u32;
    while lm.shard_of(&a) == lm.shard_of(&b) {
        b = rid(n);
        n += 1;
    }
    assert_ne!(lm.shard_of(&a), lm.shard_of(&b));
    // Normalize: the cycle direction must not matter.
    if lm.shard_of(&a) > lm.shard_of(&b) {
        std::mem::swap(&mut a, &mut b);
    }
    lm.lock(TxnId(1), a, LockMode::X).unwrap();
    lm.lock(TxnId(2), b, LockMode::X).unwrap();
    let t = {
        let (lm, b) = (lm.clone(), b);
        std::thread::spawn(move || lm.lock(TxnId(1), b, LockMode::X))
    };
    std::thread::sleep(Duration::from_millis(50));
    let res = lm.lock(TxnId(2), a, LockMode::X);
    assert_eq!(res, Err(LockError::Deadlock), "cross-shard cycle found");
    lm.release_all(TxnId(2));
    assert_eq!(t.join().unwrap(), Ok(()));
    lm.release_all(TxnId(1));
}

#[test]
fn waiter_survives_owner_abort_release_order() {
    // Release-all while a waiter is parked: the waiter gets the lock, and
    // the queue stays consistent.
    let lm = Arc::new(LockManager::new());
    lm.lock(TxnId(1), rid(1), LockMode::X).unwrap();
    let mut waiters = Vec::new();
    for t in 2..6u64 {
        let lm = lm.clone();
        waiters.push(std::thread::spawn(move || {
            lm.lock(TxnId(t), rid(1), LockMode::S).unwrap();
        }));
    }
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(lm.waiter_count(rid(1)), 4);
    lm.release_all(TxnId(1));
    for w in waiters {
        w.join().unwrap();
    }
    assert_eq!(lm.holders(rid(1)).len(), 4, "all S waiters granted together");
}

#[test]
fn dead_parked_waiter_does_not_strand_later_waiters() {
    // A waiter whose wait dies (here: via the manager's timeout safety
    // net — the same cleanup path a panicking waiter thread unwinds
    // through) must leave the FIFO queue, or every waiter queued behind
    // it would be stranded forever once the holder releases.
    let lm = Arc::new(LockManager::with_timeout(Duration::from_millis(150)));
    lm.lock(TxnId(1), rid(1), LockMode::X).unwrap();
    // B parks behind A and will die in the queue (timeout).
    let b = {
        let lm = lm.clone();
        std::thread::spawn(move || lm.lock(TxnId(2), rid(1), LockMode::X))
    };
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(lm.waiter_count(rid(1)), 1, "B is parked");
    // C queues strictly behind B. Its own patience is irrelevant to the
    // bug: what matters is that B's corpse must not gate C's grant.
    let c = {
        let lm = lm.clone();
        std::thread::spawn(move || lm.lock(TxnId(3), rid(1), LockMode::X))
    };
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(lm.waiter_count(rid(1)), 2, "C is parked behind B");
    // B dies in the queue.
    assert_eq!(b.join().unwrap(), Err(LockError::Timeout));
    assert_eq!(lm.waiter_count(rid(1)), 1, "B's entry was reaped");
    // A releases: C — not B's ghost — must be granted.
    lm.release_all(TxnId(1));
    assert_eq!(c.join().unwrap(), Ok(()));
    let holders: Vec<TxnId> = lm.holders(rid(1)).into_iter().map(|(t, _)| t).collect();
    assert_eq!(holders, vec![TxnId(3)]);
    assert!(lm.stats.timeouts.load(Ordering::Relaxed) >= 1);
    lm.release_all(TxnId(3));
}
