//! Lock names: what can be locked.

use std::fmt;

use gist_pagestore::{PageId, Rid};
use gist_wal::TxnId;

/// A lockable resource.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockName {
    /// A data record, named by RID — the unit of the hybrid protocol's
    /// two-phase locking (§4.3, "data-only locking" as in ARIES/IM).
    Rid(Rid),
    /// An index node (within index `index`). Used for the §7.2 *signaling
    /// locks*: an S lock here does not restrict physical access to the
    /// page (that is the latch's job); it only tells node deletion that an
    /// operation still holds a pointer.
    Node {
        /// Index identifier (lock names are database-global).
        index: u32,
        /// The node's page.
        page: PageId,
    },
    /// A transaction id. Every transaction X-locks its own id at start;
    /// blocking "on a predicate" (§10.3) is an S request on the owner's
    /// id.
    Txn(TxnId),
    /// Escape hatch for embedders (e.g. table locks above the index).
    Custom(u64),
}

impl fmt::Debug for LockName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockName::Rid(r) => write!(f, "L:{r:?}"),
            LockName::Node { index, page } => write!(f, "L:idx{index}/{page}"),
            LockName::Txn(t) => write!(f, "L:{t}"),
            LockName::Custom(v) => write!(f, "L:custom#{v}"),
        }
    }
}
