#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # gist-overload — admission control and overload-health reporting
//!
//! The engine's other resource governors are all *internal*: the buffer
//! pool caps pages, the lock manager caps waits with timeouts, the
//! commit pipeline bounds how long a committer parks. None of them
//! bounds how much work is *admitted* in the first place, so under a
//! sustained arrival overload every internal queue (log buffer, epoch
//! retire bins, lock wait-for graph) grows together and the engine
//! thrashes instead of shedding.
//!
//! [`AdmissionController`] is that missing front gate: a fixed pool of
//! in-flight transaction credits. A new transaction either takes a
//! credit immediately, parks on a *deadline-bounded* condvar until one
//! frees, or — past the deadline — is either **shed** (the caller gets
//! `GistError::Overloaded` and retries through the jittered backoff in
//! `Db::run_txn`) or **force-admitted** (for the infallible
//! `Db::begin` path, which must not change signature; forced
//! admissions are counted and degrade the health verdict instead).
//!
//! Credits are released through the transaction-end observer hook in
//! `gist-txn`, which fires on commit *and* abort (including watchdog
//! teardown), so a credit can never outlive its transaction. Tokens
//! are bound explicitly ([`AdmissionController::bind`]) so transactions
//! begun behind the controller's back (internal maintenance, recovery,
//! raw `TxnManager::begin` in tests) release as a no-op.
//!
//! The crate also owns the unified [`HealthReport`] vocabulary
//! (`Healthy` / `Degraded { reasons }` / `ReadOnly { reasons }`) that
//! `Db::health()` assembles from the flusher, maint, epoch, WAL
//! backpressure, and admission heartbeats.

use gist_sync::{Condvar, Mutex};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Admission controller
// ---------------------------------------------------------------------

/// Tuning knobs for the admission gate.
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Maximum transactions in flight at once. `0` disables the gate
    /// (every admission succeeds immediately; in-flight is still
    /// counted for observability).
    pub max_in_flight: usize,
    /// How long a new transaction may park waiting for a credit before
    /// it is shed (fallible path) or force-admitted (infallible path).
    pub admit_timeout: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { max_in_flight: 1024, admit_timeout: Duration::from_millis(500) }
    }
}

/// Counter snapshot for `robustness_stats()` / the shell `health` view.
#[derive(Clone, Copy, Debug, Default)]
pub struct AdmissionStats {
    /// Transactions currently holding a credit.
    pub in_flight: u64,
    /// Configured credit pool size (`0` = unlimited).
    pub capacity: u64,
    /// Admissions that succeeded (immediately or after a park).
    pub admitted: u64,
    /// Admissions that parked at least once before resolving.
    pub parked: u64,
    /// Fallible admissions that timed out and were shed.
    pub shed: u64,
    /// Infallible admissions that timed out and barged past the cap.
    pub forced: u64,
}

struct AdmissionState {
    in_flight: usize,
    /// Transaction tokens currently bound to a credit. A release for an
    /// unbound token is a no-op, so transactions that bypassed the gate
    /// (recovery, internal maintenance) cannot corrupt the pool.
    bound: HashSet<u64>,
}

/// Bounded in-flight transaction credit pool with deadline-parked
/// waiters. See the crate docs for the admit / bind / release protocol.
pub struct AdmissionController {
    cfg: AdmissionConfig,
    state: Mutex<AdmissionState>,
    freed: Condvar,
    admitted: AtomicU64,
    parked: AtomicU64,
    shed: AtomicU64,
    forced: AtomicU64,
}

impl AdmissionController {
    /// New controller with the given knobs.
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdmissionController {
            cfg,
            state: Mutex::new(AdmissionState { in_flight: 0, bound: HashSet::new() }),
            freed: Condvar::new(),
            admitted: AtomicU64::new(0),
            parked: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            forced: AtomicU64::new(0),
        }
    }

    /// Controller that admits everything (capacity `0`).
    pub fn unlimited() -> Self {
        AdmissionController::new(AdmissionConfig { max_in_flight: 0, ..Default::default() })
    }

    fn gated(&self) -> bool {
        self.cfg.max_in_flight > 0
    }

    /// Fallible admission: take a credit, parking up to the configured
    /// deadline for one to free. Returns `false` when the deadline
    /// expires with the pool still full — the caller must shed the
    /// transaction (`GistError::Overloaded`) rather than start it.
    pub fn try_admit(&self) -> bool {
        let mut st = self.state.lock();
        if self.gated() && st.in_flight >= self.cfg.max_in_flight {
            self.parked.fetch_add(1, Ordering::Relaxed);
            let deadline = Instant::now() + self.cfg.admit_timeout;
            while st.in_flight >= self.cfg.max_in_flight {
                if self.freed.wait_until(&mut st, deadline).timed_out() {
                    if st.in_flight < self.cfg.max_in_flight {
                        break; // credit freed in the race with the timeout
                    }
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
            }
        }
        st.in_flight += 1;
        self.admitted.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Infallible admission for the signature-stable `Db::begin` path:
    /// park like [`try_admit`](Self::try_admit), but on deadline expiry
    /// barge past the cap instead of failing. Forced admissions are
    /// counted and reported as a `Degraded` health reason.
    pub fn force_admit(&self) {
        let mut st = self.state.lock();
        if self.gated() && st.in_flight >= self.cfg.max_in_flight {
            self.parked.fetch_add(1, Ordering::Relaxed);
            let deadline = Instant::now() + self.cfg.admit_timeout;
            while st.in_flight >= self.cfg.max_in_flight {
                if self.freed.wait_until(&mut st, deadline).timed_out() {
                    break;
                }
            }
            if st.in_flight >= self.cfg.max_in_flight {
                self.forced.fetch_add(1, Ordering::Relaxed);
            }
        }
        st.in_flight += 1;
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Bind an already-acquired credit to a transaction token so the
    /// end-of-transaction observer can release it. Must follow a
    /// successful [`try_admit`](Self::try_admit) or
    /// [`force_admit`](Self::force_admit) on the same thread.
    pub fn bind(&self, token: u64) {
        self.state.lock().bound.insert(token);
    }

    /// Drop the credit bound to `token`, waking one parked waiter.
    /// Returns `false` (and does nothing) when the token never held a
    /// credit — transactions begun behind the gate release harmlessly.
    pub fn release(&self, token: u64) -> bool {
        let mut st = self.state.lock();
        if !st.bound.remove(&token) {
            return false;
        }
        st.in_flight = st.in_flight.saturating_sub(1);
        drop(st);
        self.freed.notify_one();
        true
    }

    /// Whether the credit pool is currently exhausted (new arrivals
    /// will park). Always `false` for an unlimited controller.
    pub fn is_saturated(&self) -> bool {
        self.gated() && self.state.lock().in_flight >= self.cfg.max_in_flight
    }

    /// Counter snapshot.
    pub fn stats(&self) -> AdmissionStats {
        let st = self.state.lock();
        AdmissionStats {
            in_flight: st.in_flight as u64,
            capacity: self.cfg.max_in_flight as u64,
            admitted: self.admitted.load(Ordering::Relaxed),
            parked: self.parked.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            forced: self.forced.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------
// Health reporting
// ---------------------------------------------------------------------

/// Aggregate engine condition, escalating `Healthy` → `Degraded` →
/// `ReadOnly`. The verdict reflects *current* subsystem state (is the
/// flusher alive? is the epoch advancing? is the WAL backlog under its
/// cap?), not lifetime counters, so an engine that weathered a past
/// stall reports `Healthy` again once conditions clear.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HealthState {
    /// Every subsystem heartbeat is nominal.
    Healthy,
    /// Still serving reads and writes, but in a degraded regime (inline
    /// flushes, latched-fallback reads, forced admissions, ...).
    Degraded {
        /// One human-readable line per degraded subsystem.
        reasons: Vec<String>,
    },
    /// Mutations are refused (e.g. the buffer pool poisoned itself
    /// after an unrecoverable write-back failure); reads still work.
    ReadOnly {
        /// One human-readable line per read-only trigger.
        reasons: Vec<String>,
    },
}

impl HealthState {
    /// Short label for tables and the shell (`healthy` / `degraded` /
    /// `read-only`).
    pub fn label(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded { .. } => "degraded",
            HealthState::ReadOnly { .. } => "read-only",
        }
    }

    /// All reasons carried by the verdict (empty for `Healthy`).
    pub fn reasons(&self) -> &[String] {
        match self {
            HealthState::Healthy => &[],
            HealthState::Degraded { reasons } | HealthState::ReadOnly { reasons } => reasons,
        }
    }
}

/// Builder-style aggregate of subsystem heartbeats: start `Healthy`,
/// let each subsystem [`degrade`](Self::degrade) or
/// [`read_only`](Self::read_only) the verdict, and read the final
/// [`state`](Self::state). Escalation is monotone — a `ReadOnly` reason
/// is never downgraded by a later `Degraded` one.
#[derive(Clone, Debug, Default)]
pub struct HealthReport {
    degraded: Vec<String>,
    read_only: Vec<String>,
}

impl HealthReport {
    /// Report with no findings (verdict `Healthy`).
    pub fn healthy() -> Self {
        HealthReport::default()
    }

    /// Record a degraded-regime finding.
    pub fn degrade(&mut self, reason: impl Into<String>) -> &mut Self {
        self.degraded.push(reason.into());
        self
    }

    /// Record a read-only trigger (dominates any degraded finding).
    pub fn read_only(&mut self, reason: impl Into<String>) -> &mut Self {
        self.read_only.push(reason.into());
        self
    }

    /// Final verdict. `ReadOnly` reasons dominate; `Degraded` carries
    /// every finding (including the read-only ones would be confusing,
    /// so each tier lists only its own).
    pub fn state(&self) -> HealthState {
        if !self.read_only.is_empty() {
            HealthState::ReadOnly { reasons: self.read_only.clone() }
        } else if !self.degraded.is_empty() {
            HealthState::Degraded { reasons: self.degraded.clone() }
        } else {
            HealthState::Healthy
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn small(cap: usize, timeout_ms: u64) -> AdmissionController {
        AdmissionController::new(AdmissionConfig {
            max_in_flight: cap,
            admit_timeout: Duration::from_millis(timeout_ms),
        })
    }

    #[test]
    fn admits_up_to_capacity_then_sheds() {
        let ac = small(2, 10);
        assert!(ac.try_admit());
        ac.bind(1);
        assert!(ac.try_admit());
        ac.bind(2);
        assert!(!ac.try_admit(), "third admission must shed after the deadline");
        let s = ac.stats();
        assert_eq!((s.in_flight, s.admitted, s.shed), (2, 2, 1));
        assert!(s.parked >= 1);
        assert!(ac.is_saturated());
    }

    #[test]
    fn release_frees_a_parked_waiter() {
        let ac = Arc::new(small(1, 5_000));
        assert!(ac.try_admit());
        ac.bind(7);
        let ac2 = ac.clone();
        let h = std::thread::spawn(move || ac2.try_admit());
        // Give the waiter time to park, then free the credit.
        std::thread::sleep(Duration::from_millis(20));
        assert!(ac.release(7));
        assert!(h.join().unwrap(), "waiter must be admitted once a credit frees");
        assert_eq!(ac.stats().in_flight, 1);
    }

    #[test]
    fn forced_admission_barges_past_the_cap() {
        let ac = small(1, 10);
        assert!(ac.try_admit());
        ac.bind(1);
        ac.force_admit();
        ac.bind(2);
        let s = ac.stats();
        assert_eq!((s.in_flight, s.forced), (2, 1));
        // Both credits release normally.
        assert!(ac.release(1));
        assert!(ac.release(2));
        assert_eq!(ac.stats().in_flight, 0);
    }

    #[test]
    fn unbound_release_is_a_noop() {
        let ac = small(1, 10);
        assert!(!ac.release(99));
        assert!(ac.try_admit());
        ac.bind(1);
        assert!(!ac.release(2), "never-bound token must not free the credit");
        assert_eq!(ac.stats().in_flight, 1);
    }

    #[test]
    fn unlimited_controller_never_parks() {
        let ac = AdmissionController::unlimited();
        for t in 0..64 {
            assert!(ac.try_admit());
            ac.bind(t);
        }
        let s = ac.stats();
        assert_eq!((s.in_flight, s.parked, s.shed, s.forced), (64, 0, 0, 0));
        assert!(!ac.is_saturated());
    }

    #[test]
    fn health_report_escalates_monotonically() {
        let mut r = HealthReport::healthy();
        assert_eq!(r.state(), HealthState::Healthy);
        assert_eq!(r.state().label(), "healthy");
        r.degrade("flusher stalled");
        assert_eq!(r.state().label(), "degraded");
        assert_eq!(r.state().reasons(), ["flusher stalled".to_string()]);
        r.read_only("pool poisoned");
        r.degrade("epoch stalled");
        let s = r.state();
        assert_eq!(s.label(), "read-only");
        assert_eq!(s.reasons(), ["pool poisoned".to_string()]);
    }
}
