//! Frame layer: `[magic][len][crc][body]` with an incremental decoder.

use crate::WireError;

/// Frame magic word ("GSW1" little-endian). A stream positioned anywhere
/// but a frame boundary fails this check immediately instead of reading
/// garbage lengths.
pub const MAGIC: u32 = 0x3157_5347;

/// Frame header size: magic (4) + body length (4) + checksum (8).
pub const FRAME_HEADER: usize = 16;

/// Hard cap on a frame body. Declared lengths are validated against
/// this *before* any buffer is grown, so a hostile or corrupted header
/// cannot make the decoder allocate unboundedly.
pub const MAX_FRAME: usize = 1 << 20;

/// FNV-1a over `bytes`, finished with Murmur3's fmix64 avalanche — the
/// same construction the page checksums and the WAL tail frames use
/// (`gist-pagestore`, `gist-striped::stable_hash`), applied here to
/// wire frames so a torn frame is detected, never misparsed.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^= h >> 33;
    h
}

/// Wrap a message body in a frame. Returns `None` when the body exceeds
/// [`MAX_FRAME`] (the caller built something the peer would reject).
pub fn encode_frame(body: &[u8]) -> Option<Vec<u8>> {
    if body.len() > MAX_FRAME {
        return None;
    }
    let mut out = Vec::with_capacity(FRAME_HEADER + body.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum(body).to_le_bytes());
    out.extend_from_slice(body);
    Some(out)
}

/// Incremental frame decoder: buffers arbitrarily-sliced input and
/// yields complete, checksum-verified frame bodies.
///
/// Once any method returns an error the decoder is **poisoned** — the
/// stream position is no longer trustworthy (a bad magic or length
/// means resynchronization is guesswork), so every later call returns
/// the same error and the owning connection must be dropped.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// First error observed; sticky.
    poisoned: Option<WireError>,
}

impl FrameDecoder {
    /// Fresh decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Bytes buffered but not yet consumed as a frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Append freshly-read bytes. A partial header or body is fine —
    /// that is the point.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.poisoned.is_none() {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Pop the next complete frame body, `Ok(None)` when more input is
    /// needed. Errors are sticky (see the type docs).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        match self.try_frame() {
            Ok(v) => Ok(v),
            Err(e) => {
                self.poisoned = Some(e.clone());
                self.buf.clear();
                Err(e)
            }
        }
    }

    fn try_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        if self.buf.len() < FRAME_HEADER {
            return Ok(None);
        }
        let word = |at: usize| {
            let mut v = [0u8; 4];
            v.copy_from_slice(&self.buf[at..at + 4]);
            u32::from_le_bytes(v)
        };
        let magic = word(0);
        if magic != MAGIC {
            return Err(WireError::BadMagic { got: magic });
        }
        let len = word(4) as usize;
        if len > MAX_FRAME {
            return Err(WireError::FrameTooLarge { len: len as u64 });
        }
        if self.buf.len() < FRAME_HEADER + len {
            return Ok(None); // body still in flight
        }
        let mut want = [0u8; 8];
        want.copy_from_slice(&self.buf[8..16]);
        let want = u64::from_le_bytes(want);
        let body: Vec<u8> = self.buf[FRAME_HEADER..FRAME_HEADER + len].to_vec();
        let got = checksum(&body);
        if got != want {
            return Err(WireError::BadChecksum { want, got });
        }
        self.buf.drain(..FRAME_HEADER + len);
        Ok(Some(body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_partial_feeds() {
        let body = b"hello frames".to_vec();
        let wire = encode_frame(&body).unwrap();
        // Feed one byte at a time: no frame until the very last byte.
        let mut dec = FrameDecoder::new();
        for (i, b) in wire.iter().enumerate() {
            dec.feed(&[*b]);
            let out = dec.next_frame().unwrap();
            if i + 1 < wire.len() {
                assert!(out.is_none(), "frame surfaced early at byte {i}");
            } else {
                assert_eq!(out.unwrap(), body);
            }
        }
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn multiple_frames_in_one_feed() {
        let mut wire = encode_frame(b"a").unwrap();
        wire.extend(encode_frame(b"bb").unwrap());
        wire.extend(encode_frame(b"").unwrap());
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"a");
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"bb");
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"");
        assert!(dec.next_frame().unwrap().is_none());
    }

    #[test]
    fn bad_magic_poisons() {
        let mut dec = FrameDecoder::new();
        dec.feed(&[0xFF; FRAME_HEADER]);
        let err = dec.next_frame().unwrap_err();
        assert!(matches!(err, WireError::BadMagic { .. }), "{err}");
        // Sticky: even valid bytes afterwards keep failing.
        dec.feed(&encode_frame(b"x").unwrap());
        assert_eq!(dec.next_frame().unwrap_err(), err);
    }

    #[test]
    fn oversized_length_is_rejected_before_buffering() {
        let mut hdr = Vec::new();
        hdr.extend_from_slice(&MAGIC.to_le_bytes());
        hdr.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        hdr.extend_from_slice(&0u64.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.feed(&hdr);
        assert!(matches!(dec.next_frame().unwrap_err(), WireError::FrameTooLarge { .. }));
    }

    #[test]
    fn flipped_body_byte_fails_checksum() {
        let mut wire = encode_frame(b"payload bytes").unwrap();
        let last = wire.len() - 1;
        wire[last] ^= 0x40;
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        assert!(matches!(dec.next_frame().unwrap_err(), WireError::BadChecksum { .. }));
    }

    #[test]
    fn encode_refuses_oversized_body() {
        assert!(encode_frame(&vec![0u8; MAX_FRAME]).is_some());
        assert!(encode_frame(&vec![0u8; MAX_FRAME + 1]).is_none());
    }
}
