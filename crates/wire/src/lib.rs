#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # gist-wire — the serving layer's binary protocol
//!
//! Every message travels inside a **frame** that identifies itself the
//! same way the repo's slotted pages and WAL records do: a magic word,
//! an explicit length, and a checksum over the body, so that a torn or
//! corrupted frame is *detected* — typed error, connection-level
//! decision — and never misparsed into a plausible-looking request.
//!
//! ```text
//! [magic u32][len u32][crc u64][body: len bytes]      (header 16 bytes)
//! ```
//!
//! Inside a frame, [`Request`] and [`Response`] serialize with a 1-byte
//! tag followed by fixed-width little-endian fields and length-prefixed
//! byte strings. Decoding is **fuzz-safe by contract**: every read is
//! bounds-checked through the [`Reader`] cursor, every length is capped
//! before any allocation, and malformed input of any shape yields a
//! typed [`WireError`] — never a panic, never an out-of-bounds slice.
//! `tests/serve.rs` holds the protocol corpus that drives arbitrary and
//! truncated bytes through both layers to pin that contract.
//!
//! The [`FrameDecoder`] is incremental: feed it whatever a socket read
//! returned — half a header, three frames and a tail, one byte — and it
//! yields complete frame bodies as they materialize, holding partial
//! input across calls. That is what makes the serving layer's
//! deadline-sliced reads (and the `FaultTransport` shim's short reads)
//! lossless.

mod frame;
mod msg;

pub use frame::{checksum, encode_frame, FrameDecoder, FRAME_HEADER, MAGIC, MAX_FRAME};
pub use msg::{
    encoded_row_size, ErrorCode, Request, Response, MAX_NAME, MAX_PAYLOAD, MAX_ROWS,
    ROWS_BYTE_BUDGET,
};

use std::fmt;

/// Typed decode/encode failures. `Truncated` is the only "benign" kind:
/// the incremental decoder reports it internally to mean "wait for more
/// bytes"; surfaced from a complete frame body it means the body lied
/// about its own lengths and is as fatal as any other variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Frame header did not start with [`MAGIC`] — the stream is
    /// desynchronized or the peer is not speaking this protocol.
    BadMagic {
        /// The word actually read.
        got: u32,
    },
    /// Declared frame length exceeds [`MAX_FRAME`] (decoded before any
    /// allocation, so a hostile length cannot balloon memory).
    FrameTooLarge {
        /// The declared body length.
        len: u64,
    },
    /// Frame body failed its checksum (torn or bit-flipped in flight).
    BadChecksum {
        /// Checksum declared by the header.
        want: u64,
        /// Checksum computed over the received body.
        got: u64,
    },
    /// A message field ran past the end of its frame body, or a
    /// length-prefixed field exceeded its cap.
    Truncated,
    /// Structurally intact but semantically invalid: unknown tag,
    /// non-UTF-8 name, inconsistent element count.
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic { got } => {
                write!(f, "bad frame magic {got:#010x} (stream desynchronized)")
            }
            WireError::FrameTooLarge { len } => {
                write!(f, "declared frame length {len} exceeds cap {MAX_FRAME}")
            }
            WireError::BadChecksum { want, got } => {
                write!(f, "frame checksum mismatch (header {want:#018x}, body {got:#018x})")
            }
            WireError::Truncated => write!(f, "message truncated mid-field"),
            WireError::Malformed(what) => write!(f, "malformed message: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Bounds-checked little-endian cursor over a frame body. All `Reader`
/// methods return [`WireError::Truncated`] instead of slicing out of
/// bounds; nothing here can panic on hostile input.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut v = [0u8; 8];
        v.copy_from_slice(b);
        Ok(u64::from_le_bytes(v))
    }

    pub(crate) fn i64(&mut self) -> Result<i64, WireError> {
        Ok(self.u64()? as i64)
    }

    /// A `u32`-length-prefixed byte string, capped at `cap` *before*
    /// allocation.
    pub(crate) fn bytes(&mut self, cap: usize) -> Result<Vec<u8>, WireError> {
        let len = self.u32()? as usize;
        if len > cap {
            return Err(WireError::Truncated);
        }
        Ok(self.take(len)?.to_vec())
    }

    /// A capped, UTF-8-validated string.
    pub(crate) fn string(&mut self, cap: usize) -> Result<String, WireError> {
        String::from_utf8(self.bytes(cap)?).map_err(|_| WireError::Malformed("non-UTF-8 string"))
    }
}

/// Append helpers, the encode-side mirror of [`Reader`].
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new(tag: u8) -> Self {
        Writer { buf: vec![tag] }
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    pub(crate) fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    pub(crate) fn finish(self) -> Vec<u8> {
        self.buf
    }
}
