//! Message layer: [`Request`], [`Response`], [`ErrorCode`].
//!
//! Each message is a 1-byte tag, then fixed-width little-endian fields
//! and `u32`-length-prefixed byte strings. Decoding goes through the
//! bounds-checked [`Reader`](crate::Reader) cursor and enforces the
//! field caps below before any allocation, so arbitrary bytes decode to
//! a typed [`WireError`], never a panic.

use crate::{Reader, WireError, Writer, MAX_FRAME};

/// Cap on index-name length (bytes).
pub const MAX_NAME: usize = 256;

/// Cap on a single row payload (bytes).
pub const MAX_PAYLOAD: usize = 64 * 1024;

/// Cap on rows in a single `Rows` response. Result sets cut at this cap
/// (or at [`ROWS_BYTE_BUDGET`]) come back with the `truncated` flag set
/// so the client knows to narrow its range predicate.
pub const MAX_ROWS: usize = 4096;

/// Fixed per-row encoding overhead: i64 key (8) + u32 payload length (4).
const ROW_OVERHEAD: usize = 12;

/// Bytes of a `Rows` body before the first row: tag (1) + truncated
/// flag (1) + row count (4).
const ROWS_PREFIX: usize = 6;

/// Byte budget for the rows of one `Rows` response: a full frame body
/// minus the fixed prefix. Rows are dropped (and the truncation
/// flagged) once this is exhausted, so a legal result set can never
/// produce a body `encode_frame` would refuse.
pub const ROWS_BYTE_BUDGET: usize = MAX_FRAME - ROWS_PREFIX;

/// Encoded size of one row whose payload is `payload_len` bytes (after
/// the [`MAX_PAYLOAD`] cap). Servers building a `Rows` response sum
/// this against [`ROWS_BYTE_BUDGET`] to decide where to truncate.
pub fn encoded_row_size(payload_len: usize) -> usize {
    ROW_OVERHEAD + payload_len.min(MAX_PAYLOAD)
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; always answered, even while draining.
    Ping,
    /// Open this session's transaction (one per session; admission-
    /// controlled, may come back [`Response::Busy`]).
    Begin,
    /// Commit the session transaction.
    Commit,
    /// Abort the session transaction.
    Abort,
    /// Create (and register) an index.
    CreateIndex {
        /// Catalog name.
        name: String,
        /// Enforce key uniqueness.
        unique: bool,
    },
    /// Insert `key → payload` into `index`.
    Insert {
        /// Target index name.
        index: String,
        /// Key.
        key: i64,
        /// Heap payload stored under the key's RID.
        payload: Vec<u8>,
    },
    /// Delete `key` from `index`.
    Delete {
        /// Target index name.
        index: String,
        /// Key.
        key: i64,
    },
    /// Point lookup.
    Get {
        /// Target index name.
        index: String,
        /// Key.
        key: i64,
    },
    /// Inclusive range scan `lo..=hi`.
    Range {
        /// Target index name.
        index: String,
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
    },
    /// Engine health verdict (serialized [`Db::health`]).
    Health,
    /// Robustness counters (serialized `robustness_stats()` + serve stats).
    Stats,
}

const REQ_PING: u8 = 1;
const REQ_BEGIN: u8 = 2;
const REQ_COMMIT: u8 = 3;
const REQ_ABORT: u8 = 4;
const REQ_CREATE: u8 = 5;
const REQ_INSERT: u8 = 6;
const REQ_DELETE: u8 = 7;
const REQ_GET: u8 = 8;
const REQ_RANGE: u8 = 9;
const REQ_HEALTH: u8 = 10;
const REQ_STATS: u8 = 11;

impl Request {
    /// Serialize to a frame body.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Ping => Writer::new(REQ_PING).finish(),
            Request::Begin => Writer::new(REQ_BEGIN).finish(),
            Request::Commit => Writer::new(REQ_COMMIT).finish(),
            Request::Abort => Writer::new(REQ_ABORT).finish(),
            Request::CreateIndex { name, unique } => {
                let mut w = Writer::new(REQ_CREATE);
                w.bytes(name.as_bytes());
                w.u8(u8::from(*unique));
                w.finish()
            }
            Request::Insert { index, key, payload } => {
                let mut w = Writer::new(REQ_INSERT);
                w.bytes(index.as_bytes());
                w.i64(*key);
                w.bytes(payload);
                w.finish()
            }
            Request::Delete { index, key } => {
                let mut w = Writer::new(REQ_DELETE);
                w.bytes(index.as_bytes());
                w.i64(*key);
                w.finish()
            }
            Request::Get { index, key } => {
                let mut w = Writer::new(REQ_GET);
                w.bytes(index.as_bytes());
                w.i64(*key);
                w.finish()
            }
            Request::Range { index, lo, hi } => {
                let mut w = Writer::new(REQ_RANGE);
                w.bytes(index.as_bytes());
                w.i64(*lo);
                w.i64(*hi);
                w.finish()
            }
            Request::Health => Writer::new(REQ_HEALTH).finish(),
            Request::Stats => Writer::new(REQ_STATS).finish(),
        }
    }

    /// Parse a frame body. Trailing garbage after a well-formed message
    /// is rejected — a frame holds exactly one message.
    pub fn decode(body: &[u8]) -> Result<Request, WireError> {
        let mut r = Reader::new(body);
        let req = match r.u8()? {
            REQ_PING => Request::Ping,
            REQ_BEGIN => Request::Begin,
            REQ_COMMIT => Request::Commit,
            REQ_ABORT => Request::Abort,
            REQ_CREATE => Request::CreateIndex {
                name: r.string(MAX_NAME)?,
                unique: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed("unique flag not 0/1")),
                },
            },
            REQ_INSERT => Request::Insert {
                index: r.string(MAX_NAME)?,
                key: r.i64()?,
                payload: r.bytes(MAX_PAYLOAD)?,
            },
            REQ_DELETE => Request::Delete { index: r.string(MAX_NAME)?, key: r.i64()? },
            REQ_GET => Request::Get { index: r.string(MAX_NAME)?, key: r.i64()? },
            REQ_RANGE => Request::Range {
                index: r.string(MAX_NAME)?,
                lo: r.i64()?,
                hi: r.i64()?,
            },
            REQ_HEALTH => Request::Health,
            REQ_STATS => Request::Stats,
            _ => return Err(WireError::Malformed("unknown request tag")),
        };
        if !r.done() {
            return Err(WireError::Malformed("trailing bytes after request"));
        }
        Ok(req)
    }
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Generic success for mutations and txn control.
    Ok,
    /// Transaction opened.
    Begun,
    /// Result rows for `Get`/`Range`.
    Rows {
        /// `(key, heap payload)` pairs.
        rows: Vec<(i64, Vec<u8>)>,
        /// Set when rows were dropped to honor [`MAX_ROWS`] or
        /// [`ROWS_BYTE_BUDGET`]: the client saw a prefix of the result
        /// set and should narrow its range and re-issue.
        truncated: bool,
    },
    /// Admission control shed the request; retry after the hint.
    Busy {
        /// Client should back off at least this long before retrying.
        retry_after_ms: u32,
    },
    /// Request failed; see [`ErrorCode::retryable`] for client guidance.
    Error {
        /// Machine-readable classification.
        code: ErrorCode,
        /// Human-readable detail (capped like an index name).
        message: String,
    },
    /// Reply to [`Request::Health`].
    Health {
        /// `Healthy` / `Degraded` / `ReadOnly`.
        label: String,
        /// Degradation reasons, empty when healthy.
        reasons: Vec<String>,
    },
    /// Reply to [`Request::Stats`]: flat counter name → value pairs.
    Stats(Vec<(String, i64)>),
}

const RSP_PONG: u8 = 1;
const RSP_OK: u8 = 2;
const RSP_BEGUN: u8 = 3;
const RSP_ROWS: u8 = 4;
const RSP_BUSY: u8 = 5;
const RSP_ERROR: u8 = 6;
const RSP_HEALTH: u8 = 7;
const RSP_STATS: u8 = 8;

/// Cap on reasons / stats entries in a single response.
const MAX_ENTRIES: usize = 256;

impl Response {
    /// Serialize to a frame body. Oversized collections are truncated
    /// to their caps — `Rows` by row count *and* total bytes, with the
    /// cut reported in its `truncated` flag — so a response body never
    /// exceeds [`crate::MAX_FRAME`] and truncation is always visible to
    /// the client, never silent.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Pong => Writer::new(RSP_PONG).finish(),
            Response::Ok => Writer::new(RSP_OK).finish(),
            Response::Begun => Writer::new(RSP_BEGUN).finish(),
            Response::Rows { rows, truncated } => {
                let mut w = Writer::new(RSP_ROWS);
                // How many leading rows fit the count cap and the frame
                // byte budget. Servers construct within budget already
                // (setting `truncated` themselves); this recount makes
                // encode total even for hand-built oversized values.
                let mut fit = 0usize;
                let mut used = 0usize;
                for (_, payload) in rows.iter().take(MAX_ROWS) {
                    let sz = encoded_row_size(payload.len());
                    if used + sz > ROWS_BYTE_BUDGET {
                        break;
                    }
                    used += sz;
                    fit += 1;
                }
                w.u8(u8::from(*truncated || fit < rows.len()));
                w.u32(fit as u32);
                for (key, payload) in rows.iter().take(fit) {
                    w.i64(*key);
                    w.bytes(&payload[..payload.len().min(MAX_PAYLOAD)]);
                }
                w.finish()
            }
            Response::Busy { retry_after_ms } => {
                let mut w = Writer::new(RSP_BUSY);
                w.u32(*retry_after_ms);
                w.finish()
            }
            Response::Error { code, message } => {
                let mut w = Writer::new(RSP_ERROR);
                w.u16(*code as u16);
                let m = message.as_bytes();
                w.bytes(&m[..m.len().min(MAX_NAME)]);
                w.finish()
            }
            Response::Health { label, reasons } => {
                let mut w = Writer::new(RSP_HEALTH);
                let l = label.as_bytes();
                w.bytes(&l[..l.len().min(MAX_NAME)]);
                let n = reasons.len().min(MAX_ENTRIES);
                w.u32(n as u32);
                for reason in reasons.iter().take(n) {
                    let r = reason.as_bytes();
                    w.bytes(&r[..r.len().min(MAX_NAME)]);
                }
                w.finish()
            }
            Response::Stats(entries) => {
                let mut w = Writer::new(RSP_STATS);
                let n = entries.len().min(MAX_ENTRIES);
                w.u32(n as u32);
                for (name, value) in entries.iter().take(n) {
                    let b = name.as_bytes();
                    w.bytes(&b[..b.len().min(MAX_NAME)]);
                    w.i64(*value);
                }
                w.finish()
            }
        }
    }

    /// Parse a frame body (used by clients and the test harness).
    pub fn decode(body: &[u8]) -> Result<Response, WireError> {
        let mut r = Reader::new(body);
        let rsp = match r.u8()? {
            RSP_PONG => Response::Pong,
            RSP_OK => Response::Ok,
            RSP_BEGUN => Response::Begun,
            RSP_ROWS => {
                let truncated = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed("truncated flag not 0/1")),
                };
                let n = r.u32()? as usize;
                if n > MAX_ROWS {
                    return Err(WireError::Malformed("row count exceeds cap"));
                }
                // Each row is at least 12 bytes (key + payload length);
                // reject counts the remaining bytes cannot possibly hold
                // before reserving anything.
                if n.saturating_mul(ROW_OVERHEAD) > r.remaining() {
                    return Err(WireError::Truncated);
                }
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let key = r.i64()?;
                    let payload = r.bytes(MAX_PAYLOAD)?;
                    rows.push((key, payload));
                }
                Response::Rows { rows, truncated }
            }
            RSP_BUSY => Response::Busy { retry_after_ms: r.u32()? },
            RSP_ERROR => Response::Error {
                code: ErrorCode::from_u16(r.u16()?)?,
                message: r.string(MAX_NAME)?,
            },
            RSP_HEALTH => {
                let label = r.string(MAX_NAME)?;
                let n = r.u32()? as usize;
                if n > MAX_ENTRIES || n.saturating_mul(4) > r.remaining() {
                    return Err(WireError::Malformed("reason count exceeds cap"));
                }
                let mut reasons = Vec::with_capacity(n);
                for _ in 0..n {
                    reasons.push(r.string(MAX_NAME)?);
                }
                Response::Health { label, reasons }
            }
            RSP_STATS => {
                let n = r.u32()? as usize;
                if n > MAX_ENTRIES || n.saturating_mul(12) > r.remaining() {
                    return Err(WireError::Malformed("stats count exceeds cap"));
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = r.string(MAX_NAME)?;
                    let value = r.i64()?;
                    entries.push((name, value));
                }
                Response::Stats(entries)
            }
            _ => return Err(WireError::Malformed("unknown response tag")),
        };
        if !r.done() {
            return Err(WireError::Malformed("trailing bytes after response"));
        }
        Ok(rsp)
    }
}

/// Machine-readable failure classification carried by
/// [`Response::Error`]. The README's error-code table documents the
/// client-facing retry contract; [`ErrorCode::retryable`] is its
/// machine form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// Malformed or out-of-order bytes; the server closes the
    /// connection after sending this. Reconnect with a fresh stream.
    Protocol = 1,
    /// Operation needs an open transaction; send `Begin` first.
    TxnRequired = 2,
    /// Session already owns a transaction; `Commit`/`Abort` it first.
    TxnAlreadyOpen = 3,
    /// Named index does not exist.
    NoSuchIndex = 4,
    /// `CreateIndex` name collision.
    IndexExists = 5,
    /// Unique-index key collision.
    UniqueViolation = 6,
    /// Point lookup matched nothing.
    NotFound = 7,
    /// Transient engine conflict (deadlock victim, lock timeout,
    /// watchdog abort). Transaction is gone; begin a new one and retry.
    Retry = 8,
    /// Engine is read-only (e.g. poisoned pool); writes are refused.
    ReadOnly = 9,
    /// The session transaction was force-aborted (drain or eviction).
    Aborted = 10,
    /// Server is draining; reconnect against a peer or after restart.
    ShuttingDown = 11,
    /// Unexpected engine error; not safe to blind-retry.
    Internal = 12,
}

impl ErrorCode {
    fn from_u16(v: u16) -> Result<ErrorCode, WireError> {
        Ok(match v {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::TxnRequired,
            3 => ErrorCode::TxnAlreadyOpen,
            4 => ErrorCode::NoSuchIndex,
            5 => ErrorCode::IndexExists,
            6 => ErrorCode::UniqueViolation,
            7 => ErrorCode::NotFound,
            8 => ErrorCode::Retry,
            9 => ErrorCode::ReadOnly,
            10 => ErrorCode::Aborted,
            11 => ErrorCode::ShuttingDown,
            12 => ErrorCode::Internal,
            _ => return Err(WireError::Malformed("unknown error code")),
        })
    }

    /// Whether a client may retry the *work* (in a fresh transaction)
    /// without operator involvement.
    pub fn retryable(self) -> bool {
        matches!(self, ErrorCode::Retry | ErrorCode::Aborted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::Begin,
            Request::Commit,
            Request::Abort,
            Request::CreateIndex { name: "t".into(), unique: true },
            Request::Insert { index: "t".into(), key: -7, payload: vec![1, 2, 3] },
            Request::Delete { index: "t".into(), key: 9 },
            Request::Get { index: "t".into(), key: 0 },
            Request::Range { index: "t".into(), lo: i64::MIN, hi: i64::MAX },
            Request::Health,
            Request::Stats,
        ]
    }

    fn all_responses() -> Vec<Response> {
        vec![
            Response::Pong,
            Response::Ok,
            Response::Begun,
            Response::Rows { rows: vec![(1, vec![0xAB; 32]), (-2, vec![])], truncated: false },
            Response::Rows { rows: vec![(7, vec![3; 8])], truncated: true },
            Response::Busy { retry_after_ms: 25 },
            Response::Error { code: ErrorCode::Retry, message: "deadlock victim".into() },
            Response::Health { label: "degraded".into(), reasons: vec!["wal backlog".into()] },
            Response::Stats(vec![("txns_active".into(), 3), ("evicted_slow".into(), -1)]),
        ]
    }

    #[test]
    fn request_roundtrip() {
        for req in all_requests() {
            let body = req.encode();
            assert_eq!(Request::decode(&body).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn response_roundtrip() {
        for rsp in all_responses() {
            let body = rsp.encode();
            assert_eq!(Response::decode(&body).unwrap(), rsp, "{rsp:?}");
        }
    }

    #[test]
    fn truncation_at_every_prefix_is_a_typed_error() {
        for req in all_requests() {
            let body = req.encode();
            for cut in 0..body.len() {
                // Every strict prefix must fail decode without panicking.
                Request::decode(&body[..cut]).unwrap_err();
            }
        }
        for rsp in all_responses() {
            let body = rsp.encode();
            for cut in 0..body.len() {
                Response::decode(&body[..cut]).unwrap_err();
            }
        }
    }

    #[test]
    fn unknown_tags_and_codes_rejected() {
        assert_eq!(
            Request::decode(&[0xEE]).unwrap_err(),
            WireError::Malformed("unknown request tag")
        );
        assert_eq!(
            Response::decode(&[0xEE]).unwrap_err(),
            WireError::Malformed("unknown response tag")
        );
        // RSP_ERROR with an out-of-range code.
        let mut w = Writer::new(RSP_ERROR);
        w.u16(999);
        w.bytes(b"x");
        assert_eq!(
            Response::decode(&w.finish()).unwrap_err(),
            WireError::Malformed("unknown error code")
        );
    }

    #[test]
    fn caps_enforced_before_allocation() {
        // Name longer than MAX_NAME.
        let mut w = Writer::new(REQ_GET);
        w.u32(MAX_NAME as u32 + 1);
        assert_eq!(Request::decode(&w.finish()).unwrap_err(), WireError::Truncated);
        // Row count far beyond what the body could hold.
        let mut w = Writer::new(RSP_ROWS);
        w.u8(0);
        w.u32(MAX_ROWS as u32);
        Response::decode(&w.finish()).unwrap_err();
        // Row count beyond the hard cap.
        let mut w = Writer::new(RSP_ROWS);
        w.u8(0);
        w.u32(u32::MAX);
        assert_eq!(
            Response::decode(&w.finish()).unwrap_err(),
            WireError::Malformed("row count exceeds cap")
        );
        // Truncated flag outside 0/1.
        let mut w = Writer::new(RSP_ROWS);
        w.u8(7);
        w.u32(0);
        assert_eq!(
            Response::decode(&w.finish()).unwrap_err(),
            WireError::Malformed("truncated flag not 0/1")
        );
    }

    #[test]
    fn rows_encode_respects_frame_budget_and_flags_truncation() {
        // 20 max-size rows cannot fit one frame (the bug class the
        // truncation flag exists for: 16 already exceed MAX_FRAME).
        let rows: Vec<_> = (0..20i64).map(|k| (k, vec![k as u8; MAX_PAYLOAD])).collect();
        let body = Response::Rows { rows: rows.clone(), truncated: false }.encode();
        assert!(body.len() <= MAX_FRAME, "body {} exceeds frame cap", body.len());
        assert!(crate::encode_frame(&body).is_some(), "encoded Rows must always frame");
        match Response::decode(&body).unwrap() {
            Response::Rows { rows: got, truncated } => {
                assert!(truncated, "dropped rows must be flagged");
                assert!(!got.is_empty() && got.len() < rows.len(), "{}", got.len());
                assert_eq!(got[..], rows[..got.len()], "surviving prefix intact");
            }
            other => panic!("expected Rows, got {other:?}"),
        }
        // A within-budget result set encodes losslessly, unflagged.
        let small = Response::Rows { rows: vec![(1, vec![9; 64])], truncated: false };
        assert_eq!(Response::decode(&small.encode()).unwrap(), small);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut body = Request::Ping.encode();
        body.push(0);
        assert_eq!(
            Request::decode(&body).unwrap_err(),
            WireError::Malformed("trailing bytes after request")
        );
    }

    #[test]
    fn nonzero_bool_rejected() {
        let mut w = Writer::new(REQ_CREATE);
        w.bytes(b"t");
        w.u8(2);
        assert_eq!(
            Request::decode(&w.finish()).unwrap_err(),
            WireError::Malformed("unique flag not 0/1")
        );
    }

    #[test]
    fn retry_guidance_matches_readme_table() {
        for code in [
            ErrorCode::Protocol,
            ErrorCode::TxnRequired,
            ErrorCode::TxnAlreadyOpen,
            ErrorCode::NoSuchIndex,
            ErrorCode::IndexExists,
            ErrorCode::UniqueViolation,
            ErrorCode::NotFound,
            ErrorCode::ReadOnly,
            ErrorCode::ShuttingDown,
            ErrorCode::Internal,
        ] {
            assert!(!code.retryable(), "{code:?}");
        }
        assert!(ErrorCode::Retry.retryable());
        assert!(ErrorCode::Aborted.retryable());
    }
}
