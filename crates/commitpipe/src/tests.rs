//! Pipeline unit tests: inline fallback, group commit batching,
//! durability modes, drain semantics and stats.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gist_wal::{LogManager, Lsn, RecordBody, TxnId};

use crate::{CommitPipeline, Durability, PipeConfig};

fn log_with_commits(n: u64) -> (Arc<LogManager>, Vec<Lsn>) {
    let log = Arc::new(LogManager::new());
    let lsns = (0..n)
        .map(|i| log.append(TxnId(i + 1), Lsn::NULL, RecordBody::TxnCommit))
        .collect();
    (log, lsns)
}

#[test]
fn inline_fallback_is_synchronous() {
    let (log, lsns) = log_with_commits(3);
    let pipe = CommitPipeline::new(log.clone());
    // Not started: commit_durable must flush before returning.
    pipe.commit_durable(lsns[2], Durability::Immediate).unwrap();
    assert!(log.flushed_lsn() >= lsns[2]);
    let s = pipe.stats();
    assert_eq!(s.commits_flushed, 1);
    assert!(!s.running);
}

#[test]
fn flusher_serves_immediate_commit() {
    let (log, lsns) = log_with_commits(1);
    let pipe = CommitPipeline::new(log.clone());
    pipe.start();
    pipe.commit_durable(lsns[0], Durability::Immediate).unwrap();
    assert!(log.flushed_lsn() >= lsns[0]);
    assert!(pipe.stats().running);
    pipe.stop(true);
    assert!(!pipe.stats().running);
}

#[test]
fn batched_commits_share_fsyncs() {
    let log = Arc::new(LogManager::new());
    // A slow device makes batching observable: 8 committers against a
    // 3 ms sync can't each get a private fsync inside the window.
    log.set_sync_latency(Duration::from_millis(3));
    let pipe = CommitPipeline::new(log.clone());
    pipe.start();
    let threads: Vec<_> = (0..8u64)
        .map(|i| {
            let pipe = pipe.clone();
            let log = log.clone();
            std::thread::spawn(move || {
                let lsn = log.append(TxnId(i + 1), Lsn::NULL, RecordBody::TxnCommit);
                pipe.commit_durable(lsn, Durability::Batched { window: Duration::from_millis(10) })
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap().unwrap();
    }
    let s = pipe.stats();
    assert_eq!(s.commits_flushed, 8);
    assert!(
        s.batches_flushed < 8,
        "8 commits must share fsyncs, got {} batches",
        s.batches_flushed
    );
    assert!(s.mean_batch_size > 1.0);
    assert!(s.commit_wait_p99_us > 0);
    pipe.stop(true);
}

#[test]
fn async_commit_returns_before_durable_and_converges() {
    let (log, lsns) = log_with_commits(1);
    let pipe = CommitPipeline::with_config(
        log.clone(),
        PipeConfig { idle_flush: Duration::from_millis(5), ..PipeConfig::default() },
    );
    pipe.start();
    pipe.commit_durable(lsns[0], Durability::Async).unwrap();
    // Converges within the documented loss window (plus scheduling slop).
    let deadline = Instant::now() + Duration::from_secs(2);
    while log.flushed_lsn() < lsns[0] {
        assert!(Instant::now() < deadline, "async commit never became durable");
        std::thread::sleep(Duration::from_millis(1));
    }
    pipe.stop(true);
}

#[test]
fn idle_sweep_picks_up_unforced_records() {
    let log = Arc::new(LogManager::new());
    let pipe = CommitPipeline::new(log.clone());
    pipe.start();
    // An end record appended with no durability request at all.
    let e = log.append(TxnId(1), Lsn::NULL, RecordBody::TxnEnd);
    let deadline = Instant::now() + Duration::from_secs(2);
    while log.flushed_lsn() < e {
        assert!(Instant::now() < deadline, "idle sweep never flushed the tail");
        std::thread::sleep(Duration::from_millis(1));
    }
    pipe.stop(true);
}

#[test]
fn stop_with_drain_flushes_everything() {
    let (log, lsns) = log_with_commits(5);
    let pipe = CommitPipeline::new(log.clone());
    pipe.start();
    pipe.stop(true);
    assert!(log.flushed_lsn() >= lsns[4], "drain made the filled prefix durable");
}

#[test]
fn stop_without_drain_can_lose_the_tail() {
    let log = Arc::new(LogManager::new());
    let pipe = CommitPipeline::with_config(
        log.clone(),
        // Long idle sweep so the record is still in flight when we stop.
        PipeConfig { idle_flush: Duration::from_secs(30), ..PipeConfig::default() },
    );
    pipe.start();
    let lsn = log.append(TxnId(1), Lsn::NULL, RecordBody::TxnCommit);
    pipe.stop(false);
    assert!(log.flushed_lsn() < lsn, "no drain: the tail stays volatile");
}

#[test]
fn barrier_blocks_until_durable() {
    let (log, lsns) = log_with_commits(2);
    let pipe = CommitPipeline::new(log.clone());
    pipe.start();
    pipe.barrier(lsns[1]).unwrap();
    assert!(log.flushed_lsn() >= lsns[1]);
    // Already-durable barrier is free.
    pipe.barrier(lsns[0]).unwrap();
    pipe.stop(true);
}

#[test]
fn append_commit_reserves_and_fills() {
    let (log, _) = log_with_commits(0);
    let pipe = CommitPipeline::new(log.clone());
    let c = pipe.append_commit(TxnId(7), Lsn::NULL).unwrap();
    assert_eq!(log.get(c).body.kind_name(), "TxnCommit");
    assert_eq!(log.get(c).txn, TxnId(7));
    assert_eq!(log.filled_lsn(), c);
}

#[test]
fn stats_report_pipeline_lag() {
    let log = Arc::new(LogManager::new());
    let pipe = CommitPipeline::new(log.clone());
    let a = log.append(TxnId(1), Lsn::NULL, RecordBody::TxnBegin);
    let s = pipe.stats();
    assert_eq!(s.append_lsn, a.0);
    assert_eq!(s.durable_lsn, 0);
    assert_eq!(s.batches_flushed, 0);
}
