#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Group-commit WAL pipeline (PR 6).
//!
//! Decouples log *append* from *durability*. Appenders reserve-then-fill
//! slots in the [`LogManager`]'s buffer without any global mutex; this
//! crate adds the durability half:
//!
//! - a dedicated background **flusher** thread that drains the filled
//!   prefix to the durable horizon with one (simulated) `fsync` per batch;
//! - **group commit**: concurrent committers park on their commit LSN
//!   ([`LogManager::wait_durable`], the once-dormant `flush_cv`) and a
//!   single device sync makes the whole batch durable;
//! - per-transaction [`Durability`] modes — `Immediate` (park until the
//!   commit record is durable), `Batched { window }` (park, but let the
//!   flusher linger up to `window` to widen the batch) and `Async`
//!   (return immediately; the idle sweep bounds the loss window).
//!
//! When the flusher is not running (unit tests, `group_commit: false`,
//! post-shutdown write-back), every durability request degrades to the
//! old synchronous inline flush, so the pipeline is always safe to call.
//!
//! The WAL-before-data invariant is preserved by implementing
//! [`LogFlusher`]: the buffer pool's `flush_until` becomes a durability
//! barrier on the pipeline rather than a direct log flush.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gist_wal::{LogFlusher, LogManager, Lsn, RecordBody, TxnId};
use gist_sync::{Condvar, Mutex};

/// How long a transaction waits for its commit record to become durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Park until the commit record is durable; the flusher batches
    /// whatever has accumulated but does not wait for more. This is the
    /// classic force-at-commit guarantee: a committed transaction
    /// survives any crash.
    #[default]
    Immediate,
    /// Park until durable, but allow the flusher to linger up to `window`
    /// after the first commit of a batch so more committers can join it.
    /// Same crash guarantee as `Immediate`, traded against up to `window`
    /// of extra commit latency.
    Batched {
        /// Maximum extra time a commit may wait for batch-mates.
        window: Duration,
    },
    /// Return as soon as the commit record is *filled*: durability
    /// arrives with the flusher's next sweep. A crash inside that window
    /// can lose the transaction (it is cleanly rolled back at restart —
    /// atomicity holds, only durability is deferred).
    Async,
}

/// Tuning knobs, fixed before [`CommitPipeline::start`].
#[derive(Debug, Clone, Copy)]
pub struct PipeConfig {
    /// Upper bound on one park on the pipeline. Reached only if the
    /// flusher is wedged (e.g. an abandoned reservation fencing the
    /// durable horizon); committers surface [`PipeError::Stalled`].
    pub park_timeout: Duration,
    /// Idle sweep period: with no commit requests pending, the flusher
    /// makes the filled prefix durable this often. This is the `Async`
    /// mode's bounded loss window and the latency bound for unforced
    /// records (transaction end records, aborts).
    pub idle_flush: Duration,
}

impl Default for PipeConfig {
    fn default() -> Self {
        PipeConfig {
            park_timeout: Duration::from_secs(10),
            idle_flush: Duration::from_millis(2),
        }
    }
}

/// Failure surfaced by the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeError {
    /// A chaos crash point injected this failure (`chaos` feature).
    Injected(&'static str),
    /// The durable horizon did not reach the LSN within the park timeout
    /// (the flusher is dead or fenced by an abandoned reservation).
    Stalled(Lsn),
}

impl std::fmt::Display for PipeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipeError::Injected(p) => write!(f, "chaos injection at crash point {p:?}"),
            PipeError::Stalled(lsn) => {
                write!(f, "commit pipeline stalled waiting for lsn {lsn} to become durable")
            }
        }
    }
}

impl std::error::Error for PipeError {}

/// Wait-time histogram: bucket `i` counts parks whose wall time in
/// microseconds fell in `[2^i, 2^(i+1))` (bucket 0 covers 0–1 µs).
const WAIT_BUCKETS: usize = 32;

fn bucket_of(micros: u64) -> usize {
    (64 - micros.leading_zeros() as usize).min(WAIT_BUCKETS - 1)
}

struct Stats {
    batches: AtomicU64,
    commits: AtomicU64,
    flusher_panics: AtomicU64,
    waits: AtomicU64,
    wait_hist: [AtomicU64; WAIT_BUCKETS],
}

impl Stats {
    fn new() -> Stats {
        Stats {
            batches: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            flusher_panics: AtomicU64::new(0),
            waits: AtomicU64::new(0),
            wait_hist: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record_wait(&self, waited: Duration) {
        self.waits.fetch_add(1, Ordering::Relaxed);
        self.wait_hist[bucket_of(waited.as_micros() as u64)].fetch_add(1, Ordering::Relaxed);
    }

    /// Approximate percentile: the upper bound of the first bucket whose
    /// cumulative count reaches `q` of the total.
    fn percentile_us(&self, q: f64) -> u64 {
        let total: u64 = self.wait_hist.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        if total == 0 {
            return 0;
        }
        let need = ((total as f64) * q).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.wait_hist.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= need {
                return 1u64 << i;
            }
        }
        1u64 << (WAIT_BUCKETS - 1)
    }
}

/// Observability snapshot (`robustness_stats()` / gist-shell surface
/// these).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PipeStats {
    /// Device syncs performed by the flusher (or inline fallbacks).
    pub batches_flushed: u64,
    /// Commit requests made durable through the pipeline.
    pub commits_flushed: u64,
    /// Mean commits per device sync (the group-commit win).
    pub mean_batch_size: f64,
    /// Median commit park time, microseconds (bucketed, upper bound).
    pub commit_wait_p50_us: u64,
    /// 99th-percentile commit park time, microseconds.
    pub commit_wait_p99_us: u64,
    /// Flusher batches that panicked and were contained.
    pub flusher_panics: u64,
    /// Current durable horizon.
    pub durable_lsn: u64,
    /// Last reserved LSN; `append_lsn - durable_lsn` is the pipeline lag.
    pub append_lsn: u64,
    /// Whether the background flusher thread is running.
    pub running: bool,
}

struct PipeState {
    /// Highest LSN any committer wants durable.
    requested: Lsn,
    /// When the flusher must act for the current batch ([`None`]: no
    /// batch forming; the idle sweep governs).
    deadline: Option<Instant>,
    /// Commits submitted since the last batch was cut (batch-size stats).
    pending_commits: u64,
    /// Flusher thread liveness (set by start/stop).
    running: bool,
    /// Shutdown request and whether to drain the filled prefix first.
    stop: bool,
    drain: bool,
}

/// The group-commit pipeline over one [`LogManager`].
pub struct CommitPipeline {
    log: Arc<LogManager>,
    cfg: PipeConfig,
    state: Mutex<PipeState>,
    /// Kicks the flusher when a batch deadline is set or shutdown begins.
    work_cv: Condvar,
    handle: Mutex<Option<JoinHandle<()>>>,
    stats: Stats,
}

impl CommitPipeline {
    /// Pipeline over `log` with default tuning, flusher not yet running.
    pub fn new(log: Arc<LogManager>) -> Arc<CommitPipeline> {
        Self::with_config(log, PipeConfig::default())
    }

    /// Pipeline with explicit tuning, flusher not yet running.
    pub fn with_config(log: Arc<LogManager>, cfg: PipeConfig) -> Arc<CommitPipeline> {
        Arc::new(CommitPipeline {
            log,
            cfg,
            state: Mutex::new(PipeState {
                requested: Lsn::NULL,
                deadline: None,
                pending_commits: 0,
                running: false,
                stop: false,
                drain: false,
            }),
            work_cv: Condvar::new(),
            handle: Mutex::new(None),
            stats: Stats::new(),
        })
    }

    /// The log this pipeline drains.
    pub fn log(&self) -> &Arc<LogManager> {
        &self.log
    }

    /// Spawn the background flusher (idempotent). Until this is called —
    /// or after [`CommitPipeline::stop`] — every durability request is
    /// served inline by the caller.
    pub fn start(self: &Arc<Self>) {
        let mut handle = self.handle.lock();
        if handle.is_some() {
            return;
        }
        {
            let mut st = self.state.lock();
            st.stop = false;
            st.drain = false;
            st.running = true;
        }
        let me = self.clone();
        match std::thread::Builder::new()
            .name("gist-commitpipe".to_string())
            .spawn(move || me.worker())
        {
            Ok(h) => *handle = Some(h),
            Err(_) => {
                // Thread spawn failed: stay in inline mode.
                self.state.lock().running = false;
            }
        }
    }

    /// Stop the flusher and join it. `drain` makes the filled prefix
    /// durable on the way out (graceful shutdown); without it the thread
    /// exits where it stands (crash simulation).
    pub fn stop(&self, drain: bool) {
        let joined = {
            let taken = self.handle.lock().take();
            match taken {
                Some(h) => {
                    {
                        let mut st = self.state.lock();
                        st.stop = true;
                        st.drain = drain;
                    }
                    self.work_cv.notify_all();
                    let _ = h.join();
                    true
                }
                None => false,
            }
        };
        self.state.lock().running = false;
        if !joined && drain {
            self.log.flush_all();
        }
    }

    /// Whether the background flusher is running.
    pub fn is_running(&self) -> bool {
        self.state.lock().running
    }

    /// Append `txn`'s commit record through the pipeline's reserve/fill
    /// seam. A graceful chaos injection between the two phases heals the
    /// reservation with a [`RecordBody::Noop`] filler (the log stays
    /// dense); a chaos *panic* unwinds in between and leaves a real hole
    /// that fences the durable horizon — the crash the fault-recovery
    /// tests exercise.
    pub fn append_commit(&self, txn: TxnId, prev_lsn: Lsn) -> Result<Lsn, PipeError> {
        let res = self.log.reserve(txn, prev_lsn);
        if let Err(e) = chaos::point("commitpipe.append.post_reserve_pre_fill") {
            self.log.fill_noop(res);
            return Err(e);
        }
        Ok(self.log.fill(res, RecordBody::TxnCommit))
    }

    /// Make `lsn` durable under `mode`; the commit path calls this with
    /// no page latch held (asserted under `latch-audit`).
    pub fn commit_durable(&self, lsn: Lsn, mode: Durability) -> Result<(), PipeError> {
        audit::assert_thread_clear("parked on commit pipeline");
        match mode {
            Durability::Async => {
                self.request(lsn, Instant::now() + self.cfg.idle_flush, true);
                Ok(())
            }
            Durability::Immediate => self.park(lsn, Instant::now(), true),
            Durability::Batched { window } => self.park(lsn, Instant::now() + window, true),
        }
    }

    /// Durability barrier: park until `lsn` is durable (non-commit
    /// callers — checkpoints, page write-back). Does not count toward
    /// batch-size statistics.
    pub fn barrier(&self, lsn: Lsn) -> Result<(), PipeError> {
        if self.log.flushed_lsn() >= lsn {
            return Ok(());
        }
        self.park(lsn, Instant::now(), false)
    }

    /// Register a durability request; returns whether a flusher thread
    /// will serve it.
    fn request(&self, lsn: Lsn, deadline: Instant, is_commit: bool) -> bool {
        let mut st = self.state.lock();
        if lsn > st.requested {
            st.requested = lsn;
        }
        if is_commit {
            st.pending_commits += 1;
        }
        st.deadline = Some(match st.deadline {
            Some(d) => d.min(deadline),
            None => deadline,
        });
        let running = st.running;
        drop(st);
        self.work_cv.notify_all();
        running
    }

    fn park(&self, lsn: Lsn, deadline: Instant, is_commit: bool) -> Result<(), PipeError> {
        let started = Instant::now();
        if !self.request(lsn, deadline, is_commit) {
            // No flusher: the old synchronous path, one device sync per
            // caller.
            self.log.flush(lsn);
            self.stats.batches.fetch_add(1, Ordering::Relaxed);
            if is_commit {
                self.stats.commits.fetch_add(1, Ordering::Relaxed);
                self.state.lock().pending_commits = 0;
                self.stats.record_wait(started.elapsed());
            }
            return Ok(());
        }
        if self.log.wait_durable(lsn, self.cfg.park_timeout) {
            if is_commit {
                self.stats.record_wait(started.elapsed());
            }
            Ok(())
        } else {
            Err(PipeError::Stalled(lsn))
        }
    }

    /// Flusher thread body.
    fn worker(self: Arc<Self>) {
        loop {
            let (commits, drain, stop) = self.next_batch();
            if stop && !drain {
                return;
            }
            // Contain a panicking batch (chaos `Panic` actions): count it
            // and keep the flusher alive — parked committers self-heal by
            // re-checking the horizon, and the idle sweep retries the
            // batch.
            let run = panic::catch_unwind(AssertUnwindSafe(|| self.flush_batch(commits)));
            match run {
                Ok(Ok(())) | Ok(Err(_)) => {}
                Err(_) => {
                    self.stats.flusher_panics.fetch_add(1, Ordering::Relaxed);
                }
            }
            if stop {
                return;
            }
        }
    }

    /// Block until a batch is due (deadline reached, idle sweep found
    /// unflushed records, or shutdown). Returns `(pending_commits, drain,
    /// stop)` with the batch state consumed.
    fn next_batch(&self) -> (u64, bool, bool) {
        let mut st = self.state.lock();
        loop {
            if st.stop {
                let commits = std::mem::take(&mut st.pending_commits);
                return (commits, st.drain, true);
            }
            match st.deadline {
                Some(d) => {
                    if Instant::now() >= d {
                        st.deadline = None;
                        let commits = std::mem::take(&mut st.pending_commits);
                        return (commits, false, false);
                    }
                    self.work_cv.wait_until(&mut st, d);
                }
                None => {
                    self.work_cv.wait_for(&mut st, self.cfg.idle_flush);
                    // Idle sweep: pick up unforced records (end records,
                    // Async commits whose deadline was consumed by a
                    // failed batch).
                    if st.deadline.is_none()
                        && !st.stop
                        && self.log.filled_lsn() > self.log.flushed_lsn()
                    {
                        let commits = std::mem::take(&mut st.pending_commits);
                        return (commits, false, false);
                    }
                }
            }
        }
    }

    /// One batch: everything filled becomes durable with a single device
    /// sync, then waiters wake. The two chaos points bracket the sync so
    /// fault tests can crash a batch on either side of it.
    fn flush_batch(&self, commits: u64) -> Result<(), PipeError> {
        // Overload-resilience chaos point: armed with a `Delay` it makes
        // the flusher linger at the top of every batch (a stalled
        // flusher), which is what drives committers into `Stalled` /
        // inline-flush degradation in the stall-chaos harness.
        chaos::point("commitpipe.flusher.stall")?;
        let target = self.log.filled_lsn();
        chaos::point("commitpipe.flusher.post_fill_pre_fsync")?;
        if target > self.log.flushed_lsn() {
            self.log.fsync_to(target);
            self.stats.batches.fetch_add(1, Ordering::Relaxed);
            self.stats.commits.fetch_add(commits, Ordering::Relaxed);
        }
        chaos::point("commitpipe.flusher.post_fsync_pre_wakeup")?;
        self.log.notify_durable();
        Ok(())
    }

    /// Observability snapshot.
    pub fn stats(&self) -> PipeStats {
        let batches = self.stats.batches.load(Ordering::Relaxed);
        let commits = self.stats.commits.load(Ordering::Relaxed);
        PipeStats {
            batches_flushed: batches,
            commits_flushed: commits,
            mean_batch_size: if batches == 0 { 0.0 } else { commits as f64 / batches as f64 },
            commit_wait_p50_us: self.stats.percentile_us(0.50),
            commit_wait_p99_us: self.stats.percentile_us(0.99),
            flusher_panics: self.stats.flusher_panics.load(Ordering::Relaxed),
            durable_lsn: self.log.flushed_lsn().0,
            append_lsn: self.log.last_lsn().0,
            running: self.is_running(),
        }
    }
}

impl Drop for CommitPipeline {
    fn drop(&mut self) {
        // The worker holds an `Arc<Self>`, so by the time `drop` runs the
        // thread has exited; this only covers the never-started case.
        if let Some(h) = self.handle.lock().take() {
            {
                let mut st = self.state.lock();
                st.stop = true;
            }
            self.work_cv.notify_all();
            let _ = h.join();
        }
    }
}

/// WAL-before-data: the buffer pool's pre-write-back barrier goes through
/// the pipeline so page flushes group-commit with everyone else.
impl LogFlusher for CommitPipeline {
    fn flush_until(&self, lsn: Lsn) {
        if self.barrier(lsn).is_err() {
            // The flusher is wedged (dead thread or an abandoned
            // reservation fencing the horizon). Last resort: advance the
            // horizon inline; if the fence holds below `lsn`, writing the
            // page back would break the WAL rule — refuse loudly.
            self.log.flush(lsn);
            assert!(
                self.log.flushed_lsn() >= lsn.min(self.log.filled_lsn()),
                "WAL-before-data violated: durable horizon fenced below {lsn}"
            );
        }
    }
}

#[cfg(feature = "latch-audit")]
mod audit {
    pub(crate) use gist_audit::assert_thread_clear;
}

#[cfg(not(feature = "latch-audit"))]
mod audit {
    #[inline(always)]
    pub(crate) fn assert_thread_clear(_context: &str) {}
}

#[cfg(feature = "chaos")]
mod chaos {
    /// Crash point inside the pipeline; injections surface as
    /// [`PipeError::Injected`](super::PipeError::Injected).
    pub(crate) fn point(name: &'static str) -> Result<(), super::PipeError> {
        gist_chaos::point(name).map_err(|e| super::PipeError::Injected(e.0))
    }
}

#[cfg(not(feature = "chaos"))]
mod chaos {
    /// Crash points compile to nothing without the `chaos` feature.
    #[inline(always)]
    pub(crate) fn point(_name: &'static str) -> Result<(), super::PipeError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests;
