//! RD-tree specialization: set-valued keys (up to 64 elements, stored as
//! bitmasks) with *overlap* and *superset* queries.
//!
//! The "Russian-doll" tree indexes sets by keeping the union of all sets
//! below each subtree as the bounding predicate — an example of a GiST
//! whose key space has no linear order at all, which is exactly the case
//! (§4.1) where key-range locking breaks down and the paper's hybrid
//! predicate locking is required.

use gist_core::ext::{GistExtension, SplitDecision};

/// Set query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdQuery {
    /// Keys sharing at least one element with the probe.
    Overlaps(u64),
    /// Keys that are supersets of the probe.
    Contains(u64),
    /// Exact set equality (the `eq_query` form).
    Equals(u64),
}

/// The RD-tree extension.
#[derive(Debug, Clone, Copy, Default)]
pub struct RdTreeExt;

fn get_u64(b: &[u8], off: usize) -> u64 {
    let mut v = [0u8; 8];
    v.copy_from_slice(&b[off..off + 8]);
    u64::from_le_bytes(v)
}

impl GistExtension for RdTreeExt {
    /// A set of element ids `0..64` as a bitmask.
    type Key = u64;
    /// Union of all keys in the subtree.
    type Pred = u64;
    type Query = RdQuery;

    fn encode_key(&self, key: &u64, out: &mut Vec<u8>) {
        out.extend_from_slice(&key.to_le_bytes());
    }

    fn decode_key(&self, bytes: &[u8]) -> u64 {
        get_u64(bytes, 0)
    }

    fn encode_pred(&self, pred: &u64, out: &mut Vec<u8>) {
        out.extend_from_slice(&pred.to_le_bytes());
    }

    fn decode_pred(&self, bytes: &[u8]) -> u64 {
        get_u64(bytes, 0)
    }

    fn encode_query(&self, q: &RdQuery, out: &mut Vec<u8>) {
        let (tag, v) = match q {
            RdQuery::Overlaps(v) => (0u8, v),
            RdQuery::Contains(v) => (1, v),
            RdQuery::Equals(v) => (2, v),
        };
        out.push(tag);
        out.extend_from_slice(&v.to_le_bytes());
    }

    fn decode_query(&self, bytes: &[u8]) -> RdQuery {
        let v = get_u64(bytes, 1);
        match bytes[0] {
            0 => RdQuery::Overlaps(v),
            1 => RdQuery::Contains(v),
            2 => RdQuery::Equals(v),
            t => panic!("bad rd query tag {t}"),
        }
    }

    fn consistent_pred(&self, pred: &u64, q: &RdQuery) -> bool {
        match q {
            RdQuery::Overlaps(v) => pred & v != 0,
            // A key ⊇ v can only exist below if the union covers v.
            RdQuery::Contains(v) | RdQuery::Equals(v) => pred & v == *v,
        }
    }

    fn consistent_key(&self, key: &u64, q: &RdQuery) -> bool {
        match q {
            RdQuery::Overlaps(v) => key & v != 0,
            RdQuery::Contains(v) => key & v == *v,
            RdQuery::Equals(v) => key == v,
        }
    }

    fn key_equal(&self, a: &u64, b: &u64) -> bool {
        a == b
    }

    fn eq_query(&self, key: &u64) -> RdQuery {
        RdQuery::Equals(*key)
    }

    fn key_pred(&self, key: &u64) -> u64 {
        *key
    }

    fn union_preds(&self, a: &u64, b: &u64) -> u64 {
        a | b
    }

    fn pred_covers(&self, outer: &u64, inner: &u64) -> bool {
        outer & inner == *inner
    }

    fn penalty(&self, pred: &u64, key: &u64) -> f64 {
        ((pred | key).count_ones() - pred.count_ones()) as f64
    }

    fn pick_split(&self, preds: &[u64]) -> SplitDecision {
        // Seeds: the pair with the largest symmetric difference; then
        // greedy assignment by union growth.
        let n = preds.len();
        assert!(n >= 2);
        let (mut s1, mut s2, mut worst) = (0, 1, -1i32);
        for i in 0..n {
            for j in i + 1..n {
                let diff = (preds[i] ^ preds[j]).count_ones() as i32;
                if diff > worst {
                    worst = diff;
                    s1 = i;
                    s2 = j;
                }
            }
        }
        let mut left = vec![s1];
        let mut right = vec![s2];
        let (mut lu, mut ru) = (preds[s1], preds[s2]);
        for (i, &p) in preds.iter().enumerate() {
            if i == s1 || i == s2 {
                continue;
            }
            let dl = (lu | p).count_ones() - lu.count_ones();
            let dr = (ru | p).count_ones() - ru.count_ones();
            if dl < dr || (dl == dr && left.len() <= right.len()) {
                lu |= p;
                left.push(i);
            } else {
                ru |= p;
                right.push(i);
            }
        }
        SplitDecision { left, right }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: u64 = 0b0001;
    const B: u64 = 0b0010;
    const C: u64 = 0b0100;

    #[test]
    fn codec_roundtrips() {
        let e = RdTreeExt;
        let mut b = Vec::new();
        e.encode_key(&(A | C), &mut b);
        assert_eq!(e.decode_key(&b), A | C);
        for q in [RdQuery::Overlaps(A), RdQuery::Contains(A | B), RdQuery::Equals(C)] {
            let mut b = Vec::new();
            e.encode_query(&q, &mut b);
            assert_eq!(e.decode_query(&b), q);
        }
    }

    #[test]
    fn query_semantics() {
        let e = RdTreeExt;
        let key = A | B;
        assert!(e.consistent_key(&key, &RdQuery::Overlaps(B | C)));
        assert!(!e.consistent_key(&key, &RdQuery::Overlaps(C)));
        assert!(e.consistent_key(&key, &RdQuery::Contains(A)));
        assert!(!e.consistent_key(&key, &RdQuery::Contains(A | C)));
        assert!(e.consistent_key(&key, &e.eq_query(&(A | B))));
        assert!(!e.consistent_key(&key, &e.eq_query(&A)));
    }

    #[test]
    fn pred_consistency_is_sound() {
        // If any key under `pred` satisfies q, consistent_pred(pred, q)
        // must be true (pred = union of keys).
        let e = RdTreeExt;
        let keys = [A, A | B, B | C];
        let pred = keys.iter().fold(0, |acc, k| e.union_preds(&acc, k));
        for q in [RdQuery::Overlaps(C), RdQuery::Contains(B | C), RdQuery::Equals(A | B)] {
            let any_key = keys.iter().any(|k| e.consistent_key(k, &q));
            if any_key {
                assert!(e.consistent_pred(&pred, &q), "{q:?} must be consistent");
            }
        }
    }

    #[test]
    fn penalty_counts_new_elements() {
        let e = RdTreeExt;
        assert_eq!(e.penalty(&(A | B), &A), 0.0);
        assert_eq!(e.penalty(&(A | B), &(C | B)), 1.0);
        assert_eq!(e.penalty(&0, &(A | B | C)), 3.0);
    }

    #[test]
    fn split_separates_disjoint_clusters() {
        let e = RdTreeExt;
        let preds = vec![A, A, A | B, C << 8, C << 8, (C | A) << 8];
        let d = e.pick_split(&preds);
        assert!(!d.left.is_empty() && !d.right.is_empty());
        assert_eq!(d.left.len() + d.right.len(), preds.len());
    }
}
