//! R-tree specialization (\[Gut84\]): 2-D rectangles with minimum bounding
//! rectangles as bounding predicates, overlap/containment queries, and
//! Guttman's quadratic pick-split.

use gist_core::ext::{GistExtension, SplitDecision};

/// An axis-aligned rectangle (`lo ≤ hi` on both axes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Min x.
    pub x1: f64,
    /// Min y.
    pub y1: f64,
    /// Max x.
    pub x2: f64,
    /// Max y.
    pub y2: f64,
}

impl Rect {
    /// Construct (normalizes coordinate order).
    pub fn new(x1: f64, y1: f64, x2: f64, y2: f64) -> Self {
        Rect { x1: x1.min(x2), y1: y1.min(y2), x2: x1.max(x2), y2: y1.max(y2) }
    }

    /// A point rectangle.
    pub fn point(x: f64, y: f64) -> Self {
        Rect { x1: x, y1: y, x2: x, y2: y }
    }

    /// Area.
    pub fn area(&self) -> f64 {
        (self.x2 - self.x1) * (self.y2 - self.y1)
    }

    /// Whether two rectangles overlap (closed edges).
    pub fn overlaps(&self, o: &Rect) -> bool {
        self.x1 <= o.x2 && o.x1 <= self.x2 && self.y1 <= o.y2 && o.y1 <= self.y2
    }

    /// Whether `self` contains `o`.
    pub fn contains(&self, o: &Rect) -> bool {
        self.x1 <= o.x1 && o.x2 <= self.x2 && self.y1 <= o.y1 && o.y2 <= self.y2
    }

    /// Minimum bounding rectangle of both.
    pub fn union(&self, o: &Rect) -> Rect {
        Rect {
            x1: self.x1.min(o.x1),
            y1: self.y1.min(o.y1),
            x2: self.x2.max(o.x2),
            y2: self.y2.max(o.y2),
        }
    }

    /// Center point.
    pub fn center(&self) -> (f64, f64) {
        ((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)
    }

    /// Size measure used by penalty and pick-split: area plus the half
    /// perimeter. The margin term keeps the heuristics meaningful for
    /// degenerate (zero-area) rectangles such as points and segments —
    /// the same reason the R*-tree mixes margin into its split criteria.
    pub fn measure(&self) -> f64 {
        self.area() + (self.x2 - self.x1) + (self.y2 - self.y1)
    }
}

/// Spatial query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpatialQuery {
    /// All keys overlapping the window.
    Overlaps(Rect),
    /// All keys fully inside the window.
    Within(Rect),
    /// Exact-rectangle equality (the `eq_query` form).
    Equals(Rect),
}

impl SpatialQuery {
    fn window(&self) -> &Rect {
        match self {
            SpatialQuery::Overlaps(r) | SpatialQuery::Within(r) | SpatialQuery::Equals(r) => r,
        }
    }
}

/// The R-tree extension.
#[derive(Debug, Clone, Copy, Default)]
pub struct RtreeExt;

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_f64(b: &[u8], off: usize) -> f64 {
    let mut v = [0u8; 8];
    v.copy_from_slice(&b[off..off + 8]);
    f64::from_le_bytes(v)
}

fn encode_rect(r: &Rect, out: &mut Vec<u8>) {
    put_f64(out, r.x1);
    put_f64(out, r.y1);
    put_f64(out, r.x2);
    put_f64(out, r.y2);
}

fn decode_rect(b: &[u8], off: usize) -> Rect {
    Rect {
        x1: get_f64(b, off),
        y1: get_f64(b, off + 8),
        x2: get_f64(b, off + 16),
        y2: get_f64(b, off + 24),
    }
}

impl GistExtension for RtreeExt {
    type Key = Rect;
    type Pred = Rect;
    type Query = SpatialQuery;

    fn encode_key(&self, key: &Rect, out: &mut Vec<u8>) {
        encode_rect(key, out);
    }

    fn decode_key(&self, bytes: &[u8]) -> Rect {
        decode_rect(bytes, 0)
    }

    fn encode_pred(&self, pred: &Rect, out: &mut Vec<u8>) {
        encode_rect(pred, out);
    }

    fn decode_pred(&self, bytes: &[u8]) -> Rect {
        decode_rect(bytes, 0)
    }

    fn encode_query(&self, q: &SpatialQuery, out: &mut Vec<u8>) {
        out.push(match q {
            SpatialQuery::Overlaps(_) => 0,
            SpatialQuery::Within(_) => 1,
            SpatialQuery::Equals(_) => 2,
        });
        encode_rect(q.window(), out);
    }

    fn decode_query(&self, bytes: &[u8]) -> SpatialQuery {
        let r = decode_rect(bytes, 1);
        match bytes[0] {
            0 => SpatialQuery::Overlaps(r),
            1 => SpatialQuery::Within(r),
            2 => SpatialQuery::Equals(r),
            t => panic!("bad spatial query tag {t}"),
        }
    }

    fn consistent_pred(&self, pred: &Rect, q: &SpatialQuery) -> bool {
        // A subtree can contain a qualifying key iff its MBR overlaps
        // the window (for all three query forms).
        pred.overlaps(q.window())
    }

    fn consistent_key(&self, key: &Rect, q: &SpatialQuery) -> bool {
        match q {
            SpatialQuery::Overlaps(w) => key.overlaps(w),
            SpatialQuery::Within(w) => w.contains(key),
            SpatialQuery::Equals(w) => key == w,
        }
    }

    fn key_equal(&self, a: &Rect, b: &Rect) -> bool {
        a == b
    }

    fn eq_query(&self, key: &Rect) -> SpatialQuery {
        SpatialQuery::Equals(*key)
    }

    fn key_pred(&self, key: &Rect) -> Rect {
        *key
    }

    fn union_preds(&self, a: &Rect, b: &Rect) -> Rect {
        a.union(b)
    }

    fn pred_covers(&self, outer: &Rect, inner: &Rect) -> bool {
        outer.contains(inner)
    }

    fn penalty(&self, pred: &Rect, key: &Rect) -> f64 {
        // Guttman: enlargement of the MBR (area + margin so that point
        // data still differentiates candidates).
        pred.union(key).measure() - pred.measure()
    }

    fn pick_split(&self, preds: &[Rect]) -> SplitDecision {
        // Guttman's quadratic split: pick the pair wasting the most area
        // as seeds, then assign each remaining entry to the side whose
        // MBR grows least (ties: smaller area), keeping both sides
        // minimally filled.
        let n = preds.len();
        assert!(n >= 2);
        let (mut s1, mut s2, mut worst) = (0, 1, f64::MIN);
        for i in 0..n {
            for j in i + 1..n {
                let waste =
                    preds[i].union(&preds[j]).measure() - preds[i].measure() - preds[j].measure();
                if waste > worst {
                    worst = waste;
                    s1 = i;
                    s2 = j;
                }
            }
        }
        let min_fill = (n / 3).max(1);
        let mut left = vec![s1];
        let mut right = vec![s2];
        let mut lbox = preds[s1];
        let mut rbox = preds[s2];
        for (i, p) in preds.iter().enumerate() {
            if i == s1 || i == s2 {
                continue;
            }
            let remaining = n - left.len() - right.len() - 1;
            // Force-assign to keep minimum fill reachable.
            if left.len() + remaining < min_fill {
                lbox = lbox.union(p);
                left.push(i);
                continue;
            }
            if right.len() + remaining < min_fill {
                rbox = rbox.union(p);
                right.push(i);
                continue;
            }
            let dl = lbox.union(p).measure() - lbox.measure();
            let dr = rbox.union(p).measure() - rbox.measure();
            let go_left = match dl.partial_cmp(&dr) {
                Some(std::cmp::Ordering::Less) => true,
                Some(std::cmp::Ordering::Greater) => false,
                _ => lbox.measure() <= rbox.measure(),
            };
            if go_left {
                lbox = lbox.union(p);
                left.push(i);
            } else {
                rbox = rbox.union(p);
                right.push(i);
            }
        }
        SplitDecision { left, right }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_geometry() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(1.0, 1.0, 3.0, 3.0);
        assert!(a.overlaps(&b));
        assert!(!a.contains(&b));
        let u = a.union(&b);
        assert!(u.contains(&a) && u.contains(&b));
        assert_eq!(u.area(), 9.0);
        assert_eq!(Rect::new(3.0, 3.0, 1.0, 1.0), Rect::new(1.0, 1.0, 3.0, 3.0));
    }

    #[test]
    fn codec_roundtrips() {
        let e = RtreeExt;
        let r = Rect::new(-1.5, 2.25, 3.0, 4.0);
        let mut b = Vec::new();
        e.encode_key(&r, &mut b);
        assert_eq!(e.decode_key(&b), r);
        for q in [SpatialQuery::Overlaps(r), SpatialQuery::Within(r), SpatialQuery::Equals(r)] {
            let mut b = Vec::new();
            e.encode_query(&q, &mut b);
            assert_eq!(e.decode_query(&b), q);
        }
    }

    #[test]
    fn query_semantics() {
        let e = RtreeExt;
        let key = Rect::new(1.0, 1.0, 2.0, 2.0);
        assert!(e.consistent_key(&key, &SpatialQuery::Overlaps(Rect::new(0.0, 0.0, 1.5, 1.5))));
        assert!(!e.consistent_key(&key, &SpatialQuery::Within(Rect::new(0.0, 0.0, 1.5, 1.5))));
        assert!(e.consistent_key(&key, &SpatialQuery::Within(Rect::new(0.0, 0.0, 3.0, 3.0))));
        assert!(e.consistent_key(&key, &e.eq_query(&key)));
        assert!(!e.consistent_key(&key, &e.eq_query(&Rect::new(1.0, 1.0, 2.0, 2.1))));
    }

    #[test]
    fn penalty_prefers_containing_box() {
        let e = RtreeExt;
        let small = Rect::new(0.0, 0.0, 1.0, 1.0);
        let big = Rect::new(0.0, 0.0, 10.0, 10.0);
        let key = Rect::point(0.5, 0.5);
        assert_eq!(e.penalty(&small, &key), 0.0);
        assert_eq!(e.penalty(&big, &key), 0.0);
        let far = Rect::point(20.0, 20.0);
        assert!(e.penalty(&small, &far) > e.penalty(&big, &far) * 0.0);
        assert!(e.penalty(&small, &far) > 0.0);
    }

    #[test]
    fn quadratic_split_partitions_and_fills() {
        let e = RtreeExt;
        // Two clusters far apart.
        let mut preds = Vec::new();
        for i in 0..6 {
            preds.push(Rect::point(i as f64 * 0.1, 0.0));
            preds.push(Rect::point(100.0 + i as f64 * 0.1, 0.0));
        }
        let d = e.pick_split(&preds);
        assert_eq!(d.left.len() + d.right.len(), preds.len());
        assert!(!d.left.is_empty() && !d.right.is_empty());
        // Clusters end up separated.
        let left_far = d.left.iter().filter(|&&i| preds[i].x1 >= 50.0).count();
        let right_far = d.right.iter().filter(|&&i| preds[i].x1 >= 50.0).count();
        assert!(left_far == 0 || right_far == 0, "clusters not mixed");
    }
}
