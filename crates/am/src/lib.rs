#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Access methods realized as GiST extensions.
//!
//! The paper's promise (§1, §12): with concurrency and recovery handled
//! by the GiST core, "the core DBMS plus GiST can be extended with a new
//! access method simply by supplying it with a set of pre-specified
//! methods". Each module here is exactly that — a few hundred lines of
//! extension code, no locking, logging or latching anywhere:
//!
//! - [`btree`] — a B⁺-tree-like index over `i64` keys with inclusive
//!   range queries (\[HNP95\]'s first example specialization).
//! - [`strtree`] — the same shape over byte-string keys (prefix and
//!   range queries), exercising variable-length keys and predicates.
//! - [`rtree`] — Guttman's R-tree over 2-D rectangles with quadratic
//!   pick-split and overlap/containment queries.
//! - [`rdtree`] — an RD-tree ("Russian-doll" tree) over small sets with
//!   overlap and superset queries.

pub mod btree;
pub mod rdtree;
pub mod rtree;
pub mod strtree;

pub use btree::{BtreeExt, I64Query};
pub use rdtree::{RdQuery, RdTreeExt};
pub use rtree::{Rect, RtreeExt, SpatialQuery};
pub use strtree::{StrQuery, StrTreeExt};
