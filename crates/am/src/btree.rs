//! B-tree specialization: `i64` keys, interval bounding predicates,
//! inclusive range queries.
//!
//! This is \[HNP95\]'s canonical example: "the entries in internal nodes
//! represent ranges which bound values of keys in the leaves". Note that
//! unlike a real B⁺-tree the GiST does not require sibling ranges to be
//! disjoint — inserts pick the minimum-penalty branch, and after splits
//! ranges are disjoint in practice but nothing depends on it.

use gist_core::ext::{GistExtension, SplitDecision};

/// Inclusive range query over `i64` keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct I64Query {
    /// Lower bound (inclusive).
    pub lo: i64,
    /// Upper bound (inclusive).
    pub hi: i64,
}

impl I64Query {
    /// Range query `[lo, hi]`.
    pub fn range(lo: i64, hi: i64) -> Self {
        I64Query { lo, hi }
    }

    /// Point query `[k, k]`.
    pub fn eq(k: i64) -> Self {
        I64Query { lo: k, hi: k }
    }
}

/// The B-tree extension.
#[derive(Debug, Clone, Copy, Default)]
pub struct BtreeExt;

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_i64(b: &[u8], off: usize) -> i64 {
    let mut v = [0u8; 8];
    v.copy_from_slice(&b[off..off + 8]);
    i64::from_le_bytes(v)
}

impl GistExtension for BtreeExt {
    type Key = i64;
    /// `(min, max)` inclusive interval.
    type Pred = (i64, i64);
    type Query = I64Query;

    fn encode_key(&self, key: &i64, out: &mut Vec<u8>) {
        put_i64(out, *key);
    }

    fn decode_key(&self, bytes: &[u8]) -> i64 {
        get_i64(bytes, 0)
    }

    fn encode_pred(&self, pred: &(i64, i64), out: &mut Vec<u8>) {
        put_i64(out, pred.0);
        put_i64(out, pred.1);
    }

    fn decode_pred(&self, bytes: &[u8]) -> (i64, i64) {
        (get_i64(bytes, 0), get_i64(bytes, 8))
    }

    fn encode_query(&self, q: &I64Query, out: &mut Vec<u8>) {
        put_i64(out, q.lo);
        put_i64(out, q.hi);
    }

    fn decode_query(&self, bytes: &[u8]) -> I64Query {
        I64Query { lo: get_i64(bytes, 0), hi: get_i64(bytes, 8) }
    }

    fn consistent_pred(&self, pred: &(i64, i64), q: &I64Query) -> bool {
        pred.0 <= q.hi && q.lo <= pred.1
    }

    fn consistent_key(&self, key: &i64, q: &I64Query) -> bool {
        q.lo <= *key && *key <= q.hi
    }

    fn key_equal(&self, a: &i64, b: &i64) -> bool {
        a == b
    }

    fn eq_query(&self, key: &i64) -> I64Query {
        I64Query::eq(*key)
    }

    fn key_pred(&self, key: &i64) -> (i64, i64) {
        (*key, *key)
    }

    fn union_preds(&self, a: &(i64, i64), b: &(i64, i64)) -> (i64, i64) {
        (a.0.min(b.0), a.1.max(b.1))
    }

    fn pred_covers(&self, outer: &(i64, i64), inner: &(i64, i64)) -> bool {
        outer.0 <= inner.0 && inner.1 <= outer.1
    }

    fn penalty(&self, pred: &(i64, i64), key: &i64) -> f64 {
        // Interval growth needed to admit the key.
        let below = (pred.0 - *key).max(0);
        let above = (*key - pred.1).max(0);
        (below + above) as f64
    }

    fn pick_split(&self, preds: &[(i64, i64)]) -> SplitDecision {
        // Order by interval midpoint and cut in the middle — yields the
        // classic B-tree half split for point predicates.
        gist_core::ext::median_split(preds, |p| (p.0 as f64 + p.1 as f64) / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_roundtrips() {
        let e = BtreeExt;
        for k in [0i64, -5, i64::MAX, i64::MIN, 42] {
            let mut b = Vec::new();
            e.encode_key(&k, &mut b);
            assert_eq!(e.decode_key(&b), k);
        }
        let mut b = Vec::new();
        e.encode_pred(&(-7, 9), &mut b);
        assert_eq!(e.decode_pred(&b), (-7, 9));
        let mut b = Vec::new();
        e.encode_query(&I64Query::range(1, 2), &mut b);
        assert_eq!(e.decode_query(&b), I64Query::range(1, 2));
    }

    #[test]
    fn consistency_semantics() {
        let e = BtreeExt;
        assert!(e.consistent_key(&5, &I64Query::range(1, 10)));
        assert!(!e.consistent_key(&11, &I64Query::range(1, 10)));
        assert!(e.consistent_pred(&(0, 4), &I64Query::range(4, 9)), "touching edges overlap");
        assert!(!e.consistent_pred(&(0, 3), &I64Query::range(4, 9)));
        assert!(e.consistent_key(&7, &e.eq_query(&7)));
    }

    #[test]
    fn union_and_covers_agree() {
        let e = BtreeExt;
        let u = e.union_preds(&(0, 5), &(3, 9));
        assert_eq!(u, (0, 9));
        assert!(e.pred_covers(&u, &(0, 5)));
        assert!(e.pred_covers(&u, &(3, 9)));
        assert!(!e.pred_covers(&(0, 5), &(3, 9)));
        // covers(o, i) ⇔ union(o, i) == o
        assert_eq!(e.pred_covers(&(0, 9), &(2, 3)), e.union_preds(&(0, 9), &(2, 3)) == (0, 9));
    }

    #[test]
    fn penalty_is_zero_inside_and_positive_outside() {
        let e = BtreeExt;
        assert_eq!(e.penalty(&(0, 10), &5), 0.0);
        assert_eq!(e.penalty(&(0, 10), &13), 3.0);
        assert_eq!(e.penalty(&(0, 10), &-2), 2.0);
    }

    #[test]
    fn pick_split_orders_by_value() {
        let e = BtreeExt;
        let preds: Vec<(i64, i64)> = [5, 1, 9, 3, 7, 2].iter().map(|&k| (k, k)).collect();
        let d = e.pick_split(&preds);
        let left_max = d.left.iter().map(|&i| preds[i].1).max().unwrap();
        let right_min = d.right.iter().map(|&i| preds[i].0).min().unwrap();
        assert!(left_max <= right_min, "split respects key order");
        assert_eq!(d.left.len() + d.right.len(), preds.len());
    }
}
