//! B-tree over byte-string keys: variable-length keys and predicates
//! (lexicographic ranges), with range, prefix, and equality queries.
//!
//! Exercises the parts of the core that fixed-size extensions do not:
//! variable-length cells, BP cells that grow on union, and predicate
//! encodings with internal length framing.

use gist_core::ext::{GistExtension, SplitDecision};

/// String-key query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrQuery {
    /// Inclusive lexicographic range.
    Range(Vec<u8>, Vec<u8>),
    /// All keys starting with the prefix.
    Prefix(Vec<u8>),
    /// Exact match.
    Eq(Vec<u8>),
}

/// Smallest string strictly greater than every string with prefix `p`
/// (or `None` when `p` is all-0xFF, meaning "unbounded").
fn prefix_upper(p: &[u8]) -> Option<Vec<u8>> {
    let mut up = p.to_vec();
    while let Some(last) = up.last_mut() {
        if *last < 0xFF {
            *last += 1;
            return Some(up);
        }
        up.pop();
    }
    None
}

impl StrQuery {
    /// Bounds as an inclusive-lo / exclusive-ish-hi pair for overlap
    /// tests against `(min, max)` predicates; `None` hi = unbounded.
    fn bounds(&self) -> (&[u8], Option<Vec<u8>>, bool) {
        match self {
            StrQuery::Range(lo, hi) => (lo, Some(hi.clone()), true),
            StrQuery::Prefix(p) => (p, prefix_upper(p), false),
            StrQuery::Eq(k) => (k, Some(k.clone()), true),
        }
    }
}

/// The byte-string B-tree extension.
#[derive(Debug, Clone, Copy, Default)]
pub struct StrTreeExt;

fn put_framed(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn get_framed(b: &[u8], off: usize) -> (Vec<u8>, usize) {
    let mut len4 = [0u8; 4];
    len4.copy_from_slice(&b[off..off + 4]);
    let len = u32::from_le_bytes(len4) as usize;
    (b[off + 4..off + 4 + len].to_vec(), off + 4 + len)
}

impl GistExtension for StrTreeExt {
    type Key = Vec<u8>;
    /// `(min, max)` inclusive lexicographic interval.
    type Pred = (Vec<u8>, Vec<u8>);
    type Query = StrQuery;

    fn encode_key(&self, key: &Vec<u8>, out: &mut Vec<u8>) {
        out.extend_from_slice(key);
    }

    fn decode_key(&self, bytes: &[u8]) -> Vec<u8> {
        bytes.to_vec()
    }

    fn encode_pred(&self, pred: &(Vec<u8>, Vec<u8>), out: &mut Vec<u8>) {
        put_framed(out, &pred.0);
        put_framed(out, &pred.1);
    }

    fn decode_pred(&self, bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
        let (lo, off) = get_framed(bytes, 0);
        let (hi, _) = get_framed(bytes, off);
        (lo, hi)
    }

    fn encode_query(&self, q: &StrQuery, out: &mut Vec<u8>) {
        match q {
            StrQuery::Range(lo, hi) => {
                out.push(0);
                put_framed(out, lo);
                put_framed(out, hi);
            }
            StrQuery::Prefix(p) => {
                out.push(1);
                put_framed(out, p);
            }
            StrQuery::Eq(k) => {
                out.push(2);
                put_framed(out, k);
            }
        }
    }

    fn decode_query(&self, bytes: &[u8]) -> StrQuery {
        match bytes[0] {
            0 => {
                let (lo, off) = get_framed(bytes, 1);
                let (hi, _) = get_framed(bytes, off);
                StrQuery::Range(lo, hi)
            }
            1 => StrQuery::Prefix(get_framed(bytes, 1).0),
            2 => StrQuery::Eq(get_framed(bytes, 1).0),
            t => panic!("bad string query tag {t}"),
        }
    }

    fn consistent_pred(&self, pred: &(Vec<u8>, Vec<u8>), q: &StrQuery) -> bool {
        let (lo, hi, hi_inclusive) = q.bounds();
        let above_lo = pred.1.as_slice() >= lo;
        let below_hi = match &hi {
            None => true,
            Some(h) => {
                if hi_inclusive {
                    pred.0.as_slice() <= h.as_slice()
                } else {
                    pred.0.as_slice() < h.as_slice()
                }
            }
        };
        above_lo && below_hi
    }

    fn consistent_key(&self, key: &Vec<u8>, q: &StrQuery) -> bool {
        match q {
            StrQuery::Range(lo, hi) => key >= lo && key <= hi,
            StrQuery::Prefix(p) => key.starts_with(p),
            StrQuery::Eq(k) => key == k,
        }
    }

    fn key_equal(&self, a: &Vec<u8>, b: &Vec<u8>) -> bool {
        a == b
    }

    fn eq_query(&self, key: &Vec<u8>) -> StrQuery {
        StrQuery::Eq(key.clone())
    }

    fn key_pred(&self, key: &Vec<u8>) -> (Vec<u8>, Vec<u8>) {
        (key.clone(), key.clone())
    }

    fn union_preds(&self, a: &(Vec<u8>, Vec<u8>), b: &(Vec<u8>, Vec<u8>)) -> (Vec<u8>, Vec<u8>) {
        (a.0.clone().min(b.0.clone()), a.1.clone().max(b.1.clone()))
    }

    fn pred_covers(&self, outer: &(Vec<u8>, Vec<u8>), inner: &(Vec<u8>, Vec<u8>)) -> bool {
        outer.0 <= inner.0 && inner.1 <= outer.1
    }

    fn penalty(&self, pred: &(Vec<u8>, Vec<u8>), key: &Vec<u8>) -> f64 {
        // No numeric span for strings: charge by how far outside the
        // interval the key falls, using the first differing byte as a
        // coarse distance.
        fn byte_distance(a: &[u8], b: &[u8]) -> f64 {
            let mut i = 0;
            while i < a.len() && i < b.len() && a[i] == b[i] {
                i += 1;
            }
            let av = a.get(i).copied().unwrap_or(0) as f64;
            let bv = b.get(i).copied().unwrap_or(0) as f64;
            (av - bv).abs() / 256f64.powi(i as i32)
        }
        if key.as_slice() < pred.0.as_slice() {
            byte_distance(&pred.0, key)
        } else if key.as_slice() > pred.1.as_slice() {
            byte_distance(key, &pred.1)
        } else {
            0.0
        }
    }

    fn pick_split(&self, preds: &[(Vec<u8>, Vec<u8>)]) -> SplitDecision {
        // Sort by lower bound; cut in the middle.
        let mut idx: Vec<usize> = (0..preds.len()).collect();
        idx.sort_by(|&a, &b| preds[a].0.cmp(&preds[b].0));
        let cut = preds.len() / 2;
        SplitDecision { left: idx[..cut].to_vec(), right: idx[cut..].to_vec() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Vec<u8> {
        s.as_bytes().to_vec()
    }

    #[test]
    fn codec_roundtrips() {
        let e = StrTreeExt;
        let mut b = Vec::new();
        e.encode_key(&k("hello"), &mut b);
        assert_eq!(e.decode_key(&b), k("hello"));
        let p = (k("alpha"), k("omega"));
        let mut b = Vec::new();
        e.encode_pred(&p, &mut b);
        assert_eq!(e.decode_pred(&b), p);
        for q in [
            StrQuery::Range(k("a"), k("b")),
            StrQuery::Prefix(k("pre")),
            StrQuery::Eq(k("x")),
        ] {
            let mut b = Vec::new();
            e.encode_query(&q, &mut b);
            assert_eq!(e.decode_query(&b), q);
        }
    }

    #[test]
    fn prefix_upper_bounds() {
        assert_eq!(prefix_upper(b"abc"), Some(b"abd".to_vec()));
        assert_eq!(prefix_upper(&[0x61, 0xFF]), Some(vec![0x62]));
        assert_eq!(prefix_upper(&[0xFF, 0xFF]), None);
    }

    #[test]
    fn query_semantics() {
        let e = StrTreeExt;
        assert!(e.consistent_key(&k("m"), &StrQuery::Range(k("a"), k("z"))));
        assert!(!e.consistent_key(&k("zz"), &StrQuery::Range(k("a"), k("z"))));
        assert!(e.consistent_key(&k("prefix-tail"), &StrQuery::Prefix(k("prefix"))));
        assert!(!e.consistent_key(&k("prefer"), &StrQuery::Prefix(k("prefix"))));
        assert!(e.consistent_key(&k("x"), &e.eq_query(&k("x"))));
    }

    #[test]
    fn pred_consistency_covers_prefix_queries() {
        let e = StrTreeExt;
        let pred = (k("carrot"), k("melon"));
        assert!(e.consistent_pred(&pred, &StrQuery::Prefix(k("d"))));
        assert!(!e.consistent_pred(&pred, &StrQuery::Prefix(k("z"))));
        assert!(e.consistent_pred(&pred, &StrQuery::Range(k("lemon"), k("zebra"))));
        assert!(!e.consistent_pred(&pred, &StrQuery::Range(k("n"), k("o"))));
    }

    #[test]
    fn union_covers_and_penalty() {
        let e = StrTreeExt;
        let u = e.union_preds(&(k("b"), k("d")), &(k("c"), k("f")));
        assert_eq!(u, (k("b"), k("f")));
        assert!(e.pred_covers(&u, &(k("c"), k("d"))));
        assert_eq!(e.penalty(&(k("b"), k("f")), &k("c")), 0.0);
        assert!(e.penalty(&(k("b"), k("f")), &k("z")) > 0.0);
        assert!(e.penalty(&(k("b"), k("f")), &k("g")) < e.penalty(&(k("b"), k("f")), &k("z")));
    }

    #[test]
    fn split_respects_order() {
        let e = StrTreeExt;
        let preds: Vec<(Vec<u8>, Vec<u8>)> =
            ["pear", "apple", "zucchini", "fig", "mango", "kiwi"]
                .iter()
                .map(|s| (k(s), k(s)))
                .collect();
        let d = e.pick_split(&preds);
        let left_max = d.left.iter().map(|&i| preds[i].1.clone()).max().unwrap();
        let right_min = d.right.iter().map(|&i| preds[i].0.clone()).min().unwrap();
        assert!(left_max <= right_min);
    }
}
