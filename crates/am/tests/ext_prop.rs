//! Property tests of the extension-method algebra, for all four access
//! methods. These are the contracts the core's correctness rests on:
//!
//! 1. `union_preds(a, b)` covers both `a` and `b`;
//! 2. `pred_covers` is reflexive and agrees with `union` (`covers(o, i)`
//!    ⇔ `union(o, i) == o`);
//! 3. consistency is monotone under union: if `consistent(p, q)` then
//!    `consistent(union(p, x), q)`;
//! 4. a key is consistent with its own `eq_query`, and `key_pred(k)`
//!    covers `k`;
//! 5. `pick_split` partitions indices into two non-empty sides;
//! 6. codecs round-trip;
//! 7. `penalty(p, k) == 0` when `p` covers `k`.

use proptest::prelude::*;

use gist_am::{BtreeExt, I64Query, RdQuery, RdTreeExt, Rect, RtreeExt, StrQuery, StrTreeExt};
use gist_core::ext::GistExtension;

// ---------------- B-tree ----------------

fn btree_pred() -> impl Strategy<Value = (i64, i64)> {
    (any::<i32>(), any::<i32>()).prop_map(|(a, b)| {
        let (a, b) = (a as i64, b as i64);
        (a.min(b), a.max(b))
    })
}

proptest! {
    #[test]
    fn btree_union_covers((a, b) in (btree_pred(), btree_pred())) {
        let e = BtreeExt;
        let u = e.union_preds(&a, &b);
        prop_assert!(e.pred_covers(&u, &a));
        prop_assert!(e.pred_covers(&u, &b));
        prop_assert!(e.pred_covers(&a, &a));
        prop_assert_eq!(e.pred_covers(&a, &b), e.union_preds(&a, &b) == a);
    }

    #[test]
    fn btree_consistency_monotone(p in btree_pred(), x in btree_pred(),
                                  lo in any::<i32>(), hi in any::<i32>()) {
        let e = BtreeExt;
        let q = I64Query::range((lo as i64).min(hi as i64), (lo as i64).max(hi as i64));
        if e.consistent_pred(&p, &q) {
            prop_assert!(e.consistent_pred(&e.union_preds(&p, &x), &q));
        }
    }

    #[test]
    fn btree_key_laws(k in any::<i64>(), p in btree_pred()) {
        let e = BtreeExt;
        prop_assert!(e.consistent_key(&k, &e.eq_query(&k)));
        prop_assert!(e.pred_covers_key(&e.key_pred(&k), &k));
        if e.pred_covers_key(&p, &k) {
            prop_assert_eq!(e.penalty(&p, &k), 0.0);
        } else {
            prop_assert!(e.penalty(&p, &k) > 0.0);
        }
        let mut buf = Vec::new();
        e.encode_key(&k, &mut buf);
        prop_assert_eq!(e.decode_key(&buf), k);
    }

    #[test]
    fn btree_pick_split_partitions(keys in prop::collection::vec(any::<i64>(), 2..50)) {
        let e = BtreeExt;
        let preds: Vec<(i64, i64)> = keys.iter().map(|k| e.key_pred(k)).collect();
        let d = e.pick_split(&preds);
        prop_assert!(!d.left.is_empty());
        prop_assert!(!d.right.is_empty());
        let mut all: Vec<usize> = d.left.iter().chain(d.right.iter()).copied().collect();
        all.sort();
        prop_assert_eq!(all, (0..preds.len()).collect::<Vec<_>>());
    }
}

// ---------------- R-tree ----------------

fn rect() -> impl Strategy<Value = Rect> {
    (0.0f64..1000.0, 0.0f64..1000.0, 0.0f64..100.0, 0.0f64..100.0)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

proptest! {
    #[test]
    fn rtree_union_covers(a in rect(), b in rect()) {
        let e = RtreeExt;
        let u = e.union_preds(&a, &b);
        prop_assert!(e.pred_covers(&u, &a));
        prop_assert!(e.pred_covers(&u, &b));
        prop_assert!(e.pred_covers(&a, &a));
    }

    #[test]
    fn rtree_consistency_monotone(p in rect(), x in rect(), w in rect()) {
        let e = RtreeExt;
        use gist_am::SpatialQuery;
        for q in [SpatialQuery::Overlaps(w), SpatialQuery::Within(w), SpatialQuery::Equals(w)] {
            if e.consistent_pred(&p, &q) {
                prop_assert!(e.consistent_pred(&e.union_preds(&p, &x), &q));
            }
        }
    }

    #[test]
    fn rtree_key_laws(k in rect(), p in rect()) {
        let e = RtreeExt;
        prop_assert!(e.consistent_key(&k, &e.eq_query(&k)));
        prop_assert!(e.pred_covers_key(&e.key_pred(&k), &k));
        if e.pred_covers_key(&p, &k) {
            prop_assert_eq!(e.penalty(&p, &k), 0.0);
        }
        let mut buf = Vec::new();
        e.encode_key(&k, &mut buf);
        prop_assert_eq!(e.decode_key(&buf), k);
    }

    #[test]
    fn rtree_split_partitions(rects in prop::collection::vec(rect(), 2..40)) {
        let e = RtreeExt;
        let d = e.pick_split(&rects);
        prop_assert!(!d.left.is_empty());
        prop_assert!(!d.right.is_empty());
        let mut all: Vec<usize> = d.left.iter().chain(d.right.iter()).copied().collect();
        all.sort();
        all.dedup();
        prop_assert_eq!(all.len(), rects.len());
    }

    /// Soundness of subtree pruning: if any key under pred satisfies the
    /// query, consistent_pred must say so.
    #[test]
    fn rtree_pruning_is_sound(keys in prop::collection::vec(rect(), 1..20), w in rect()) {
        let e = RtreeExt;
        let pred = keys.iter().skip(1).fold(keys[0], |acc, r| acc.union(r));
        use gist_am::SpatialQuery;
        for q in [SpatialQuery::Overlaps(w), SpatialQuery::Within(w), SpatialQuery::Equals(w)] {
            if keys.iter().any(|k| e.consistent_key(k, &q)) {
                prop_assert!(e.consistent_pred(&pred, &q), "pruned a qualifying subtree: {q:?}");
            }
        }
    }
}

// ---------------- RD-tree ----------------

proptest! {
    #[test]
    fn rdtree_laws(a in any::<u64>(), b in any::<u64>(), probe in any::<u64>()) {
        let e = RdTreeExt;
        let u = e.union_preds(&a, &b);
        prop_assert!(e.pred_covers(&u, &a));
        prop_assert!(e.pred_covers(&u, &b));
        prop_assert!(e.consistent_key(&a, &e.eq_query(&a)));
        for q in [RdQuery::Overlaps(probe), RdQuery::Contains(probe), RdQuery::Equals(probe)] {
            // monotone under union
            if e.consistent_pred(&a, &q) {
                prop_assert!(e.consistent_pred(&u, &q));
            }
            // sound pruning: any qualifying key implies consistent pred
            if e.consistent_key(&a, &q) || e.consistent_key(&b, &q) {
                prop_assert!(e.consistent_pred(&u, &q));
            }
        }
        if e.pred_covers_key(&a, &b) {
            prop_assert_eq!(e.penalty(&a, &b), 0.0);
        }
    }

    #[test]
    fn rdtree_split_partitions(sets in prop::collection::vec(any::<u64>(), 2..40)) {
        let e = RdTreeExt;
        let d = e.pick_split(&sets);
        prop_assert!(!d.left.is_empty());
        prop_assert!(!d.right.is_empty());
        prop_assert_eq!(d.left.len() + d.right.len(), sets.len());
    }
}

// ---------------- string tree ----------------

fn key_bytes() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..12)
}

proptest! {
    #[test]
    fn strtree_laws(a in key_bytes(), b in key_bytes(), lo in key_bytes(), hi in key_bytes()) {
        let e = StrTreeExt;
        let pa = e.key_pred(&a);
        let pb = e.key_pred(&b);
        let u = e.union_preds(&pa, &pb);
        prop_assert!(e.pred_covers(&u, &pa));
        prop_assert!(e.pred_covers(&u, &pb));
        prop_assert!(e.consistent_key(&a, &e.eq_query(&a)));
        let (qlo, qhi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let q = StrQuery::Range(qlo, qhi);
        // sound pruning
        if e.consistent_key(&a, &q) || e.consistent_key(&b, &q) {
            prop_assert!(e.consistent_pred(&u, &q));
        }
        // codec roundtrip for preds with framing
        let mut buf = Vec::new();
        e.encode_pred(&u, &mut buf);
        prop_assert_eq!(e.decode_pred(&buf), u);
    }

    #[test]
    fn strtree_prefix_pruning_sound(keys in prop::collection::vec(key_bytes(), 1..15),
                                    prefix in prop::collection::vec(any::<u8>(), 0..4)) {
        let e = StrTreeExt;
        let preds: Vec<_> = keys.iter().map(|k| e.key_pred(k)).collect();
        let u = e.union_many(&preds);
        let q = StrQuery::Prefix(prefix);
        if keys.iter().any(|k| e.consistent_key(k, &q)) {
            prop_assert!(e.consistent_pred(&u, &q));
        }
    }

    #[test]
    fn strtree_split_partitions(keys in prop::collection::vec(key_bytes(), 2..30)) {
        let e = StrTreeExt;
        let preds: Vec<_> = keys.iter().map(|k| e.key_pred(k)).collect();
        let d = e.pick_split(&preds);
        prop_assert!(!d.left.is_empty());
        prop_assert!(!d.right.is_empty());
        prop_assert_eq!(d.left.len() + d.right.len(), keys.len());
    }
}
