//! Randomized (deterministic) tests of the extension-method algebra,
//! for all four access methods. These are the contracts the core's
//! correctness rests on:
//!
//! 1. `union_preds(a, b)` covers both `a` and `b`;
//! 2. `pred_covers` is reflexive and agrees with `union` (`covers(o, i)`
//!    ⇔ `union(o, i) == o`);
//! 3. consistency is monotone under union: if `consistent(p, q)` then
//!    `consistent(union(p, x), q)`;
//! 4. a key is consistent with its own `eq_query`, and `key_pred(k)`
//!    covers `k`;
//! 5. `pick_split` partitions indices into two non-empty sides;
//! 6. codecs round-trip;
//! 7. `penalty(p, k) == 0` when `p` covers `k`.
//!
//! Rewritten from `proptest` to a seeded xorshift generator so the
//! workspace has no external dev-deps; every run covers the same cases.

use gist_am::{BtreeExt, I64Query, RdQuery, RdTreeExt, Rect, RtreeExt, StrQuery, StrTreeExt};
use gist_core::ext::GistExtension;

struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn i64_small(&mut self) -> i64 {
        self.next() as i32 as i64
    }

    /// Uniform float in `[0, hi)`.
    fn f64_in(&mut self, hi: f64) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64 * hi
    }

    fn btree_pred(&mut self) -> (i64, i64) {
        let (a, b) = (self.i64_small(), self.i64_small());
        (a.min(b), a.max(b))
    }

    fn rect(&mut self) -> Rect {
        let x = self.f64_in(1000.0);
        let y = self.f64_in(1000.0);
        let w = self.f64_in(100.0);
        let h = self.f64_in(100.0);
        Rect::new(x, y, x + w, y + h)
    }

    fn key_bytes(&mut self) -> Vec<u8> {
        let len = self.below(12) as usize;
        (0..len).map(|_| self.next() as u8).collect()
    }
}

const CASES: usize = 256;

// ---------------- B-tree ----------------

#[test]
fn btree_union_covers() {
    let e = BtreeExt;
    let mut g = Gen::new(0xB7EE_0001);
    for _ in 0..CASES {
        let a = g.btree_pred();
        let b = g.btree_pred();
        let u = e.union_preds(&a, &b);
        assert!(e.pred_covers(&u, &a));
        assert!(e.pred_covers(&u, &b));
        assert!(e.pred_covers(&a, &a));
        assert_eq!(e.pred_covers(&a, &b), e.union_preds(&a, &b) == a);
    }
}

#[test]
fn btree_consistency_monotone() {
    let e = BtreeExt;
    let mut g = Gen::new(0xB7EE_0002);
    for _ in 0..CASES {
        let p = g.btree_pred();
        let x = g.btree_pred();
        let (lo, hi) = g.btree_pred();
        let q = I64Query::range(lo, hi);
        if e.consistent_pred(&p, &q) {
            assert!(e.consistent_pred(&e.union_preds(&p, &x), &q));
        }
    }
}

#[test]
fn btree_key_laws() {
    let e = BtreeExt;
    let mut g = Gen::new(0xB7EE_0003);
    for _ in 0..CASES {
        let k = g.i64_small();
        let p = g.btree_pred();
        assert!(e.consistent_key(&k, &e.eq_query(&k)));
        assert!(e.pred_covers_key(&e.key_pred(&k), &k));
        if e.pred_covers_key(&p, &k) {
            assert_eq!(e.penalty(&p, &k), 0.0);
        } else {
            assert!(e.penalty(&p, &k) > 0.0);
        }
        let mut buf = Vec::new();
        e.encode_key(&k, &mut buf);
        assert_eq!(e.decode_key(&buf), k);
    }
}

#[test]
fn btree_pick_split_partitions() {
    let e = BtreeExt;
    let mut g = Gen::new(0xB7EE_0004);
    for _ in 0..CASES {
        let n = 2 + g.below(48) as usize;
        let keys: Vec<i64> = (0..n).map(|_| g.i64_small()).collect();
        let preds: Vec<(i64, i64)> = keys.iter().map(|k| e.key_pred(k)).collect();
        let d = e.pick_split(&preds);
        assert!(!d.left.is_empty());
        assert!(!d.right.is_empty());
        let mut all: Vec<usize> = d.left.iter().chain(d.right.iter()).copied().collect();
        all.sort();
        assert_eq!(all, (0..preds.len()).collect::<Vec<_>>());
    }
}

// ---------------- R-tree ----------------

#[test]
fn rtree_union_covers() {
    let e = RtreeExt;
    let mut g = Gen::new(0x47EE_0001);
    for _ in 0..CASES {
        let a = g.rect();
        let b = g.rect();
        let u = e.union_preds(&a, &b);
        assert!(e.pred_covers(&u, &a));
        assert!(e.pred_covers(&u, &b));
        assert!(e.pred_covers(&a, &a));
    }
}

#[test]
fn rtree_consistency_monotone() {
    use gist_am::SpatialQuery;
    let e = RtreeExt;
    let mut g = Gen::new(0x47EE_0002);
    for _ in 0..CASES {
        let p = g.rect();
        let x = g.rect();
        let w = g.rect();
        for q in [SpatialQuery::Overlaps(w), SpatialQuery::Within(w), SpatialQuery::Equals(w)] {
            if e.consistent_pred(&p, &q) {
                assert!(e.consistent_pred(&e.union_preds(&p, &x), &q));
            }
        }
    }
}

#[test]
fn rtree_key_laws() {
    let e = RtreeExt;
    let mut g = Gen::new(0x47EE_0003);
    for _ in 0..CASES {
        let k = g.rect();
        let p = g.rect();
        assert!(e.consistent_key(&k, &e.eq_query(&k)));
        assert!(e.pred_covers_key(&e.key_pred(&k), &k));
        if e.pred_covers_key(&p, &k) {
            assert_eq!(e.penalty(&p, &k), 0.0);
        }
        let mut buf = Vec::new();
        e.encode_key(&k, &mut buf);
        assert_eq!(e.decode_key(&buf), k);
    }
}

#[test]
fn rtree_split_partitions() {
    let e = RtreeExt;
    let mut g = Gen::new(0x47EE_0004);
    for _ in 0..CASES {
        let n = 2 + g.below(38) as usize;
        let rects: Vec<Rect> = (0..n).map(|_| g.rect()).collect();
        let d = e.pick_split(&rects);
        assert!(!d.left.is_empty());
        assert!(!d.right.is_empty());
        let mut all: Vec<usize> = d.left.iter().chain(d.right.iter()).copied().collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), rects.len());
    }
}

/// Soundness of subtree pruning: if any key under pred satisfies the
/// query, consistent_pred must say so.
#[test]
fn rtree_pruning_is_sound() {
    use gist_am::SpatialQuery;
    let e = RtreeExt;
    let mut g = Gen::new(0x47EE_0005);
    for _ in 0..CASES {
        let n = 1 + g.below(19) as usize;
        let keys: Vec<Rect> = (0..n).map(|_| g.rect()).collect();
        let w = g.rect();
        let pred = keys.iter().skip(1).fold(keys[0], |acc, r| acc.union(r));
        for q in [SpatialQuery::Overlaps(w), SpatialQuery::Within(w), SpatialQuery::Equals(w)] {
            if keys.iter().any(|k| e.consistent_key(k, &q)) {
                assert!(e.consistent_pred(&pred, &q), "pruned a qualifying subtree: {q:?}");
            }
        }
    }
}

// ---------------- RD-tree ----------------

#[test]
fn rdtree_laws() {
    let e = RdTreeExt;
    let mut g = Gen::new(0x4D7E_0001);
    for _ in 0..CASES {
        let a = g.next();
        let b = g.next();
        let probe = g.next();
        let u = e.union_preds(&a, &b);
        assert!(e.pred_covers(&u, &a));
        assert!(e.pred_covers(&u, &b));
        assert!(e.consistent_key(&a, &e.eq_query(&a)));
        for q in [RdQuery::Overlaps(probe), RdQuery::Contains(probe), RdQuery::Equals(probe)] {
            // monotone under union
            if e.consistent_pred(&a, &q) {
                assert!(e.consistent_pred(&u, &q));
            }
            // sound pruning: any qualifying key implies consistent pred
            if e.consistent_key(&a, &q) || e.consistent_key(&b, &q) {
                assert!(e.consistent_pred(&u, &q));
            }
        }
        if e.pred_covers_key(&a, &b) {
            assert_eq!(e.penalty(&a, &b), 0.0);
        }
    }
}

#[test]
fn rdtree_split_partitions() {
    let e = RdTreeExt;
    let mut g = Gen::new(0x4D7E_0002);
    for _ in 0..CASES {
        let n = 2 + g.below(38) as usize;
        let sets: Vec<u64> = (0..n).map(|_| g.next()).collect();
        let d = e.pick_split(&sets);
        assert!(!d.left.is_empty());
        assert!(!d.right.is_empty());
        assert_eq!(d.left.len() + d.right.len(), sets.len());
    }
}

// ---------------- string tree ----------------

#[test]
fn strtree_laws() {
    let e = StrTreeExt;
    let mut g = Gen::new(0x5745_0001);
    for _ in 0..CASES {
        let a = g.key_bytes();
        let b = g.key_bytes();
        let lo = g.key_bytes();
        let hi = g.key_bytes();
        let pa = e.key_pred(&a);
        let pb = e.key_pred(&b);
        let u = e.union_preds(&pa, &pb);
        assert!(e.pred_covers(&u, &pa));
        assert!(e.pred_covers(&u, &pb));
        assert!(e.consistent_key(&a, &e.eq_query(&a)));
        let (qlo, qhi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let q = StrQuery::Range(qlo, qhi);
        // sound pruning
        if e.consistent_key(&a, &q) || e.consistent_key(&b, &q) {
            assert!(e.consistent_pred(&u, &q));
        }
        // codec roundtrip for preds with framing
        let mut buf = Vec::new();
        e.encode_pred(&u, &mut buf);
        assert_eq!(e.decode_pred(&buf), u);
    }
}

#[test]
fn strtree_prefix_pruning_sound() {
    let e = StrTreeExt;
    let mut g = Gen::new(0x5745_0002);
    for _ in 0..CASES {
        let n = 1 + g.below(14) as usize;
        let keys: Vec<Vec<u8>> = (0..n).map(|_| g.key_bytes()).collect();
        let plen = g.below(4) as usize;
        let prefix: Vec<u8> = (0..plen).map(|_| g.next() as u8).collect();
        let preds: Vec<_> = keys.iter().map(|k| e.key_pred(k)).collect();
        let u = e.union_many(&preds);
        let q = StrQuery::Prefix(prefix);
        if keys.iter().any(|k| e.consistent_key(k, &q)) {
            assert!(e.consistent_pred(&u, &q));
        }
    }
}

#[test]
fn strtree_split_partitions() {
    let e = StrTreeExt;
    let mut g = Gen::new(0x5745_0003);
    for _ in 0..CASES {
        let n = 2 + g.below(28) as usize;
        let keys: Vec<Vec<u8>> = (0..n).map(|_| g.key_bytes()).collect();
        let preds: Vec<_> = keys.iter().map(|k| e.key_pred(k)).collect();
        let d = e.pick_split(&preds);
        assert!(!d.left.is_empty());
        assert!(!d.right.is_empty());
        assert_eq!(d.left.len() + d.right.len(), keys.len());
    }
}
