//! Negative-path coverage for the structural checker
//! (`gist_core::check`): corrupt a healthy tree in three distinct ways —
//! a cyclic rightlink chain, an NSN above the tree-global counter, and a
//! child BP the parent's entry predicate no longer covers — and assert
//! that `check_tree` reports each violation. A checker that only ever
//! sees healthy trees is itself untested.

use std::sync::Arc;

use gist_core::check::check_tree;
use gist_core::ext::{GistExtension, SplitDecision};
use gist_core::{Db, DbConfig, GistIndex, IndexOptions, InternalEntry};
use gist_pagestore::{InMemoryStore, PageId, Rid};
use gist_wal::LogManager;

/// Minimal i32 interval extension (keys i32, predicates inclusive
/// intervals) — same shape as the one in `ops_testext.rs`, kept local so
/// this file stands alone.
#[derive(Debug, Clone, Copy, Default)]
struct IntervalExt;

impl GistExtension for IntervalExt {
    type Key = i32;
    type Pred = (i32, i32);
    type Query = (i32, i32);

    fn encode_key(&self, key: &i32, out: &mut Vec<u8>) {
        out.extend_from_slice(&key.to_le_bytes());
    }
    fn decode_key(&self, bytes: &[u8]) -> i32 {
        i32::from_le_bytes(bytes[0..4].try_into().unwrap())
    }
    fn encode_pred(&self, pred: &(i32, i32), out: &mut Vec<u8>) {
        out.extend_from_slice(&pred.0.to_le_bytes());
        out.extend_from_slice(&pred.1.to_le_bytes());
    }
    fn decode_pred(&self, bytes: &[u8]) -> (i32, i32) {
        (
            i32::from_le_bytes(bytes[0..4].try_into().unwrap()),
            i32::from_le_bytes(bytes[4..8].try_into().unwrap()),
        )
    }
    fn encode_query(&self, q: &(i32, i32), out: &mut Vec<u8>) {
        self.encode_pred(q, out);
    }
    fn decode_query(&self, bytes: &[u8]) -> (i32, i32) {
        self.decode_pred(bytes)
    }
    fn consistent_pred(&self, pred: &(i32, i32), q: &(i32, i32)) -> bool {
        pred.0 <= q.1 && q.0 <= pred.1
    }
    fn consistent_key(&self, key: &i32, q: &(i32, i32)) -> bool {
        q.0 <= *key && *key <= q.1
    }
    fn key_equal(&self, a: &i32, b: &i32) -> bool {
        a == b
    }
    fn eq_query(&self, key: &i32) -> (i32, i32) {
        (*key, *key)
    }
    fn key_pred(&self, key: &i32) -> (i32, i32) {
        (*key, *key)
    }
    fn union_preds(&self, a: &(i32, i32), b: &(i32, i32)) -> (i32, i32) {
        (a.0.min(b.0), a.1.max(b.1))
    }
    fn pred_covers(&self, outer: &(i32, i32), inner: &(i32, i32)) -> bool {
        outer.0 <= inner.0 && inner.1 <= outer.1
    }
    fn penalty(&self, pred: &(i32, i32), key: &i32) -> f64 {
        ((pred.0 - *key).max(0) + (*key - pred.1).max(0)) as f64
    }
    fn pick_split(&self, preds: &[(i32, i32)]) -> SplitDecision {
        gist_core::ext::median_split(preds, |p| (p.0 as f64 + p.1 as f64) / 2.0)
    }
}

fn rid(n: u64) -> Rid {
    Rid::new(PageId(650_000 + (n >> 16) as u32), (n & 0xFFFF) as u16)
}

/// Build a multi-level tree and confirm it is healthy before corruption.
fn healthy_tree() -> (Arc<Db>, Arc<GistIndex<IntervalExt>>) {
    let store = Arc::new(InMemoryStore::new());
    let log = Arc::new(LogManager::new());
    let db = Db::open(store, log, DbConfig::default()).unwrap();
    let idx = GistIndex::create(db.clone(), "iv", IntervalExt, IndexOptions::default()).unwrap();
    let txn = db.begin();
    for i in 0..4000i32 {
        idx.insert(txn, &i, rid(i as u64)).unwrap();
    }
    db.commit(txn).unwrap();
    let report = check_tree(&idx).unwrap();
    report.assert_ok();
    assert!(report.nodes > 3, "need a multi-node tree to corrupt");
    (db, idx)
}

/// Descend along first-child entries from the root to some non-root
/// leaf. Slot 0 of every node is its BP; slots ≥ 1 are entries.
fn some_leaf(db: &Arc<Db>, idx: &GistIndex<IntervalExt>) -> PageId {
    let mut pid = idx.root().unwrap();
    loop {
        let g = db.pool().fetch_read(pid).unwrap();
        if g.is_leaf() {
            assert_ne!(pid, idx.root().unwrap(), "tree must have height > 1");
            return pid;
        }
        let (_, cell) = g.iter_cells().find(|(s, _)| *s != 0).expect("internal node has entries");
        let InternalEntry { child, .. } = InternalEntry::decode(cell);
        drop(g);
        pid = child;
    }
}

#[test]
fn cyclic_rightlink_is_reported() {
    let (db, idx) = healthy_tree();
    let leaf = some_leaf(&db, &idx);
    {
        let mut g = db.pool().fetch_write(leaf).unwrap();
        g.set_rightlink(leaf); // self-link: the chain never terminates
        g.mark_dirty_unlogged();
    }
    let report = check_tree(&idx).unwrap();
    assert!(
        report.violations.iter().any(|v| v.contains("rightlink cycle")),
        "expected a rightlink-cycle violation, got: {:#?}",
        report.violations
    );
}

#[test]
fn nsn_above_global_counter_is_reported() {
    let (db, idx) = healthy_tree();
    let leaf = some_leaf(&db, &idx);
    let bogus = db.global_nsn() + 100;
    {
        let mut g = db.pool().fetch_write(leaf).unwrap();
        g.set_nsn(bogus);
        g.mark_dirty_unlogged();
    }
    let report = check_tree(&idx).unwrap();
    assert!(
        report.violations.iter().any(|v| v.contains("exceeds global counter")),
        "expected an NSN violation, got: {:#?}",
        report.violations
    );
}

#[test]
fn parent_pred_not_covering_child_bp_is_reported() {
    let (db, idx) = healthy_tree();
    let leaf = some_leaf(&db, &idx);
    // Widen the leaf's own BP (slot 0) to the full key domain: every key
    // on the leaf stays covered, but the finite parent entry predicate no
    // longer covers the child's BP.
    let mut wide = Vec::new();
    IntervalExt.encode_pred(&(i32::MIN, i32::MAX), &mut wide);
    {
        let mut g = db.pool().fetch_write(leaf).unwrap();
        g.update_cell(0, &wide).unwrap();
        g.mark_dirty_unlogged();
    }
    let report = check_tree(&idx).unwrap();
    assert!(
        report.violations.iter().any(|v| v.contains("parent entry does not cover child BP")),
        "expected a parent-coverage violation, got: {:#?}",
        report.violations
    );
}
