//! Core-level operation tests with a minimal self-contained extension
//! (an `i32` interval domain), independent of the `gist-am` crate.
//! Exercises the tree machinery through the public API plus a few
//! behaviors best checked close to the core: BP maintenance on split
//! chains, opportunistic GC during inserts, vacuum node retirement, and
//! the Latching isolation mode.

use std::sync::Arc;

use gist_core::check::check_tree;
use gist_core::ext::{GistExtension, SplitDecision};
use gist_core::{Db, DbConfig, GistIndex, IndexOptions, IsolationLevel};
use gist_pagestore::{InMemoryStore, PageId, Rid};
use gist_wal::LogManager;

/// Keys are i32; predicates are inclusive intervals; queries intervals.
#[derive(Debug, Clone, Copy, Default)]
struct IntervalExt;

impl GistExtension for IntervalExt {
    type Key = i32;
    type Pred = (i32, i32);
    type Query = (i32, i32);

    fn encode_key(&self, key: &i32, out: &mut Vec<u8>) {
        out.extend_from_slice(&key.to_le_bytes());
    }
    fn decode_key(&self, bytes: &[u8]) -> i32 {
        i32::from_le_bytes(bytes[0..4].try_into().unwrap())
    }
    fn encode_pred(&self, pred: &(i32, i32), out: &mut Vec<u8>) {
        out.extend_from_slice(&pred.0.to_le_bytes());
        out.extend_from_slice(&pred.1.to_le_bytes());
    }
    fn decode_pred(&self, bytes: &[u8]) -> (i32, i32) {
        (
            i32::from_le_bytes(bytes[0..4].try_into().unwrap()),
            i32::from_le_bytes(bytes[4..8].try_into().unwrap()),
        )
    }
    fn encode_query(&self, q: &(i32, i32), out: &mut Vec<u8>) {
        self.encode_pred(q, out);
    }
    fn decode_query(&self, bytes: &[u8]) -> (i32, i32) {
        self.decode_pred(bytes)
    }
    fn consistent_pred(&self, pred: &(i32, i32), q: &(i32, i32)) -> bool {
        pred.0 <= q.1 && q.0 <= pred.1
    }
    fn consistent_key(&self, key: &i32, q: &(i32, i32)) -> bool {
        q.0 <= *key && *key <= q.1
    }
    fn key_equal(&self, a: &i32, b: &i32) -> bool {
        a == b
    }
    fn eq_query(&self, key: &i32) -> (i32, i32) {
        (*key, *key)
    }
    fn key_pred(&self, key: &i32) -> (i32, i32) {
        (*key, *key)
    }
    fn union_preds(&self, a: &(i32, i32), b: &(i32, i32)) -> (i32, i32) {
        (a.0.min(b.0), a.1.max(b.1))
    }
    fn pred_covers(&self, outer: &(i32, i32), inner: &(i32, i32)) -> bool {
        outer.0 <= inner.0 && inner.1 <= outer.1
    }
    fn penalty(&self, pred: &(i32, i32), key: &i32) -> f64 {
        ((pred.0 - *key).max(0) + (*key - pred.1).max(0)) as f64
    }
    fn pick_split(&self, preds: &[(i32, i32)]) -> SplitDecision {
        gist_core::ext::median_split(preds, |p| (p.0 as f64 + p.1 as f64) / 2.0)
    }
}

fn setup(config: DbConfig) -> (Arc<Db>, Arc<GistIndex<IntervalExt>>) {
    let store = Arc::new(InMemoryStore::new());
    let log = Arc::new(LogManager::new());
    let db = Db::open(store, log, config).unwrap();
    let idx = GistIndex::create(db.clone(), "iv", IntervalExt, IndexOptions::default()).unwrap();
    (db, idx)
}

fn rid(n: u64) -> Rid {
    Rid::new(PageId(650_000 + (n >> 16) as u32), (n & 0xFFFF) as u16)
}

#[test]
fn bp_chain_remains_tight_after_many_splits() {
    let (db, idx) = setup(DbConfig::default());
    let txn = db.begin();
    // Alternate far-apart keys so BPs must expand repeatedly.
    for i in 0..4000i32 {
        let k = if i % 2 == 0 { i } else { -i };
        idx.insert(txn, &k, rid(i as u64)).unwrap();
    }
    db.commit(txn).unwrap();
    let report = check_tree(&idx).unwrap();
    report.assert_ok();
    assert!(report.nodes > 5, "splits happened");
    // Root BP covers everything inserted.
    let txn = db.begin();
    assert_eq!(idx.search(txn, &(-4000, 4000)).unwrap().len(), 4000);
    db.commit(txn).unwrap();
}

#[test]
fn opportunistic_gc_avoids_split_when_leaf_is_reclaimable() {
    let (db, idx) = setup(DbConfig::default());
    // Fill a single-leaf tree almost to capacity.
    let txn = db.begin();
    let mut k = 0i32;
    while idx.stats().unwrap().height == 1 {
        idx.insert(txn, &k, rid(k as u64)).unwrap();
        k += 1;
        if k > 10_000 {
            panic!("leaf never filled");
        }
    }
    db.commit(txn).unwrap();
    let nodes_after_first_split = idx.stats().unwrap().nodes;

    // Delete and commit a batch, then keep inserting: opportunistic GC
    // reclaims the marked entries instead of splitting further.
    let txn = db.begin();
    for d in 0..k / 2 {
        idx.delete(txn, &d, rid(d as u64)).unwrap();
    }
    db.commit(txn).unwrap();
    let txn = db.begin();
    for extra in 0..k / 4 {
        idx.insert(txn, &(100_000 + extra), rid(1_000_000 + extra as u64)).unwrap();
    }
    db.commit(txn).unwrap();
    let stats = idx.stats().unwrap();
    assert!(
        stats.nodes <= nodes_after_first_split + 1,
        "GC kept growth in check: {stats:?} vs {nodes_after_first_split} nodes"
    );
    check_tree(&idx).unwrap().assert_ok();
}

#[test]
fn vacuum_retires_emptied_leaves_and_frees_pages() {
    let (db, idx) = setup(DbConfig::default());
    let txn = db.begin();
    for i in 0..6000i32 {
        idx.insert(txn, &i, rid(i as u64)).unwrap();
    }
    db.commit(txn).unwrap();
    let nodes_before = idx.stats().unwrap().nodes;
    let txn = db.begin();
    for i in 0..6000i32 {
        idx.delete(txn, &i, rid(i as u64)).unwrap();
    }
    db.commit(txn).unwrap();
    let txn = db.begin();
    let rep = idx.vacuum_sync(txn).unwrap();
    db.commit(txn).unwrap();
    assert_eq!(rep.entries_removed, 6000);
    assert!(rep.nodes_deleted > 0);
    let after = idx.stats().unwrap();
    assert!(after.nodes < nodes_before);
    assert!(db.alloc().free_count() > 0, "pages went back to the allocator");
    check_tree(&idx).unwrap().assert_ok();

    // Freed pages are reused by later growth.
    let free_before_growth = db.alloc().free_count();
    let txn = db.begin();
    for i in 0..3000i32 {
        idx.insert(txn, &i, rid(100_000 + i as u64)).unwrap();
    }
    db.commit(txn).unwrap();
    assert!(db.alloc().free_count() < free_before_growth, "free pages consumed");
    check_tree(&idx).unwrap().assert_ok();
}

#[test]
fn latching_mode_skips_locks_and_predicates() {
    let (db, idx) = setup(DbConfig {
        isolation: IsolationLevel::Latching,
        ..DbConfig::default()
    });
    let txn = db.begin();
    for i in 0..500i32 {
        idx.insert(txn, &i, rid(i as u64)).unwrap();
    }
    db.commit(txn).unwrap();
    let txn = db.begin();
    let hits = idx.search(txn, &(0, 499)).unwrap();
    assert_eq!(hits.len(), 500);
    // No record locks were taken and no predicates registered.
    assert_eq!(db.preds().stats().predicates, 0);
    db.commit(txn).unwrap();
}

#[test]
fn overlapping_interval_trees_stay_correct() {
    // Keys inserted in pathological order (center-out) so sibling BPs
    // overlap heavily; exactness of search must not depend on
    // partitioning.
    let (db, idx) = setup(DbConfig::default());
    let txn = db.begin();
    let n = 3000i32;
    for i in 0..n {
        let k = if i % 2 == 0 { i / 2 } else { -(i / 2) };
        idx.insert(txn, &k, rid(i as u64)).unwrap();
    }
    db.commit(txn).unwrap();
    let txn = db.begin();
    // Note: i = 0 and i = 1 both map to key 0 (with distinct RIDs), so 0
    // appears twice.
    for (lo, hi, expect) in [(-10, 10, 22), (0, 0, 2), (-1499, 1499, 3000)] {
        assert_eq!(idx.search(txn, &(lo, hi)).unwrap().len(), expect, "({lo},{hi})");
    }
    db.commit(txn).unwrap();
    check_tree(&idx).unwrap().assert_ok();
}

#[test]
fn stats_and_checker_agree() {
    let (db, idx) = setup(DbConfig::default());
    let txn = db.begin();
    for i in 0..2500i32 {
        idx.insert(txn, &i, rid(i as u64)).unwrap();
    }
    db.commit(txn).unwrap();
    let txn = db.begin();
    for i in 0..100i32 {
        idx.delete(txn, &i, rid(i as u64)).unwrap();
    }
    db.commit(txn).unwrap();
    let stats = idx.stats().unwrap();
    let report = check_tree(&idx).unwrap();
    report.assert_ok();
    assert_eq!(stats.live_entries + stats.marked_entries, report.entries);
    assert_eq!(stats.marked_entries, 100);
}
