//! Hooks into the gist-audit dynamic discipline analyzer.
//!
//! With the `latch-audit` feature the hooks forward to `gist_audit`;
//! without it they are inlined no-ops. The protocol code uses them to
//! mark the *blessed* windows where the §5 disciplines are legitimately
//! relaxed — the parent/child two-latch windows of split BP-installation
//! and node deletion, and the split's bottom-up atomic unit.

#[cfg(feature = "latch-audit")]
pub(crate) use gist_audit::{
    assert_unwind_clear, enter_scope, enter_scope_rel, new_instance_id, nsn_drawn,
};

#[cfg(not(feature = "latch-audit"))]
mod noop {
    /// No-op stand-in for `gist_audit::ScopeGuard`.
    pub(crate) struct ScopeGuard;

    #[inline(always)]
    pub(crate) fn enter_scope(
        _name: &'static str,
        _allowance: usize,
        _io_ok: bool,
        _lock_wait_ok: bool,
    ) -> ScopeGuard {
        ScopeGuard
    }

    #[inline(always)]
    pub(crate) fn enter_scope_rel(_name: &'static str, _extra: usize) -> ScopeGuard {
        ScopeGuard
    }

    #[inline(always)]
    pub(crate) fn new_instance_id() -> u64 {
        0
    }

    #[inline(always)]
    pub(crate) fn nsn_drawn(_counter: u64, _value: u64) {}

    #[inline(always)]
    pub(crate) fn assert_unwind_clear(_context: &str) {}
}

#[cfg(not(feature = "latch-audit"))]
pub(crate) use noop::*;
