//! The GiST log-record set — Table 1 of the paper — plus the
//! compensation payloads their logical undos produce.
//!
//! Design note: Table 1's `Split` redo says "recompute and reset BP"; we
//! log the recomputed BPs explicitly instead, which keeps every redo and
//! undo action **extension-free** (pure byte/page manipulation). This
//! realizes the paper's claim that "no additional user-supplied extension
//! code is required to write the log records, so that logging can be
//! handled independently by the core DBMS component" — and it lets one
//! database-wide recovery handler serve every index regardless of key
//! type.
//!
//! | Table 1 record | variant | undo |
//! |---|---|---|
//! | Parent-Entry-Update | [`GistRecord::ParentEntryUpdate`] | none (redo-only) |
//! | Split | [`GistRecord::Split`] | page-oriented: move keys back, restore BP/NSN/rightlink |
//! | Garbage-Collection | [`GistRecord::GarbageCollection`] | none (redo-only) |
//! | Internal-Entry-Add | [`GistRecord::InternalEntryAdd`] | remove entry |
//! | Internal-Entry-Update | [`GistRecord::InternalEntryUpdate`] | restore old BP |
//! | Internal-Entry-Delete | [`GistRecord::InternalEntryDelete`] | re-insert entry |
//! | Add-Leaf-Entry | [`GistRecord::AddLeafEntry`] | **logical**: locate leaf (rightlinks), remove |
//! | Mark-Leaf-Entry | [`GistRecord::MarkLeafEntry`] | **logical**: locate leaf, unmark |
//! | Get-Page | [`GistRecord::GetPage`] | mark page available |
//! | Free-Page | [`GistRecord::FreePage`] | mark page unavailable |
//!
//! The catalog record and the `Undo*`/`Set*` compensation payloads are
//! implementation additions (the paper's CLRs are implicit in its WAL
//! environment).

use gist_pagestore::{BufferPool, PageId, SlotId};
use gist_wal::codec::{put_bytes, put_u16, put_u32, put_u64, CodecError, Reader};
use gist_wal::{Lsn, Payload};

use crate::node;

/// A `(slot, cell-bytes)` pair as logged by `Split` and
/// `Garbage-Collection`.
pub type SlotCell = (SlotId, Vec<u8>);

/// GiST log records (see module docs for the Table 1 correspondence).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GistRecord {
    /// BP expansion/shrink of one child, reflected in the parent entry
    /// (one atomic action per ancestor node, §9.1 item (2)). `parent` is
    /// [`PageId::INVALID`] when the child is the root (no parent entry).
    ParentEntryUpdate {
        /// Child whose slot-0 BP is set to `new_bp`.
        child: u32,
        /// Parent holding the entry for `child` (or `u32::MAX`).
        parent: u32,
        /// Slot of the child's entry in the parent (ignored for root).
        parent_slot: SlotId,
        /// The new encoded BP.
        new_bp: Vec<u8>,
    },
    /// Node split: `moved` cells leave `orig` for `new`; headers updated
    /// per §3 (new sibling inherits old NSN and rightlink; original gets
    /// the incremented counter value and links to the sibling).
    Split {
        /// The node that split.
        orig: u32,
        /// The new right sibling.
        new: u32,
        /// Tree level of both nodes.
        level: u16,
        /// Cells moved to the sibling, with their original slots.
        moved: Vec<SlotCell>,
        /// Original node's BP before the split (for undo).
        orig_bp_old: Vec<u8>,
        /// Original node's BP after the split.
        orig_bp_new: Vec<u8>,
        /// Sibling's BP.
        new_bp: Vec<u8>,
        /// Original node's NSN before the split (sibling inherits it).
        orig_nsn_old: u64,
        /// Original node's NSN after the split (the incremented counter).
        /// Zero is a sentinel meaning "this record's own LSN" — the
        /// §10.1 optimization where LSNs double as NSNs, which cannot be
        /// known before the record is appended.
        orig_nsn_new: u64,
        /// Original node's rightlink before the split (sibling inherits
        /// it).
        orig_rightlink_old: u32,
        /// Table 1's "newly inserted key and which page it belongs on":
        /// whether the pending insert was routed to the sibling.
        pending_to_new: bool,
    },
    /// Physical removal of committed-deleted leaf entries (§7.1),
    /// redo-only.
    GarbageCollection {
        /// The reorganized leaf.
        page: u32,
        /// Removed cells (slot + bytes, for diagnostics/audit).
        removed: Vec<SlotCell>,
        /// Shrunk BP after reorganization.
        new_bp: Vec<u8>,
    },
    /// New entry on an internal node (split propagation).
    InternalEntryAdd {
        /// The internal node.
        page: u32,
        /// Slot the entry went into.
        slot: SlotId,
        /// Encoded internal entry.
        cell: Vec<u8>,
    },
    /// Predicate change of an existing internal entry.
    InternalEntryUpdate {
        /// The internal node.
        page: u32,
        /// Slot of the entry.
        slot: SlotId,
        /// Entry cell after the update.
        new_cell: Vec<u8>,
        /// Entry cell before the update.
        old_cell: Vec<u8>,
    },
    /// Entry removal from an internal node (node deletion).
    InternalEntryDelete {
        /// The internal node.
        page: u32,
        /// Slot of the removed entry.
        slot: SlotId,
        /// The removed cell (for undo).
        cell: Vec<u8>,
    },
    /// Key insertion at the leaf level (transaction content; logical
    /// undo).
    AddLeafEntry {
        /// Leaf at insert time (undo may need to chase rightlinks from
        /// here).
        page: u32,
        /// Leaf NSN at insert time (guides the chase).
        nsn: u64,
        /// Slot the entry went into.
        slot: SlotId,
        /// Encoded leaf entry.
        cell: Vec<u8>,
    },
    /// Logical deletion at the leaf level (transaction content; logical
    /// undo).
    MarkLeafEntry {
        /// Leaf at mark time.
        page: u32,
        /// Leaf NSN at mark time.
        nsn: u64,
        /// Slot of the marked entry.
        slot: SlotId,
        /// Cell before marking.
        old_cell: Vec<u8>,
        /// The marking transaction.
        deleter: u64,
    },
    /// Page allocation: format as an empty node at `level` with BP
    /// `bp` and mark unavailable (= in use).
    GetPage {
        /// The allocated page.
        page: u32,
        /// Node level it is formatted at.
        level: u16,
        /// Initial BP.
        bp: Vec<u8>,
    },
    /// Page deallocation: mark available.
    FreePage {
        /// The freed page.
        page: u32,
    },
    /// Catalog entry for a new index (cell on the catalog page 0).
    CatalogAdd {
        /// Slot in the catalog page.
        slot: SlotId,
        /// Encoded catalog cell.
        cell: Vec<u8>,
    },
    /// CLR redo: remove the catalog cell (undo of an incomplete
    /// `create_index`).
    CatalogRemove {
        /// Slot in the catalog page.
        slot: SlotId,
    },
    // ---- compensation payloads (CLR redo descriptions) ----
    /// CLR redo: the page-oriented effect of undoing `AddLeafEntry` —
    /// remove the located cell.
    RemoveLeafEntry {
        /// Page the entry was found on at undo time.
        page: u32,
        /// Slot it occupied.
        slot: SlotId,
    },
    /// CLR redo: the effect of undoing `MarkLeafEntry` — restore the
    /// unmarked cell.
    UnmarkLeafEntry {
        /// Page the entry was found on at undo time.
        page: u32,
        /// Slot it occupies.
        slot: SlotId,
        /// The restored (unmarked) cell bytes.
        cell: Vec<u8>,
    },
    /// CLR redo: the effect of undoing an incomplete `Split`.
    UndoSplit {
        /// The node that had split.
        orig: u32,
        /// The abandoned sibling.
        new: u32,
        /// Cells moved back, at their original slots.
        restored: Vec<SlotCell>,
        /// Restored BP.
        orig_bp: Vec<u8>,
        /// Restored NSN.
        orig_nsn: u64,
        /// Restored rightlink.
        orig_rightlink: u32,
    },
    /// CLR redo: mark a page available (undo of `GetPage`).
    SetAvailable {
        /// The page.
        page: u32,
    },
    /// CLR redo: mark a page unavailable (undo of `FreePage`).
    SetUnavailable {
        /// The page.
        page: u32,
    },
}

const T_PARENT_ENTRY_UPDATE: u8 = 1;
const T_SPLIT: u8 = 2;
const T_GC: u8 = 3;
const T_IE_ADD: u8 = 4;
const T_IE_UPDATE: u8 = 5;
const T_IE_DELETE: u8 = 6;
const T_ADD_LEAF: u8 = 7;
const T_MARK_LEAF: u8 = 8;
const T_GET_PAGE: u8 = 9;
const T_FREE_PAGE: u8 = 10;
const T_CATALOG_ADD: u8 = 11;
const T_CATALOG_REMOVE: u8 = 12;
const T_REMOVE_LEAF: u8 = 13;
const T_UNMARK_LEAF: u8 = 14;
const T_UNDO_SPLIT: u8 = 15;
const T_SET_AVAILABLE: u8 = 16;
const T_SET_UNAVAILABLE: u8 = 17;

fn put_slot_cells(out: &mut Vec<u8>, cells: &[SlotCell]) {
    put_u32(out, cells.len() as u32);
    for (slot, cell) in cells {
        put_u16(out, *slot);
        put_bytes(out, cell);
    }
}

fn read_slot_cells(r: &mut Reader<'_>) -> Result<Vec<SlotCell>, CodecError> {
    let n = r.u32()? as usize;
    let mut cells = Vec::with_capacity(n);
    for _ in 0..n {
        let slot = r.u16()?;
        let cell = r.bytes()?;
        cells.push((slot, cell));
    }
    Ok(cells)
}

/// Map a page-capacity failure during redo to an I/O error: redo replays
/// exactly what was once applied, so a non-fitting cell means the page
/// image diverged from the log — surfaced, not papered over.
fn redo_fit<T>(r: Result<T, gist_pagestore::PageFull>, what: &str) -> std::io::Result<T> {
    r.map_err(|e| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, format!("redo {what}: {e}"))
    })
}

/// Same, for a cell that must be present on the page being replayed.
fn redo_present<T>(v: Option<T>, what: &str) -> std::io::Result<T> {
    v.ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("redo: {what}")))
}

impl GistRecord {
    /// Pages this record touches (for the WAL envelope's analysis list).
    pub fn pages(&self) -> Vec<u32> {
        match self {
            GistRecord::ParentEntryUpdate { child, parent, .. } => {
                if *parent == u32::MAX {
                    vec![*child]
                } else {
                    vec![*child, *parent]
                }
            }
            GistRecord::Split { orig, new, .. } => vec![*orig, *new],
            GistRecord::GarbageCollection { page, .. } => vec![*page],
            GistRecord::InternalEntryAdd { page, .. } => vec![*page],
            GistRecord::InternalEntryUpdate { page, .. } => vec![*page],
            GistRecord::InternalEntryDelete { page, .. } => vec![*page],
            GistRecord::AddLeafEntry { page, .. } => vec![*page],
            GistRecord::MarkLeafEntry { page, .. } => vec![*page],
            GistRecord::GetPage { page, .. } => vec![*page],
            GistRecord::FreePage { page } => vec![*page],
            GistRecord::CatalogAdd { .. } | GistRecord::CatalogRemove { .. } => vec![0],
            GistRecord::RemoveLeafEntry { page, .. } => vec![*page],
            GistRecord::UnmarkLeafEntry { page, .. } => vec![*page],
            GistRecord::UndoSplit { orig, new, .. } => vec![*orig, *new],
            GistRecord::SetAvailable { page } => vec![*page],
            GistRecord::SetUnavailable { page } => vec![*page],
        }
    }

    /// Wrap into a WAL payload.
    pub fn to_payload(&self) -> Payload {
        Payload::new(self.pages(), self.encode())
    }

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            GistRecord::ParentEntryUpdate { child, parent, parent_slot, new_bp } => {
                out.push(T_PARENT_ENTRY_UPDATE);
                put_u32(&mut out, *child);
                put_u32(&mut out, *parent);
                put_u16(&mut out, *parent_slot);
                put_bytes(&mut out, new_bp);
            }
            GistRecord::Split {
                orig,
                new,
                level,
                moved,
                orig_bp_old,
                orig_bp_new,
                new_bp,
                orig_nsn_old,
                orig_nsn_new,
                orig_rightlink_old,
                pending_to_new,
            } => {
                out.push(T_SPLIT);
                put_u32(&mut out, *orig);
                put_u32(&mut out, *new);
                put_u16(&mut out, *level);
                put_slot_cells(&mut out, moved);
                put_bytes(&mut out, orig_bp_old);
                put_bytes(&mut out, orig_bp_new);
                put_bytes(&mut out, new_bp);
                put_u64(&mut out, *orig_nsn_old);
                put_u64(&mut out, *orig_nsn_new);
                put_u32(&mut out, *orig_rightlink_old);
                out.push(*pending_to_new as u8);
            }
            GistRecord::GarbageCollection { page, removed, new_bp } => {
                out.push(T_GC);
                put_u32(&mut out, *page);
                put_slot_cells(&mut out, removed);
                put_bytes(&mut out, new_bp);
            }
            GistRecord::InternalEntryAdd { page, slot, cell } => {
                out.push(T_IE_ADD);
                put_u32(&mut out, *page);
                put_u16(&mut out, *slot);
                put_bytes(&mut out, cell);
            }
            GistRecord::InternalEntryUpdate { page, slot, new_cell, old_cell } => {
                out.push(T_IE_UPDATE);
                put_u32(&mut out, *page);
                put_u16(&mut out, *slot);
                put_bytes(&mut out, new_cell);
                put_bytes(&mut out, old_cell);
            }
            GistRecord::InternalEntryDelete { page, slot, cell } => {
                out.push(T_IE_DELETE);
                put_u32(&mut out, *page);
                put_u16(&mut out, *slot);
                put_bytes(&mut out, cell);
            }
            GistRecord::AddLeafEntry { page, nsn, slot, cell } => {
                out.push(T_ADD_LEAF);
                put_u32(&mut out, *page);
                put_u64(&mut out, *nsn);
                put_u16(&mut out, *slot);
                put_bytes(&mut out, cell);
            }
            GistRecord::MarkLeafEntry { page, nsn, slot, old_cell, deleter } => {
                out.push(T_MARK_LEAF);
                put_u32(&mut out, *page);
                put_u64(&mut out, *nsn);
                put_u16(&mut out, *slot);
                put_bytes(&mut out, old_cell);
                put_u64(&mut out, *deleter);
            }
            GistRecord::GetPage { page, level, bp } => {
                out.push(T_GET_PAGE);
                put_u32(&mut out, *page);
                put_u16(&mut out, *level);
                put_bytes(&mut out, bp);
            }
            GistRecord::FreePage { page } => {
                out.push(T_FREE_PAGE);
                put_u32(&mut out, *page);
            }
            GistRecord::CatalogAdd { slot, cell } => {
                out.push(T_CATALOG_ADD);
                put_u16(&mut out, *slot);
                put_bytes(&mut out, cell);
            }
            GistRecord::CatalogRemove { slot } => {
                out.push(T_CATALOG_REMOVE);
                put_u16(&mut out, *slot);
            }
            GistRecord::RemoveLeafEntry { page, slot } => {
                out.push(T_REMOVE_LEAF);
                put_u32(&mut out, *page);
                put_u16(&mut out, *slot);
            }
            GistRecord::UnmarkLeafEntry { page, slot, cell } => {
                out.push(T_UNMARK_LEAF);
                put_u32(&mut out, *page);
                put_u16(&mut out, *slot);
                put_bytes(&mut out, cell);
            }
            GistRecord::UndoSplit { orig, new, restored, orig_bp, orig_nsn, orig_rightlink } => {
                out.push(T_UNDO_SPLIT);
                put_u32(&mut out, *orig);
                put_u32(&mut out, *new);
                put_slot_cells(&mut out, restored);
                put_bytes(&mut out, orig_bp);
                put_u64(&mut out, *orig_nsn);
                put_u32(&mut out, *orig_rightlink);
            }
            GistRecord::SetAvailable { page } => {
                out.push(T_SET_AVAILABLE);
                put_u32(&mut out, *page);
            }
            GistRecord::SetUnavailable { page } => {
                out.push(T_SET_UNAVAILABLE);
                put_u32(&mut out, *page);
            }
        }
        out
    }

    /// Deserialize.
    pub fn decode(bytes: &[u8]) -> Result<GistRecord, CodecError> {
        let mut r = Reader::new(bytes);
        let tag = r.u8()?;
        let rec = match tag {
            T_PARENT_ENTRY_UPDATE => GistRecord::ParentEntryUpdate {
                child: r.u32()?,
                parent: r.u32()?,
                parent_slot: r.u16()?,
                new_bp: r.bytes()?,
            },
            T_SPLIT => GistRecord::Split {
                orig: r.u32()?,
                new: r.u32()?,
                level: r.u16()?,
                moved: read_slot_cells(&mut r)?,
                orig_bp_old: r.bytes()?,
                orig_bp_new: r.bytes()?,
                new_bp: r.bytes()?,
                orig_nsn_old: r.u64()?,
                orig_nsn_new: r.u64()?,
                orig_rightlink_old: r.u32()?,
                pending_to_new: r.u8()? != 0,
            },
            T_GC => GistRecord::GarbageCollection {
                page: r.u32()?,
                removed: read_slot_cells(&mut r)?,
                new_bp: r.bytes()?,
            },
            T_IE_ADD => GistRecord::InternalEntryAdd {
                page: r.u32()?,
                slot: r.u16()?,
                cell: r.bytes()?,
            },
            T_IE_UPDATE => GistRecord::InternalEntryUpdate {
                page: r.u32()?,
                slot: r.u16()?,
                new_cell: r.bytes()?,
                old_cell: r.bytes()?,
            },
            T_IE_DELETE => GistRecord::InternalEntryDelete {
                page: r.u32()?,
                slot: r.u16()?,
                cell: r.bytes()?,
            },
            T_ADD_LEAF => GistRecord::AddLeafEntry {
                page: r.u32()?,
                nsn: r.u64()?,
                slot: r.u16()?,
                cell: r.bytes()?,
            },
            T_MARK_LEAF => GistRecord::MarkLeafEntry {
                page: r.u32()?,
                nsn: r.u64()?,
                slot: r.u16()?,
                old_cell: r.bytes()?,
                deleter: r.u64()?,
            },
            T_GET_PAGE => GistRecord::GetPage {
                page: r.u32()?,
                level: r.u16()?,
                bp: r.bytes()?,
            },
            T_FREE_PAGE => GistRecord::FreePage { page: r.u32()? },
            T_CATALOG_ADD => GistRecord::CatalogAdd { slot: r.u16()?, cell: r.bytes()? },
            T_CATALOG_REMOVE => GistRecord::CatalogRemove { slot: r.u16()? },
            T_REMOVE_LEAF => GistRecord::RemoveLeafEntry { page: r.u32()?, slot: r.u16()? },
            T_UNMARK_LEAF => GistRecord::UnmarkLeafEntry {
                page: r.u32()?,
                slot: r.u16()?,
                cell: r.bytes()?,
            },
            T_UNDO_SPLIT => GistRecord::UndoSplit {
                orig: r.u32()?,
                new: r.u32()?,
                restored: read_slot_cells(&mut r)?,
                orig_bp: r.bytes()?,
                orig_nsn: r.u64()?,
                orig_rightlink: r.u32()?,
            },
            T_SET_AVAILABLE => GistRecord::SetAvailable { page: r.u32()? },
            T_SET_UNAVAILABLE => GistRecord::SetUnavailable { page: r.u32()? },
            other => return Err(CodecError(format!("unknown gist record tag {other}"))),
        };
        if !r.exhausted() {
            return Err(CodecError("trailing bytes after gist record".into()));
        }
        Ok(rec)
    }

    /// Page-oriented redo: apply this record's effects to pages whose
    /// page-LSN predates `lsn`. Returns whether anything was (re)applied.
    ///
    /// Used both at restart ("repeating history") and as the forward
    /// application path during normal operation (callers log first, then
    /// call `redo` — guaranteeing the applied state matches what restart
    /// would reproduce).
    pub fn redo(&self, pool: &std::sync::Arc<BufferPool>, lsn: Lsn) -> std::io::Result<bool> {
        // Make sure every touched page exists in the store.
        let max_page = self.pages().into_iter().max().unwrap_or(0);
        pool.store().ensure_capacity(max_page + 1)?;
        let mut applied = false;
        match self {
            GistRecord::ParentEntryUpdate { child, parent, parent_slot, new_bp } => {
                {
                    let mut g = pool.fetch_write(PageId(*child))?;
                    if g.page_lsn() < lsn {
                        redo_fit(node::set_bp(&mut g, new_bp), "BP update")?;
                        g.mark_dirty(lsn);
                        applied = true;
                    }
                }
                if *parent != u32::MAX {
                    let mut g = pool.fetch_write(PageId(*parent))?;
                    if g.page_lsn() < lsn {
                        let cell =
                            redo_present(g.cell(*parent_slot), "parent entry vanished")?
                                .to_vec();
                        let child_id = crate::entry::InternalEntry::decode_child(&cell);
                        let new_cell =
                            crate::entry::InternalEntry::new(child_id, new_bp.clone()).encode();
                        redo_fit(g.update_cell(*parent_slot, &new_cell), "parent entry update")?;
                        g.mark_dirty(lsn);
                        applied = true;
                    }
                }
            }
            GistRecord::Split {
                orig,
                new,
                level,
                moved,
                orig_bp_new,
                new_bp,
                orig_nsn_new,
                orig_nsn_old,
                orig_rightlink_old,
                ..
            } => {
                let nsn_new = if *orig_nsn_new == 0 { lsn.0 } else { *orig_nsn_new };
                {
                    let mut g = pool.fetch_write(PageId(*orig))?;
                    if g.page_lsn() < lsn {
                        for (slot, _) in moved {
                            g.delete_cell(*slot);
                        }
                        redo_fit(node::set_bp(&mut g, orig_bp_new), "shrunk BP")?;
                        g.set_nsn(nsn_new);
                        g.set_rightlink(PageId(*new));
                        g.mark_dirty(lsn);
                        applied = true;
                    }
                }
                {
                    let mut g = pool.fetch_write(PageId(*new))?;
                    if g.page_lsn() < lsn {
                        g.format(PageId(*new), *level);
                        node::init_node(&mut g, new_bp);
                        for (_, cell) in moved {
                            redo_fit(g.insert_cell(cell), "moved cell")?;
                        }
                        g.set_nsn(*orig_nsn_old);
                        g.set_rightlink(PageId(*orig_rightlink_old));
                        g.mark_dirty(lsn);
                        applied = true;
                    }
                }
            }
            GistRecord::GarbageCollection { page, removed, new_bp } => {
                let mut g = pool.fetch_write(PageId(*page))?;
                if g.page_lsn() < lsn {
                    for (slot, _) in removed {
                        g.delete_cell(*slot);
                    }
                    redo_fit(node::set_bp(&mut g, new_bp), "shrunk BP")?;
                    g.mark_dirty(lsn);
                    applied = true;
                }
            }
            GistRecord::InternalEntryAdd { page, slot, cell } => {
                let mut g = pool.fetch_write(PageId(*page))?;
                if g.page_lsn() < lsn {
                    redo_fit(g.insert_cell_at(*slot, cell), "entry insert")?;
                    g.mark_dirty(lsn);
                    applied = true;
                }
            }
            GistRecord::InternalEntryUpdate { page, slot, new_cell, .. } => {
                let mut g = pool.fetch_write(PageId(*page))?;
                if g.page_lsn() < lsn {
                    redo_fit(g.update_cell(*slot, new_cell), "entry update")?;
                    g.mark_dirty(lsn);
                    applied = true;
                }
            }
            GistRecord::InternalEntryDelete { page, slot, .. } => {
                let mut g = pool.fetch_write(PageId(*page))?;
                if g.page_lsn() < lsn {
                    g.delete_cell(*slot);
                    g.mark_dirty(lsn);
                    applied = true;
                }
            }
            GistRecord::AddLeafEntry { page, slot, cell, .. } => {
                let mut g = pool.fetch_write(PageId(*page))?;
                if g.page_lsn() < lsn {
                    redo_fit(g.insert_cell_at(*slot, cell), "entry insert")?;
                    g.mark_dirty(lsn);
                    applied = true;
                }
            }
            GistRecord::MarkLeafEntry { page, slot, old_cell, deleter, .. } => {
                let mut g = pool.fetch_write(PageId(*page))?;
                if g.page_lsn() < lsn {
                    let marked = crate::entry::LeafEntry::with_mark(
                        old_cell,
                        true,
                        gist_wal::TxnId(*deleter),
                    );
                    redo_fit(g.update_cell(*slot, &marked), "in-place mark")?;
                    g.mark_dirty(lsn);
                    applied = true;
                }
            }
            GistRecord::GetPage { page, level, bp } => {
                let mut g = pool.fetch_write(PageId(*page))?;
                if g.page_lsn() < lsn {
                    g.format(PageId(*page), *level);
                    node::init_node(&mut g, bp);
                    g.set_available(false);
                    g.mark_dirty(lsn);
                    applied = true;
                }
            }
            GistRecord::FreePage { page } => {
                let mut g = pool.fetch_write(PageId(*page))?;
                if g.page_lsn() < lsn {
                    g.set_available(true);
                    g.mark_dirty(lsn);
                    applied = true;
                }
            }
            GistRecord::CatalogAdd { slot, cell } => {
                let mut g = pool.fetch_write(PageId(0))?;
                if g.page_lsn() < lsn {
                    redo_fit(g.insert_cell_at(*slot, cell), "catalog cell")?;
                    g.mark_dirty(lsn);
                    applied = true;
                }
            }
            GistRecord::CatalogRemove { slot } => {
                let mut g = pool.fetch_write(PageId(0))?;
                if g.page_lsn() < lsn {
                    g.delete_cell(*slot);
                    g.mark_dirty(lsn);
                    applied = true;
                }
            }
            GistRecord::RemoveLeafEntry { page, slot } => {
                let mut g = pool.fetch_write(PageId(*page))?;
                if g.page_lsn() < lsn {
                    g.delete_cell(*slot);
                    g.mark_dirty(lsn);
                    applied = true;
                }
            }
            GistRecord::UnmarkLeafEntry { page, slot, cell } => {
                let mut g = pool.fetch_write(PageId(*page))?;
                if g.page_lsn() < lsn {
                    redo_fit(g.update_cell(*slot, cell), "in-place unmark")?;
                    g.mark_dirty(lsn);
                    applied = true;
                }
            }
            GistRecord::UndoSplit { orig, new, restored, orig_bp, orig_nsn, orig_rightlink } => {
                {
                    let mut g = pool.fetch_write(PageId(*orig))?;
                    if g.page_lsn() < lsn {
                        for (slot, cell) in restored {
                            redo_fit(g.insert_cell_at(*slot, cell), "restored cell")?;
                        }
                        redo_fit(node::set_bp(&mut g, orig_bp), "restored BP")?;
                        g.set_nsn(*orig_nsn);
                        g.set_rightlink(PageId(*orig_rightlink));
                        g.mark_dirty(lsn);
                        applied = true;
                    }
                }
                {
                    let mut g = pool.fetch_write(PageId(*new))?;
                    if g.page_lsn() < lsn {
                        g.clear_cells();
                        g.mark_dirty(lsn);
                        applied = true;
                    }
                }
            }
            GistRecord::SetAvailable { page } => {
                let mut g = pool.fetch_write(PageId(*page))?;
                if g.page_lsn() < lsn {
                    g.set_available(true);
                    g.mark_dirty(lsn);
                    applied = true;
                }
            }
            GistRecord::SetUnavailable { page } => {
                let mut g = pool.fetch_write(PageId(*page))?;
                if g.page_lsn() < lsn {
                    g.set_available(false);
                    g.mark_dirty(lsn);
                    applied = true;
                }
            }
        }
        Ok(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: GistRecord) {
        let enc = rec.encode();
        let dec = GistRecord::decode(&enc).unwrap();
        assert_eq!(rec, dec);
        // Payload pages match.
        assert_eq!(rec.to_payload().pages, rec.pages());
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(GistRecord::ParentEntryUpdate {
            child: 3,
            parent: 2,
            parent_slot: 4,
            new_bp: vec![1, 2],
        });
        roundtrip(GistRecord::ParentEntryUpdate {
            child: 3,
            parent: u32::MAX,
            parent_slot: 0,
            new_bp: vec![],
        });
        roundtrip(GistRecord::Split {
            orig: 1,
            new: 2,
            level: 0,
            moved: vec![(1, vec![9]), (3, vec![8, 8])],
            orig_bp_old: vec![1],
            orig_bp_new: vec![2],
            new_bp: vec![3],
            orig_nsn_old: 5,
            orig_nsn_new: 6,
            orig_rightlink_old: u32::MAX,
            pending_to_new: true,
        });
        roundtrip(GistRecord::GarbageCollection {
            page: 4,
            removed: vec![(2, vec![1])],
            new_bp: vec![7],
        });
        roundtrip(GistRecord::InternalEntryAdd { page: 1, slot: 2, cell: vec![1, 2, 3] });
        roundtrip(GistRecord::InternalEntryUpdate {
            page: 1,
            slot: 2,
            new_cell: vec![1],
            old_cell: vec![2],
        });
        roundtrip(GistRecord::InternalEntryDelete { page: 1, slot: 2, cell: vec![5] });
        roundtrip(GistRecord::AddLeafEntry { page: 9, nsn: 11, slot: 3, cell: vec![4] });
        roundtrip(GistRecord::MarkLeafEntry {
            page: 9,
            nsn: 11,
            slot: 3,
            old_cell: vec![4],
            deleter: 77,
        });
        roundtrip(GistRecord::GetPage { page: 5, level: 1, bp: vec![6] });
        roundtrip(GistRecord::FreePage { page: 5 });
        roundtrip(GistRecord::CatalogAdd { slot: 1, cell: vec![2] });
        roundtrip(GistRecord::CatalogRemove { slot: 1 });
        roundtrip(GistRecord::RemoveLeafEntry { page: 1, slot: 2 });
        roundtrip(GistRecord::UnmarkLeafEntry { page: 1, slot: 2, cell: vec![3] });
        roundtrip(GistRecord::UndoSplit {
            orig: 1,
            new: 2,
            restored: vec![(1, vec![1])],
            orig_bp: vec![2],
            orig_nsn: 3,
            orig_rightlink: 4,
        });
        roundtrip(GistRecord::SetAvailable { page: 3 });
        roundtrip(GistRecord::SetUnavailable { page: 3 });
    }

    #[test]
    fn decode_rejects_junk() {
        assert!(GistRecord::decode(&[200]).is_err());
        assert!(GistRecord::decode(&[]).is_err());
        let mut enc = GistRecord::FreePage { page: 1 }.encode();
        enc.push(0); // trailing byte
        assert!(GistRecord::decode(&enc).is_err());
    }
}
