//! Typed node operations over slotted pages.
//!
//! Convention: slot 0 of every index node holds the node's own bounding
//! predicate; slots ≥ 1 hold leaf or internal entries. All functions here
//! are pure page manipulation — logging and latching are the callers'
//! concern.

use gist_pagestore::{Page, PageFull, Rid, SlotId};

use crate::entry::{InternalEntry, LeafEntry};

/// Slot holding the node's own BP.
pub const BP_SLOT: SlotId = 0;

/// Initialize a freshly formatted page as an index node with the given
/// encoded BP.
pub fn init_node(page: &mut Page, bp_bytes: &[u8]) {
    let slot = page
        .insert_cell(bp_bytes)
        .unwrap_or_else(|e| panic!("BP must fit on an empty page: {e}"));
    assert_eq!(slot, BP_SLOT, "BP must land in slot 0 of a fresh node");
}

/// The node's encoded BP.
pub fn bp_bytes(page: &Page) -> &[u8] {
    page.cell(BP_SLOT)
        .unwrap_or_else(|| panic!("index node {} has no BP in slot 0", page.page_id()))
}

/// Replace the node's BP.
pub fn set_bp(page: &mut Page, bp_bytes: &[u8]) -> Result<(), PageFull> {
    page.update_cell(BP_SLOT, bp_bytes)
}

/// Iterate `(slot, cell)` over entry slots (skipping the BP slot).
pub fn entry_cells(page: &Page) -> impl Iterator<Item = (SlotId, &[u8])> {
    page.iter_cells().filter(|(s, _)| *s != BP_SLOT)
}

/// Number of entries (excluding the BP).
pub fn entry_count(page: &Page) -> usize {
    entry_cells(page).count()
}

/// Decode all leaf entries.
pub fn leaf_entries(page: &Page) -> Vec<(SlotId, LeafEntry)> {
    debug_assert!(page.is_leaf());
    entry_cells(page).map(|(s, c)| (s, LeafEntry::decode(c))).collect()
}

/// Decode all internal entries.
pub fn internal_entries(page: &Page) -> Vec<(SlotId, InternalEntry)> {
    debug_assert!(!page.is_leaf());
    entry_cells(page).map(|(s, c)| (s, InternalEntry::decode(c))).collect()
}

/// Find the internal entry pointing at `child`.
pub fn find_child_entry(page: &Page, child: gist_pagestore::PageId) -> Option<(SlotId, InternalEntry)> {
    entry_cells(page)
        .find(|(_, c)| InternalEntry::decode_child(c) == child)
        .map(|(s, c)| (s, InternalEntry::decode(c)))
}

/// Find the leaf entry whose data RID is `rid` (logical undo and delete
/// both locate entries by RID — RIDs are unique across the leaf level
/// because "exactly one GiST leaf entry points to a given data record",
/// §2).
pub fn find_leaf_by_rid(page: &Page, rid: Rid) -> Option<(SlotId, LeafEntry)> {
    entry_cells(page)
        .find(|(_, c)| LeafEntry::decode_rid(c) == rid)
        .map(|(s, c)| (s, LeafEntry::decode(c)))
}

/// Whether the page has room for another cell of `len` bytes.
pub fn has_room(page: &Page, len: usize) -> bool {
    page.free_for_insert() >= len
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_pagestore::PageId;

    fn fresh_leaf() -> Page {
        let mut p = Page::zeroed();
        p.format(PageId(1), 0);
        init_node(&mut p, b"bp0");
        p
    }

    #[test]
    fn bp_lives_in_slot_zero() {
        let mut p = fresh_leaf();
        assert_eq!(bp_bytes(&p), b"bp0");
        set_bp(&mut p, b"bigger-bp").unwrap();
        assert_eq!(bp_bytes(&p), b"bigger-bp");
        assert_eq!(entry_count(&p), 0);
    }

    #[test]
    fn entries_skip_bp_slot() {
        let mut p = fresh_leaf();
        let e1 = LeafEntry::new(vec![1], Rid::new(PageId(10), 0));
        let e2 = LeafEntry::new(vec![2], Rid::new(PageId(10), 1));
        p.insert_cell(&e1.encode()).unwrap();
        p.insert_cell(&e2.encode()).unwrap();
        let entries = leaf_entries(&p);
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().all(|(s, _)| *s != BP_SLOT));
    }

    #[test]
    fn find_by_rid_and_child() {
        let mut leaf = fresh_leaf();
        let rid = Rid::new(PageId(3), 7);
        leaf.insert_cell(&LeafEntry::new(vec![9], rid).encode()).unwrap();
        assert_eq!(find_leaf_by_rid(&leaf, rid).unwrap().1.rid, rid);
        assert!(find_leaf_by_rid(&leaf, Rid::new(PageId(3), 8)).is_none());

        let mut internal = Page::zeroed();
        internal.format(PageId(2), 1);
        init_node(&mut internal, b"bp");
        internal.insert_cell(&InternalEntry::new(PageId(5), vec![1]).encode()).unwrap();
        internal.insert_cell(&InternalEntry::new(PageId(6), vec![2]).encode()).unwrap();
        let (_, e) = find_child_entry(&internal, PageId(6)).unwrap();
        assert_eq!(e.pred_bytes, vec![2]);
        assert!(find_child_entry(&internal, PageId(7)).is_none());
    }
}
