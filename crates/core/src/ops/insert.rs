//! Key insertion (Fig. 4) and unique-index insertion (§8).
//!
//! Phases per §6:
//! 1. X-lock the new data record before touching the tree;
//! 2. `locateLeaf`: penalty-guided descent without lock coupling,
//!    compensating for missed splits by choosing the min-penalty node in
//!    the rightlink chain delimited by the memorized counter value;
//! 3. recursive node splitting as one atomic unit of work (two-phase
//!    latching inside the unit), replicating predicate attachments and
//!    signaling locks to the new sibling;
//! 4. top-down BP propagation with predicate percolation, one
//!    `Parent-Entry-Update` atomic action per ancestor;
//! 5. the `Add-Leaf-Entry` content record ascribed to the transaction;
//! 6. the leaf-attached-predicate check, blocking latch-free on
//!    conflicting scans, with a FIFO insert predicate against starvation
//!    (§10.3).

use std::sync::Arc;

use gist_lockmgr::{LockMode, LockName};
use gist_pagestore::{PageId, PageWriteGuard, Rid};
use gist_predlock::{PredKind, GLOBAL_NODE};
use gist_wal::{RecordBody, TxnId};

use crate::db::{IsolationLevel, PredicateMode};
use crate::entry::{InternalEntry, LeafEntry};
use crate::ext::GistExtension;
use crate::logrec::GistRecord;
use crate::node;
use crate::ops::{ParentLoc, StackEntry};
use crate::tree::GistIndex;
use crate::{GistError, Result};

impl<E: GistExtension> GistIndex<E> {
    /// INSERT: add `(key, RID)` to the index. On a unique index this
    /// performs the §8 combined search+insert. A deadlock error means
    /// the caller must abort (and may retry) the transaction.
    pub fn insert(self: &Arc<Self>, txn: TxnId, key: &E::Key, rid: Rid) -> Result<()> {
        // Operation scope: registers the in-flight op with the
        // transaction (watchdog exemption); a panic inside the scope
        // poisons the transaction (must-abort) via the guard's Drop.
        let op = self.db().txns().op_enter(txn)?;
        let r = if self.is_unique() {
            self.insert_unique(txn, key, rid)
        } else {
            self.insert_nonunique(txn, key, rid)
        };
        op.complete();
        r
    }

    /// §8: probe with an "`= key`" search (leaving probe predicates on
    /// every visited node), then insert. Races between two inserters of
    /// the same value surface as a lock-manager deadlock.
    fn insert_unique(self: &Arc<Self>, txn: TxnId, key: &E::Key, rid: Rid) -> Result<()> {
        let q = self.ext().eq_query(key);
        let mut probe = self.cursor(txn, q)?;
        let dup = probe.next()?;
        let probe_pred = probe.pred_id();
        if dup.is_some() {
            // The duplicate's data record is S-locked by the cursor,
            // making the error repeatable; the probe predicates are not
            // needed for that (§8) and are dropped.
            if let Some(p) = probe_pred {
                self.db().preds().drop_predicate(p);
            }
            return Err(GistError::UniqueViolation);
        }
        // Finish the probe so its predicates cover every node whose BP is
        // consistent with "= key" — this is what forces two concurrent
        // inserters of the same value into a deadlock instead of a double
        // insert.
        probe.collect_all()?;
        let res = self.insert_nonunique(txn, key, rid);
        // "Once the insert operation is finished, the predicates left
        // behind from the search phase can be released."
        if res.is_ok() {
            if let Some(p) = probe_pred {
                self.db().preds().drop_predicate(p);
            }
        }
        res
    }

    pub(crate) fn insert_nonunique(
        self: &Arc<Self>,
        txn: TxnId,
        key: &E::Key,
        rid: Rid,
    ) -> Result<()> {
        let db = self.db().clone();
        let cfg = db.config();
        let degree3 = cfg.isolation == IsolationLevel::RepeatableRead;
        let locks_records = cfg.isolation != IsolationLevel::Latching;
        let pure = cfg.predicate_mode == PredicateMode::PureGlobal;

        // Phase 1: "the new data record is X-locked before the tree
        // insertion is initiated". Writers 2PL their records at Degree 2
        // and above.
        if locks_records {
            db.locks().lock(txn, LockName::Rid(rid), LockMode::X)?;
        }
        let mut key_bytes = Vec::new();
        self.ext().encode_key(key, &mut key_bytes);

        // Pure predicate locking (§4.2 baseline): verify against the
        // global scan-predicate list before traversing, and register the
        // key so later scans block on us.
        if degree3 && pure {
            let owners =
                db.preds().check_insert(GLOBAL_NODE, txn, &key_bytes, &self.conflict_fn());
            let p = db.preds().register(txn, PredKind::Insert, key_bytes.clone());
            db.preds().attach(p, GLOBAL_NODE);
            for owner in owners {
                db.txns().wait_for_txn(txn, owner).map_err(GistError::Lock)?;
            }
        }

        let cell = LeafEntry::new(key_bytes.clone(), rid).encode();

        // Phase 2: locate the target leaf (X-latched).
        crate::chaos::point("insert.before_descent")?;
        let (mut leaf, mut stack) = self.locate_leaf(txn, key)?;

        // Phase 3: make room — opportunistic garbage collection first
        // (§7.1: physical removal "performed … by other operations which
        // happen to pass through the affected nodes"), then splits.
        if !node::has_room(&leaf, cell.len()) {
            self.gc_leaf(txn, &mut leaf, stack.last().copied())?;
        }
        while !node::has_room(&leaf, cell.len()) {
            leaf = self.split_for_insert(txn, leaf, &stack, key)?;
        }

        // Phase 4: expand BPs up the tree (top-down application with
        // percolation).
        let old_bp = self.decode_bp_opt(node::bp_bytes(&leaf));
        let union = self.bp_union_key(&old_bp, key);
        if old_bp.as_ref() != Some(&union) {
            self.update_bp(txn, &mut leaf, union, &stack)?;
        }

        // Phase 5: the Add-Leaf-Entry content record (logged, then
        // applied under the latch).
        crate::chaos::point("insert.before_leaf_add")?;
        let slot = leaf.next_insert_slot();
        let rec = GistRecord::AddLeafEntry {
            page: leaf.page_id().0,
            nsn: leaf.nsn(),
            slot,
            cell: cell.clone(),
        };
        let lsn = db.txns().log_update(txn, RecordBody::Payload(rec.to_payload()))?;
        leaf.insert_cell_at(slot, &cell)
            .unwrap_or_else(|e| unreachable!("room was ensured before logging: {e}"));
        leaf.mark_dirty(lsn);
        crate::chaos::point("insert.after_leaf_add")?;

        // Phase 6: check the predicates attached to the leaf; block on
        // conflicting scans after registering our own insert predicate
        // (FIFO starvation avoidance, §10.3) and releasing the latch.
        let leaf_pid = leaf.page_id();
        let mut wait_result: Result<()> = Ok(());
        if degree3 && !pure {
            // An injected fault here drops the leaf latch via RAII; the
            // logged leaf insert is undone by the transaction's abort.
            crate::chaos::point("insert.before_predicate_check")?;
            let owners = db.preds().check_insert(
                self.node_key(leaf_pid),
                txn,
                &key_bytes,
                &self.conflict_fn(),
            );
            if owners.is_empty() {
                drop(leaf);
            } else {
                let ip = db.preds().register(txn, PredKind::Insert, key_bytes.clone());
                db.preds().attach(ip, self.node_key(leaf_pid));
                drop(leaf);
                for owner in owners {
                    if let Err(e) = db.txns().wait_for_txn(txn, owner) {
                        wait_result = Err(GistError::Lock(e));
                        break;
                    }
                }
                // The insert operation is finished (or doomed): release
                // the insert predicate.
                db.preds().drop_predicate(ip);
            }
        } else {
            drop(leaf);
        }

        // Release ancestor signaling locks; the target leaf's lock is
        // retained until transaction end (§7.2: "otherwise
        // recovery-relevant parts of the link chain would be
        // interrupted").
        for e in stack.drain(..) {
            self.signal_unlock(txn, e.page);
        }
        wait_result
    }

    /// Fig. 4 `locateLeaf`: descend following minimum-penalty branches,
    /// compensating for splits via the rightlink chain, without lock
    /// coupling. Returns the X-latched leaf and the ancestor stack.
    /// Signaling locks are held on the returned stack nodes and the leaf.
    pub(crate) fn locate_leaf(
        &self,
        txn: TxnId,
        key: &E::Key,
    ) -> Result<(PageWriteGuard, Vec<StackEntry>)> {
        let db = self.db().clone();
        let mut mem = db.global_nsn();
        let root = self.root()?;
        self.signal_lock(txn, root)?;
        let mut stack: Vec<StackEntry> = Vec::new();
        let mut cur = root;
        loop {
            // Read-latch to inspect; adjust for splits missed since `mem`.
            let g = db.pool().fetch_read(cur)?;
            if g.nsn() > mem {
                drop(g);
                // Pick the min-penalty node in the chain; its NSN as of
                // that inspection becomes the new memorized value, so a
                // re-check only fires if it splits *again* afterwards.
                let (best, best_nsn) = self.chain_min_penalty(cur, mem, key)?;
                cur = best;
                mem = best_nsn;
                continue;
            }
            if g.is_leaf() {
                drop(g);
                let w = db.pool().fetch_write(cur)?;
                if w.nsn() > mem {
                    // Split slipped in between the latches; go around.
                    drop(w);
                    continue;
                }
                return Ok((w, stack));
            }
            stack.push(StackEntry { page: cur, nsn_at_visit: g.nsn() });
            let (_, entry) = self.min_penalty_child(&g, key)?;
            let child_mem = self.read_mem(Some(&g));
            // Signaling lock under the parent latch (§7.2 discipline).
            self.signal_lock(txn, entry.child)?;
            drop(g);
            mem = child_mem;
            cur = entry.child;
        }
    }

    /// "node with smallest insert penalty in rightlink chain delimited by
    /// p-NSN" (Fig. 4): walk the chain, one latch at a time, and return
    /// the best node. Signaling locks on chain members are already held
    /// via split-time replication (§10.3).
    fn chain_min_penalty(
        &self,
        start: PageId,
        mem: u64,
        key: &E::Key,
    ) -> Result<(PageId, u64)> {
        let db = self.db();
        let mut best: Option<(f64, PageId, u64)> = None;
        let mut cur = start;
        loop {
            let g = db.pool().fetch_read(cur)?;
            let pen = match self.decode_bp_opt(node::bp_bytes(&g)) {
                Some(bp) => self.ext().penalty(&bp, key),
                None => f64::MAX,
            };
            match &best {
                Some((b, _, _)) if *b <= pen => {}
                _ => best = Some((pen, cur, g.nsn())),
            }
            let stop = g.nsn() <= mem;
            let next = g.rightlink();
            drop(g);
            if stop || next.is_invalid() {
                break;
            }
            cur = next;
        }
        let Some((_, pid, nsn)) = best else {
            unreachable!("chain has at least one node")
        };
        Ok((pid, nsn))
    }

    /// Fig. 4 `updateBP`: expand this node's BP (and recursively its
    /// ancestors'), percolating ancestor scan predicates down to newly
    /// covered children. Each parent-entry update is its own atomic unit
    /// of work; latches are held bottom-up along the updated path.
    pub(crate) fn update_bp(
        &self,
        txn: TxnId,
        child: &mut PageWriteGuard,
        new_bp: E::Pred,
        stack: &[StackEntry],
    ) -> Result<()> {
        let old_bp = self.decode_bp_opt(node::bp_bytes(child));
        if old_bp.as_ref() == Some(&new_bp) {
            return Ok(());
        }
        let new_bp_bytes = self.encode_bp_opt(&Some(new_bp.clone()));
        match self.latch_parent(stack, child)? {
            ParentLoc::IsRoot => {
                self.apply_parent_entry_update(txn, child, None, new_bp_bytes)?;
            }
            ParentLoc::Found(mut parent, slot) => {
                let parent_bp = self.decode_bp_opt(node::bp_bytes(&parent));
                let parent_new = self.bp_union_pred(&parent_bp, &new_bp);
                let upper = if stack.is_empty() { &[] } else { &stack[..stack.len() - 1] };
                self.update_bp(txn, &mut parent, parent_new, upper)?;
                // Percolation: ancestor scan predicates that the expanded
                // BP makes consistent move down to the child (§4.3).
                let ext = self.ext();
                let old_for_filter = old_bp.clone();
                self.db().preds().replicate(
                    self.node_key(parent.page_id()),
                    self.node_key(child.page_id()),
                    &|kind, bytes| {
                        kind == PredKind::Scan
                            && ext.query_bytes_consistent_pred(bytes, &new_bp)
                            && !old_for_filter
                                .as_ref()
                                .is_some_and(|ob| ext.query_bytes_consistent_pred(bytes, ob))
                    },
                );
                self.apply_parent_entry_update(
                    txn,
                    child,
                    Some((&mut parent, slot)),
                    new_bp_bytes,
                )?;
            }
        }
        Ok(())
    }

    /// Split the (full, X-latched) node as one atomic unit of work and
    /// return the X-latched node the pending key belongs on. Ancestor
    /// latches taken by the recursion are released when the unit commits
    /// (two-phase latching within the action, §9.1).
    pub(crate) fn split_for_insert(
        &self,
        txn: TxnId,
        node_g: PageWriteGuard,
        stack: &[StackEntry],
        key: &E::Key,
    ) -> Result<PageWriteGuard> {
        let db = self.db().clone();
        let nta = db.txns().begin_nta(txn)?;
        // The split's atomic unit practices two-phase latching (§9.1):
        // the bottom-up recursion may legitimately hold a short chain of
        // ancestor latches (plus each level's fresh sibling) until the
        // unit commits, and may fault pages in while doing so.
        let _scope = crate::audit::enter_scope("split-unit", 64, true, false);
        let mut held: Vec<PageWriteGuard> = Vec::new();
        let (orig, sibling, pending_to_new) =
            self.split_rec(txn, node_g, stack, &mut held, Some(key))?;
        db.txns().end_nta(txn, nta)?;
        drop(held); // ancestor latches released as the unit commits
        if pending_to_new {
            drop(orig);
            Ok(sibling)
        } else {
            drop(sibling);
            Ok(orig)
        }
    }

    /// Recursive splitting (Fig. 4 `splitNode`). Returns the original and
    /// new-sibling guards plus whether the pending key routes to the
    /// sibling. Parent guards move into `held` (kept until the atomic
    /// unit finishes).
    fn split_rec(
        &self,
        txn: TxnId,
        mut node_g: PageWriteGuard,
        stack: &[StackEntry],
        held: &mut Vec<PageWriteGuard>,
        pending: Option<&E::Key>,
    ) -> Result<(PageWriteGuard, PageWriteGuard, bool)> {
        let db = self.db().clone();
        let ext = self.ext();
        let node_id = node_g.page_id();
        let level = node_g.level();

        // Latch the parent before modifying anything (Fig. 4 order),
        // correcting for parent splits since the descent.
        let parent_loc = self.latch_parent(stack, &node_g)?;

        // Distribute the existing entries.
        let entries: Vec<(u16, Vec<u8>)> =
            node::entry_cells(&node_g).map(|(s, c)| (s, c.to_vec())).collect();
        if entries.len() < 2 {
            return Err(GistError::Corrupt(format!(
                "cannot split {node_id}: {} entries (key too large for the page?)",
                entries.len()
            )));
        }
        let preds: Vec<E::Pred> = entries
            .iter()
            .map(|(_, cell)| {
                if level == 0 {
                    ext.key_pred(&ext.decode_key(&LeafEntry::decode(cell).key_bytes))
                } else {
                    ext.decode_pred(&InternalEntry::decode(cell).pred_bytes)
                }
            })
            .collect();
        let decision = ext.pick_split(&preds);
        assert!(
            !decision.left.is_empty() && !decision.right.is_empty(),
            "pick_split must produce two non-empty sides"
        );
        let left_preds: Vec<E::Pred> = decision.left.iter().map(|&i| preds[i].clone()).collect();
        let right_preds: Vec<E::Pred> = decision.right.iter().map(|&i| preds[i].clone()).collect();
        let orig_bp_new_p = ext.union_many(&left_preds);
        let new_bp_p = ext.union_many(&right_preds);
        let pending_to_new = match pending {
            Some(k) => ext.penalty(&new_bp_p, k) < ext.penalty(&orig_bp_new_p, k),
            None => false,
        };
        let moved: Vec<(u16, Vec<u8>)> =
            decision.right.iter().map(|&i| entries[i].clone()).collect();
        let orig_bp_old = node::bp_bytes(&node_g).to_vec();
        let orig_bp_new = self.encode_bp_opt(&Some(orig_bp_new_p.clone()));
        let new_bp = self.encode_bp_opt(&Some(new_bp_p.clone()));

        // Anchor for in-unit compensation: a failure below, after pages
        // have been mutated, reverts under the still-held latches and
        // logs CLRs whose undo_next resumes here — the unit becomes a
        // no-op on every rollback path without anyone observing the
        // intermediate state.
        let level_start = db.txns().last_lsn(txn).ok_or(GistError::Txn(gist_txn::TxnError::NotActive(txn)))?;

        // Allocate and format the sibling (Get-Page, inside the unit).
        let new_pid = db.alloc().allocate();
        let get_rec = GistRecord::GetPage { page: new_pid.0, level, bp: new_bp.clone() };
        let get_lsn = db.txns().log_update(txn, RecordBody::Payload(get_rec.to_payload()))?;
        let mut new_g = db.pool().new_page_write(new_pid, level)?;
        node::init_node(&mut new_g, &new_bp);
        new_g.set_available(false);
        new_g.mark_dirty(get_lsn);

        // The Split record: log, then apply to both latched pages.
        let orig_nsn_old = node_g.nsn();
        let orig_rightlink_old = node_g.rightlink();
        let split_rec_partial = |nsn_new: u64| GistRecord::Split {
            orig: node_id.0,
            new: new_pid.0,
            level,
            moved: moved.clone(),
            orig_bp_old: orig_bp_old.clone(),
            orig_bp_new: orig_bp_new.clone(),
            new_bp: new_bp.clone(),
            orig_nsn_old,
            orig_nsn_new: nsn_new,
            orig_rightlink_old: orig_rightlink_old.0,
            pending_to_new,
        };
        // In WalLsn mode the record's own LSN becomes the new NSN; since
        // the LSN is unknown before the append, the record carries the
        // zero sentinel and redo resolves it to its LSN. The dedicated
        // counter is drawn (and logged explicitly) before the append.
        let logged_nsn = match db.config().nsn_source {
            crate::db::NsnSource::WalLsn => 0,
            crate::db::NsnSource::DedicatedCounter => db.split_nsn(gist_wal::Lsn::NULL),
        };
        let rec = split_rec_partial(logged_nsn);
        let lsn = db.txns().log_update(txn, RecordBody::Payload(rec.to_payload()))?;
        let nsn_new = if logged_nsn == 0 { lsn.0 } else { logged_nsn };
        // Apply to the original node.
        for (slot, _) in &moved {
            node_g.delete_cell(*slot);
        }
        node::set_bp(&mut node_g, &orig_bp_new)
            .map_err(|e| GistError::Corrupt(format!("split BP overflow: {e}")))?;
        node_g.set_nsn(nsn_new);
        node_g.set_rightlink(new_pid);
        node_g.mark_dirty(lsn);
        // Apply to the sibling: inherits the old NSN and rightlink (§3).
        for (_, cell) in &moved {
            new_g
                .insert_cell(cell)
                .unwrap_or_else(|e| unreachable!("moved cells fit on a fresh page: {e}"));
        }
        new_g.set_nsn(orig_nsn_old);
        new_g.set_rightlink(orig_rightlink_old);
        new_g.mark_dirty(lsn);

        // Everything from here to the end of the unit runs with `node_g`
        // and `new_g` (and any parent guards) still latched, so a failure
        // can be reverted in place before any other operation can observe
        // the intermediate state. The immediately-invoked closure makes
        // every early `?` land in the revert arm below.
        let finish = (|| -> Result<()> {
            crate::chaos::point("insert.split.after_sibling_write")?;

            // Replicate predicate attachments consistent with the
            // sibling's BP (§4.3) and the signaling locks (§10.3).
            self.db().preds().replicate(
                self.node_key(node_id),
                self.node_key(new_pid),
                &|kind, bytes| match kind {
                    PredKind::Scan => ext.query_bytes_consistent_pred(bytes, &new_bp_p),
                    PredKind::Insert => ext.key_bytes_within_pred(bytes, &new_bp_p),
                },
            );
            db.locks().replicate_shared(
                LockName::Node { index: self.id(), page: node_id },
                LockName::Node { index: self.id(), page: new_pid },
            );

            // Install the parent entries.
            crate::chaos::point("insert.split.before_parent_install")?;
            match parent_loc {
                ParentLoc::IsRoot => {
                    // Root split: allocate a new root holding entries for
                    // both halves and swing the catalog pointer — all inside
                    // the same atomic unit.
                    let install_start = db.txns().last_lsn(txn).ok_or(GistError::Txn(gist_txn::TxnError::NotActive(txn)))?;
                    let root_pid = db.alloc().allocate();
                    let root_bp =
                        self.encode_bp_opt(&Some(ext.union_preds(&orig_bp_new_p, &new_bp_p)));
                    let rec = GistRecord::GetPage {
                        page: root_pid.0,
                        level: level + 1,
                        bp: root_bp.clone(),
                    };
                    let lsn = db.txns().log_update(txn, RecordBody::Payload(rec.to_payload()))?;
                    let mut root_g = db.pool().new_page_write(root_pid, level + 1)?;
                    node::init_node(&mut root_g, &root_bp);
                    root_g.set_available(false);
                    root_g.mark_dirty(lsn);
                    for (child, bp) in [(node_id, &orig_bp_new), (new_pid, &new_bp)] {
                        let cell = InternalEntry::new(child, bp.clone()).encode();
                        let slot = root_g.next_insert_slot();
                        let rec =
                            GistRecord::InternalEntryAdd { page: root_pid.0, slot, cell: cell.clone() };
                        let lsn = db.txns().log_update(txn, RecordBody::Payload(rec.to_payload()))?;
                        root_g
                            .insert_cell_at(slot, &cell)
                            .unwrap_or_else(|e| unreachable!("fresh root has room: {e}"));
                        root_g.mark_dirty(lsn);
                    }
                    // The catalog swing below is the commit point of the
                    // root split, so the crash point sits just before it:
                    // an injected failure reverts the fresh root while it
                    // is still unreachable.
                    if let Err(e) = crate::chaos::point("insert.split.after_parent_install") {
                        let l = db.txns().log_compensation(
                            txn,
                            install_start,
                            GistRecord::SetAvailable { page: root_pid.0 }.to_payload(),
                        )?;
                        root_g.clear_cells();
                        root_g.set_available(true);
                        root_g.mark_dirty(l);
                        drop(root_g);
                        db.alloc().free(root_pid);
                        return Err(e);
                    }
                    db.set_root(txn, self.catalog_slot(), root_pid)?;
                    held.push(root_g);
                }
                ParentLoc::Found(parent_g, mut entry_slot) => {
                    let mut parent_g = parent_g;
                    let new_entry = InternalEntry::new(new_pid, new_bp.clone()).encode();
                    // The parent may itself be full: split it recursively,
                    // then continue on whichever half holds our entry. A
                    // failed recursion has already reverted its own level.
                    while !node::has_room(&parent_g, new_entry.len()) {
                        let upper =
                            if stack.is_empty() { &[] } else { &stack[..stack.len() - 1] };
                        let (p_orig, p_new, _) = self.split_rec(txn, parent_g, upper, held, None)?;
                        if node::find_child_entry(&p_orig, node_id).is_some() {
                            parent_g = p_orig;
                            held.push(p_new);
                        } else {
                            parent_g = p_new;
                            held.push(p_orig);
                        }
                        entry_slot = node::find_child_entry(&parent_g, node_id)
                            .unwrap_or_else(|| {
                                unreachable!("entry present after parent split")
                            })
                            .0;
                    }
                    let install_start = db.txns().last_lsn(txn).ok_or(GistError::Txn(gist_txn::TxnError::NotActive(txn)))?;
                    // Update the original node's entry to its shrunk BP.
                    let old_cell = parent_g
                        .cell(entry_slot)
                        .unwrap_or_else(|| unreachable!("parent entry present"))
                        .to_vec();
                    let upd_cell = InternalEntry::new(node_id, orig_bp_new.clone()).encode();
                    let rec = GistRecord::InternalEntryUpdate {
                        page: parent_g.page_id().0,
                        slot: entry_slot,
                        new_cell: upd_cell.clone(),
                        old_cell: old_cell.clone(),
                    };
                    let lsn = db.txns().log_update(txn, RecordBody::Payload(rec.to_payload()))?;
                    parent_g
                        .update_cell(entry_slot, &upd_cell)
                        .unwrap_or_else(|e| unreachable!("room was ensured for the update: {e}"));
                    parent_g.mark_dirty(lsn);
                    // Add the sibling's entry.
                    let add_slot = parent_g.next_insert_slot();
                    let rec = GistRecord::InternalEntryAdd {
                        page: parent_g.page_id().0,
                        slot: add_slot,
                        cell: new_entry.clone(),
                    };
                    let lsn = db.txns().log_update(txn, RecordBody::Payload(rec.to_payload()))?;
                    parent_g
                        .insert_cell_at(add_slot, &new_entry)
                        .unwrap_or_else(|e| unreachable!("room was ensured: {e}"));
                    parent_g.mark_dirty(lsn);
                    if let Err(e) = crate::chaos::point("insert.split.after_parent_install") {
                        // Revert both installs under the parent latch.
                        let l = db.txns().log_compensation(
                            txn,
                            install_start,
                            GistRecord::InternalEntryDelete {
                                page: parent_g.page_id().0,
                                slot: add_slot,
                                cell: new_entry.clone(),
                            }
                            .to_payload(),
                        )?;
                        parent_g.delete_cell(add_slot);
                        parent_g.mark_dirty(l);
                        let l = db.txns().log_compensation(
                            txn,
                            install_start,
                            GistRecord::InternalEntryUpdate {
                                page: parent_g.page_id().0,
                                slot: entry_slot,
                                new_cell: old_cell.clone(),
                                old_cell: upd_cell,
                            }
                            .to_payload(),
                        )?;
                        parent_g
                            .update_cell(entry_slot, &old_cell)
                            .unwrap_or_else(|e| unreachable!("restoring the original cell: {e}"));
                        parent_g.mark_dirty(l);
                        return Err(e);
                    }
                    held.push(parent_g);
                }
            }
            Ok(())
        })();

        match finish {
            Ok(()) => Ok((node_g, new_g, pending_to_new)),
            Err(e) => {
                // Revert this level's split in place: move the entries
                // back, restore the BP/NSN/rightlink, and return the
                // sibling to the free pool — all before the latches drop,
                // so no concurrent operation ever saw the failed split.
                // The CLRs re-apply the revert at restart and make every
                // rollback skip straight past the unit's records.
                let l = db.txns().log_compensation(
                    txn,
                    level_start,
                    GistRecord::UndoSplit {
                        orig: node_id.0,
                        new: new_pid.0,
                        restored: moved.clone(),
                        orig_bp: orig_bp_old.clone(),
                        orig_nsn: orig_nsn_old,
                        orig_rightlink: orig_rightlink_old.0,
                    }
                    .to_payload(),
                )?;
                for (slot, cell) in &moved {
                    node_g
                        .insert_cell_at(*slot, cell)
                        .unwrap_or_else(|e| unreachable!("restored cells refill their slots: {e}"));
                }
                node::set_bp(&mut node_g, &orig_bp_old)
                    .map_err(|e| GistError::Corrupt(format!("split revert BP: {e}")))?;
                node_g.set_nsn(orig_nsn_old);
                node_g.set_rightlink(orig_rightlink_old);
                node_g.mark_dirty(l);
                new_g.clear_cells();
                new_g.mark_dirty(l);
                let l = db.txns().log_compensation(
                    txn,
                    level_start,
                    GistRecord::SetAvailable { page: new_pid.0 }.to_payload(),
                )?;
                new_g.set_available(true);
                new_g.mark_dirty(l);
                drop(new_g);
                // The sibling's replicated predicate table must not leak
                // onto the page's next tenant (the signaling-lock copies
                // evaporate with their owners).
                db.preds().purge_node(self.node_key(new_pid));
                db.alloc().free(new_pid);
                Err(e)
            }
        }
    }
}
