//! Key deletion (§7): logical delete, garbage collection of
//! committed-deleted entries (§7.1), and drain-based node deletion
//! (§7.2).

use std::collections::HashSet;
use std::sync::Arc;

use gist_lockmgr::{LockMode, LockName};
use gist_pagestore::{PageId, PageWriteGuard};
use gist_predlock::{PredKind, GLOBAL_NODE};
use gist_wal::{RecordBody, TxnId};

use crate::db::{IsolationLevel, PredicateMode};
use crate::entry::LeafEntry;
use crate::ext::GistExtension;
use crate::logrec::GistRecord;
use crate::node;
use crate::ops::{ParentLoc, StackEntry};
use crate::tree::GistIndex;
use crate::{GistError, Result};

/// Outcome of a [`GistIndex::vacuum`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VacuumReport {
    /// Committed-deleted entries physically removed.
    pub entries_removed: usize,
    /// Empty nodes retired (parent entry removed, page freed).
    pub nodes_deleted: usize,
}

impl<E: GistExtension> GistIndex<E> {
    /// DELETE: logically delete `(key, RID)` — the entry is only
    /// *marked* (§7): "the physical presence of this deleted key …
    /// ensures that Degree 3 isolated search operations have an
    /// opportunity to be suspended when they encounter such a key", and
    /// parent BPs must not shrink yet, or the path to the key would
    /// vanish for concurrent searches.
    pub fn delete(self: &Arc<Self>, txn: TxnId, key: &E::Key, rid: gist_pagestore::Rid) -> Result<()> {
        let op = self.db().txns().op_enter(txn)?;
        let r = self.delete_inner(txn, key, rid);
        op.complete();
        r
    }

    fn delete_inner(
        self: &Arc<Self>,
        txn: TxnId,
        key: &E::Key,
        rid: gist_pagestore::Rid,
    ) -> Result<()> {
        let db = self.db().clone();
        let cfg = db.config();
        let degree3 = cfg.isolation == IsolationLevel::RepeatableRead;
        let locks_records = cfg.isolation != IsolationLevel::Latching;
        // Two-phase X lock on the data record before the tree operation
        // (Degree 2 and above).
        if locks_records {
            db.locks().lock(txn, LockName::Rid(rid), LockMode::X)?;
        }
        // Pure predicate locking: register the deleted key as a
        // predicate and verify against scans first (§4.2: "insert and
        // delete operations register their keys as predicates").
        if degree3 && cfg.predicate_mode == PredicateMode::PureGlobal {
            let mut kb = Vec::new();
            self.ext().encode_key(key, &mut kb);
            let owners = db.preds().check_insert(GLOBAL_NODE, txn, &kb, &self.conflict_fn());
            let p = db.preds().register(txn, PredKind::Insert, kb);
            db.preds().attach(p, GLOBAL_NODE);
            for owner in owners {
                db.txns().wait_for_txn(txn, owner).map_err(GistError::Lock)?;
            }
        }

        // Locate the leaf holding the entry: "equivalent to a search
        // operation with an equality predicate" (§7), X-latching leaves.
        // Each stacked pointer carries the page we followed it from: if
        // the mark succeeds, that parent becomes the GC candidate's hint
        // (a sibling reached by rightlink shares its predecessor's
        // parent hint — the maintenance path walks parent rightlinks, so
        // any same-level ancestor's parent locates the entry).
        let q = self.ext().eq_query(key);
        let mut mem = db.global_nsn();
        let root = self.root()?;
        self.signal_lock(txn, root)?;
        let mut stack: Vec<(PageId, u64, Option<PageId>)> = vec![(root, mem, None)];
        let mut visited_for_unlock: Vec<PageId> = Vec::new();
        let mut found = false;
        while let Some((pid, pmem, parent)) = stack.pop() {
            if pid.is_invalid() {
                continue;
            }
            mem = pmem;
            let g = db.pool().fetch_read(pid)?;
            if g.nsn() > mem {
                stack.push((g.rightlink(), mem, parent));
            }
            if g.is_leaf() {
                drop(g);
                let mut w = db.pool().fetch_write(pid)?;
                if w.nsn() > mem {
                    // Split between the latches: make sure the chain
                    // continuation is stacked exactly once.
                    if stack.last() != Some(&(w.rightlink(), mem, parent)) {
                        stack.push((w.rightlink(), mem, parent));
                    }
                }
                let target = node::entry_cells(&w)
                    .find(|(_, cell)| {
                        let e = LeafEntry::decode(cell);
                        e.rid == rid
                            && !e.deleted
                            && self.ext().key_equal(&self.ext().decode_key(&e.key_bytes), key)
                    })
                    .map(|(slot, cell)| (slot, cell.to_vec()));
                if let Some((slot, old_cell)) = target {
                    crate::chaos::point("delete.before_mark")?;
                    let rec = GistRecord::MarkLeafEntry {
                        page: pid.0,
                        nsn: w.nsn(),
                        slot,
                        old_cell: old_cell.clone(),
                        deleter: txn.0,
                    };
                    let lsn = db.txns().log_update(txn, RecordBody::Payload(rec.to_payload()))?;
                    let marked = LeafEntry::with_mark(&old_cell, true, txn);
                    w.update_cell(slot, &marked)
                        .unwrap_or_else(|e| unreachable!("mark is same-size: {e}"));
                    w.mark_dirty(lsn);
                    // An injected fault here leaves a logged, applied mark
                    // behind — exactly what the abort path must undo.
                    crate::chaos::point("delete.after_mark")?;
                    // Hand the leaf to the maintenance daemon: if (when)
                    // this transaction commits, the mark becomes
                    // garbage-collectable and the daemon reclaims the
                    // slot (§7.1) without any foreground sweep.
                    db.txns().note_gc_candidate(
                        txn,
                        gist_txn::GcCandidate {
                            index: self.id(),
                            leaf: pid,
                            parent_hint: parent,
                        },
                    );
                    found = true;
                    drop(w);
                    self.signal_unlock(txn, pid);
                    break;
                }
                drop(w);
            } else {
                for (_, e) in node::internal_entries(&g) {
                    let pred = self.ext().decode_pred(&e.pred_bytes);
                    if self.ext().consistent_pred(&pred, &q) {
                        let child_mem = self.read_mem(Some(&g));
                        self.signal_lock(txn, e.child)?;
                        stack.push((e.child, child_mem, Some(pid)));
                    }
                }
                drop(g);
            }
            visited_for_unlock.push(pid);
            self.signal_unlock(txn, pid);
        }
        // Unvisited stacked pointers: release their signaling locks.
        for (pid, _, _) in stack {
            if !pid.is_invalid() {
                self.signal_unlock(txn, pid);
            }
        }
        if found {
            Ok(())
        } else {
            Err(GistError::NotFound)
        }
    }

    /// §7.1 node reorganization: physically remove the entries of this
    /// (X-latched) leaf whose deleting transactions have committed, and
    /// shrink the BP. Uses the Commit_LSN fast path (\[Moh90b\]): if the
    /// page's LSN predates the oldest active transaction's begin, every
    /// mark on it is committed. Returns the number of entries removed.
    pub(crate) fn gc_leaf(
        &self,
        txn: TxnId,
        leaf: &mut PageWriteGuard,
        parent_hint: Option<StackEntry>,
    ) -> Result<usize> {
        let db = self.db().clone();
        let txns = db.txns();
        let fast_path = leaf.page_lsn() < txns.oldest_active_begin_lsn();
        let mut removed: Vec<(u16, Vec<u8>)> = Vec::new();
        let mut remaining_preds: Vec<E::Pred> = Vec::new();
        for (slot, cell) in node::entry_cells(leaf) {
            let (marked, deleter) = LeafEntry::decode_mark(cell);
            // Our own marks are not removable (we might roll back).
            if marked && deleter != txn && (fast_path || txns.is_certainly_committed(deleter)) {
                removed.push((slot, cell.to_vec()));
            } else {
                let e = LeafEntry::decode(cell);
                remaining_preds.push(self.ext().key_pred(&self.ext().decode_key(&e.key_bytes)));
            }
        }
        if removed.is_empty() {
            return Ok(0);
        }
        let new_bp_opt = if remaining_preds.is_empty() {
            None
        } else {
            Some(self.ext().union_many(&remaining_preds))
        };
        let new_bp = self.encode_bp_opt(&new_bp_opt);
        let nta = txns.begin_nta(txn)?;
        let rec = GistRecord::GarbageCollection {
            page: leaf.page_id().0,
            removed: removed.clone(),
            new_bp: new_bp.clone(),
        };
        let lsn = txns.log_update(txn, RecordBody::Payload(rec.to_payload()))?;
        for (slot, _) in &removed {
            leaf.delete_cell(*slot);
        }
        node::set_bp(leaf, &new_bp)
            .map_err(|e| GistError::Corrupt(format!("GC BP overflow: {e}")))?;
        leaf.mark_dirty(lsn);
        txns.end_nta(txn, nta)?;
        // Propagate the shrink to the parent entry when we know the
        // parent ("the BP of that node may have shrunk, which can then be
        // propagated to the parent nodes"). One level is enough for
        // correctness — ancestor BPs stay conservative upper bounds.
        // A fully emptied leaf keeps its old parent entry (internal
        // entries always carry decodable, non-empty predicates); the
        // node-deletion path will remove the entry soon anyway.
        if new_bp.is_empty() {
            return Ok(removed.len());
        }
        if let Some(hint) = parent_hint {
            match self.latch_parent(&[hint], leaf)? {
                ParentLoc::IsRoot => {
                    self.apply_parent_entry_update(txn, leaf, None, new_bp)?;
                }
                ParentLoc::Found(mut parent, slot) => {
                    self.apply_parent_entry_update(txn, leaf, Some((&mut parent, slot)), new_bp)?;
                }
            }
        }
        Ok(removed.len())
    }

    /// §7.2 node deletion with the drain technique. Opportunistic: any
    /// contention (latch or signaling lock) abandons the attempt.
    ///
    /// Latch order is parent-then-child here, the reverse of the
    /// bottom-up order used by splits and BP updates — which is exactly
    /// why the child latch is only *tried*: a blocking acquire could
    /// deadlock with an ascending operation.
    pub(crate) fn try_delete_node(
        &self,
        txn: TxnId,
        parent_hint: PageId,
        child: PageId,
    ) -> Result<bool> {
        let db = self.db().clone();
        if db.is_protected_root(child) {
            return Ok(false);
        }
        // Blessed two-latch window (§5/§7.2): parent X-latched, then the
        // empty child latch is *tried* (never blocked on — see the
        // latch-order note above), so no deadlock-relevant edge exists.
        let _scope = crate::audit::enter_scope_rel("parent-child:node-delete", 2);
        // Find and X-latch the parent holding the child's entry.
        let mut pid = parent_hint;
        let (mut parent_g, slot) = loop {
            let g = db.pool().fetch_write(pid)?;
            if let Some((slot, _)) = node::find_child_entry(&g, child) {
                break (g, slot);
            }
            let next = g.rightlink();
            drop(g);
            if next.is_invalid() {
                return Ok(false); // already gone
            }
            pid = next;
        };
        // Keep internal nodes non-empty (descent needs a branch).
        if parent_g.occupied_count() <= 2 {
            // BP slot + one entry: deleting it would empty the parent.
            return Ok(false);
        }
        // Child latch: try only (see latch-order note above).
        let Some(child_g) = db.pool().try_fetch_write(child)? else {
            return Ok(false);
        };
        if node::entry_count(&child_g) != 0 {
            return Ok(false);
        }
        // A node that split must not be deleted while its rightlink may
        // still be chased; the signaling-lock probe below covers active
        // operations, but be conservative about in-flight arrivals.
        let name = LockName::Node { index: self.id(), page: child };
        if !db.locks().try_lock(txn, name, LockMode::X) {
            return Ok(false); // drain: someone still holds a pointer
        }
        let entry_cell = parent_g
            .cell(slot)
            .unwrap_or_else(|| unreachable!("entry present at validated slot"))
            .to_vec();
        let txns = db.txns();
        let nta = match txns.begin_nta(txn) {
            Ok(n) => n,
            Err(e) => {
                db.locks().unlock(txn, name);
                return Err(e.into());
            }
        };
        let rec = GistRecord::InternalEntryDelete {
            page: parent_g.page_id().0,
            slot,
            cell: entry_cell,
        };
        let lsn = txns.log_update(txn, RecordBody::Payload(rec.to_payload()))?;
        parent_g.delete_cell(slot);
        parent_g.mark_dirty(lsn);
        let rec = GistRecord::FreePage { page: child.0 };
        let lsn = txns.log_update(txn, RecordBody::Payload(rec.to_payload()))?;
        let mut child_g = child_g;
        child_g.set_available(true);
        child_g.mark_dirty(lsn);
        txns.end_nta(txn, nta)?;
        drop(child_g);
        drop(parent_g);
        db.locks().unlock(txn, name);
        // The drained node's predicate table must not be inherited by
        // the page's next tenant after reallocation.
        db.preds().purge_node(self.node_key(child));
        // §7.2 reclamation goes through the epoch bin: an optimistic
        // traversal may still hold a pointer to the drained page, and
        // deferring the allocator free until every such pin drains is
        // what lets the fast path skip the signaling locks — the page
        // cannot be reallocated (and re-typed) under a pinned reader; it
        // is only ever observed empty-and-available, which the traversal
        // skips harmlessly.
        let alloc = db.alloc().clone();
        db.epoch().retire(move || alloc.free(child));
        Ok(true)
    }

    /// Hand a whole-index sweep to the maintenance daemon instead of
    /// blocking the calling transaction on it. Returns whether the sweep
    /// was newly enqueued (an identical pending sweep coalesces). The
    /// daemon runs it as its own system transaction — either on a worker
    /// thread ([`Db::start_maint`](crate::Db::start_maint)) or when the
    /// caller drives [`Db::maint_sync`](crate::Db::maint_sync).
    ///
    /// Deterministic callers (tests, benchmarks, the shell's `vacuum`
    /// command) that need the report immediately use [`Self::vacuum_sync`].
    pub fn vacuum(self: &Arc<Self>) -> bool {
        self.db().maint().enqueue(gist_maint::WorkItem::FullSweep { index: self.id() })
    }

    /// Sweep the whole index: garbage-collect every leaf, shrink BPs,
    /// and retire empty nodes. Runs under the caller's transaction (the
    /// physical work is in atomic units, so it commits as it goes).
    ///
    /// This is the synchronous escape hatch behind [`Self::vacuum`];
    /// the daemon's full-sweep work item calls it too.
    pub fn vacuum_sync(&self, txn: TxnId) -> Result<VacuumReport> {
        let op = self.db().txns().op_enter(txn)?;
        let r = self.vacuum_sync_inner(txn);
        op.complete();
        r
    }

    fn vacuum_sync_inner(&self, txn: TxnId) -> Result<VacuumReport> {
        let db = self.db().clone();
        let mut report = VacuumReport::default();
        loop {
            let mut deleted_this_round = 0;
            // Collect (parent, child-leaf) pairs with a read pass.
            let mut pairs: Vec<(PageId, u64, PageId)> = Vec::new();
            let root = self.root()?;
            let mut queue = vec![root];
            let mut seen: HashSet<PageId> = HashSet::new();
            while let Some(pid) = queue.pop() {
                if pid.is_invalid() || !seen.insert(pid) {
                    continue;
                }
                let g = db.pool().fetch_read(pid)?;
                queue.push(g.rightlink());
                if !g.is_leaf() {
                    for (_, e) in node::internal_entries(&g) {
                        queue.push(e.child);
                        if g.level() == 1 {
                            pairs.push((pid, g.nsn(), e.child));
                        }
                    }
                }
            }
            // Root-is-leaf case: GC it directly.
            let root_g = db.pool().fetch_read(root)?;
            let root_is_leaf = root_g.is_leaf();
            drop(root_g);
            if root_is_leaf {
                let mut g = db.pool().fetch_write(root)?;
                report.entries_removed += self.gc_leaf(txn, &mut g, None)?;
                return Ok(report);
            }
            for (parent, parent_nsn, leaf) in pairs {
                let mut g = db.pool().fetch_write(leaf)?;
                if !g.is_leaf() {
                    continue; // page got reused at another level
                }
                report.entries_removed += self.gc_leaf(
                    txn,
                    &mut g,
                    Some(StackEntry { page: parent, nsn_at_visit: parent_nsn }),
                )?;
                let empty = node::entry_count(&g) == 0;
                drop(g);
                if empty && self.try_delete_node(txn, parent, leaf)? {
                    report.nodes_deleted += 1;
                    deleted_this_round += 1;
                }
            }
            if deleted_this_round == 0 {
                return Ok(report);
            }
            // Another round may now find empty internal nodes' parents
            // (we only retire leaves directly; internal nodes drain on
            // later passes once their children are gone).
        }
    }
}
