//! The tree operations: search (Fig. 3), insertion (Fig. 4), deletion,
//! garbage collection, node deletion, unique insertion.
//!
//! Shared machinery lives here: descent stack entries, memorized-counter
//! reads (§10.1), parent latching with rightlink correction, signaling
//! locks (§7.2), and the log-then-apply helpers for structure
//! modifications.

pub mod cursor;
pub mod delete;
mod insert;

use gist_lockmgr::{LockMode, LockName};
use gist_pagestore::{PageId, PageWriteGuard, SlotId};
use gist_wal::{RecordBody, TxnId};

use crate::db::NsnSource;
use crate::entry::InternalEntry;
use crate::ext::GistExtension;
use crate::logrec::GistRecord;
use crate::node;
use crate::tree::GistIndex;
use crate::{GistError, Result};

/// One ancestor recorded during descent (Fig. 4's
/// `push(stack, [p, NSN(p)])`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct StackEntry {
    /// The ancestor node.
    pub page: PageId,
    /// Its NSN when we visited it — "if NSN(parent) changed since first
    /// visited", the parent has split and the child's entry may have
    /// moved to a right sibling. Kept for protocol fidelity and used by
    /// diagnostics; `latch_parent` detects the same condition directly by
    /// probing for the child's entry and walking rightlinks.
    #[allow(dead_code)]
    pub nsn_at_visit: u64,
}

/// Where a node's parent entry was found.
pub(crate) enum ParentLoc {
    /// The node is the current root: no parent entry exists.
    IsRoot,
    /// Parent latched in X mode; the child's entry is at `slot`.
    Found(PageWriteGuard, SlotId),
}

impl<E: GistExtension> GistIndex<E> {
    /// The value a descending operation memorizes before following a
    /// child pointer (§10.1): the tree-global counter, or — with the
    /// LSN-based optimization — the parent page's LSN, sparing the
    /// high-frequency counter. `parent` is `None` at the root pointer.
    pub(crate) fn read_mem(&self, parent: Option<&gist_pagestore::Page>) -> u64 {
        let cfg = self.db().config();
        match (parent, cfg.nsn_source, cfg.memorize_parent_lsn) {
            (Some(p), NsnSource::WalLsn, true) => p.page_lsn().0,
            _ => self.db().global_nsn(),
        }
    }

    /// Acquire the §7.2 signaling lock on a node. Must be called while
    /// the latch of the node's *parent* (or left sibling for rightlink
    /// targets, or nothing for the root) is held, so that node deletion's
    /// parent-latch-first discipline observes it. S mode: never blocks
    /// meaningfully (deleters only `try_lock` X).
    pub(crate) fn signal_lock(&self, txn: TxnId, page: PageId) -> Result<()> {
        self.db()
            .locks()
            .lock(txn, LockName::Node { index: self.id(), page }, LockMode::S)?;
        Ok(())
    }

    /// Release a signaling lock after visiting the node — unless a
    /// savepoint pinned it (§10.2).
    pub(crate) fn signal_unlock(&self, txn: TxnId, page: PageId) {
        let name = LockName::Node { index: self.id(), page };
        if !self.db().txns().is_pinned(txn, name) {
            self.db().locks().unlock(txn, name);
        }
    }

    /// The predicate-conflict test handed to the predicate manager:
    /// `conflict(scan_query_bytes, insert_key_bytes)` via the extension's
    /// `consistent()`.
    pub(crate) fn conflict_fn(&self) -> impl Fn(&[u8], &[u8]) -> bool + '_ {
        move |query_bytes, key_bytes| self.ext().query_conflicts_key_bytes(query_bytes, key_bytes)
    }

    /// Latch (X) the node holding the parent entry of `child`, starting
    /// from the stacked ancestor and walking rightlinks ("if a parent
    /// node does not contain the child's pointer anymore, it must have
    /// been split and the search for the child's pointer is continued in
    /// the right sibling", §6). With an empty stack, the child was the
    /// root at descent time; if it has since been demoted by a root
    /// split, its parent is found by sweeping the level above it from
    /// the current root.
    pub(crate) fn latch_parent(
        &self,
        stack: &[StackEntry],
        child: &PageWriteGuard,
    ) -> Result<ParentLoc> {
        let child_id = child.page_id();
        // Blessed two-latch window (§5): the child is held while its
        // parent is latched (and possibly faulted in) one level up.
        let _scope = crate::audit::enter_scope_rel("parent-child:latch-parent", 1);
        if let Some(top) = stack.last() {
            let mut pid = top.page;
            loop {
                let g = self.db().pool().fetch_write(pid)?;
                if let Some((slot, _)) = node::find_child_entry(&g, child_id) {
                    return Ok(ParentLoc::Found(g, slot));
                }
                let next = g.rightlink();
                drop(g);
                if next.is_invalid() {
                    return Err(GistError::Corrupt(format!(
                        "parent entry for {child_id} not found in chain from {}",
                        top.page
                    )));
                }
                pid = next;
            }
        }
        // No stacked parent: the child was the root when we descended.
        if self.root()? == child_id {
            return Ok(ParentLoc::IsRoot);
        }
        // Demoted by a concurrent root split: sweep the level above.
        self.find_parent_by_sweep(child_id, child.level())
    }

    /// Exhaustively search level `child_level + 1` for the entry pointing
    /// at `child_id` (rare path: only after a concurrent root split).
    fn find_parent_by_sweep(&self, child_id: PageId, child_level: u16) -> Result<ParentLoc> {
        // Part of the latch-parent window: the caller's child latch stays
        // held while one sweep latch at a time probes the level above.
        let _scope = crate::audit::enter_scope_rel("parent-child:sweep", 1);
        loop {
            let root = self.root()?;
            let mut level_nodes = vec![root];
            // Descend to the level above the child, collecting every node
            // of that level reachable through entries and rightlinks.
            let mut current = level_nodes.clone();
            loop {
                let g = self.db().pool().fetch_read(current[0])?;
                let level = g.level();
                drop(g);
                if level == child_level + 1 {
                    level_nodes = current;
                    break;
                }
                if level <= child_level {
                    return Err(GistError::Corrupt(format!(
                        "no level {} above child {child_id}",
                        child_level + 1
                    )));
                }
                let mut next = Vec::new();
                let mut queue = current.clone();
                let mut seen = std::collections::HashSet::new();
                while let Some(pid) = queue.pop() {
                    if pid.is_invalid() || !seen.insert(pid) {
                        continue;
                    }
                    let g = self.db().pool().fetch_read(pid)?;
                    queue.push(g.rightlink());
                    for (_, e) in node::internal_entries(&g) {
                        next.push(e.child);
                    }
                }
                current = next;
            }
            let mut seen = std::collections::HashSet::new();
            let mut queue = level_nodes;
            while let Some(pid) = queue.pop() {
                if pid.is_invalid() || !seen.insert(pid) {
                    continue;
                }
                let g = self.db().pool().fetch_write(pid)?;
                if let Some((slot, _)) = node::find_child_entry(&g, child_id) {
                    return Ok(ParentLoc::Found(g, slot));
                }
                queue.push(g.rightlink());
                drop(g);
            }
            // The entry is being moved by an in-flight split; retry.
            std::thread::yield_now();
        }
    }

    /// The entry with the smallest insertion penalty on an internal node.
    pub(crate) fn min_penalty_child(
        &self,
        page: &gist_pagestore::Page,
        key: &E::Key,
    ) -> Result<(SlotId, InternalEntry)> {
        let mut best: Option<(f64, SlotId, InternalEntry)> = None;
        for (slot, entry) in node::internal_entries(page) {
            let pred = self.ext().decode_pred(&entry.pred_bytes);
            let pen = self.ext().penalty(&pred, key);
            match &best {
                Some((b, _, _)) if *b <= pen => {}
                _ => best = Some((pen, slot, entry)),
            }
        }
        best.map(|(_, s, e)| (s, e)).ok_or_else(|| {
            GistError::Corrupt(format!("internal node {} has no entries", page.page_id()))
        })
    }

    /// Log and apply a `Parent-Entry-Update` as its own atomic unit of
    /// work (§9.1 structure modification (2)): sets the child's slot-0 BP
    /// and, when the child is not the root, the predicate in the parent's
    /// entry. Both pages are already X-latched by the caller.
    pub(crate) fn apply_parent_entry_update(
        &self,
        txn: TxnId,
        child: &mut PageWriteGuard,
        parent: Option<(&mut PageWriteGuard, SlotId)>,
        new_bp_bytes: Vec<u8>,
    ) -> Result<()> {
        let txns = self.db().txns();
        let nta = txns.begin_nta(txn)?;
        let (parent_page, parent_slot) = match &parent {
            Some((g, slot)) => (g.page_id().0, *slot),
            None => (u32::MAX, 0),
        };
        let rec = GistRecord::ParentEntryUpdate {
            child: child.page_id().0,
            parent: parent_page,
            parent_slot,
            new_bp: new_bp_bytes.clone(),
        };
        let lsn = txns.log_update(txn, RecordBody::Payload(rec.to_payload()))?;
        node::set_bp(child, &new_bp_bytes)
            .map_err(|e| GistError::Corrupt(format!("BP update overflow: {e}")))?;
        child.mark_dirty(lsn);
        if let Some((pg, slot)) = parent {
            let new_cell = InternalEntry::new(child.page_id(), new_bp_bytes).encode();
            pg.update_cell(slot, &new_cell)
                .map_err(|e| GistError::Corrupt(format!("parent entry overflow: {e}")))?;
            pg.mark_dirty(lsn);
        }
        txns.end_nta(txn, nta)?;
        Ok(())
    }
}
