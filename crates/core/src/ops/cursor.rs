//! Search (Fig. 3) in two traversal modes: a **latched incremental
//! cursor** and an **optimistic latch-free fast path** for one-shot
//! drains ([`GistIndex::search`]).
//!
//! *Latched cursor* ([`Cursor`]) — always used by incremental scans, and
//! the fallback for the fast path: keeps a stack of `(page pointer,
//! memorized counter)` pairs, latches one node at a time (never across
//! I/Os), detects splits by comparing the memorized value with the
//! node's NSN — pushing the rightlink with the *original* memorized
//! value when the node has split — attaches its predicate to every
//! visited node (top-down), and S-locks the RIDs of qualifying entries.
//! Blocking (on a record lock or on insert predicates ahead in a leaf's
//! FIFO list) never happens while a latch is held: the node is
//! re-pushed, the latch dropped, the wait performed, and the node
//! re-processed — "since the latched leaf can be split in the meantime,
//! we might have to traverse rightlinks, guided by the node's original
//! NSN" (§5), which the re-push preserves. Footnote 9's duplicate
//! suppression is the `seen` set of *data* RIDs.
//!
//! *Optimistic path* (`DbConfig::optimistic_reads`, the default for
//! [`GistIndex::search`]): the same stack/NSN/rightlink logic, but each
//! node is read through `BufferPool::fetch_optimistic` — no latch, no
//! pin, no LRU traffic, and no per-node signaling locks. A cached node
//! is copied under a seqlock version check; an uncached one is read
//! straight from the store into a private copy, bypassing the pool
//! (validated against the store-write counters, so the reader adds no
//! eviction pressure and never convoys behind a loading frame's
//! latch). Qualifying entries are *copied out*; record locks
//! are `try_lock`ed only after the copy and the copy is re-validated
//! with the locks held, so a lock is never trusted for an entry that
//! changed mid-read. One epoch pin ([`gist_epoch`]) covers the whole
//! traversal: §7.2 page frees defer until every pin drains, so a
//! drained page can never be reallocated (re-typed) under the reader —
//! which is exactly the hazard the latched protocol's signaling locks
//! exist to prevent. A moved version word retries the node
//! (`MAX_OPT_RETRIES` attempts); eviction under the reader, an
//! uncachable page, or budget exhaustion falls back to a latched
//! [`Cursor`] seeded with the RIDs already delivered, preserving exact
//! result sets.
//!
//! Cursors also serve §10.2: [`Cursor::snapshot`] captures the stack (and
//! progress) when a savepoint is established; [`Cursor::restore`] brings
//! it back on partial rollback. The signaling locks protecting the
//! stacked pointers are pinned by the transaction manager at savepoint
//! time.

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use gist_lockmgr::{LockMode, LockName};
use gist_pagestore::{PageId, Rid, Validation};
use gist_predlock::{PredId, PredKind, GLOBAL_NODE};
use gist_wal::TxnId;

use crate::db::{IsolationLevel, PredicateMode};
use crate::entry::LeafEntry;
use crate::ext::GistExtension;
use crate::node;
use crate::tree::GistIndex;
use crate::Result;

/// Saved cursor position (§10.2: "to record the position of a GiST
/// search operation when establishing a savepoint, it is necessary to
/// record the then-current stack").
#[derive(Debug, Clone)]
pub struct CursorSnapshot<K> {
    stack: Vec<(PageId, u64)>,
    seen: HashSet<Rid>,
    attached: HashSet<PageId>,
    pending: VecDeque<(K, Rid)>,
    finished: bool,
}

/// An incremental search cursor.
pub struct Cursor<E: GistExtension> {
    index: Arc<GistIndex<E>>,
    txn: TxnId,
    query: E::Query,
    /// Scan predicate handle (Degree 3 only).
    pred: Option<PredId>,
    /// Traversal stack: `(node, memorized counter value)`.
    stack: Vec<(PageId, u64)>,
    /// Data RIDs already returned or skipped (footnote 9).
    seen: HashSet<Rid>,
    /// Decoded, locked results from the current leaf not yet returned.
    pending: VecDeque<(E::Key, Rid)>,
    /// Nodes this cursor has already attached its predicate to.
    attached: HashSet<PageId>,
    finished: bool,
}

impl<E: GistExtension> Cursor<E> {
    pub(crate) fn new(index: Arc<GistIndex<E>>, txn: TxnId, query: E::Query) -> Result<Self> {
        let db = index.db().clone();
        let degree3 = db.config().isolation == IsolationLevel::RepeatableRead;
        let mut pred = None;
        if degree3 {
            let mut qb = Vec::new();
            index.ext().encode_query(&query, &mut qb);
            let p = db.preds().register(txn, PredKind::Scan, qb);
            pred = Some(p);
            if db.config().predicate_mode == PredicateMode::PureGlobal {
                // §4.2: one global predicate; verified against conflicting
                // (insert/delete) predicates before any traversal.
                let owners = db.preds().attach_scan_and_check(
                    p,
                    GLOBAL_NODE,
                    &|q, k| index.ext().query_conflicts_key_bytes(q, k),
                );
                for owner in owners {
                    db.txns().wait_for_txn(txn, owner).map_err(crate::GistError::Lock)?;
                }
            }
        }
        // An injected fault here strands the registered scan predicate
        // on the transaction; abort's release path must reclaim it.
        crate::chaos::point("cursor.after_register")?;
        let mem = db.global_nsn();
        let root = index.root()?;
        index.signal_lock(txn, root)?;
        Ok(Cursor {
            index,
            txn,
            query,
            pred,
            stack: vec![(root, mem)],
            seen: HashSet::new(),
            pending: VecDeque::new(),
            attached: HashSet::new(),
            finished: false,
        })
    }

    /// Whether the hybrid per-node predicate/record protocol is active.
    fn hybrid_degree3(&self) -> bool {
        let cfg = self.index.db().config();
        cfg.isolation == IsolationLevel::RepeatableRead
            && cfg.predicate_mode == PredicateMode::Hybrid
    }

    /// Next qualifying `(key, RID)` pair, or `None` when the search range
    /// is exhausted.
    // Named like a database cursor, not an Iterator: fetching can fail,
    // so the signature is Result<Option<..>> and the trait does not fit.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<(E::Key, Rid)>> {
        let db = self.index.db().clone();
        let op = db.txns().op_enter(self.txn)?;
        let r = self.next_inner();
        op.complete();
        r
    }

    fn next_inner(&mut self) -> Result<Option<(E::Key, Rid)>> {
        crate::chaos::point("cursor.before_next")?;
        loop {
            if let Some(hit) = self.pending.pop_front() {
                return Ok(Some(hit));
            }
            let Some((pid, mem)) = self.stack.pop() else {
                self.finished = true;
                return Ok(None);
            };
            if pid.is_invalid() {
                continue;
            }
            self.process_node(pid, mem)?;
        }
    }

    /// Drain the cursor.
    pub fn collect_all(&mut self) -> Result<Vec<(E::Key, Rid)>> {
        let mut out = Vec::new();
        while let Some(hit) = self.next()? {
            out.push(hit);
        }
        Ok(out)
    }

    fn process_node(&mut self, pid: PageId, mem: u64) -> Result<()> {
        let index = self.index.clone();
        let db = index.db().clone();
        let ext = index.ext();
        let g = db.pool().fetch_read(pid)?;

        // Hybrid Degree 3: attach our predicate before reading entries;
        // conflicting insert predicates *ahead of us* (FIFO fairness,
        // §10.3) force a latch-free wait and a re-visit.
        if self.hybrid_degree3() && !self.attached.contains(&pid) {
            let Some(pred) = self.pred else {
                unreachable!("degree3 cursor always carries a predicate")
            };
            let owners = db.preds().attach_scan_and_check(
                pred,
                index.node_key(pid),
                &index.conflict_fn(),
            );
            self.attached.insert(pid);
            if !owners.is_empty() {
                drop(g);
                self.stack.push((pid, mem));
                for owner in owners {
                    db.txns().wait_for_txn(self.txn, owner).map_err(crate::GistError::Lock)?;
                }
                return Ok(());
            }
        }

        // Split detection (§3): the rightlink inherits the memorized
        // value, ending the chase at the first node with NSN ≤ mem.
        if g.nsn() > mem {
            self.stack.push((g.rightlink(), mem));
        }

        if g.is_leaf() {
            // Collect the qualifying entries under the latch, then lock.
            let mut candidates: Vec<(gist_pagestore::Rid, E::Key, bool)> = Vec::new();
            for (_, cell) in node::entry_cells(&g) {
                let rid = LeafEntry::decode_rid(cell);
                if self.seen.contains(&rid) {
                    continue;
                }
                let entry = LeafEntry::decode(cell);
                let key = ext.decode_key(&entry.key_bytes);
                if ext.consistent_key(&key, &self.query) {
                    candidates.push((rid, key, entry.deleted));
                }
            }
            let mut blocker = None;
            let isolation = db.config().isolation;
            let takes_record_locks = isolation != IsolationLevel::Latching
                && db.config().predicate_mode == PredicateMode::Hybrid;
            for (rid, key, deleted) in candidates {
                if takes_record_locks {
                    if db.locks().try_lock(self.txn, LockName::Rid(rid), LockMode::S) {
                        // Lock held: the entry's fate is decided. A mark
                        // that survives its transaction is a committed
                        // delete (aborts unmark before releasing locks).
                        self.seen.insert(rid);
                        if !deleted {
                            self.pending.push_back((key, rid));
                        }
                        if isolation == IsolationLevel::ReadCommitted {
                            // Degree 2: cursor stability only — the lock
                            // is dropped as soon as the entry is read.
                            db.locks().unlock(self.txn, LockName::Rid(rid));
                        }
                    } else {
                        blocker = Some(rid);
                        break;
                    }
                } else {
                    // Latching / pure-predicate modes: no record locks;
                    // marked entries are skipped (pure mode's global
                    // predicate check already serialized us against the
                    // deleter).
                    self.seen.insert(rid);
                    if !deleted {
                        self.pending.push_back((key, rid));
                    }
                }
            }
            if let Some(rid) = blocker {
                // Block without the latch (§5), then re-visit the node;
                // the retained lock makes the retry cheap, and the
                // re-push preserves the memorized NSN that guides any
                // rightlink traversal the wait made necessary.
                drop(g);
                self.stack.push((pid, mem));
                db.locks().lock(self.txn, LockName::Rid(rid), LockMode::S)?;
                if db.config().isolation == IsolationLevel::ReadCommitted {
                    // Degree 2 keeps no post-read locks; the re-visit
                    // will re-acquire (and re-release) instantly.
                    db.locks().unlock(self.txn, LockName::Rid(rid));
                }
                return Ok(());
            }
        } else {
            for (_, e) in node::internal_entries(&g) {
                let pred = ext.decode_pred(&e.pred_bytes);
                if ext.consistent_pred(&pred, &self.query) {
                    let child_mem = index.read_mem(Some(&g));
                    // Signaling lock taken under the parent's latch —
                    // the discipline node deletion relies on (§7.2).
                    index.signal_lock(self.txn, e.child)?;
                    self.stack.push((e.child, child_mem));
                }
            }
        }
        drop(g);
        index.signal_unlock(self.txn, pid);
        Ok(())
    }

    /// Capture the cursor position for a savepoint (§10.2). Call
    /// *before* `TxnManager::savepoint` returns to the application so
    /// the signaling locks still held for stacked pointers get pinned.
    pub fn snapshot(&self) -> CursorSnapshot<E::Key> {
        CursorSnapshot {
            stack: self.stack.clone(),
            seen: self.seen.clone(),
            attached: self.attached.clone(),
            pending: self.pending.clone(),
            finished: self.finished,
        }
    }

    /// Restore a snapshot after partial rollback.
    pub fn restore(&mut self, snap: CursorSnapshot<E::Key>) {
        self.stack = snap.stack;
        self.seen = snap.seen;
        self.attached = snap.attached;
        self.pending = snap.pending;
        self.finished = snap.finished;
    }

    /// Whether the cursor has delivered everything.
    pub fn is_finished(&self) -> bool {
        self.finished && self.pending.is_empty()
    }

    /// The cursor's scan-predicate handle (None below Degree 3). Unique
    /// insertion uses this to release its probe predicates early (§8).
    pub(crate) fn pred_id(&self) -> Option<PredId> {
        self.pred
    }
}

/// Retry budget per node on the optimistic path before falling back to
/// the latched cursor. Small on purpose: a node that keeps moving is
/// under write pressure, and the latched path queues fairly instead of
/// spinning.
const MAX_OPT_RETRIES: usize = 4;

/// A consistent snapshot of one node's qualifying content, copied out
/// under the seqlock version check.
enum NodeCopy<K> {
    Leaf {
        nsn: u64,
        rightlink: PageId,
        /// `(rid, key, delete-marked)` for entries matching the query.
        candidates: Vec<(Rid, K, bool)>,
    },
    Internal {
        nsn: u64,
        rightlink: PageId,
        /// `(child, memorized counter)` for entries matching the query.
        children: Vec<(PageId, u64)>,
    },
}

/// Result of the optimistic drain: the complete result set, or a
/// partial prefix plus the RID set it covers so a latched fallback
/// cursor can finish without duplicating deliveries.
enum OptOutcome<K> {
    Done(Vec<(K, Rid)>),
    Fallback {
        seen: HashSet<Rid>,
        partial: Vec<(K, Rid)>,
    },
}

impl<E: GistExtension> GistIndex<E> {
    /// Open an incremental cursor over `query`.
    pub fn cursor(self: &Arc<Self>, txn: TxnId, query: E::Query) -> Result<Cursor<E>> {
        let op = self.db().txns().op_enter(txn)?;
        let r = Cursor::new(self.clone(), txn, query);
        op.complete();
        r
    }

    /// SEARCH: all `(key, RID)` pairs satisfying `query` (drains a
    /// cursor). With `DbConfig::optimistic_reads` (the default) the
    /// drain first runs latch-free (see the module docs), falling back
    /// to a seeded latched cursor when validation keeps failing or a
    /// page leaves the pool mid-read.
    pub fn search(self: &Arc<Self>, txn: TxnId, query: &E::Query) -> Result<Vec<(E::Key, Rid)>> {
        if self.db().optimistic_enabled() {
            let db = self.db().clone();
            let op = db.txns().op_enter(txn)?;
            let r = self.search_optimistic(txn, query);
            op.complete();
            match r? {
                OptOutcome::Done(out) => Ok(out),
                OptOutcome::Fallback { seen, partial } => {
                    // The fallback registers a second scan predicate and
                    // re-takes signaling locks from the root; both are
                    // conservative (extra blocking only, never missed
                    // conflicts). Seeding `seen` keeps result sets exact.
                    let mut c = self.cursor(txn, query.clone())?;
                    c.seen.extend(seen);
                    let mut out = partial;
                    out.extend(c.collect_all()?);
                    Ok(out)
                }
            }
        } else {
            let mut c = self.cursor(txn, query.clone())?;
            c.collect_all()
        }
    }

    /// One-shot latch-free drain of `query` (module docs: *Optimistic
    /// path*). Same stack/NSN/rightlink traversal as [`Cursor`], but
    /// every node is copied out under a seqlock check instead of being
    /// latched, and one epoch pin replaces the signaling locks.
    fn search_optimistic(
        self: &Arc<Self>,
        txn: TxnId,
        query: &E::Query,
    ) -> Result<OptOutcome<E::Key>> {
        let index = self.clone();
        let db = index.db().clone();
        let ext = index.ext();
        let isolation = db.config().isolation;
        let degree3 = isolation == IsolationLevel::RepeatableRead;
        let hybrid3 = degree3 && db.config().predicate_mode == PredicateMode::Hybrid;
        let takes_record_locks = isolation != IsolationLevel::Latching
            && db.config().predicate_mode == PredicateMode::Hybrid;

        let mut pred = None;
        if degree3 {
            let mut qb = Vec::new();
            ext.encode_query(query, &mut qb);
            let p = db.preds().register(txn, PredKind::Scan, qb);
            pred = Some(p);
            if db.config().predicate_mode == PredicateMode::PureGlobal {
                // §4.2: one global predicate; verified against
                // conflicting predicates before any traversal.
                let owners = db.preds().attach_scan_and_check(p, GLOBAL_NODE, &|q, k| {
                    index.ext().query_conflicts_key_bytes(q, k)
                });
                for owner in owners {
                    db.txns().wait_for_txn(txn, owner).map_err(crate::GistError::Lock)?;
                }
            }
        }
        // Same injection point as Cursor::new: a fault here strands the
        // registered scan predicate on the transaction.
        crate::chaos::point("cursor.after_register")?;

        let mem = db.global_nsn();
        let root = index.root()?;
        let mut stack: Vec<(PageId, u64)> = vec![(root, mem)];
        let mut seen: HashSet<Rid> = HashSet::new();
        let mut attached: HashSet<PageId> = HashSet::new();
        let mut out: Vec<(E::Key, Rid)> = Vec::new();
        let mut hits = 0u64;

        // One pin for the whole traversal: §7.2 frees (drained nodes,
        // dropped indexes) retired after this point cannot run until we
        // unpin, so a stacked child pointer can never be re-typed under
        // us. This substitutes for the latched cursor's signaling locks.
        let mut pin = db.epoch().pin();
        // Chaos: the traversal holds its epoch pin here. A Delay models
        // the stalled-reader shape (the pin ages while the bin fills); an
        // Error/Panic dies pinned and must release via RAII.
        crate::chaos::point("cursor.optimistic.pinned")?;

        macro_rules! fall_back {
            () => {{
                db.note_opt_fallback();
                db.note_opt_hits(hits);
                return Ok(OptOutcome::Fallback { seen, partial: out });
            }};
        }

        'outer: while let Some((pid, mem)) = stack.pop() {
            if pid.is_invalid() {
                continue;
            }

            // Hybrid Degree 3: attach before reading, exactly as the
            // latched path does — the copy below is only trusted if no
            // conflicting insert predicate was ahead of us (§10.3 FIFO
            // fairness), and any writer that lands after our attach and
            // still changes the node also bumps its version word.
            if hybrid3 && !attached.contains(&pid) {
                let Some(p) = pred else {
                    unreachable!("degree3 search always carries a predicate")
                };
                let owners =
                    db.preds()
                        .attach_scan_and_check(p, index.node_key(pid), &index.conflict_fn());
                attached.insert(pid);
                if !owners.is_empty() {
                    stack.push((pid, mem));
                    // Never block while pinned: a stalled reader would
                    // stall reclamation for everyone.
                    drop(pin);
                    for owner in owners {
                        db.txns().wait_for_txn(txn, owner).map_err(crate::GistError::Lock)?;
                    }
                    pin = db.epoch().pin();
                    continue 'outer;
                }
            }

            let mut attempts = 0usize;
            'node: loop {
                let Some(og) = db.pool().fetch_optimistic(pid)? else {
                    // Neither cached, directly readable (a write-back
                    // overlapped the bypass window), nor warmable; let
                    // the latched path pin it properly.
                    fall_back!();
                };
                let copy = og.read_with(|p| {
                    let nsn = p.nsn();
                    let rightlink = p.rightlink();
                    if p.is_leaf() {
                        let mut candidates = Vec::new();
                        for (_, cell) in node::entry_cells(p) {
                            let rid = LeafEntry::decode_rid(cell);
                            if seen.contains(&rid) {
                                continue;
                            }
                            let entry = LeafEntry::decode(cell);
                            let key = ext.decode_key(&entry.key_bytes);
                            if ext.consistent_key(&key, query) {
                                candidates.push((rid, key, entry.deleted));
                            }
                        }
                        NodeCopy::Leaf { nsn, rightlink, candidates }
                    } else {
                        let mut children = Vec::new();
                        for (_, e) in node::internal_entries(p) {
                            let pb = ext.decode_pred(&e.pred_bytes);
                            if ext.consistent_pred(&pb, query) {
                                children.push((e.child, index.read_mem(Some(p))));
                            }
                        }
                        NodeCopy::Internal { nsn, rightlink, children }
                    }
                });
                let Some(copy) = copy else {
                    if og.validate() == Validation::Evicted {
                        fall_back!();
                    }
                    attempts += 1;
                    db.note_opt_retry();
                    if attempts > MAX_OPT_RETRIES {
                        fall_back!();
                    }
                    continue 'node;
                };

                // Split detection (§3), identical to the latched path:
                // the rightlink inherits the memorized value.
                let (nsn, rightlink) = match &copy {
                    NodeCopy::Leaf { nsn, rightlink, .. }
                    | NodeCopy::Internal { nsn, rightlink, .. } => (*nsn, *rightlink),
                };
                if nsn > mem {
                    stack.push((rightlink, mem));
                }

                match copy {
                    NodeCopy::Internal { children, .. } => {
                        // `read_with` re-checked the version word after
                        // the copy, so the child pointers and memorized
                        // counters are a consistent snapshot; the epoch
                        // pin keeps every one of them type-stable.
                        stack.extend(children);
                        hits += 1;
                        break 'node;
                    }
                    NodeCopy::Leaf { candidates, .. } => {
                        // Lock-then-revalidate: S-lock every candidate,
                        // then confirm the node didn't change while the
                        // locks were acquired — a lock taken against a
                        // stale copy proves nothing about the entry.
                        let mut locked: Vec<Rid> = Vec::new();
                        let mut blocker = None;
                        if takes_record_locks {
                            for (rid, _, _) in &candidates {
                                if db.locks().try_lock(txn, LockName::Rid(*rid), LockMode::S) {
                                    locked.push(*rid);
                                } else {
                                    blocker = Some(*rid);
                                    break;
                                }
                            }
                        }
                        if let Some(rid) = blocker {
                            // Block with nothing held (§5): no latch to
                            // drop here, but the pin must not outlive
                            // the wait. Re-push preserves the memorized
                            // NSN guiding any rightlink chase the wait
                            // makes necessary.
                            drop(og);
                            stack.push((pid, mem));
                            if isolation == IsolationLevel::ReadCommitted {
                                // Degree 2 retains nothing across the
                                // wait (cursor stability only).
                                for r in locked.drain(..) {
                                    db.locks().unlock(txn, LockName::Rid(r));
                                }
                            }
                            drop(pin);
                            db.locks().lock(txn, LockName::Rid(rid), LockMode::S)?;
                            if isolation == IsolationLevel::ReadCommitted {
                                db.locks().unlock(txn, LockName::Rid(rid));
                            }
                            pin = db.epoch().pin();
                            continue 'outer;
                        }
                        match og.validate() {
                            Validation::Ok => {
                                for (rid, key, deleted) in candidates {
                                    // Lock held (Degree ≥ 2): the
                                    // entry's fate is decided; a
                                    // surviving mark is a committed
                                    // delete (aborts unmark first).
                                    seen.insert(rid);
                                    if !deleted {
                                        out.push((key, rid));
                                    }
                                    if takes_record_locks
                                        && isolation == IsolationLevel::ReadCommitted
                                    {
                                        db.locks().unlock(txn, LockName::Rid(rid));
                                    }
                                }
                                hits += 1;
                                break 'node;
                            }
                            v => {
                                // The node changed under our locks. In
                                // Degree 2 release them (no retained
                                // stale locks); Degree 3 keeps them —
                                // extra S locks are 2PL-legal and make
                                // the re-read regrant instantly.
                                if isolation == IsolationLevel::ReadCommitted {
                                    for r in locked.drain(..) {
                                        db.locks().unlock(txn, LockName::Rid(r));
                                    }
                                }
                                if v == Validation::Evicted {
                                    fall_back!();
                                }
                                attempts += 1;
                                db.note_opt_retry();
                                if attempts > MAX_OPT_RETRIES {
                                    fall_back!();
                                }
                                continue 'node;
                            }
                        }
                    }
                }
            }
        }
        drop(pin);
        db.note_opt_hits(hits);
        Ok(OptOutcome::Done(out))
    }
}
