//! Structural invariant checker, used by tests and crash-recovery
//! experiments to assert that a tree is well-formed.
//!
//! Checked invariants:
//! 1. every node reachable from the root via entries or rightlinks is a
//!    formatted, in-use index node at the expected level;
//! 2. no node's rightlink points back at itself (the checkable slice of
//!    chain acyclicity once drained pages may be reused) and NSNs never
//!    exceed the tree-global counter;
//! 3. every internal entry's predicate covers its child's own (slot 0)
//!    BP — equality is not required because garbage collection may
//!    shrink a child before its parent entry (§7.1);
//! 4. every node's BP covers all of its entries (keys for leaves,
//!    predicates for internal nodes);
//! 5. the leaf level partitions the data RIDs: "exactly one GiST leaf
//!    entry points to a given data record" (§2);
//! 6. internal nodes are non-empty.

use std::collections::{HashMap, HashSet};

use gist_pagestore::{PageId, Rid};

use crate::entry::{InternalEntry, LeafEntry};
use crate::ext::GistExtension;
use crate::node;
use crate::tree::GistIndex;
use crate::Result;

/// Outcome of a structural check.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Nodes visited.
    pub nodes: usize,
    /// Leaf entries seen (live + marked).
    pub entries: usize,
    /// Invariant violations (empty = healthy).
    pub violations: Vec<String>,
}

impl CheckReport {
    /// Whether the tree passed every check.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panic with the violation list unless healthy (test helper).
    pub fn assert_ok(&self) {
        assert!(self.ok(), "tree invariant violations: {:#?}", self.violations);
    }
}

/// Work-queue entry: `(page, expected (level, parent predicate), whether
/// the page was reached through a parent entry)`.
type CheckItem = (PageId, Option<(u16, Vec<u8>)>, bool);

/// Run the structural checks over `index`. Takes no latches beyond one
/// node at a time; call while the tree is quiescent for exact results.
pub fn check_tree<E: GistExtension>(index: &GistIndex<E>) -> Result<CheckReport> {
    let mut report = CheckReport::default();
    let ext = index.ext();
    let pool = index.db().pool();
    let global = index.db().global_nsn();

    let root = index.root()?;
    // Queue entries: (page, expectation-from-parent-entry, via_entry).
    // Rightlinks may legitimately dangle into freed pages — the NSN guard
    // means no operation ever follows them — so availability is only a
    // violation when the page was reached through a parent entry.
    let mut queue: Vec<CheckItem> = vec![(root, None, true)];
    let mut visited: HashSet<PageId> = HashSet::new();
    let mut rid_owner: HashMap<Rid, PageId> = HashMap::new();

    while let Some((pid, expect, via_entry)) = queue.pop() {
        if pid.is_invalid() {
            continue;
        }
        let first_visit = visited.insert(pid);
        let g = pool.fetch_read(pid)?;
        if g.is_available() {
            if via_entry {
                report.violations.push(format!("{pid} reachable but marked available"));
            }
            continue;
        }
        if g.page_id() != pid {
            report.violations.push(format!("{pid} header id mismatch: {}", g.page_id()));
        }
        if let Some((level, parent_pred)) = &expect {
            if g.level() != *level {
                report
                    .violations
                    .push(format!("{pid}: level {} but parent expects {level}", g.level()));
            }
            // Invariant 3: parent entry covers the child's own BP.
            let child_bp = index.decode_bp_opt(node::bp_bytes(&g));
            let parent_p = index.decode_bp_opt(parent_pred);
            match (parent_p, child_bp) {
                (Some(pp), Some(cb)) if !ext.pred_covers(&pp, &cb) => {
                    report
                        .violations
                        .push(format!("{pid}: parent entry does not cover child BP"));
                }
                (Some(_), Some(_)) => {}
                (None, Some(_)) => report
                    .violations
                    .push(format!("{pid}: parent entry empty but child BP is not")),
                _ => {}
            }
        }
        if g.nsn() > global {
            report
                .violations
                .push(format!("{pid}: NSN {} exceeds global counter {global}", g.nsn()));
        }
        if !first_visit {
            continue; // links converge; only validate content once
        }
        report.nodes += 1;
        // Invariant 2 (acyclic part). General cycle detection over the
        // rightlink graph is unsound here: a drained page's left sibling
        // keeps a stale rightlink (legal — the NSN guard keeps traversals
        // off it), and once the page is reused that stale edge is
        // structurally indistinguishable from corruption. A self-link is
        // the exception: no code path ever stores a page's own id in its
        // rightlink, so it is always corruption — and it is the failure
        // mode a torn or misdirected header write actually produces.
        if g.rightlink() == pid {
            report.violations.push(format!("rightlink cycle through {pid} (self-link)"));
        }
        queue.push((g.rightlink(), None, false));

        let own_bp = index.decode_bp_opt(node::bp_bytes(&g));
        if g.is_leaf() {
            for (_, cell) in node::entry_cells(&g) {
                report.entries += 1;
                let e = LeafEntry::decode(cell);
                let key = ext.decode_key(&e.key_bytes);
                // Invariant 4 (leaf form).
                match &own_bp {
                    Some(bp) if ext.pred_covers_key(bp, &key) => {}
                    _ => report
                        .violations
                        .push(format!("{pid}: BP does not cover key {key:?}")),
                }
                // Invariant 5: RIDs partitioned across leaves.
                if let Some(prev) = rid_owner.insert(e.rid, pid) {
                    report.violations.push(format!(
                        "{:?} stored on both {prev} and {pid}",
                        e.rid
                    ));
                }
            }
        } else {
            let entries = node::internal_entries(&g);
            // Invariant 6.
            if entries.is_empty() {
                report.violations.push(format!("{pid}: empty internal node"));
            }
            for (_, InternalEntry { child, pred_bytes }) in entries {
                let pred = ext.decode_pred(&pred_bytes);
                // Invariant 4 (internal form).
                match &own_bp {
                    Some(bp) if ext.pred_covers(bp, &pred) => {}
                    _ => report
                        .violations
                        .push(format!("{pid}: BP does not cover entry for {child}")),
                }
                queue.push((child, Some((g.level() - 1, pred_bytes)), true));
            }
        }
    }
    Ok(report)
}
