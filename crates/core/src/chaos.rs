//! Named crash points for the operation layer (`chaos` feature).
//!
//! With the feature on, `chaos::point("...")` forwards to `gist_chaos`
//! and an armed point can panic, inject [`GistError::Injected`], delay
//! or yield. Without it the call compiles to `Ok(())` — the bench
//! `bench_chaos` prices the difference (spoiler: one relaxed atomic
//! load when on, nothing when off). Point names must appear in
//! `gist_chaos::CATALOG`; the `chaos-point-registry` lint rule checks
//! every call site against the catalog.

#[cfg(feature = "chaos")]
#[inline]
pub(crate) fn point(name: &'static str) -> crate::Result<()> {
    gist_chaos::point(name).map_err(|e| crate::GistError::Injected(e.0))
}

#[cfg(not(feature = "chaos"))]
#[inline(always)]
pub(crate) fn point(_name: &'static str) -> crate::Result<()> {
    Ok(())
}
