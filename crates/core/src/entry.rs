//! On-page entry encodings.
//!
//! Slot 0 of every node holds the node's own bounding predicate (the
//! paper's Table 1 `Parent-Entry-Update` record "update[s] BP in child
//! and corresponding slot in parent", implying the child stores its BP
//! too). Slots ≥ 1 hold entries:
//!
//! - leaf entry: `[flags u8][deleter u64][rid.page u32][rid.slot u16][key…]`
//!   where flag bit 0 is the logical-delete mark (§7) and `deleter` is the
//!   marking transaction,
//! - internal entry: `[child u32][pred…]`.

use gist_pagestore::{PageId, Rid};
use gist_wal::TxnId;

const LEAF_HEADER: usize = 1 + 8 + 4 + 2;
const FLAG_DELETED: u8 = 1 << 0;

// Little-endian field reads; the length asserts in the callers make the
// sub-slice indexing infallible.
fn le_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    u64::from_le_bytes(a)
}

fn le_u32(b: &[u8]) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&b[..4]);
    u32::from_le_bytes(a)
}

fn le_u16(b: &[u8]) -> u16 {
    let mut a = [0u8; 2];
    a.copy_from_slice(&b[..2]);
    u16::from_le_bytes(a)
}

/// Decoded leaf entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafEntry {
    /// Encoded key.
    pub key_bytes: Vec<u8>,
    /// The data record this entry points at.
    pub rid: Rid,
    /// Logical-delete mark (§7): set instead of physical removal so that
    /// Degree 3 searches block on the deleter's record lock.
    pub deleted: bool,
    /// Transaction that set the mark ([`TxnId::NONE`] when unmarked).
    pub deleter: TxnId,
}

impl LeafEntry {
    /// A live (unmarked) entry.
    pub fn new(key_bytes: Vec<u8>, rid: Rid) -> Self {
        LeafEntry { key_bytes, rid, deleted: false, deleter: TxnId::NONE }
    }

    /// Serialize to a page cell.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(LEAF_HEADER + self.key_bytes.len());
        out.push(if self.deleted { FLAG_DELETED } else { 0 });
        out.extend_from_slice(&self.deleter.0.to_le_bytes());
        out.extend_from_slice(&self.rid.page.0.to_le_bytes());
        out.extend_from_slice(&self.rid.slot.to_le_bytes());
        out.extend_from_slice(&self.key_bytes);
        out
    }

    /// Deserialize from a page cell.
    ///
    /// # Panics
    /// Panics on truncated cells — a malformed leaf cell means page
    /// corruption, which must not be papered over.
    pub fn decode(cell: &[u8]) -> Self {
        assert!(cell.len() >= LEAF_HEADER, "leaf cell too short: {}", cell.len());
        let flags = cell[0];
        let deleter = TxnId(le_u64(&cell[1..9]));
        let page = PageId(le_u32(&cell[9..13]));
        let slot = le_u16(&cell[13..15]);
        LeafEntry {
            key_bytes: cell[LEAF_HEADER..].to_vec(),
            rid: Rid::new(page, slot),
            deleted: flags & FLAG_DELETED != 0,
            deleter,
        }
    }

    /// Read just the RID without decoding the key (logical undo locates
    /// entries by RID).
    pub fn decode_rid(cell: &[u8]) -> Rid {
        assert!(cell.len() >= LEAF_HEADER);
        let page = PageId(le_u32(&cell[9..13]));
        let slot = le_u16(&cell[13..15]);
        Rid::new(page, slot)
    }

    /// Read just the delete mark and deleter.
    pub fn decode_mark(cell: &[u8]) -> (bool, TxnId) {
        assert!(cell.len() >= LEAF_HEADER);
        (cell[0] & FLAG_DELETED != 0, TxnId(le_u64(&cell[1..9])))
    }

    /// Produce the cell with the delete mark set/cleared in place (the
    /// rest of the cell is byte-identical, so mark/unmark is an in-place
    /// `update_cell`).
    pub fn with_mark(cell: &[u8], deleted: bool, deleter: TxnId) -> Vec<u8> {
        let mut out = cell.to_vec();
        out[0] = if deleted { FLAG_DELETED } else { 0 };
        out[1..9].copy_from_slice(&deleter.0.to_le_bytes());
        out
    }
}

/// Decoded internal entry: `(predicate, child page pointer)` — the paper's
/// §3 point that NSNs remove the R-link tree's need for a third,
/// per-entry sequence-number field is visible here: two fields only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternalEntry {
    /// Child page.
    pub child: PageId,
    /// Encoded bounding predicate of the child.
    pub pred_bytes: Vec<u8>,
}

impl InternalEntry {
    /// Construct.
    pub fn new(child: PageId, pred_bytes: Vec<u8>) -> Self {
        InternalEntry { child, pred_bytes }
    }

    /// Serialize to a page cell.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.pred_bytes.len());
        out.extend_from_slice(&self.child.0.to_le_bytes());
        out.extend_from_slice(&self.pred_bytes);
        out
    }

    /// Deserialize from a page cell.
    pub fn decode(cell: &[u8]) -> Self {
        assert!(cell.len() >= 4, "internal cell too short");
        InternalEntry {
            child: PageId(le_u32(&cell[0..4])),
            pred_bytes: cell[4..].to_vec(),
        }
    }

    /// Read just the child pointer.
    pub fn decode_child(cell: &[u8]) -> PageId {
        assert!(cell.len() >= 4);
        PageId(le_u32(&cell[0..4]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let e = LeafEntry::new(vec![1, 2, 3], Rid::new(PageId(9), 4));
        let cell = e.encode();
        assert_eq!(LeafEntry::decode(&cell), e);
        assert_eq!(LeafEntry::decode_rid(&cell), e.rid);
        assert_eq!(LeafEntry::decode_mark(&cell), (false, TxnId::NONE));
    }

    #[test]
    fn mark_is_in_place() {
        let e = LeafEntry::new(vec![7; 10], Rid::new(PageId(1), 2));
        let cell = e.encode();
        let marked = LeafEntry::with_mark(&cell, true, TxnId(42));
        assert_eq!(marked.len(), cell.len(), "same size: in-place update ok");
        let d = LeafEntry::decode(&marked);
        assert!(d.deleted);
        assert_eq!(d.deleter, TxnId(42));
        assert_eq!(d.key_bytes, e.key_bytes);
        let unmarked = LeafEntry::with_mark(&marked, false, TxnId::NONE);
        assert_eq!(unmarked, cell, "unmark restores the original bytes");
    }

    #[test]
    fn internal_roundtrip() {
        let e = InternalEntry::new(PageId(5), vec![9, 9, 9]);
        let cell = e.encode();
        assert_eq!(InternalEntry::decode(&cell), e);
        assert_eq!(InternalEntry::decode_child(&cell), PageId(5));
    }

    #[test]
    fn empty_key_and_pred_are_legal() {
        let l = LeafEntry::new(vec![], Rid::new(PageId(1), 0));
        assert_eq!(LeafEntry::decode(&l.encode()), l);
        let i = InternalEntry::new(PageId(2), vec![]);
        assert_eq!(InternalEntry::decode(&i.encode()), i);
    }

    #[test]
    #[should_panic]
    fn truncated_leaf_cell_panics() {
        LeafEntry::decode(&[0, 1, 2]);
    }
}
