//! The typed index handle.

use std::collections::HashSet;
use std::sync::Arc;

use gist_pagestore::{PageId, SlotId};
use gist_predlock::NodeKey;

use crate::db::Db;
use crate::ext::GistExtension;
use crate::node;
use crate::{GistError, Result};

/// Options for index creation.
#[derive(Debug, Clone, Default)]
pub struct IndexOptions {
    /// Enforce key uniqueness (§8).
    pub unique: bool,
}

/// Whole-tree statistics (computed by a full sweep; diagnostic use).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Height (1 = root is a leaf).
    pub height: usize,
    /// Total nodes.
    pub nodes: usize,
    /// Leaf nodes.
    pub leaves: usize,
    /// Live (unmarked) leaf entries.
    pub live_entries: usize,
    /// Delete-marked leaf entries awaiting garbage collection.
    pub marked_entries: usize,
}

/// A GiST index specialized by an extension `E`.
pub struct GistIndex<E: GistExtension> {
    db: Arc<Db>,
    ext: E,
    id: u32,
    catalog_slot: SlotId,
    unique: bool,
    name: String,
}

impl<E: GistExtension> GistIndex<E> {
    /// Create a new index in `db`.
    pub fn create(db: Arc<Db>, name: &str, ext: E, opts: IndexOptions) -> Result<Arc<Self>> {
        let entry = db.create_index_raw(name, opts.unique)?;
        Ok(Self::finish_handle(db, ext, entry))
    }

    /// Open an existing index (e.g. after restart). The caller supplies
    /// the same extension the index was created with.
    pub fn open(db: Arc<Db>, name: &str, ext: E) -> Result<Arc<Self>> {
        let entry = db
            .open_index_raw(name)
            .ok_or_else(|| GistError::Config(format!("no index named {name:?}")))?;
        Ok(Self::finish_handle(db, ext, entry))
    }

    /// Build the handle and make it reachable from the maintenance
    /// daemon (weakly — dropping the handle retires its queued work).
    fn finish_handle(db: Arc<Db>, ext: E, entry: crate::db::CatalogEntry) -> Arc<Self> {
        let idx = Arc::new(GistIndex {
            db,
            ext,
            id: entry.id,
            catalog_slot: entry.slot,
            unique: entry.unique,
            name: entry.name,
        });
        let weak: std::sync::Weak<dyn gist_maint::MaintIndex> = Arc::downgrade(&idx) as _;
        idx.db.maint().register_index(weak);
        idx
    }

    /// The owning database.
    pub fn db(&self) -> &Arc<Db> {
        &self.db
    }

    /// The extension.
    pub fn ext(&self) -> &E {
        &self.ext
    }

    /// Index id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Index name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether this is a unique index.
    pub fn is_unique(&self) -> bool {
        self.unique
    }

    /// Catalog slot (stable handle to the root pointer).
    pub(crate) fn catalog_slot(&self) -> SlotId {
        self.catalog_slot
    }

    /// Current root page (read through the durable catalog cell so
    /// concurrent root splits are visible).
    pub fn root(&self) -> Result<PageId> {
        self.db.current_root(self.catalog_slot)
    }

    /// Predicate-manager key for one of this index's nodes.
    pub(crate) fn node_key(&self, page: PageId) -> NodeKey {
        (self.id, page)
    }

    // ---- BP helpers with the empty-BP convention ----
    // A zero-length BP cell means "covers nothing" (fresh empty root).

    /// Decode a BP cell (`None` = empty BP).
    pub(crate) fn decode_bp_opt(&self, bytes: &[u8]) -> Option<E::Pred> {
        if bytes.is_empty() {
            None
        } else {
            Some(self.ext.decode_pred(bytes))
        }
    }

    /// Encode an optional BP.
    pub(crate) fn encode_bp_opt(&self, pred: &Option<E::Pred>) -> Vec<u8> {
        match pred {
            None => Vec::new(),
            Some(p) => {
                let mut out = Vec::new();
                self.ext.encode_pred(p, &mut out);
                out
            }
        }
    }

    /// Expand an optional BP with a key.
    pub(crate) fn bp_union_key(&self, bp: &Option<E::Pred>, key: &E::Key) -> E::Pred {
        match bp {
            None => self.ext.key_pred(key),
            Some(p) => self.ext.union_pred_key(p, key),
        }
    }

    /// Expand an optional BP with a predicate.
    pub(crate) fn bp_union_pred(&self, bp: &Option<E::Pred>, p: &E::Pred) -> E::Pred {
        match bp {
            None => p.clone(),
            Some(b) => self.ext.union_preds(b, p),
        }
    }

    /// Whether an optional BP covers a predicate.
    #[allow(dead_code)]
    pub(crate) fn bp_covers(&self, bp: &Option<E::Pred>, inner: &E::Pred) -> bool {
        match bp {
            None => false,
            Some(b) => self.ext.pred_covers(b, inner),
        }
    }

    /// Whether an optional BP is consistent with a query (empty BP is
    /// consistent with nothing).
    #[allow(dead_code)]
    pub(crate) fn bp_consistent(&self, bp: &Option<E::Pred>, q: &E::Query) -> bool {
        match bp {
            None => false,
            Some(b) => self.ext.consistent_pred(b, q),
        }
    }

    /// Compute tree statistics with a full sweep (no isolation — a
    /// diagnostic snapshot). With `DbConfig::optimistic_reads` each
    /// node is copied out latch-free under a seqlock check, falling
    /// back to a latched read per node when its version word moves.
    pub fn stats(&self) -> Result<TreeStats> {
        /// Everything the sweep needs from one node, copied out so the
        /// latch (or optimistic guard) never outlives the visit.
        struct NodeSweep {
            available: bool,
            level: u16,
            rightlink: PageId,
            /// `(marked, live)` entry counts when the node is a leaf.
            leaf: Option<(usize, usize)>,
            children: Vec<PageId>,
        }
        let read_node = |p: &gist_pagestore::Page| {
            let available = p.is_available();
            let is_leaf = !available && p.is_leaf();
            NodeSweep {
                available,
                level: if available { 0 } else { p.level() },
                rightlink: p.rightlink(),
                leaf: is_leaf.then(|| {
                    let (mut marked, mut live) = (0, 0);
                    for (_, e) in node::leaf_entries(p) {
                        if e.deleted {
                            marked += 1;
                        } else {
                            live += 1;
                        }
                    }
                    (marked, live)
                }),
                children: if available || is_leaf {
                    Vec::new()
                } else {
                    node::internal_entries(p).into_iter().map(|(_, e)| e.child).collect()
                },
            }
        };

        let mut stats = TreeStats::default();
        let root = self.root()?;
        let mut queue = vec![root];
        let mut visited: HashSet<PageId> = HashSet::new();
        let mut max_level = 0u16;
        let optimistic = self.db.optimistic_enabled();
        // One pin for the whole sweep: freed-but-reachable pages stay
        // type-stable while we peek at them latch-free.
        let _pin = optimistic.then(|| self.db.epoch().pin());
        while let Some(pid) = queue.pop() {
            if pid.is_invalid() || !visited.insert(pid) {
                continue;
            }
            let mut copy = None;
            if optimistic {
                if let Some(og) = self.db.pool().fetch_optimistic(pid)? {
                    copy = og.read_with(read_node);
                }
            }
            let ns = match copy {
                Some(ns) => ns,
                None => {
                    // Version word moved (or the page is uncachable):
                    // one latched read settles this node.
                    let g = self.db.pool().fetch_read(pid)?;
                    read_node(&g)
                }
            };
            if ns.available {
                // Freed page still reachable via a dangling rightlink
                // (never followed by operations thanks to the NSN guard).
                continue;
            }
            stats.nodes += 1;
            max_level = max_level.max(ns.level);
            queue.push(ns.rightlink);
            if let Some((marked, live)) = ns.leaf {
                stats.leaves += 1;
                stats.marked_entries += marked;
                stats.live_entries += live;
            } else {
                queue.extend(ns.children);
            }
        }
        stats.height = max_level as usize + 1;
        Ok(stats)
    }
}
