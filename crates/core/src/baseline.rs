//! Baseline concurrency protocols for the experiment suite.
//!
//! [`SimpleTree`] is a standalone, unlogged GiST (same page/entry layout
//! as the real index, same extension interface) whose search/insert pick
//! a [`BaselineProtocol`]:
//!
//! - [`BaselineProtocol::TreeRwLock`] — the "simplest solution" §4
//!   dismisses: one tree-wide reader/writer lock.
//! - [`BaselineProtocol::FullPathX`] — conservative subtree latching in
//!   the spirit of \[BS77\]: updaters keep an X latch on the whole
//!   root-to-leaf path (with preemptive splits), readers latch-couple and
//!   hold ancestor latches while descending each subtree — including
//!   across I/Os, which experiment E6 quantifies.
//! - [`BaselineProtocol::NoLink`] — readers latch one node at a time but
//!   have **no split compensation**; this reproduces the lost-key anomaly
//!   of Figure 1 (writers remain safe FullPathX writers, so only reads
//!   are anomalous).
//! - [`BaselineProtocol::Link`] — the paper's protocol (NSN + rightlink,
//!   no coupling, latch-free I/O) stripped of logging and isolation, for
//!   apples-to-apples protocol benchmarks.
//!
//! The pure-predicate-locking baseline (§4.2) is not here: it is a mode
//! of the real index ([`crate::PredicateMode::PureGlobal`]).

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use gist_pagestore::{BufferPool, PageAllocator, PageId, PageReadGuard, PageWriteGuard, Rid};

use crate::entry::{InternalEntry, LeafEntry};
use crate::ext::GistExtension;
use crate::node;
use crate::{GistError, Result};

/// Which concurrency protocol a [`SimpleTree`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineProtocol {
    /// One tree-wide reader/writer lock.
    TreeRwLock,
    /// Subtree latching: X path for writers, coupled S for readers.
    FullPathX,
    /// Latch-per-node readers without link compensation (Figure 1's
    /// incorrect interleaving becomes observable).
    NoLink,
    /// The paper's link protocol (no isolation, no logging).
    Link,
}

/// A standalone unlogged GiST used for protocol comparisons.
pub struct SimpleTree<E: GistExtension> {
    pool: Arc<BufferPool>,
    alloc: Arc<PageAllocator>,
    ext: E,
    protocol: BaselineProtocol,
    root: Mutex<PageId>,
    tree_lock: RwLock<()>,
    nsn: AtomicU64,
    /// Rightlink chases performed by link-mode searches (E2 metric).
    pub link_chases: AtomicU64,
}

impl<E: GistExtension> SimpleTree<E> {
    /// Create an empty tree (allocates its root leaf).
    pub fn create(
        pool: Arc<BufferPool>,
        alloc: Arc<PageAllocator>,
        ext: E,
        protocol: BaselineProtocol,
    ) -> Result<Arc<Self>> {
        let root = alloc.allocate();
        let mut g = pool.new_page_write(root, 0)?;
        node::init_node(&mut g, &[]);
        g.set_available(false);
        g.mark_dirty_unlogged();
        drop(g);
        Ok(Arc::new(SimpleTree {
            pool,
            alloc,
            ext,
            protocol,
            root: Mutex::new(root),
            tree_lock: RwLock::new(()),
            nsn: AtomicU64::new(0),
            link_chases: AtomicU64::new(0),
        }))
    }

    /// The extension.
    pub fn ext(&self) -> &E {
        &self.ext
    }

    /// The buffer pool (experiments inspect pages directly).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Current root page.
    pub fn root(&self) -> PageId {
        *self.root.lock()
    }

    fn decode_bp(&self, bytes: &[u8]) -> Option<E::Pred> {
        if bytes.is_empty() {
            None
        } else {
            Some(self.ext.decode_pred(bytes))
        }
    }

    fn encode_pred(&self, p: &E::Pred) -> Vec<u8> {
        let mut out = Vec::new();
        self.ext.encode_pred(p, &mut out);
        out
    }

    // ---------------- search ----------------

    /// SEARCH under the configured protocol.
    pub fn search(&self, query: &E::Query) -> Result<Vec<(E::Key, Rid)>> {
        // Baseline protocols exist to *measure* what the §5 disciplines
        // cost; latch coupling and whole-path latching deliberately break
        // them, so the audit scope is fully permissive here.
        let _scope = crate::audit::enter_scope("baseline-protocol", usize::MAX, true, true);
        match self.protocol {
            BaselineProtocol::TreeRwLock => {
                let _g = self.tree_lock.read();
                self.search_nolink(query)
            }
            BaselineProtocol::FullPathX => self.search_coupling(query),
            BaselineProtocol::NoLink => self.search_nolink(query),
            BaselineProtocol::Link => self.search_link(query),
        }
    }

    /// Latch-per-node traversal with no split compensation (anomalous
    /// under concurrent splits — Figure 1).
    fn search_nolink(&self, query: &E::Query) -> Result<Vec<(E::Key, Rid)>> {
        let mut out = Vec::new();
        let mut stack = vec![self.root()];
        while let Some(pid) = stack.pop() {
            let g = self.pool.fetch_read(pid)?;
            self.scan_node(&g, query, &mut out, &mut stack, None)?;
        }
        Ok(out)
    }

    /// §3 protocol: memorize the counter, chase rightlinks on NSN
    /// mismatch, one latch at a time.
    fn search_link(&self, query: &E::Query) -> Result<Vec<(E::Key, Rid)>> {
        let mut out = Vec::new();
        let mut seen: HashSet<Rid> = HashSet::new();
        let mut stack = vec![(self.root(), self.nsn.load(Ordering::SeqCst))];
        while let Some((pid, mem)) = stack.pop() {
            if pid.is_invalid() {
                continue;
            }
            let g = self.pool.fetch_read(pid)?;
            if g.nsn() > mem {
                self.link_chases.fetch_add(1, Ordering::Relaxed);
                stack.push((g.rightlink(), mem));
            }
            if g.is_leaf() {
                for (_, cell) in node::entry_cells(&g) {
                    let e = LeafEntry::decode(cell);
                    let key = self.ext.decode_key(&e.key_bytes);
                    if self.ext.consistent_key(&key, query) && seen.insert(e.rid) {
                        out.push((key, e.rid));
                    }
                }
            } else {
                let mem_child = self.nsn.load(Ordering::SeqCst);
                for (_, e) in node::internal_entries(&g) {
                    let pred = self.ext.decode_pred(&e.pred_bytes);
                    if self.ext.consistent_pred(&pred, query) {
                        stack.push((e.child, mem_child));
                    }
                }
            }
        }
        Ok(out)
    }

    /// Subtree traversal holding every ancestor latch (including across
    /// child I/Os) — §11's sketch of what latch-coupling would mean for a
    /// non-partitioning tree.
    fn search_coupling(&self, query: &E::Query) -> Result<Vec<(E::Key, Rid)>> {
        fn visit<E: GistExtension>(
            tree: &SimpleTree<E>,
            g: &PageReadGuard,
            query: &E::Query,
            out: &mut Vec<(E::Key, Rid)>,
        ) -> Result<()> {
            if g.is_leaf() {
                for (_, cell) in node::entry_cells(g) {
                    let e = LeafEntry::decode(cell);
                    let key = tree.ext.decode_key(&e.key_bytes);
                    if tree.ext.consistent_key(&key, query) {
                        out.push((key, e.rid));
                    }
                }
            } else {
                for (_, e) in node::internal_entries(g) {
                    let pred = tree.ext.decode_pred(&e.pred_bytes);
                    if tree.ext.consistent_pred(&pred, query) {
                        // Parent latch deliberately held across this I/O.
                        let child = tree.pool.fetch_read(e.child)?;
                        visit(tree, &child, query, out)?;
                    }
                }
            }
            Ok(())
        }
        let mut out = Vec::new();
        loop {
            let root = self.root();
            let g = self.pool.fetch_read(root)?;
            if self.root() != root {
                continue; // root split raced the latch
            }
            visit(self, &g, query, &mut out)?;
            return Ok(out);
        }
    }

    fn scan_node(
        &self,
        g: &PageReadGuard,
        query: &E::Query,
        out: &mut Vec<(E::Key, Rid)>,
        stack: &mut Vec<PageId>,
        _mem: Option<u64>,
    ) -> Result<()> {
        if g.is_leaf() {
            for (_, cell) in node::entry_cells(g) {
                let e = LeafEntry::decode(cell);
                let key = self.ext.decode_key(&e.key_bytes);
                if self.ext.consistent_key(&key, query) {
                    out.push((key, e.rid));
                }
            }
        } else {
            for (_, e) in node::internal_entries(g) {
                let pred = self.ext.decode_pred(&e.pred_bytes);
                if self.ext.consistent_pred(&pred, query) {
                    stack.push(e.child);
                }
            }
        }
        Ok(())
    }

    // ---------------- insert ----------------

    /// INSERT under the configured protocol.
    pub fn insert(&self, key: &E::Key, rid: Rid) -> Result<()> {
        // See `search`: baseline protocols are exempt by design.
        let _scope = crate::audit::enter_scope("baseline-protocol", usize::MAX, true, true);
        match self.protocol {
            BaselineProtocol::TreeRwLock => {
                let _g = self.tree_lock.write();
                self.insert_fullpath(key, rid)
            }
            BaselineProtocol::FullPathX | BaselineProtocol::NoLink => {
                self.insert_fullpath(key, rid)
            }
            BaselineProtocol::Link => self.insert_link(key, rid),
        }
    }

    /// Writer that X-latches the whole descent path, splitting full
    /// nodes preemptively on the way down (the parent always has room by
    /// induction).
    fn insert_fullpath(&self, key: &E::Key, rid: Rid) -> Result<()> {
        let mut kb = Vec::new();
        self.ext.encode_key(key, &mut kb);
        let cell = LeafEntry::new(kb, rid).encode();
        let slack = cell.len() + 64;
        'restart: loop {
            let root_pid = self.root();
            let g = self.pool.fetch_write(root_pid)?;
            if self.root() != root_pid {
                continue 'restart;
            }
            // Preemptive root split.
            if g.free_for_insert() < slack && node::entry_count(&g) >= 2 {
                self.split_root(g)?;
                continue 'restart;
            }
            let mut path: Vec<PageWriteGuard> = vec![g];
            loop {
                let Some(cur) = path.last() else {
                    unreachable!("path starts at the root")
                };
                if cur.is_leaf() {
                    break;
                }
                let (slot, entry) = self.min_penalty(cur, key)?;
                let child = self.pool.fetch_write(entry.child)?;
                if child.free_for_insert() < slack && node::entry_count(&child) >= 2 {
                    // Split the child; the parent has room by induction.
                    let parent_idx = path.len() - 1;
                    self.split_child(&mut path[parent_idx], child, slot)?;
                    continue; // re-pick the branch
                }
                path.push(child);
            }
            // Insert at the leaf and expand BPs along the held path.
            let leaf_idx = path.len() - 1;
            path[leaf_idx]
                .insert_cell(&cell)
                .unwrap_or_else(|e| unreachable!("preemptive split guarantees room: {e}"));
            path[leaf_idx].mark_dirty_unlogged();
            self.expand_bps(&mut path, key)?;
            return Ok(());
        }
    }

    /// The link-protocol writer: no coupling, X latch only at the leaf,
    /// NSN/rightlink maintenance on split.
    fn insert_link(&self, key: &E::Key, rid: Rid) -> Result<()> {
        let mut kb = Vec::new();
        self.ext.encode_key(key, &mut kb);
        let cell = LeafEntry::new(kb, rid).encode();
        let slack = cell.len() + 64;
        'restart: loop {
            // Descend without coupling, remembering the path.
            let mut mem = self.nsn.load(Ordering::SeqCst);
            let mut pids: Vec<PageId> = Vec::new();
            let mut cur = self.root();
            let leaf = loop {
                let g = self.pool.fetch_read(cur)?;
                if g.nsn() > mem {
                    let next = g.rightlink();
                    drop(g);
                    self.link_chases.fetch_add(1, Ordering::Relaxed);
                    cur = next;
                    continue;
                }
                if g.is_leaf() {
                    drop(g);
                    let w = self.pool.fetch_write(cur)?;
                    if w.nsn() > mem {
                        drop(w);
                        continue;
                    }
                    break w;
                }
                pids.push(cur);
                let (_, entry) = self.min_penalty(&g, key)?;
                mem = self.nsn.load(Ordering::SeqCst);
                drop(g);
                cur = entry.child;
            };
            if leaf.free_for_insert() < slack && node::entry_count(&leaf) >= 2 {
                // Split via the conservative path (simplest correct
                // fallback: restart with a full-path writer). The link
                // benefit being measured is reader/writer I/O overlap;
                // split frequency is low.
                drop(leaf);
                self.insert_fullpath(key, rid)?;
                return Ok(());
            }
            let mut leaf = leaf;
            leaf.insert_cell(&cell)
                .unwrap_or_else(|e| unreachable!("room was checked: {e}"));
            leaf.mark_dirty_unlogged();
            // Expand BPs bottom-up by re-latching ancestors (walking
            // rightlinks if they split meanwhile).
            let mut child_pid = leaf.page_id();
            let mut child_bp = {
                let bp = self.decode_bp(node::bp_bytes(&leaf));
                let union = match &bp {
                    None => self.ext.key_pred(key),
                    Some(b) => self.ext.union_pred_key(b, key),
                };
                if bp.as_ref() == Some(&union) {
                    drop(leaf);
                    return Ok(());
                }
                let bytes = self.encode_pred(&union);
                if node::set_bp(&mut leaf, &bytes).is_err() {
                    drop(leaf);
                    continue 'restart;
                }
                leaf.mark_dirty_unlogged();
                drop(leaf);
                union
            };
            for &anc in pids.iter().rev() {
                let mut pid = anc;
                let mut g = loop {
                    let g = self.pool.fetch_write(pid)?;
                    if node::find_child_entry(&g, child_pid).is_some() {
                        break g;
                    }
                    let next = g.rightlink();
                    drop(g);
                    if next.is_invalid() {
                        continue 'restart;
                    }
                    pid = next;
                };
                let (slot, _) = node::find_child_entry(&g, child_pid)
                    .unwrap_or_else(|| unreachable!("child entry present: parent latched"));
                let cellb = InternalEntry::new(child_pid, self.encode_pred(&child_bp)).encode();
                if g.update_cell(slot, &cellb).is_err() {
                    continue 'restart;
                }
                let own = self.decode_bp(node::bp_bytes(&g));
                let union = match &own {
                    None => child_bp.clone(),
                    Some(b) => self.ext.union_preds(b, &child_bp),
                };
                let done = own.as_ref() == Some(&union);
                let bytes = self.encode_pred(&union);
                if node::set_bp(&mut g, &bytes).is_err() {
                    continue 'restart;
                }
                g.mark_dirty_unlogged();
                child_pid = g.page_id();
                child_bp = union;
                drop(g);
                if done {
                    break;
                }
            }
            return Ok(());
        }
    }

    fn min_penalty(
        &self,
        page: &gist_pagestore::Page,
        key: &E::Key,
    ) -> Result<(u16, InternalEntry)> {
        let mut best: Option<(f64, u16, InternalEntry)> = None;
        for (slot, e) in node::internal_entries(page) {
            let pred = self.ext.decode_pred(&e.pred_bytes);
            let pen = self.ext.penalty(&pred, key);
            match &best {
                Some((b, _, _)) if *b <= pen => {}
                _ => best = Some((pen, slot, e)),
            }
        }
        best.map(|(_, s, e)| (s, e))
            .ok_or_else(|| GistError::Corrupt("empty internal node".into()))
    }

    /// Split `child` (X-latched) into itself plus a new right sibling;
    /// install the sibling's entry in the (held, roomy) parent.
    fn split_child(
        &self,
        parent: &mut PageWriteGuard,
        mut child: PageWriteGuard,
        child_slot: u16,
    ) -> Result<()> {
        let (moved, left_bp, right_bp) = self.partition(&child)?;
        let new_pid = self.alloc.allocate();
        let mut new_g = self.pool.new_page_write(new_pid, child.level())?;
        node::init_node(&mut new_g, &self.encode_pred(&right_bp));
        new_g.set_available(false);
        for (_, cell) in &moved {
            new_g
                .insert_cell(cell)
                .unwrap_or_else(|e| unreachable!("moved cells fit on a fresh page: {e}"));
        }
        for (slot, _) in &moved {
            child.delete_cell(*slot);
        }
        let left_bytes = self.encode_pred(&left_bp);
        node::set_bp(&mut child, &left_bytes)
            .unwrap_or_else(|e| unreachable!("shrunk BP fits: {e}"));
        // Link maintenance (kept in every protocol so trees stay
        // structurally comparable).
        new_g.set_nsn(child.nsn());
        new_g.set_rightlink(child.rightlink());
        child.set_nsn(self.nsn.fetch_add(1, Ordering::SeqCst) + 1);
        child.set_rightlink(new_pid);
        child.mark_dirty_unlogged();
        new_g.mark_dirty_unlogged();
        // Parent entries.
        let upd = InternalEntry::new(child.page_id(), left_bytes).encode();
        parent
            .update_cell(child_slot, &upd)
            .unwrap_or_else(|e| unreachable!("parent kept roomy by preemptive splits: {e}"));
        let add = InternalEntry::new(new_pid, self.encode_pred(&right_bp)).encode();
        parent
            .insert_cell(&add)
            .unwrap_or_else(|e| unreachable!("parent kept roomy by preemptive splits: {e}"));
        parent.mark_dirty_unlogged();
        Ok(())
    }

    /// Split the root (X-latched) by allocating two children and keeping
    /// the tree's root pointer fresh.
    fn split_root(&self, mut root_g: PageWriteGuard) -> Result<()> {
        let (moved, left_bp, right_bp) = self.partition(&root_g)?;
        let level = root_g.level();
        let right_pid = self.alloc.allocate();
        let mut right = self.pool.new_page_write(right_pid, level)?;
        node::init_node(&mut right, &self.encode_pred(&right_bp));
        right.set_available(false);
        for (_, cell) in &moved {
            right
                .insert_cell(cell)
                .unwrap_or_else(|e| unreachable!("moved cells fit on a fresh page: {e}"));
        }
        for (slot, _) in &moved {
            root_g.delete_cell(*slot);
        }
        let left_bytes = self.encode_pred(&left_bp);
        node::set_bp(&mut root_g, &left_bytes)
            .unwrap_or_else(|e| unreachable!("shrunk BP fits: {e}"));
        right.set_nsn(root_g.nsn());
        right.set_rightlink(root_g.rightlink());
        root_g.set_nsn(self.nsn.fetch_add(1, Ordering::SeqCst) + 1);
        root_g.set_rightlink(right_pid);
        root_g.mark_dirty_unlogged();
        right.mark_dirty_unlogged();
        // New root above both.
        let new_root_pid = self.alloc.allocate();
        let mut new_root = self.pool.new_page_write(new_root_pid, level + 1)?;
        let root_bp = self.ext.union_preds(&left_bp, &right_bp);
        node::init_node(&mut new_root, &self.encode_pred(&root_bp));
        new_root.set_available(false);
        new_root
            .insert_cell(&InternalEntry::new(root_g.page_id(), left_bytes).encode())
            .unwrap_or_else(|e| unreachable!("two entries fit on a fresh root: {e}"));
        new_root
            .insert_cell(
                &InternalEntry::new(right_pid, self.encode_pred(&right_bp)).encode(),
            )
            .unwrap_or_else(|e| unreachable!("two entries fit on a fresh root: {e}"));
        new_root.mark_dirty_unlogged();
        *self.root.lock() = new_root_pid;
        Ok(())
    }

    /// pick_split a node's entries; returns (moved cells, left BP,
    /// right BP).
    #[allow(clippy::type_complexity)]
    fn partition(
        &self,
        g: &gist_pagestore::Page,
    ) -> Result<(Vec<(u16, Vec<u8>)>, E::Pred, E::Pred)> {
        let entries: Vec<(u16, Vec<u8>)> =
            node::entry_cells(g).map(|(s, c)| (s, c.to_vec())).collect();
        let preds: Vec<E::Pred> = entries
            .iter()
            .map(|(_, cell)| {
                if g.is_leaf() {
                    self.ext.key_pred(&self.ext.decode_key(&LeafEntry::decode(cell).key_bytes))
                } else {
                    self.ext.decode_pred(&InternalEntry::decode(cell).pred_bytes)
                }
            })
            .collect();
        let d = self.ext.pick_split(&preds);
        let left: Vec<E::Pred> = d.left.iter().map(|&i| preds[i].clone()).collect();
        let right: Vec<E::Pred> = d.right.iter().map(|&i| preds[i].clone()).collect();
        let moved: Vec<(u16, Vec<u8>)> = d.right.iter().map(|&i| entries[i].clone()).collect();
        Ok((moved, self.ext.union_many(&left), self.ext.union_many(&right)))
    }

    /// Expand BPs along a fully latched path after a leaf insert.
    fn expand_bps(&self, path: &mut [PageWriteGuard], key: &E::Key) -> Result<()> {
        // Bottom-up: compute each node's new BP, then fix the parent
        // entry (parent is the previous element and still latched).
        let mut child_bp: Option<E::Pred> = None;
        for i in (0..path.len()).rev() {
            let own = self.decode_bp(node::bp_bytes(&path[i]));
            let mut union = match &own {
                None => self.ext.key_pred(key),
                Some(b) => self.ext.union_pred_key(b, key),
            };
            if let Some(cb) = &child_bp {
                union = self.ext.union_preds(&union, cb);
            }
            if own.as_ref() == Some(&union) {
                return Ok(()); // covered: ancestors are too
            }
            let bytes = self.encode_pred(&union);
            node::set_bp(&mut path[i], &bytes)
                .map_err(|e| GistError::Corrupt(format!("BP overflow: {e}")))?;
            path[i].mark_dirty_unlogged();
            if i > 0 {
                let child_pid = path[i].page_id();
                let (slot, _) = node::find_child_entry(&path[i - 1], child_pid)
                    .unwrap_or_else(|| unreachable!("entry present: path latched"));
                let cell = InternalEntry::new(child_pid, bytes).encode();
                path[i - 1]
                    .update_cell(slot, &cell)
                    .map_err(|e| GistError::Corrupt(format!("entry overflow: {e}")))?;
                path[i - 1].mark_dirty_unlogged();
            }
            child_bp = Some(union);
        }
        Ok(())
    }
}
