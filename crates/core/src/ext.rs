//! The GiST extension interface (\[HNP95\] §2 of the paper).
//!
//! "A GiST can be specialized to any particular tree-based access method
//! by letting the implementor provide a small number of extension methods
//! which customize the behavior of the tree with respect to the data type
//! and query." The paper's concurrency and recovery machinery calls only
//! these methods — never the key semantics directly — which is what makes
//! the protocols generic.
//!
//! Three associated types:
//! - `Key`: what leaf entries store,
//! - `Pred`: bounding predicates (BPs) in internal entries and node
//!   headers,
//! - `Query`: search predicates.
//!
//! Keys, predicates and queries are serialized with hand-written codecs so
//! they can live on pages, in log records and in the predicate manager.

use std::fmt::Debug;

/// How `pick_split` distributed entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitDecision {
    /// Indexes (into the input slice) that stay on the original node.
    pub left: Vec<usize>,
    /// Indexes that move to the new right sibling.
    pub right: Vec<usize>,
}

/// Extension methods specializing the GiST to an access method.
///
/// Implementations must be cheap to clone conceptually (they are stored
/// behind the index handle and shared across threads).
pub trait GistExtension: Send + Sync + 'static {
    /// Leaf key type.
    type Key: Clone + Debug + Send + Sync;
    /// Bounding-predicate type.
    type Pred: Clone + Debug + PartialEq + Send + Sync;
    /// Search-predicate type.
    type Query: Clone + Debug + Send + Sync;

    // ---- codecs ----

    /// Serialize a key.
    fn encode_key(&self, key: &Self::Key, out: &mut Vec<u8>);
    /// Deserialize a key (input produced by [`encode_key`](Self::encode_key)).
    fn decode_key(&self, bytes: &[u8]) -> Self::Key;
    /// Serialize a bounding predicate.
    fn encode_pred(&self, pred: &Self::Pred, out: &mut Vec<u8>);
    /// Deserialize a bounding predicate.
    fn decode_pred(&self, bytes: &[u8]) -> Self::Pred;
    /// Serialize a query.
    fn encode_query(&self, query: &Self::Query, out: &mut Vec<u8>);
    /// Deserialize a query.
    fn decode_query(&self, bytes: &[u8]) -> Self::Query;

    // ---- the \[HNP95\] extension methods ----

    /// `consistent()` for internal entries: can the subtree bounded by
    /// `pred` contain keys satisfying `query`?
    fn consistent_pred(&self, pred: &Self::Pred, query: &Self::Query) -> bool;

    /// `consistent()` for leaf entries: does `key` satisfy `query`?
    fn consistent_key(&self, key: &Self::Key, query: &Self::Query) -> bool;

    /// Exact key equality (delete and unique-insert target tests).
    fn key_equal(&self, a: &Self::Key, b: &Self::Key) -> bool;

    /// The "`= key`" query of §8, used to locate a key for deletion and to
    /// probe (and predicate-lock) unique-index insertions.
    fn eq_query(&self, key: &Self::Key) -> Self::Query;

    /// The minimal predicate containing exactly `key` (lifts a key into
    /// predicate space; used to run `pick_split` over leaf entries).
    fn key_pred(&self, key: &Self::Key) -> Self::Pred;

    /// `union()`: smallest predicate covering both arguments.
    fn union_preds(&self, a: &Self::Pred, b: &Self::Pred) -> Self::Pred;

    /// Whether `outer` covers `inner` (no expansion needed). Must agree
    /// with `union_preds`: `pred_covers(o, i)` ⇔ `union_preds(o, i) == o`.
    fn pred_covers(&self, outer: &Self::Pred, inner: &Self::Pred) -> bool;

    /// `penalty()`: domain-specific cost of inserting a key under `pred`
    /// ("typically reflects how much the predicate has to be expanded").
    /// Lower is better.
    fn penalty(&self, pred: &Self::Pred, key: &Self::Key) -> f64;

    /// `pickSplit()`: distribute `preds` (one per entry) over the
    /// original node and a new right sibling. Both sides must be
    /// non-empty and together cover every index exactly once.
    fn pick_split(&self, preds: &[Self::Pred]) -> SplitDecision;

    // ---- derived helpers (override for speed) ----

    /// Union of a non-empty slice of predicates.
    fn union_many(&self, preds: &[Self::Pred]) -> Self::Pred {
        let mut acc = preds[0].clone();
        for p in &preds[1..] {
            acc = self.union_preds(&acc, p);
        }
        acc
    }

    /// Expand `pred` to cover `key`.
    fn union_pred_key(&self, pred: &Self::Pred, key: &Self::Key) -> Self::Pred {
        self.union_preds(pred, &self.key_pred(key))
    }

    /// Whether `pred` already covers `key`.
    fn pred_covers_key(&self, pred: &Self::Pred, key: &Self::Key) -> bool {
        self.pred_covers(pred, &self.key_pred(key))
    }

    /// Conflict test between an encoded scan predicate and an encoded key
    /// — the single `consistent()` the predicate manager needs (§6: the
    /// same user-supplied function used for navigation detects conflicting
    /// predicates).
    fn query_conflicts_key_bytes(&self, query_bytes: &[u8], key_bytes: &[u8]) -> bool {
        let q = self.decode_query(query_bytes);
        let k = self.decode_key(key_bytes);
        self.consistent_key(&k, &q)
    }

    /// Conflict test between an encoded scan predicate and a decoded BP
    /// (predicate replication at splits and percolation).
    fn query_bytes_consistent_pred(&self, query_bytes: &[u8], pred: &Self::Pred) -> bool {
        let q = self.decode_query(query_bytes);
        self.consistent_pred(pred, &q)
    }

    /// Conflict test between an encoded insert-predicate key and a BP.
    fn key_bytes_within_pred(&self, key_bytes: &[u8], pred: &Self::Pred) -> bool {
        let k = self.decode_key(key_bytes);
        self.pred_covers_key(pred, &k)
    }
}

/// A linear-split `pick_split` helper usable by extensions: sorts by a
/// caller-provided centroid measure and cuts in the middle. Guarantees
/// both sides non-empty for inputs of length ≥ 2.
pub fn median_split<T, F: Fn(&T) -> f64>(items: &[T], measure: F) -> SplitDecision {
    assert!(items.len() >= 2, "cannot split fewer than 2 entries");
    let mut idx: Vec<usize> = (0..items.len()).collect();
    idx.sort_by(|&a, &b| {
        measure(&items[a]).partial_cmp(&measure(&items[b])).unwrap_or(std::cmp::Ordering::Equal)
    });
    let cut = items.len() / 2;
    SplitDecision { left: idx[..cut].to_vec(), right: idx[cut..].to_vec() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_split_partitions() {
        let items = vec![5.0, 1.0, 9.0, 3.0];
        let d = median_split(&items, |x| *x);
        assert_eq!(d.left.len() + d.right.len(), 4);
        let mut all: Vec<usize> = d.left.iter().chain(d.right.iter()).copied().collect();
        all.sort();
        assert_eq!(all, vec![0, 1, 2, 3]);
        // Every left measure ≤ every right measure.
        for &l in &d.left {
            for &r in &d.right {
                assert!(items[l] <= items[r]);
            }
        }
    }

    #[test]
    #[should_panic]
    fn median_split_rejects_singletons() {
        median_split(&[1.0], |x| *x);
    }
}
