//! Error type for GiST operations.

use std::fmt;
use std::io;

use gist_lockmgr::LockError;
use gist_txn::TxnError;

/// Errors surfaced by index operations.
#[derive(Debug)]
pub enum GistError {
    /// Page store / buffer pool I/O failure.
    Io(io::Error),
    /// Lock request failed (deadlock victim or timeout). The caller
    /// should abort the transaction and may retry it.
    Lock(LockError),
    /// Transaction-manager error.
    Txn(TxnError),
    /// §8: the inserted key already exists in a unique index. The
    /// duplicate's data record is S-locked, making the error repeatable
    /// under Degree 3.
    UniqueViolation,
    /// Delete target not found.
    NotFound,
    /// Log or page content failed to decode (corruption).
    Corrupt(String),
    /// Restart recovery failed.
    Recovery(String),
    /// Invalid configuration or usage.
    Config(String),
    /// The storage layer suffered a persistent (non-transient) write or
    /// sync failure and the buffer pool has degraded to read-only.
    /// Reads of cached and intact pages still work; every mutation is
    /// refused with this error until the database is restarted against
    /// healthy storage.
    StorageFailed(String),
    /// A chaos crash point injected this failure (`chaos` feature only).
    /// Deliberately *not* retryable: the harness decides what happens
    /// next, not the retry loop.
    Injected(&'static str),
    /// An operation panicked and was contained by the `Db`-level
    /// `catch_unwind` wrapper; the transaction was aborted. Carries the
    /// panic payload's message.
    Panicked(String),
    /// The admission controller shed this transaction: the in-flight
    /// credit pool stayed exhausted past the admission deadline. No
    /// transaction was started and no state changed — backing off and
    /// retrying (as [`Db::run_txn`](crate::Db::run_txn) does) is always
    /// safe.
    Overloaded,
}

impl fmt::Display for GistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GistError::Io(e) => write!(f, "io error: {e}"),
            GistError::Lock(e) => write!(f, "{e}"),
            GistError::Txn(e) => write!(f, "{e}"),
            GistError::UniqueViolation => write!(f, "unique constraint violated"),
            GistError::NotFound => write!(f, "key/RID pair not found"),
            GistError::Corrupt(s) => write!(f, "corruption: {s}"),
            GistError::Recovery(s) => write!(f, "recovery error: {s}"),
            GistError::Config(s) => write!(f, "configuration error: {s}"),
            GistError::StorageFailed(s) => {
                write!(f, "storage failed, database is read-only: {s}")
            }
            GistError::Injected(p) => write!(f, "chaos injection at crash point {p:?}"),
            GistError::Panicked(msg) => {
                write!(f, "operation panicked (transaction aborted): {msg}")
            }
            GistError::Overloaded => {
                write!(f, "admission shed: too many transactions in flight")
            }
        }
    }
}

impl std::error::Error for GistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GistError::Io(e) => Some(e),
            GistError::Lock(e) => Some(e),
            GistError::Txn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GistError {
    fn from(e: io::Error) -> Self {
        // The buffer pool marks its poisoned-state refusals with a typed
        // payload; surface those as the dedicated read-only error so
        // callers can tell "this request failed" from "the database has
        // degraded".
        if gist_pagestore::is_storage_poisoned(&e) {
            return GistError::StorageFailed(e.to_string());
        }
        GistError::Io(e)
    }
}

impl From<LockError> for GistError {
    fn from(e: LockError) -> Self {
        GistError::Lock(e)
    }
}

impl From<TxnError> for GistError {
    fn from(e: TxnError) -> Self {
        GistError::Txn(e)
    }
}

impl GistError {
    /// Whether this error means "abort and retry the transaction":
    /// deadlock victims (per §8's resolution of unique-insert races),
    /// lock timeouts (documented as a deadlock-detector safety net, so
    /// they get the same treatment), and watchdog aborts (the
    /// transaction was torn down for idling; a fresh attempt starts with
    /// a clean idle clock). [`Db::run_txn`](crate::Db::run_txn)
    /// automates the abort-and-retry loop for exactly this set.
    pub fn is_retryable(&self) -> bool {
        match self {
            GistError::Lock(e) | GistError::Txn(TxnError::Lock(e)) => {
                matches!(e, LockError::Deadlock | LockError::Timeout)
            }
            GistError::Txn(TxnError::AbortedByWatchdog(_)) => true,
            // A shed admission never started a transaction, so a backed-
            // off retry is trivially safe — that is the whole shed path.
            GistError::Overloaded => true,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_classification() {
        use gist_wal::TxnId;
        assert!(GistError::Lock(LockError::Deadlock).is_retryable());
        assert!(GistError::Txn(TxnError::Lock(LockError::Deadlock)).is_retryable());
        // Timeouts are the deadlock detector's safety net: same verdict.
        assert!(GistError::Lock(LockError::Timeout).is_retryable());
        assert!(GistError::Txn(TxnError::Lock(LockError::Timeout)).is_retryable());
        // A watchdog abort tore down an idle transaction; retry is safe.
        assert!(GistError::Txn(TxnError::AbortedByWatchdog(TxnId(7))).is_retryable());
        // A shed admission started nothing; retry through the backoff.
        assert!(GistError::Overloaded.is_retryable());
        // Poisoned and injected failures must reach the caller as-is.
        assert!(!GistError::Txn(TxnError::MustAbort(TxnId(7))).is_retryable());
        assert!(!GistError::Injected("delete.after_mark").is_retryable());
        assert!(!GistError::Panicked("boom".into()).is_retryable());
        assert!(!GistError::UniqueViolation.is_retryable());
        assert!(!GistError::NotFound.is_retryable());
    }

    #[test]
    fn display_is_informative() {
        let e = GistError::Corrupt("bad cell".into());
        assert!(e.to_string().contains("bad cell"));
    }

    #[test]
    fn poisoned_io_errors_map_to_storage_failed() {
        let plain = io::Error::new(io::ErrorKind::BrokenPipe, "disk gone");
        assert!(matches!(GistError::from(plain), GistError::Io(_)));
        let poisoned = io::Error::other(gist_pagestore::StoragePoisoned {
            reason: "write of page 3 failed".into(),
        });
        let mapped = GistError::from(poisoned);
        assert!(matches!(mapped, GistError::StorageFailed(_)), "{mapped}");
        assert!(mapped.to_string().contains("read-only"));
        assert!(!mapped.is_retryable());
    }
}
