//! The database façade: wires the buffer pool, WAL, lock manager,
//! predicate manager, transaction manager and page allocator together,
//! owns the index catalog, and implements the database-wide
//! [`RecoveryHandler`] for the Table 1 record set.
//!
//! One handler serves every index regardless of key type because all redo
//! and undo actions are byte/page-oriented (see [`crate::logrec`]); the
//! only "logical" part — locating a leaf entry that later splits moved
//! rightward (§9.2) — needs nothing but RID comparison and link walking.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use gist_epoch::EpochGc;
use gist_lockmgr::LockManager;
use gist_overload::{AdmissionConfig, AdmissionController, AdmissionStats, HealthReport, HealthState};
use gist_maint::{MaintDaemon, MaintStatsSnapshot};
use gist_pagestore::{
    BufferPool, HeapFile, PageAllocator, PageId, PageStore, PageWriteGuard, Rid, SlotId,
};
use gist_predlock::PredicateManager;
use gist_txn::{Durability, GcSink, SavepointId, TxnEndObserver, TxnManager, TxnOptions};
use gist_wal::recovery::{RecoveryError, RecoveryHandler};
use gist_wal::{LogManager, LogRecord, Lsn, Payload, RecordBody, TxnId};

use crate::entry::LeafEntry;
use crate::logrec::GistRecord;
use crate::{GistError, Result};

/// Where node sequence numbers come from (§10.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NsnSource {
    /// A dedicated tree-global counter, incremented per split. Must be
    /// recovered at restart (we rebuild it from the redo pass).
    DedicatedCounter,
    /// The paper's optimization: LSNs double as NSNs — the split's log
    /// record LSN becomes the node's new NSN, making the counter
    /// recoverable "without having to write any log records".
    WalLsn,
}

/// Transactional isolation degree for index operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsolationLevel {
    /// Degree 3 (§4): hybrid record + predicate locking; phantom-free.
    RepeatableRead,
    /// Degree 2 (cursor stability / read committed): writers still 2PL
    /// their record locks (so scans never see uncommitted inserts or
    /// deletes), but scans release each record's S lock as soon as the
    /// entry is delivered and attach no predicates — a re-scan may see
    /// phantoms. The paper targets Degree 3; this level exists because
    /// "the access method should support the degrees of transactional
    /// isolation offered by the query language of the DBMS" (§1).
    ReadCommitted,
    /// Latch-only operation: no record locks, no predicates. Structurally
    /// safe (the link protocol still applies) but no isolation — used by
    /// the protocol benchmarks to isolate concurrency-control costs.
    Latching,
}

/// Which phantom-avoidance mechanism scans/inserts use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredicateMode {
    /// §4.3: predicates attached to visited nodes; inserts check only
    /// their target leaf's list.
    Hybrid,
    /// §4.2 baseline: one tree-global predicate list, checked before any
    /// traversal.
    PureGlobal,
}

/// Database configuration.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Buffer-pool frames.
    pub pool_capacity: usize,
    /// NSN source (§10.1).
    pub nsn_source: NsnSource,
    /// Isolation degree.
    pub isolation: IsolationLevel,
    /// Phantom-avoidance mechanism.
    pub predicate_mode: PredicateMode,
    /// Lock-wait timeout (safety net).
    pub lock_timeout: Duration,
    /// With [`NsnSource::WalLsn`]: memorize the parent page's LSN instead
    /// of reading the log manager's counter when descending (§10.1's
    /// second optimization, which relieves the high-frequency counter).
    pub memorize_parent_lsn: bool,
    /// Maintenance-daemon tuning (deferred GC, drain, checkpoints).
    pub maint: gist_maint::MaintConfig,
    /// Shard count for the hot-path synchronization tables (buffer-pool
    /// frame table, lock-manager queues, predicate node tables). Rounded
    /// up to a power of two; `0` picks `next_pow2(2 × cores)`. `1`
    /// reproduces the pre-sharding global-mutex behavior. The NSN counter
    /// stays global regardless — §3's correctness argument needs one
    /// totally-ordered sequence-number source per tree.
    pub sync_shards: usize,
    /// Default commit durability for transactions begun via [`Db::begin`]
    /// ([`Db::begin_with`] overrides per transaction).
    pub durability: Durability,
    /// Start the group-commit flusher thread. When off, every durability
    /// request is served inline by its caller — the pre-pipeline
    /// one-fsync-per-commit behavior (the benchmarks' baseline).
    pub group_commit: bool,
    /// Simulated log-device sync latency, paid once per durability
    /// advance under a device-wide mutex. Zero (the default) keeps
    /// in-memory tests instant; benchmarks set it to make fsync sharing
    /// observable.
    pub wal_sync_latency: Duration,
    /// Serve [`crate::GistIndex::search`] through the optimistic
    /// latch-free read path (seqlock-validated copy-out under an epoch
    /// pin, falling back to the latched cursor on contention). Off
    /// reproduces the pre-optimistic latched traversal exactly;
    /// incremental cursors always use the latched protocol.
    pub optimistic_reads: bool,
    /// Admission control for transaction begins: at most
    /// [`AdmissionConfig::max_in_flight`] transactions run at once;
    /// [`Db::try_begin`] sheds with [`GistError::Overloaded`] after
    /// parking [`AdmissionConfig::admit_timeout`], while [`Db::begin`]
    /// barges past the cap after the same park (it cannot fail).
    /// `max_in_flight: 0` disables admission entirely.
    pub admission: AdmissionConfig,
    /// WAL backpressure: when the volatile log tail (`reserved −
    /// durable`) exceeds this many records, `LogManager::reserve` parks
    /// the appender until the flusher catches up. `0` disables the gate.
    pub wal_backpressure_limit: u64,
    /// How long a backpressured appender parks before escalating to an
    /// inline flush of the filled prefix (stalled-flusher degradation).
    pub wal_backpressure_timeout: Duration,
    /// Epoch retire-bin byte cap: above it the domain reports a stall,
    /// optimistic reads fall back to the latched path, and retire forces
    /// an epoch advance. `0` disables the cap.
    pub epoch_cap_bytes: u64,
    /// Oldest-pin age budget: a pin older than this marks the epoch
    /// domain stalled (same degradations as the byte cap). Zero disables
    /// the age check.
    pub epoch_stall_age: Duration,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            pool_capacity: 256,
            nsn_source: NsnSource::WalLsn,
            isolation: IsolationLevel::RepeatableRead,
            predicate_mode: PredicateMode::Hybrid,
            lock_timeout: Duration::from_secs(10),
            memorize_parent_lsn: true,
            maint: gist_maint::MaintConfig::default(),
            sync_shards: 0,
            durability: Durability::Immediate,
            group_commit: true,
            wal_sync_latency: Duration::ZERO,
            optimistic_reads: true,
            admission: AdmissionConfig::default(),
            wal_backpressure_limit: 1 << 16,
            wal_backpressure_timeout: Duration::from_millis(100),
            epoch_cap_bytes: 64 << 20,
            epoch_stall_age: Duration::from_secs(2),
        }
    }
}

/// A catalog entry (one per index), stored as a cell on page 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Index id (database-unique).
    pub id: u32,
    /// Current root page.
    pub root: PageId,
    /// Whether the index enforces uniqueness (§8).
    pub unique: bool,
    /// Index name.
    pub name: String,
    /// Catalog-page slot holding this entry.
    pub slot: SlotId,
}

fn encode_catalog_cell(id: u32, root: PageId, unique: bool, name: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + name.len());
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&root.0.to_le_bytes());
    out.push(unique as u8);
    out.extend_from_slice(name.as_bytes());
    out
}

fn le_u32(b: &[u8]) -> u32 {
    let mut v = [0u8; 4];
    v.copy_from_slice(&b[..4]);
    u32::from_le_bytes(v)
}

fn decode_catalog_cell(slot: SlotId, cell: &[u8]) -> CatalogEntry {
    assert!(cell.len() >= 9, "catalog cell too short");
    CatalogEntry {
        id: le_u32(&cell[0..4]),
        root: PageId(le_u32(&cell[4..8])),
        unique: cell[8] != 0,
        name: String::from_utf8_lossy(&cell[9..]).into_owned(),
        slot,
    }
}

/// Summary of a completed restart.
#[derive(Debug)]
pub struct RestartReport {
    /// The WAL driver's redo/undo summary.
    pub outcome: gist_wal::recovery::RestartOutcome,
    /// Indexes found in the recovered catalog.
    pub indexes: usize,
    /// Pages on the rebuilt free list.
    pub free_pages: usize,
    /// Pages whose on-disk image failed its checksum (torn write) or was
    /// unreadable; they were quarantined — zeroed in the pool — and
    /// rebuilt by forcing the redo pass to repeat history from the log
    /// start.
    pub repaired_pages: Vec<PageId>,
}

/// The database: all substrates plus the catalog.
pub struct Db {
    pool: Arc<BufferPool>,
    log: Arc<LogManager>,
    locks: Arc<LockManager>,
    preds: Arc<PredicateManager>,
    txns: Arc<TxnManager>,
    alloc: Arc<PageAllocator>,
    heap: HeapFile,
    /// The background maintenance daemon. Created with the database and
    /// wired as the transaction manager's [`GcSink`] immediately, so GC
    /// candidates accumulate even before any worker thread is started;
    /// call [`Db::start_maint`] for background processing or
    /// [`Db::maint_sync`] to drain the queue deterministically.
    maint: Arc<MaintDaemon>,
    config: DbConfig,
    /// Tree-global counter for [`NsnSource::DedicatedCounter`]; mirrors
    /// the max observed NSN in [`NsnSource::WalLsn`] mode.
    nsn_counter: AtomicU64,
    /// gist-audit instance id for NSN-uniqueness tracking (0 when
    /// auditing is off).
    audit_nsn: u64,
    catalog: Mutex<Vec<CatalogEntry>>,
    /// Former roots (demoted by root splits in this incarnation). Node
    /// deletion skips them: an operation reads the catalog root pointer
    /// and then signal-locks it, and that window is not covered by the
    /// under-parent-latch locking discipline that protects every other
    /// node. Restart clears the set, which is safe: no operation survives
    /// a crash, so no stale root pointers exist afterwards.
    retired_roots: Mutex<HashSet<PageId>>,
    /// [`Db::run_txn`] retries performed (attempts beyond each first).
    retries: AtomicU64,
    /// Total microseconds [`Db::run_txn`] slept in backoff.
    backoff_micros: AtomicU64,
    /// Panics contained by [`Db::contained`] / [`Db::run_txn`].
    panics_contained: AtomicU64,
    /// Per-process state for deterministic backoff jitter.
    jitter_state: AtomicU64,
    /// Epoch-reclamation domain: optimistic traversals pin it; §7.2
    /// page frees, dropped-index frees and pool evictions retire
    /// through its bin.
    epoch: Arc<EpochGc>,
    /// Nodes served by a validated optimistic copy-out.
    opt_hits: AtomicU64,
    /// Seqlock validation failures that re-read a node optimistically.
    opt_retries: AtomicU64,
    /// Optimistic traversals that fell back to the latched cursor.
    opt_fallbacks: AtomicU64,
    /// Admission controller gating transaction begins (overload shed).
    admission: AdmissionController,
    /// [`Db::run_txn`] calls that exhausted their retry budget on a
    /// retryable error and surfaced it to the caller.
    retries_exhausted: AtomicU64,
    /// Searches that skipped the optimistic path because the epoch
    /// domain was stalled (graceful degradation to the latched cursor).
    opt_stall_skips: AtomicU64,
}

/// Counters for the optimistic (latch-free) read path
/// ([`Db::opt_read_stats`]).
#[derive(Debug, Clone, Default)]
pub struct OptReadStats {
    /// Nodes served by a validated optimistic copy-out.
    pub hits: u64,
    /// Seqlock validation failures that re-read the same node
    /// optimistically (a concurrent writer touched the frame mid-copy).
    pub retries: u64,
    /// Traversals that gave up on the fast path — eviction under the
    /// reader, retry budget exhausted, or an uncachable page — and
    /// restarted on the latched cursor (partial results kept).
    pub fallbacks: u64,
    /// Pool misses served by a pool-bypassing direct store read (no
    /// frame, no pin, no eviction pressure).
    pub direct_reads: u64,
    /// Epochs the oldest live pin trails the global epoch by (0 =
    /// nothing is holding reclamation back).
    pub epoch_lag: u64,
    /// Retired frames/pages waiting in the epoch bin.
    pub epoch_pending: u64,
}

/// Point-in-time snapshot of the database's degradation and self-healing
/// counters ([`Db::robustness_stats`]): how often operations had to be
/// retried, how long they backed off, how many worker panics were
/// contained, what the watchdog killed, the lock manager's contention
/// tallies, and whether the buffer pool has degraded to read-only.
#[derive(Debug, Clone)]
pub struct RobustnessStats {
    /// [`Db::run_txn`] retry attempts (beyond each call's first try).
    pub txn_retries: u64,
    /// Total microseconds spent sleeping in retry backoff.
    pub backoff_micros: u64,
    /// Operation panics contained (transaction aborted, caller got
    /// [`GistError::Panicked`] instead of a dead thread).
    pub panics_contained: u64,
    /// Idle transactions aborted by the maintenance watchdog.
    pub watchdog_aborts: u64,
    /// Lock requests granted without waiting.
    pub lock_immediate_grants: u64,
    /// Lock requests that had to wait.
    pub lock_waits: u64,
    /// Deadlock victims selected by the detector.
    pub lock_deadlocks: u64,
    /// Lock waits that hit the timeout safety net.
    pub lock_timeouts: u64,
    /// Whether the buffer pool is poisoned (storage failed; read-only).
    pub pool_poisoned: bool,
    /// The poison reason, when poisoned.
    pub pool_poison_reason: Option<String>,
    /// Group-commit batches the WAL flusher has fsynced.
    pub wal_batches_flushed: u64,
    /// Mean committers released per batch (0 when no batch ran).
    pub wal_mean_batch_size: f64,
    /// Median commit wait on the pipeline, in microseconds.
    pub commit_wait_p50_us: u64,
    /// 99th-percentile commit wait on the pipeline, in microseconds.
    pub commit_wait_p99_us: u64,
    /// Log append watermark (reserved LSN).
    pub wal_append_lsn: u64,
    /// Log durable watermark; `wal_append_lsn - wal_durable_lsn` is the
    /// volatile tail a crash right now would lose.
    pub wal_durable_lsn: u64,
    /// Whether the background flusher thread is running.
    pub wal_flusher_running: bool,
    /// Flusher panics contained (batch retried by the next wakeup).
    pub wal_flusher_panics: u64,
    /// Optimistic-read fast-path hits (validated copy-outs).
    pub opt_read_hits: u64,
    /// Optimistic-read seqlock retries.
    pub opt_read_retries: u64,
    /// Optimistic traversals that fell back to the latched cursor.
    pub opt_read_fallbacks: u64,
    /// Optimistic pool misses served by a direct (pool-bypassing)
    /// store read.
    pub opt_read_direct: u64,
    /// Epochs the oldest live pin trails the global epoch by.
    pub epoch_lag: u64,
    /// Retired frames/pages waiting in the epoch bin.
    pub epoch_pending: u64,
    /// [`Db::run_txn`] calls that exhausted their retry budget on a
    /// retryable error (the caller got the last underlying failure).
    pub retries_exhausted: u64,
    /// Admission-controller counters ([`Db::try_begin`] sheds,
    /// [`Db::begin`] forced admissions, parked begins).
    pub admission: AdmissionStats,
    /// WAL appends that parked on the backpressure gate.
    pub wal_bp_parks: u64,
    /// Backpressure parks that timed out and escalated to an inline
    /// flush (stalled-flusher degradation).
    pub wal_bp_stalls: u64,
    /// Volatile log tail (`reserved − durable`) the backpressure gate
    /// currently sees.
    pub wal_bp_backlog: u64,
    /// Bytes waiting in the epoch retire bin.
    pub epoch_pending_bytes: u64,
    /// Whether the epoch domain is currently in its stall regime.
    pub epoch_stalled: bool,
    /// Healthy→stalled transitions of the epoch domain.
    pub epoch_stalls: u64,
    /// Forced epoch advances issued while stalled.
    pub epoch_forced_advances: u64,
    /// Searches that skipped the optimistic path because the epoch
    /// domain was stalled.
    pub opt_stall_skips: u64,
    /// The aggregate health verdict ([`Db::health`]).
    pub health: HealthState,
}

impl Db {
    /// Open a database over `store` and `log`. A store with no pages is
    /// bootstrapped (catalog page created and flushed); otherwise the
    /// catalog and free list are loaded from the store. Use
    /// [`Db::restart`] instead when the previous incarnation crashed.
    pub fn open(
        store: Arc<dyn PageStore>,
        log: Arc<LogManager>,
        config: DbConfig,
    ) -> Result<Arc<Db>> {
        let db = Self::build(store, log, config)?;
        db.load_catalog()?;
        db.alloc.rebuild_from_store(&db.pool, 1)?;
        Ok(db)
    }

    fn build(
        store: Arc<dyn PageStore>,
        log: Arc<LogManager>,
        config: DbConfig,
    ) -> Result<Arc<Db>> {
        let pool = BufferPool::with_shards(store.clone(), config.pool_capacity, config.sync_shards);
        pool.set_flusher(log.clone());
        // One reclamation domain per database: evicted frames and §7.2
        // page frees defer behind the optimistic readers' pins.
        let epoch = Arc::new(EpochGc::new());
        epoch.set_limits(config.epoch_cap_bytes, config.epoch_stall_age);
        pool.set_epoch(epoch.clone());
        log.set_backpressure(config.wal_backpressure_limit, config.wal_backpressure_timeout);
        if store.page_count() == 0 {
            // Bootstrap the catalog page and make it durable immediately
            // so redo can always assume a formatted page 0.
            let mut g = pool.new_page_write(PageId(0), 0)?;
            g.mark_dirty_unlogged();
            drop(g);
            pool.flush_all()?;
            pool.sync_store()?;
        }
        let locks = Arc::new(LockManager::with_timeout_and_shards(
            config.lock_timeout,
            config.sync_shards,
        ));
        let preds = Arc::new(PredicateManager::with_shards(config.sync_shards));
        let txns = Arc::new(TxnManager::new(log.clone(), locks.clone(), preds.clone()));
        txns.set_default_durability(config.durability);
        if !config.wal_sync_latency.is_zero() {
            log.set_sync_latency(config.wal_sync_latency);
        }
        // Re-point the WAL-before-data barrier at the pipeline: page
        // writeback then batches its log force with pending commits
        // instead of issuing a private fsync (inline when not started).
        pool.set_flusher(txns.pipeline().clone());
        if config.group_commit {
            txns.pipeline().start();
        }
        let alloc = Arc::new(PageAllocator::new(1));
        let heap = HeapFile::new(pool.clone(), alloc.clone());
        let maint =
            MaintDaemon::new(txns.clone(), pool.clone(), log.clone(), config.maint.clone());
        // The daemon is the commit-time GC sink from the start (held
        // weakly by the transaction manager; the daemon itself holds the
        // manager strongly for checkpoint capture).
        let sink: std::sync::Weak<dyn GcSink> = Arc::downgrade(&maint) as _;
        txns.set_gc_sink(sink);
        let admission = AdmissionController::new(config.admission.clone());
        let db = Arc::new(Db {
            pool,
            log,
            locks,
            preds,
            txns,
            alloc,
            heap,
            maint,
            config,
            nsn_counter: AtomicU64::new(0),
            audit_nsn: crate::audit::new_instance_id(),
            catalog: Mutex::new(Vec::new()),
            retired_roots: Mutex::new(HashSet::new()),
            retries: AtomicU64::new(0),
            backoff_micros: AtomicU64::new(0),
            panics_contained: AtomicU64::new(0),
            jitter_state: AtomicU64::new(0x1234_5678_9ABC_DEF0),
            epoch,
            opt_hits: AtomicU64::new(0),
            opt_retries: AtomicU64::new(0),
            opt_fallbacks: AtomicU64::new(0),
            admission,
            retries_exhausted: AtomicU64::new(0),
            opt_stall_skips: AtomicU64::new(0),
        });
        // The database is the daemon's undo handler: the transaction
        // watchdog needs logical undo to roll idle victims back. Weak for
        // the same reason as the GC sink — the daemon must not keep the
        // database alive.
        let handler: std::sync::Weak<dyn RecoveryHandler + Send + Sync> =
            Arc::downgrade(&db) as _;
        db.maint.set_undo_handler(handler);
        // Admission credits ride the transaction's lifetime exactly: the
        // end observer fires once per transaction-table removal (commit,
        // owner abort, watchdog teardown), so a credit can never outlive
        // its transaction or leak on any exit path. Weak, as above.
        let observer: std::sync::Weak<dyn TxnEndObserver> = Arc::downgrade(&db) as _;
        db.txns.set_end_observer(observer);
        Ok(db)
    }

    /// Restart after a crash: run analysis/redo/undo over the durable
    /// log, then rebuild the free list and catalog.
    pub fn restart(
        store: Arc<dyn PageStore>,
        log: Arc<LogManager>,
        config: DbConfig,
    ) -> Result<(Arc<Db>, RestartReport)> {
        let db = Self::build(store, log, config)?;
        // Torn-page repair (checksum self-healing): scan the store for
        // pages whose image fails its checksum — a write torn by the
        // crash — or cannot be read at all, and quarantine each as a
        // zeroed dirty frame with page LSN 0. Since the log is never
        // truncated, redo can rebuild them from scratch; the floor forces
        // the pass to repeat all of history, and page-LSN idempotence
        // keeps the wider scan free for every healthy page.
        let repaired_pages = db.pool.quarantine_torn_pages()?;
        let floor = if repaired_pages.is_empty() { Lsn(u64::MAX) } else { Lsn(1) };
        let outcome = gist_wal::recovery::restart_with_floor(&db.log, db.as_ref(), floor)
            .map_err(|e| GistError::Recovery(e.0))?;
        db.alloc.rebuild_from_store(&db.pool, 1)?;
        db.load_catalog()?;
        // In WalLsn mode the counter is implicitly recovered (it *is* the
        // LSN); in DedicatedCounter mode redo tracked the max split NSN.
        if db.config.nsn_source == NsnSource::WalLsn {
            db.nsn_counter.store(db.log.last_lsn().0, Ordering::SeqCst);
        }
        let report = RestartReport {
            outcome,
            indexes: db.catalog.lock().len(),
            free_pages: db.alloc.free_count(),
            repaired_pages,
        };
        Ok((db, report))
    }

    fn load_catalog(&self) -> Result<()> {
        let g = self.pool.fetch_read(PageId(0))?;
        let mut cat = self.catalog.lock();
        cat.clear();
        for (slot, cell) in g.iter_cells() {
            cat.push(decode_catalog_cell(slot, cell));
        }
        Ok(())
    }

    // ---- accessors ----

    /// The buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The write-ahead log.
    pub fn log(&self) -> &Arc<LogManager> {
        &self.log
    }

    /// The lock manager.
    pub fn locks(&self) -> &Arc<LockManager> {
        &self.locks
    }

    /// The predicate manager.
    pub fn preds(&self) -> &Arc<PredicateManager> {
        &self.preds
    }

    /// The transaction manager.
    pub fn txns(&self) -> &Arc<TxnManager> {
        &self.txns
    }

    /// The page allocator.
    pub fn alloc(&self) -> &Arc<PageAllocator> {
        &self.alloc
    }

    /// The unlogged heap file for data records.
    pub fn heap(&self) -> &HeapFile {
        &self.heap
    }

    /// The maintenance daemon.
    pub fn maint(&self) -> &Arc<MaintDaemon> {
        &self.maint
    }

    /// The epoch-reclamation domain optimistic readers pin.
    pub fn epoch(&self) -> &Arc<EpochGc> {
        &self.epoch
    }

    /// Snapshot the optimistic read-path counters.
    pub fn opt_read_stats(&self) -> OptReadStats {
        let es = self.epoch.stats();
        OptReadStats {
            hits: self.opt_hits.load(Ordering::Relaxed),
            retries: self.opt_retries.load(Ordering::Relaxed),
            fallbacks: self.opt_fallbacks.load(Ordering::Relaxed),
            direct_reads: self.pool.stats.direct_reads.load(Ordering::Relaxed),
            epoch_lag: es.epoch_lag,
            epoch_pending: es.pending,
        }
    }

    pub(crate) fn note_opt_hits(&self, n: u64) {
        self.opt_hits.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn note_opt_retry(&self) {
        self.opt_retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_opt_fallback(&self) {
        self.opt_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether searches may take the optimistic latch-free path right
    /// now: configured on *and* the epoch domain is not stalled. Under a
    /// stall (retire bin over its byte cap, or a pin past the age
    /// budget) reads degrade to the latched cursor — which takes no pin,
    /// so the overloaded domain stops growing while forced advances and
    /// collection push it back under its caps. Recovery is automatic:
    /// the next call after the stall clears re-enables the fast path.
    pub fn optimistic_enabled(&self) -> bool {
        if !self.config.optimistic_reads {
            return false;
        }
        if self.epoch.is_stalled() {
            self.opt_stall_skips.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Spawn the maintenance daemon's worker threads (idempotent). Until
    /// this is called (or [`Db::maint_sync`] is driven by hand), queued
    /// work — post-commit GC, drains, checkpoint requests — just
    /// accumulates.
    pub fn start_maint(&self) {
        self.maint.start();
    }

    /// Synchronously process every queued maintenance item on the
    /// calling thread — the deterministic escape hatch for tests and
    /// single-threaded tools. Returns the number of items processed.
    pub fn maint_sync(&self) -> usize {
        let n = self.maint.run_until_idle();
        // Drain whatever the epoch bin can prove quiescent, so tests
        // driving maintenance by hand observe deterministic reuse.
        self.epoch.try_collect();
        n
    }

    /// A snapshot of the maintenance counters.
    pub fn maint_stats(&self) -> MaintStatsSnapshot {
        self.maint.stats.snapshot()
    }

    /// Write a fuzzy checkpoint now (§9-style: capture the log position,
    /// then the dirty-page table, then the active-transaction table —
    /// nothing is quiesced). Restart's analysis pass will begin at the
    /// captured position instead of the log start, and redo at the
    /// oldest recLSN in the captured dirty-page table. Returns the
    /// checkpoint record's LSN.
    ///
    /// The capture syncs the store first (the lost-write barrier — see
    /// `MaintDaemon::checkpoint_now`), so this fails if the device does:
    /// a checkpoint that cannot vouch for its dirty-page table is not
    /// written.
    pub fn checkpoint(&self) -> Result<Lsn> {
        Ok(self.maint.checkpoint_now()?)
    }

    /// The configuration.
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    // ---- transactions ----

    /// Begin a transaction with the configured default durability.
    ///
    /// Infallible by contract, so under admission pressure it parks up
    /// to the admit timeout and then *barges* past the cap (counted in
    /// [`AdmissionStats::forced`]). Callers that can shed — batch jobs,
    /// retry loops — should prefer [`Db::try_begin`].
    pub fn begin(&self) -> TxnId {
        self.admission.force_admit();
        let txn = self.txns.begin();
        self.admission.bind(txn.0);
        txn
    }

    /// Begin a transaction with explicit options (e.g. a per-transaction
    /// [`Durability`] mode). Same forced-admission contract as
    /// [`Db::begin`].
    pub fn begin_with(&self, opts: TxnOptions) -> TxnId {
        self.admission.force_admit();
        let txn = self.txns.begin_with(opts);
        self.admission.bind(txn.0);
        txn
    }

    /// Begin a transaction, or shed with [`GistError::Overloaded`] if
    /// the admission controller is at capacity and no credit frees up
    /// within the configured admit timeout. Nothing is started on the
    /// shed path, so backing off and retrying is always safe —
    /// [`Db::run_txn`] does exactly that.
    pub fn try_begin(&self) -> Result<TxnId> {
        if !self.admission.try_admit() {
            return Err(GistError::Overloaded);
        }
        let txn = self.txns.begin();
        self.admission.bind(txn.0);
        Ok(txn)
    }

    /// [`Db::try_begin`] with explicit options.
    pub fn try_begin_with(&self, opts: TxnOptions) -> Result<TxnId> {
        if !self.admission.try_admit() {
            return Err(GistError::Overloaded);
        }
        let txn = self.txns.begin_with(opts);
        self.admission.bind(txn.0);
        Ok(txn)
    }

    /// The admission controller gating [`Db::begin`]/[`Db::try_begin`].
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// Commit a transaction (forces the log, releases predicates and
    /// locks).
    pub fn commit(&self, txn: TxnId) -> Result<()> {
        self.txns.commit(txn)?;
        Ok(())
    }

    /// Abort a transaction (logical undo through the database recovery
    /// handler).
    pub fn abort(&self, txn: TxnId) -> Result<()> {
        self.txns.abort(txn, self)?;
        Ok(())
    }

    /// Abort a *session-owned* transaction during connection teardown
    /// (the serving layer's funnel). Identical to [`Db::abort`] except
    /// that the already-gone shape — the watchdog reaped it, a racing
    /// commit completed, the drain sweep got there first — is absorbed
    /// as success: teardown must be idempotent because the session
    /// thread and the drain sweep can both observe the same dying
    /// connection. Resources still release exactly once regardless of
    /// who wins: every ending funnels through the transaction table's
    /// single removal and its [`TxnEndObserver`] notification.
    pub fn end_session_txn(&self, txn: TxnId) -> Result<()> {
        match self.abort(txn) {
            Err(GistError::Txn(gist_txn::TxnError::NotActive(_))) => Ok(()),
            other => other,
        }
    }

    /// Run `f` against its own transaction, retrying on retryable
    /// failures ([`GistError::is_retryable`]: deadlock victim, lock
    /// timeout, watchdog abort) with bounded exponential backoff plus
    /// jitter. Each attempt gets a fresh transaction; the previous one is
    /// aborted before the retry, so no hand-written retry loop is ever
    /// needed at call sites. Panics inside `f` are contained (see
    /// [`Db::contained`]) and surface as [`GistError::Panicked`] —
    /// not retried, since a panic is a bug, not contention.
    ///
    /// `f` must be idempotent across attempts (standard optimistic-retry
    /// contract): everything it did in a failed attempt is rolled back
    /// before the next one starts.
    pub fn run_txn<T>(&self, f: impl Fn(TxnId) -> Result<T>) -> Result<T> {
        const MAX_ATTEMPTS: u32 = 10;
        let mut backoff = Duration::from_millis(1);
        let mut attempt = 0;
        loop {
            attempt += 1;
            // Fallible begin: under overload the shed happens here, before
            // any work — the backoff below then doubles as admission
            // throttling (no transaction to abort on this path).
            let txn = match self.try_begin() {
                Ok(txn) => txn,
                Err(err) => {
                    if !err.is_retryable() || attempt >= MAX_ATTEMPTS {
                        if err.is_retryable() {
                            self.retries_exhausted.fetch_add(1, Ordering::Relaxed);
                        }
                        return Err(err);
                    }
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    self.backoff_sleep(&mut backoff);
                    continue;
                }
            };
            let err = match self.contained(txn, || f(txn)) {
                Ok(v) => match self.commit(txn) {
                    Ok(()) => return Ok(v),
                    Err(e) => {
                        // A failed commit leaves the transaction for us
                        // to clean up — unless it was already torn down
                        // (watchdog) or is actually committed (lost ack),
                        // both of which `abort` absorbs.
                        let _ = self.abort(txn);
                        e
                    }
                },
                Err(e) => {
                    // `contained` already aborted on panic; aborting an
                    // ended transaction is an ignorable NotActive.
                    let _ = self.abort(txn);
                    e
                }
            };
            if !err.is_retryable() || attempt >= MAX_ATTEMPTS {
                if err.is_retryable() {
                    // Budget exhausted on a contention-class error: the
                    // caller sees the last underlying failure, and the
                    // counter lets operators tell "slow" from "losing".
                    self.retries_exhausted.fetch_add(1, Ordering::Relaxed);
                }
                return Err(err);
            }
            self.retries.fetch_add(1, Ordering::Relaxed);
            self.backoff_sleep(&mut backoff);
        }
    }

    /// One jittered backoff step for [`Db::run_txn`]: sleep a
    /// uniformly-drawn slice of the current window (full jitter over a
    /// deterministic xorshift stream, so colliding retriers spread out
    /// instead of thundering back in lockstep), then double the window.
    fn backoff_sleep(&self, backoff: &mut Duration) {
        const MAX_BACKOFF: Duration = Duration::from_millis(64);
        let mut x = self.jitter_state.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        let span = backoff.as_micros().max(1) as u64;
        let wait = Duration::from_micros(span / 2 + x % (span / 2 + 1));
        self.backoff_micros.fetch_add(wait.as_micros() as u64, Ordering::Relaxed);
        std::thread::sleep(wait);
        *backoff = (*backoff * 2).min(MAX_BACKOFF);
    }

    /// Run `f` with panic containment: a panic unwinding out of `f` is
    /// caught, the unwind's shadow-state hygiene is checked (audit rule
    /// `unwind-residue` — RAII must have released every latch, shard
    /// lock and scope), `txn` is aborted (its [`OpGuard`] poisoning
    /// already marked it must-abort, and every page latch was released
    /// by RAII during the unwind, so logical undo runs cleanly), and the
    /// caller gets [`GistError::Panicked`]. One dead operation therefore
    /// never wedges peer threads: its latches, locks and predicates are
    /// all gone by the time this returns.
    ///
    /// [`OpGuard`]: gist_txn::OpGuard
    pub fn contained<T>(&self, txn: TxnId, f: impl FnOnce() -> Result<T>) -> Result<T> {
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(r) => r,
            Err(payload) => {
                self.panics_contained.fetch_add(1, Ordering::Relaxed);
                crate::audit::assert_unwind_clear("Db::contained after operation panic");
                let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                let _ = self.abort(txn);
                Err(GistError::Panicked(msg))
            }
        }
    }

    /// Snapshot the robustness counters: retry/backoff behavior of
    /// [`Db::run_txn`], contained panics, watchdog aborts, lock-manager
    /// contention, and buffer-pool poison state.
    pub fn robustness_stats(&self) -> RobustnessStats {
        let ls = &self.locks.stats;
        let ps = self.txns.pipeline().stats();
        let os = self.opt_read_stats();
        let bs = self.log.backpressure_stats();
        let es = self.epoch.stats();
        RobustnessStats {
            txn_retries: self.retries.load(Ordering::Relaxed),
            backoff_micros: self.backoff_micros.load(Ordering::Relaxed),
            panics_contained: self.panics_contained.load(Ordering::Relaxed),
            watchdog_aborts: self.maint.stats.snapshot().watchdog_aborts,
            lock_immediate_grants: ls.immediate_grants.load(Ordering::Relaxed),
            lock_waits: ls.waits.load(Ordering::Relaxed),
            lock_deadlocks: ls.deadlocks.load(Ordering::Relaxed),
            lock_timeouts: ls.timeouts.load(Ordering::Relaxed),
            pool_poisoned: self.pool.is_poisoned(),
            pool_poison_reason: self.pool.poison_error().map(|e| e.to_string()),
            wal_batches_flushed: ps.batches_flushed,
            wal_mean_batch_size: ps.mean_batch_size,
            commit_wait_p50_us: ps.commit_wait_p50_us,
            commit_wait_p99_us: ps.commit_wait_p99_us,
            wal_append_lsn: ps.append_lsn,
            wal_durable_lsn: ps.durable_lsn,
            wal_flusher_running: ps.running,
            wal_flusher_panics: ps.flusher_panics,
            opt_read_hits: os.hits,
            opt_read_retries: os.retries,
            opt_read_fallbacks: os.fallbacks,
            opt_read_direct: os.direct_reads,
            epoch_lag: os.epoch_lag,
            epoch_pending: os.epoch_pending,
            retries_exhausted: self.retries_exhausted.load(Ordering::Relaxed),
            admission: self.admission.stats(),
            wal_bp_parks: bs.parks,
            wal_bp_stalls: bs.stalls,
            wal_bp_backlog: bs.backlog,
            epoch_pending_bytes: es.pending_bytes,
            epoch_stalled: es.stalled,
            epoch_stalls: es.stalls,
            epoch_forced_advances: es.forced_advances,
            opt_stall_skips: self.opt_stall_skips.load(Ordering::Relaxed),
            health: self.health(),
        }
    }

    /// The database's aggregate health verdict, computed from current
    /// conditions (no latched state — safe to poll): `ReadOnly` when the
    /// buffer pool is poisoned, `Degraded` while any overload defense is
    /// engaged (flusher down with group commit configured, WAL backlog
    /// at the backpressure limit, epoch domain stalled, admission at
    /// capacity), `Healthy` otherwise. Degradations clear themselves, so
    /// the verdict recovers as soon as the underlying pressure does.
    pub fn health(&self) -> HealthState {
        let mut r = HealthReport::healthy();
        if self.pool.is_poisoned() {
            let why = self
                .pool
                .poison_error()
                .map(|e| e.to_string())
                .unwrap_or_else(|| "unknown storage failure".into());
            r.read_only(format!("buffer pool poisoned: {why}"));
        }
        let ps = self.txns.pipeline().stats();
        if self.config.group_commit && !ps.running {
            r.degrade("group-commit flusher not running; durability served inline");
        }
        let bs = self.log.backpressure_stats();
        if bs.limit > 0 && bs.backlog >= bs.limit {
            r.degrade(format!(
                "wal backlog {} records at/over backpressure limit {}",
                bs.backlog, bs.limit
            ));
        }
        let es = self.epoch.stats();
        if es.stalled {
            r.degrade(format!(
                "epoch reclamation stalled ({} bytes pending, oldest pin {}µs); \
                 optimistic reads disabled",
                es.pending_bytes, es.oldest_pin_micros
            ));
        }
        if self.admission.is_saturated() {
            r.degrade("admission controller saturated; begins park or shed");
        }
        r.state()
    }

    /// Establish a savepoint (§10.2).
    pub fn savepoint(&self, txn: TxnId) -> Result<SavepointId> {
        Ok(self.txns.savepoint(txn)?)
    }

    /// Partial rollback to a savepoint.
    pub fn rollback_to_savepoint(&self, txn: TxnId, sp: SavepointId) -> Result<()> {
        self.txns.rollback_to_savepoint(txn, sp, self)?;
        Ok(())
    }

    /// Simulate a crash: the buffer pool drops every unflushed page and
    /// the log loses its non-durable suffix. Reopen with [`Db::restart`].
    ///
    /// The maintenance workers are stopped first — *without* draining
    /// the queue (a crash abandons pending work; recovery and later
    /// sweeps make it up) — because the pool's crash asserts that no
    /// page is pinned.
    pub fn crash(&self) {
        self.maint.stop(false);
        // Kill the flusher without draining: whatever it had not fsynced
        // is exactly what the crash loses.
        self.txns.pipeline().stop(false);
        self.pool.crash();
        self.log.crash();
        // A crash implies quiescence (the pool just asserted it), so the
        // epoch bin can drain — retired frames drop, deferred page frees
        // are moot (the allocator is rebuilt at restart anyway).
        self.epoch.try_collect();
    }

    /// Flush everything (clean shutdown). The maintenance daemon is
    /// drained first: queued GC/drain work completes and its log records
    /// land before the final flush, so a clean restart owes nothing. The
    /// final store sync is what upgrades "written back" to "durable";
    /// its failure is reported rather than swallowed.
    pub fn shutdown(&self) -> Result<()> {
        self.maint.stop(true);
        // Drain the pipeline (joins the flusher after a final sweep),
        // then belt-and-suspenders force for the inline path.
        self.txns.pipeline().stop(true);
        self.log.flush_all();
        self.pool.flush_all()?;
        self.pool.sync_store()?;
        self.epoch.try_collect();
        Ok(())
    }

    // ---- NSN management (§10.1) ----

    /// Read the tree-global counter ("memorize the global counter value").
    pub fn global_nsn(&self) -> u64 {
        match self.config.nsn_source {
            NsnSource::DedicatedCounter => self.nsn_counter.load(Ordering::SeqCst),
            NsnSource::WalLsn => self.log.last_lsn().0,
        }
    }

    /// The NSN a split assigns to the original node. In `WalLsn` mode it
    /// is the split record's LSN; in `DedicatedCounter` mode the counter
    /// is incremented.
    pub fn split_nsn(&self, split_record_lsn: Lsn) -> u64 {
        let nsn = match self.config.nsn_source {
            NsnSource::DedicatedCounter => self.nsn_counter.fetch_add(1, Ordering::SeqCst) + 1,
            NsnSource::WalLsn => split_record_lsn.0,
        };
        // Every NSN handed to a split must be unique for this tree: a
        // reissued value would defeat the memorized-counter split check.
        crate::audit::nsn_drawn(self.audit_nsn, nsn);
        nsn
    }

    // ---- catalog ----

    /// Create an index: allocates and formats its root leaf and adds the
    /// catalog entry, as one atomic unit of work under a short system
    /// transaction.
    pub fn create_index_raw(&self, name: &str, unique: bool) -> Result<CatalogEntry> {
        {
            let cat = self.catalog.lock();
            if cat.iter().any(|e| e.name == name) {
                return Err(GistError::Config(format!("index {name:?} already exists")));
            }
        }
        let txn = self.begin();
        let nta = self.txns.begin_nta(txn)?;
        let root = self.alloc.allocate();
        // Get-Page: format the root as an empty leaf (empty BP = covers
        // nothing).
        let rec = GistRecord::GetPage { page: root.0, level: 0, bp: Vec::new() };
        let lsn = self.txns.log_update(txn, RecordBody::Payload(rec.to_payload()))?;
        rec.redo(&self.pool, lsn)?;
        // Catalog entry.
        let id = {
            let cat = self.catalog.lock();
            cat.iter().map(|e| e.id).max().unwrap_or(0) + 1
        };
        let cell = encode_catalog_cell(id, root, unique, name);
        let slot = {
            // Reserve the slot deterministically under the page latch.
            let g = self.pool.fetch_read(PageId(0))?;
            let mut s = 0;
            while g.is_occupied(s) {
                s += 1;
            }
            s
        };
        let rec = GistRecord::CatalogAdd { slot, cell: cell.clone() };
        let lsn = self.txns.log_update(txn, RecordBody::Payload(rec.to_payload()))?;
        rec.redo(&self.pool, lsn)?;
        self.txns.end_nta(txn, nta)?;
        self.commit(txn)?;
        let entry = decode_catalog_cell(slot, &cell);
        self.catalog.lock().push(entry.clone());
        Ok(entry)
    }

    /// Look up an index by name.
    pub fn open_index_raw(&self, name: &str) -> Option<CatalogEntry> {
        self.catalog.lock().iter().find(|e| e.name == name).cloned()
    }

    /// Names of every cataloged index (serving-layer re-registration
    /// after restart).
    pub fn catalog_names(&self) -> Vec<String> {
        self.catalog.lock().iter().map(|e| e.name.clone()).collect()
    }

    /// One human-readable line per cataloged index.
    pub fn catalog_summary(&self) -> Vec<String> {
        self.catalog
            .lock()
            .iter()
            .map(|e| {
                format!(
                    "{} (id {}, root {}{})",
                    e.name,
                    e.id,
                    e.root,
                    if e.unique { ", unique" } else { "" }
                )
            })
            .collect()
    }

    /// Drop an index: remove its catalog entry and free every page of
    /// its tree, as one atomic unit of work under a short system
    /// transaction. The caller must guarantee no concurrent operations
    /// use the index (DDL is serialized above the index layer in a real
    /// DBMS). Returns the number of pages freed.
    pub fn drop_index_raw(&self, name: &str) -> Result<usize> {
        let entry = self
            .open_index_raw(name)
            .ok_or_else(|| GistError::Config(format!("no index named {name:?}")))?;
        // Collect every page of the tree (entries + rightlinks).
        let mut pages = Vec::new();
        let mut queue = vec![entry.root];
        let mut seen = HashSet::new();
        while let Some(pid) = queue.pop() {
            if pid.is_invalid() || !seen.insert(pid) {
                continue;
            }
            let g = self.pool.fetch_read(pid)?;
            if g.is_available() {
                continue; // dangling rightlink into an already-freed page
            }
            pages.push(pid);
            queue.push(g.rightlink());
            if !g.is_leaf() {
                for (_, cell) in g.iter_cells().filter(|(s, _)| *s != 0) {
                    queue.push(crate::entry::InternalEntry::decode_child(cell));
                }
            }
        }
        let txn = self.begin();
        let nta = self.txns.begin_nta(txn)?;
        // Undoable catalog removal first (InternalEntryDelete on page 0),
        // then the page frees — all inside one unit, so a crash midway
        // rolls the whole drop back.
        let old_cell = {
            let g = self.pool.fetch_read(PageId(0))?;
            g.cell(entry.slot)
                .ok_or_else(|| GistError::Corrupt("catalog cell vanished".into()))?
                .to_vec()
        };
        let rec =
            GistRecord::InternalEntryDelete { page: 0, slot: entry.slot, cell: old_cell };
        let lsn = self.txns.log_update(txn, RecordBody::Payload(rec.to_payload()))?;
        rec.redo(&self.pool, lsn)?;
        for pid in &pages {
            let rec = GistRecord::FreePage { page: pid.0 };
            let lsn = self.txns.log_update(txn, RecordBody::Payload(rec.to_payload()))?;
            rec.redo(&self.pool, lsn)?;
        }
        self.txns.end_nta(txn, nta)?;
        self.commit(txn)?;
        self.catalog.lock().retain(|e| e.slot != entry.slot);
        self.retired_roots.lock().remove(&entry.root);
        // The dropped index's pages go back to the allocator through the
        // epoch bin: an optimistic traversal that raced the drop may
        // still dereference them until its pin drains.
        let alloc = self.alloc.clone();
        let freed: Vec<PageId> = pages.clone();
        self.epoch.retire(move || {
            for pid in freed {
                alloc.free(pid);
            }
        });
        Ok(pages.len())
    }

    /// Current root of an index, reading through the catalog page (kept
    /// in the buffer pool, so this is cheap). Reading the durable cell —
    /// not a cached field — is what makes a concurrently executed root
    /// split visible.
    pub fn current_root(&self, entry_slot: SlotId) -> Result<PageId> {
        let g = self.pool.fetch_read(PageId(0))?;
        let cell = g
            .cell(entry_slot)
            .ok_or_else(|| GistError::Corrupt(format!("catalog slot {entry_slot} missing")))?;
        Ok(decode_catalog_cell(entry_slot, cell).root)
    }

    /// Update an index's root pointer (inside the caller's root-split
    /// NTA). Logs the catalog cell update and applies it.
    pub fn set_root(&self, txn: TxnId, entry_slot: SlotId, new_root: PageId) -> Result<()> {
        let (old_cell, new_cell) = {
            let g = self.pool.fetch_read(PageId(0))?;
            let old = g
                .cell(entry_slot)
                .ok_or_else(|| GistError::Corrupt(format!("catalog slot {entry_slot} missing")))?
                .to_vec();
            let e = decode_catalog_cell(entry_slot, &old);
            let new = encode_catalog_cell(e.id, new_root, e.unique, &e.name);
            (old, new)
        };
        let rec = GistRecord::InternalEntryUpdate {
            page: 0,
            slot: entry_slot,
            new_cell,
            old_cell,
        };
        let lsn = self.txns.log_update(txn, RecordBody::Payload(rec.to_payload()))?;
        rec.redo(&self.pool, lsn)?;
        // Refresh the cache and remember the demoted root.
        let mut cat = self.catalog.lock();
        if let Some(e) = cat.iter_mut().find(|e| e.slot == entry_slot) {
            self.retired_roots.lock().insert(e.root);
            e.root = new_root;
        }
        Ok(())
    }

    /// Whether `page` is a current or former root (node deletion must
    /// leave such pages alone; see `retired_roots`).
    pub fn is_protected_root(&self, page: PageId) -> bool {
        self.catalog.lock().iter().any(|e| e.root == page)
            || self.retired_roots.lock().contains(&page)
    }

    // ---- logical-undo support ----

    /// Locate the leaf entry with data RID `rid`, starting from the page
    /// it was logged on and compensating for later splits by walking
    /// rightlinks (§9.2: "between the time the index operation was
    /// performed and the time the transaction is aborted, the tree
    /// structure could have changed … the relevant entries may be moved
    /// rightward"). Falls back to a breadth-first sweep when the start
    /// page is no longer a leaf (root split moved the level down).
    /// Applies `apply` under the found page's X latch.
    fn locate_and_apply(
        &self,
        start: PageId,
        rid: Rid,
        apply: impl FnOnce(&mut PageWriteGuard, SlotId),
    ) -> std::result::Result<(), RecoveryError> {
        let mut queue = vec![start];
        let mut visited: HashSet<PageId> = HashSet::new();
        while let Some(pid) = queue.pop() {
            if pid.is_invalid() || !visited.insert(pid) {
                continue;
            }
            let mut g = self
                .pool
                .fetch_write(pid)
                .map_err(|e| RecoveryError(format!("fetch {pid} for undo: {e}")))?;
            if g.is_leaf() {
                if let Some((slot, _)) = crate::node::find_leaf_by_rid(&g, rid) {
                    apply(&mut g, slot);
                    return Ok(());
                }
                queue.push(g.rightlink());
            } else {
                // Root split demoted the original page: sweep children.
                for (_, e) in crate::node::internal_entries(&g) {
                    queue.push(e.child);
                }
                queue.push(g.rightlink());
            }
        }
        Err(RecoveryError(format!("leaf entry with {rid:?} not found from {start} during undo")))
    }
}

impl TxnEndObserver for Db {
    /// Free the transaction's admission credit the instant it leaves the
    /// transaction table — commit, owner abort, or watchdog teardown all
    /// funnel through here, so a wedged client can delay a credit but
    /// never leak it (the watchdog's timeout bounds the delay).
    fn txn_ended(&self, txn: TxnId) {
        self.admission.release(txn.0);
    }
}

impl Drop for Db {
    fn drop(&mut self) {
        // The flusher thread keeps the pipeline alive on its own; a Db
        // dropped without `shutdown`/`crash` must still join it or every
        // short-lived database leaks a thread. No drain: a drop without
        // shutdown carries no durability promise.
        self.txns.pipeline().stop(false);
    }
}

impl RecoveryHandler for Db {
    fn redo(&self, lsn: Lsn, payload: &Payload) -> std::result::Result<bool, RecoveryError> {
        if payload.bytes.is_empty() {
            return Ok(false); // empty CLR
        }
        let rec = GistRecord::decode(&payload.bytes)
            .map_err(|e| RecoveryError(format!("redo decode: {e}")))?;
        if let GistRecord::Split { orig_nsn_new, .. } = &rec {
            // Recover the dedicated counter as redo repeats history
            // (zero = LSN sentinel, see the record's docs).
            let nsn = if *orig_nsn_new == 0 { lsn.0 } else { *orig_nsn_new };
            self.nsn_counter.fetch_max(nsn, Ordering::SeqCst);
        }
        rec.redo(&self.pool, lsn).map_err(|e| RecoveryError(format!("redo apply: {e}")))
    }

    fn undo(
        &self,
        _rec: &LogRecord,
        payload: &Payload,
        _restart: bool,
        log_clr: &mut dyn FnMut(Payload) -> Lsn,
    ) -> std::result::Result<(), RecoveryError> {
        let gr = GistRecord::decode(&payload.bytes)
            .map_err(|e| RecoveryError(format!("undo decode: {e}")))?;
        match gr {
            GistRecord::AddLeafEntry { page, cell, .. } => {
                // Logical undo: locate the entry (it may have moved right)
                // and physically remove it. Per Table 1 we skip the
                // optional immediate garbage collection during restart;
                // as a conservative simplification we also skip it on
                // live abort (BPs stay valid upper bounds; the next
                // reorganization shrinks them).
                let rid = LeafEntry::decode_rid(&cell);
                self.locate_and_apply(PageId(page), rid, |g, slot| {
                    let clr =
                        log_clr(GistRecord::RemoveLeafEntry { page: g.page_id().0, slot }
                            .to_payload());
                    g.delete_cell(slot);
                    g.mark_dirty(clr);
                })
            }
            GistRecord::MarkLeafEntry { page, old_cell, .. } => {
                let rid = LeafEntry::decode_rid(&old_cell);
                self.locate_and_apply(PageId(page), rid, |g, slot| {
                    let clr = log_clr(
                        GistRecord::UnmarkLeafEntry {
                            page: g.page_id().0,
                            slot,
                            cell: old_cell.clone(),
                        }
                        .to_payload(),
                    );
                    g.update_cell(slot, &old_cell)
                        .unwrap_or_else(|e| unreachable!("unmark is same-size: {e}"));
                    g.mark_dirty(clr);
                })
            }
            GistRecord::Split {
                orig,
                new,
                moved,
                orig_bp_old,
                orig_nsn_old,
                orig_rightlink_old,
                ..
            } => {
                let clr = log_clr(
                    GistRecord::UndoSplit {
                        orig,
                        new,
                        restored: moved.clone(),
                        orig_bp: orig_bp_old.clone(),
                        orig_nsn: orig_nsn_old,
                        orig_rightlink: orig_rightlink_old,
                    }
                    .to_payload(),
                );
                {
                    let mut g = self
                        .pool
                        .fetch_write(PageId(orig))
                        .map_err(|e| RecoveryError(e.to_string()))?;
                    for (slot, cell) in &moved {
                        g.insert_cell_at(*slot, cell)
                            .map_err(|e| RecoveryError(format!("undo split: {e}")))?;
                    }
                    crate::node::set_bp(&mut g, &orig_bp_old)
                        .map_err(|e| RecoveryError(format!("undo split BP: {e}")))?;
                    g.set_nsn(orig_nsn_old);
                    g.set_rightlink(PageId(orig_rightlink_old));
                    g.mark_dirty(clr);
                }
                {
                    let mut g = self
                        .pool
                        .fetch_write(PageId(new))
                        .map_err(|e| RecoveryError(e.to_string()))?;
                    g.clear_cells();
                    g.mark_dirty(clr);
                }
                Ok(())
            }
            GistRecord::InternalEntryAdd { page, slot, cell } => {
                let clr =
                    log_clr(GistRecord::InternalEntryDelete { page, slot, cell }.to_payload());
                let mut g = self
                    .pool
                    .fetch_write(PageId(page))
                    .map_err(|e| RecoveryError(e.to_string()))?;
                g.delete_cell(slot);
                g.mark_dirty(clr);
                Ok(())
            }
            GistRecord::InternalEntryUpdate { page, slot, new_cell, old_cell } => {
                let clr = log_clr(
                    GistRecord::InternalEntryUpdate {
                        page,
                        slot,
                        new_cell: old_cell.clone(),
                        old_cell: new_cell,
                    }
                    .to_payload(),
                );
                let mut g = self
                    .pool
                    .fetch_write(PageId(page))
                    .map_err(|e| RecoveryError(e.to_string()))?;
                g.update_cell(slot, &old_cell)
                    .map_err(|e| RecoveryError(format!("undo entry update: {e}")))?;
                g.mark_dirty(clr);
                Ok(())
            }
            GistRecord::InternalEntryDelete { page, slot, cell } => {
                let clr = log_clr(
                    GistRecord::InternalEntryAdd { page, slot, cell: cell.clone() }.to_payload(),
                );
                let mut g = self
                    .pool
                    .fetch_write(PageId(page))
                    .map_err(|e| RecoveryError(e.to_string()))?;
                g.insert_cell_at(slot, &cell)
                    .map_err(|e| RecoveryError(format!("undo entry delete: {e}")))?;
                g.mark_dirty(clr);
                Ok(())
            }
            GistRecord::GetPage { page, .. } => {
                let clr = log_clr(GistRecord::SetAvailable { page }.to_payload());
                let mut g = self
                    .pool
                    .fetch_write(PageId(page))
                    .map_err(|e| RecoveryError(e.to_string()))?;
                g.set_available(true);
                g.mark_dirty(clr);
                Ok(())
            }
            GistRecord::FreePage { page } => {
                let clr = log_clr(GistRecord::SetUnavailable { page }.to_payload());
                let mut g = self
                    .pool
                    .fetch_write(PageId(page))
                    .map_err(|e| RecoveryError(e.to_string()))?;
                g.set_available(false);
                g.mark_dirty(clr);
                Ok(())
            }
            GistRecord::CatalogAdd { slot, .. } => {
                let clr = log_clr(GistRecord::CatalogRemove { slot }.to_payload());
                let mut g = self
                    .pool
                    .fetch_write(PageId(0))
                    .map_err(|e| RecoveryError(e.to_string()))?;
                g.delete_cell(slot);
                g.mark_dirty(clr);
                Ok(())
            }
            // Redo-only records (Table 1: Parent-Entry-Update and
            // Garbage-Collection) and compensation payloads: no action —
            // the driver writes an empty CLR to keep the chain skipping.
            GistRecord::ParentEntryUpdate { .. }
            | GistRecord::GarbageCollection { .. }
            | GistRecord::CatalogRemove { .. }
            | GistRecord::RemoveLeafEntry { .. }
            | GistRecord::UnmarkLeafEntry { .. }
            | GistRecord::UndoSplit { .. }
            | GistRecord::SetAvailable { .. }
            | GistRecord::SetUnavailable { .. } => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_pagestore::InMemoryStore;

    fn fresh_db() -> Arc<Db> {
        let store = Arc::new(InMemoryStore::new());
        let log = Arc::new(LogManager::new());
        Db::open(store, log, DbConfig::default()).unwrap()
    }

    #[test]
    fn bootstrap_creates_catalog_page() {
        let db = fresh_db();
        assert!(db.pool().store().page_count() >= 1);
        assert!(db.open_index_raw("nope").is_none());
    }

    #[test]
    fn create_index_is_recoverable() {
        let store = Arc::new(InMemoryStore::new());
        let log = Arc::new(LogManager::new());
        let db = Db::open(store.clone(), log.clone(), DbConfig::default()).unwrap();
        let e = db.create_index_raw("t", false).unwrap();
        assert_eq!(e.name, "t");
        assert!(!e.unique);
        db.crash();
        let (db2, report) = Db::restart(store, log, DbConfig::default()).unwrap();
        assert_eq!(report.indexes, 1);
        let e2 = db2.open_index_raw("t").unwrap();
        assert_eq!(e2.id, e.id);
        assert_eq!(e2.root, e.root);
        // The root page was re-formatted by redo.
        let g = db2.pool().fetch_read(e2.root).unwrap();
        assert!(g.is_leaf());
        assert!(!g.is_available());
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let db = fresh_db();
        db.create_index_raw("t", false).unwrap();
        assert!(matches!(db.create_index_raw("t", true), Err(GistError::Config(_))));
    }

    #[test]
    fn multiple_indexes_get_distinct_roots_and_ids() {
        let db = fresh_db();
        let a = db.create_index_raw("a", false).unwrap();
        let b = db.create_index_raw("b", true).unwrap();
        assert_ne!(a.id, b.id);
        assert_ne!(a.root, b.root);
        assert!(b.unique);
        assert_eq!(db.current_root(a.slot).unwrap(), a.root);
    }

    #[test]
    fn set_root_updates_catalog_durably() {
        let store = Arc::new(InMemoryStore::new());
        let log = Arc::new(LogManager::new());
        let db = Db::open(store.clone(), log.clone(), DbConfig::default()).unwrap();
        let e = db.create_index_raw("t", false).unwrap();
        let txn = db.begin();
        db.set_root(txn, e.slot, PageId(42)).unwrap();
        db.commit(txn).unwrap();
        assert_eq!(db.current_root(e.slot).unwrap(), PageId(42));
        db.crash();
        let (db2, _) = Db::restart(store, log, DbConfig::default()).unwrap();
        assert_eq!(db2.current_root(e.slot).unwrap(), PageId(42));
    }

    #[test]
    fn nsn_sources_behave() {
        let store = Arc::new(InMemoryStore::new());
        let log = Arc::new(LogManager::new());
        let db = Db::open(
            store,
            log.clone(),
            DbConfig { nsn_source: NsnSource::WalLsn, ..DbConfig::default() },
        )
        .unwrap();
        assert_eq!(db.global_nsn(), log.last_lsn().0);
        let lsn = log.append(TxnId(1), Lsn::NULL, RecordBody::TxnBegin);
        assert_eq!(db.global_nsn(), lsn.0);
        assert_eq!(db.split_nsn(lsn), lsn.0);

        let store2 = Arc::new(InMemoryStore::new());
        let db2 = Db::open(
            store2,
            Arc::new(LogManager::new()),
            DbConfig { nsn_source: NsnSource::DedicatedCounter, ..DbConfig::default() },
        )
        .unwrap();
        assert_eq!(db2.global_nsn(), 0);
        assert_eq!(db2.split_nsn(Lsn(999)), 1, "dedicated counter ignores the LSN");
        assert_eq!(db2.global_nsn(), 1);
    }
}
