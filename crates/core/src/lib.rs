#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # gist-core — Generalized Search Trees with concurrency and recovery
//!
//! A faithful implementation of *Concurrency and Recovery in Generalized
//! Search Trees* (Kornacker, Mohan, Hellerstein — SIGMOD 1997):
//!
//! - the **GiST template** of \[HNP95\], specialized through the
//!   [`GistExtension`] trait (`consistent`, `penalty`, `union`,
//!   `pickSplit`, plus codecs);
//! - the **link-based concurrency protocol** (§3, §5–§7): node sequence
//!   numbers + rightlinks, no latches held across I/Os, no lock coupling,
//!   deadlock-free latching;
//! - **repeatable read** via the hybrid mechanism (§4): two-phase record
//!   locking combined with node-attached predicate locks, logical deletes,
//!   deferred garbage collection, drain-based node deletion with
//!   signaling locks, and unique-index insertion (§8);
//! - the **logging and recovery protocol** of §9/Table 1: structure
//!   modifications as nested top actions, page-oriented redo, logical
//!   undo of leaf-entry insertion/deletion, and restart that never runs
//!   structure modifications during undo;
//! - **savepoints** and partial rollback with cursor restoration (§10.2);
//! - **baseline protocols** (subtree latching, latch coupling, no-link,
//!   pure predicate locking) used by the experiment suite to reproduce the
//!   paper's comparative claims.
//!
//! Entry points: build a [`Db`], create a [`GistIndex`] with your
//! extension (or one from `gist-am`), then run transactions.

pub(crate) mod audit;
pub mod baseline;
pub(crate) mod chaos;
pub mod check;
mod db;
mod entry;
mod error;
pub mod ext;
mod logrec;
mod maint;
mod node;
mod ops;
mod tree;

pub use db::{
    Db, DbConfig, IsolationLevel, NsnSource, OptReadStats, PredicateMode, RestartReport,
    RobustnessStats,
};
pub use entry::{InternalEntry, LeafEntry};
pub use error::GistError;
pub use ext::GistExtension;
// The maintenance daemon's public surface, re-exported so users don't
// need a direct gist-maint dependency.
pub use gist_maint::{
    DrainOutcome, GcOutcome, MaintConfig, MaintDaemon, MaintError, MaintIndex,
    MaintStatsSnapshot, SweepOutcome, WorkItem,
};
// The commit pipeline's per-transaction knobs, re-exported for the same
// reason (`Db::begin_with` and `DbConfig::durability` take them).
// The overload-resilience surface (`DbConfig::admission`, `Db::health`,
// `RobustnessStats::admission`), re-exported for the same reason.
pub use gist_overload::{AdmissionConfig, AdmissionStats, HealthState};
pub use gist_txn::{Durability, TxnOptions};
pub use logrec::GistRecord;
pub use ops::cursor::{Cursor, CursorSnapshot};
pub use ops::delete::VacuumReport;
pub use tree::{GistIndex, IndexOptions, TreeStats};

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, GistError>;
