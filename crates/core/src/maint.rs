//! The tree side of the maintenance daemon: [`MaintIndex`] for
//! [`GistIndex`].
//!
//! Every method is self-contained — it begins its own short system
//! transaction, does NTA-wrapped physical work through the existing §7
//! machinery ([`GistIndex::gc_leaf`], `try_delete_node`, `vacuum_sync`),
//! and commits. Losing a latch or signaling-lock race to a foreground
//! transaction maps to [`MaintError::Retry`] / [`DrainOutcome::Busy`] so
//! the daemon backs off instead of blocking anyone.

use gist_maint::{DrainOutcome, GcOutcome, MaintError, MaintIndex, SweepOutcome};
use gist_pagestore::PageId;

use crate::ext::GistExtension;
use crate::node;
use crate::ops::StackEntry;
use crate::tree::GistIndex;
use crate::GistError;

/// Classify a tree error for the daemon: lock-manager trouble (timeout,
/// deadlock victim) means a foreground transaction got in the way —
/// retry later, as is a transient I/O error (the pool already retried
/// with backoff; the daemon adds its own coarser retry on top). A
/// poisoned store ([`GistError::StorageFailed`]) is fatal: maintenance
/// mutates pages, which a read-only pool refuses forever.
fn classify(e: GistError) -> MaintError {
    match e {
        GistError::Lock(_) => MaintError::Retry(e.to_string()),
        GistError::Txn(gist_txn::TxnError::Lock(_)) => MaintError::Retry(e.to_string()),
        GistError::StorageFailed(_) => MaintError::Fatal(e.to_string()),
        GistError::Io(ref io) if gist_pagestore::is_transient_io(io) => {
            MaintError::Retry(e.to_string())
        }
        other => MaintError::Fatal(other.to_string()),
    }
}

impl<E: GistExtension> GistIndex<E> {
    /// In `latch-audit` builds, run the §5/§7 structural checker after a
    /// maintenance mutation — but only when the tree is quiescent (the
    /// checker's sweep is only exact without concurrent foreground
    /// transactions) and report any violation as a fatal maint error.
    #[cfg(feature = "latch-audit")]
    fn audit_check_structure(&self, what: &str) -> Result<(), MaintError> {
        if self.db().txns().active_count() != 0 {
            return Ok(()); // non-quiescent: a sweep would race descents
        }
        let report = crate::check::check_tree(self)
            .map_err(|e| MaintError::Fatal(format!("post-{what} check failed: {e}")))?;
        if !report.ok() {
            return Err(MaintError::Fatal(format!(
                "post-{what} structural violations: {:?}",
                report.violations
            )));
        }
        Ok(())
    }

    #[cfg(not(feature = "latch-audit"))]
    #[inline(always)]
    fn audit_check_structure(&self, _what: &str) -> Result<(), MaintError> {
        Ok(())
    }

    /// A usable parent hint, or `None` if the hinted page no longer
    /// looks like an internal node (freed, reused as a leaf). GC then
    /// simply skips the BP-shrink propagation — parent BPs stay
    /// conservative upper bounds, which is always correct.
    fn validate_parent_hint(&self, hint: Option<PageId>) -> Option<StackEntry> {
        let p = hint?;
        // Blessed parent/child window: GC holds the try-latched leaf
        // while peeking (S) at its hinted parent one level up.
        let _scope = crate::audit::enter_scope_rel("parent-child:hint-check", 1);
        let g = self.db().pool().fetch_read(p).ok()?;
        if g.is_available() || g.is_leaf() {
            return None;
        }
        Some(StackEntry { page: p, nsn_at_visit: g.nsn() })
    }
}

impl<E: GistExtension> MaintIndex for GistIndex<E> {
    fn maint_index_id(&self) -> u32 {
        self.id()
    }

    fn maint_gc_leaf(
        &self,
        leaf: PageId,
        parent_hint: Option<PageId>,
    ) -> Result<GcOutcome, MaintError> {
        let db = self.db().clone();
        let txn = db.begin();
        let result = (|| {
            // Try-only latch: the daemon never waits on a leaf a
            // foreground operation holds.
            let mut g = db
                .pool()
                .try_fetch_write(leaf)
                .map_err(|e| classify(e.into()))?
                .ok_or_else(|| MaintError::Retry(format!("leaf {leaf} latched")))?;
            // The candidate may be stale: the page could have been
            // drained and reused since the deleting transaction ran.
            if g.is_available() || !g.is_leaf() {
                return Ok(GcOutcome::default());
            }
            let hint = self.validate_parent_hint(parent_hint);
            let reclaimed = self.gc_leaf(txn, &mut g, hint).map_err(classify)?;
            let leaf_empty = node::entry_count(&g) == 0;
            Ok(GcOutcome { reclaimed, leaf_empty })
        })();
        match &result {
            Ok(_) => {
                db.commit(txn).map_err(|e| MaintError::Fatal(e.to_string()))?;
                self.audit_check_structure("gc")?;
            }
            Err(_) => {
                let _ = db.abort(txn);
            }
        }
        result
    }

    fn maint_try_drain(
        &self,
        leaf: PageId,
        parent_hint: Option<PageId>,
    ) -> Result<DrainOutcome, MaintError> {
        // Without a parent there is nothing to unlink from; the next
        // full sweep retires the node instead.
        let Some(parent) = parent_hint else {
            return Ok(DrainOutcome::Skipped);
        };
        let db = self.db().clone();
        let fatal = |e: GistError| MaintError::Fatal(e.to_string());
        {
            // Cheap ineligibility checks before spending a transaction.
            let g = db.pool().fetch_read(leaf).map_err(|e| classify(e.into()))?;
            if g.is_available() || !g.is_leaf() || node::entry_count(&g) != 0 {
                return Ok(DrainOutcome::Skipped);
            }
        }
        if self.validate_parent_hint(Some(parent)).is_none() {
            return Ok(DrainOutcome::Skipped);
        }
        let txn = db.begin();
        match self.try_delete_node(txn, parent, leaf) {
            Ok(deleted) => {
                db.commit(txn).map_err(fatal)?;
                if deleted {
                    self.audit_check_structure("drain")?;
                    Ok(DrainOutcome::Deleted)
                } else {
                    // Drain semantics (§7.2): a pointer holder still has
                    // its signaling lock, or a latch was contended. Both
                    // clear once the foreground operation moves on.
                    Ok(DrainOutcome::Busy)
                }
            }
            Err(e) => {
                let _ = db.abort(txn);
                Err(classify(e))
            }
        }
    }

    fn maint_sweep(&self) -> Result<SweepOutcome, MaintError> {
        let db = self.db().clone();
        let txn = db.begin();
        match self.vacuum_sync(txn) {
            Ok(rep) => {
                db.commit(txn).map_err(|e| MaintError::Fatal(e.to_string()))?;
                self.audit_check_structure("sweep")?;
                Ok(SweepOutcome {
                    entries_removed: rep.entries_removed,
                    nodes_deleted: rep.nodes_deleted,
                })
            }
            Err(e) => {
                let _ = db.abort(txn);
                Err(classify(e))
            }
        }
    }
}
