#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Predicate manager (§10.3 of the paper).
//!
//! The hybrid repeatable-read mechanism (§4.3) attaches search predicates
//! *directly to tree nodes* instead of keeping a tree-global predicate
//! list. This component provides exactly the functions §10.3 enumerates:
//!
//! 1. attaching search predicates to nodes,
//! 2. removing a transaction's predicates at termination,
//! 3. checking a node's attached predicates against an insert's new key,
//! 4. replicating attachments at child nodes during BP-update percolation,
//! 5. replicating attachments at sibling nodes during node splits.
//!
//! Its data structures mirror the paper's list: a list of predicates per
//! transaction, a list of node attachments per predicate, and a FIFO list
//! of predicates per node. FIFO matters for starvation freedom: an insert
//! blocked on scan predicates registers its own *insert predicate* so that
//! later scans queue behind it (§10.3, "enforce fair locking behavior by
//! ordering predicates … in a FIFO list and checking each new predicate
//! against those ahead of it").
//!
//! The per-node FIFO lists are **striped** (`gist-striped`): a `NodeKey`
//! hashes to one of N shards, and each list entry carries the owner,
//! kind and predicate bytes inline — so insert-time predicate checks on
//! different leaves touch different shards and never consult the
//! registry at all. The registry (a single mutex holding the
//! per-predicate and per-transaction indexes) is only on the slow paths:
//! register, attach bookkeeping, termination. Registry and node shards
//! are never held simultaneously; split-time replication takes the two
//! node shards in ascending index order ([`Striped::lock_pair`]), which
//! keeps the node-pair update atomic. FIFO order per node is untouched —
//! a node's list lives entirely inside one shard.
//!
//! Predicates are opaque byte strings here; the index supplies the
//! conflict test (its `consistent()` extension method — §6: "the function
//! consistent(), which is used to detect conflicting predicates, is the
//! same user-supplied function that is also used … to navigate").
//! Blocking on a predicate is not this component's job: callers block via
//! the lock manager on the owner's transaction-id lock.

use std::collections::HashMap;
use std::sync::Arc;

use gist_sync::Mutex;

use gist_pagestore::PageId;
use gist_striped::Striped;
use gist_wal::TxnId;

/// What a predicate protects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredKind {
    /// A search predicate (protects a search range against phantoms).
    /// Also used for the §8 unique-insert "`= key`" probe predicates.
    Scan,
    /// An insert predicate (the new key), registered so later scans queue
    /// behind a blocked insert instead of starving it.
    Insert,
}

/// Handle to a registered predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(pub u64);

/// A registered predicate (snapshot returned to callers).
#[derive(Debug, Clone)]
pub struct Predicate {
    /// Handle.
    pub id: PredId,
    /// Owning transaction.
    pub txn: TxnId,
    /// Scan or insert.
    pub kind: PredKind,
    /// Index-encoded predicate (a query for scans, a key for inserts).
    pub bytes: Arc<[u8]>,
}

/// A node a predicate can be attached to: `(index id, page)`.
pub type NodeKey = (u32, PageId);

/// Sentinel node used by the pure-predicate-locking baseline (§4.2): one
/// global attachment list for the whole tree.
pub const GLOBAL_NODE: NodeKey = (u32::MAX, PageId::INVALID);

#[derive(Debug)]
struct PredState {
    txn: TxnId,
    kind: PredKind,
    bytes: Arc<[u8]>,
    attachments: Vec<NodeKey>,
}

/// One FIFO-list entry. Owner/kind/bytes are denormalized from the
/// registry so node-local checks are shard-local.
#[derive(Debug, Clone)]
struct NodeEntry {
    id: PredId,
    txn: TxnId,
    kind: PredKind,
    bytes: Arc<[u8]>,
}

/// Slow-path indexes: predicate states and the per-transaction lists.
#[derive(Default)]
struct Registry {
    next_id: u64,
    preds: HashMap<PredId, PredState>,
    by_txn: HashMap<TxnId, Vec<PredId>>,
}

/// Counters kept by the predicate manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredStats {
    /// Currently registered predicates.
    pub predicates: usize,
    /// Total node attachments.
    pub attachments: usize,
    /// Nodes with at least one attachment.
    pub nodes: usize,
}

/// The predicate manager.
pub struct PredicateManager {
    registry: Mutex<Registry>,
    /// Striped per-node FIFO attachment lists.
    nodes: Striped<HashMap<NodeKey, Vec<NodeEntry>>>,
}

impl Default for PredicateManager {
    fn default() -> Self {
        Self::with_shards(0)
    }
}

impl PredicateManager {
    /// Empty manager with the default node-table shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty manager with an explicit node-table shard count (rounded up
    /// to a power of two; `0` = `next_pow2(2×cores)`). Shard count 1
    /// reproduces the pre-sharding single-table behavior exactly.
    pub fn with_shards(shards: usize) -> Self {
        PredicateManager {
            registry: Mutex::new(Registry::default()),
            nodes: Striped::with_default(shards),
        }
    }

    /// Number of node-table shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.nodes.shard_count()
    }

    /// The node-table shard `node` maps to (stable for the manager's
    /// lifetime; tests use this to build colliding / spread node sets).
    pub fn node_shard(&self, node: &NodeKey) -> usize {
        self.nodes.index_of(node)
    }

    /// Register a predicate for `txn` (no attachments yet).
    pub fn register(&self, txn: TxnId, kind: PredKind, bytes: Vec<u8>) -> PredId {
        let mut reg = self.registry.lock();
        reg.next_id += 1;
        let id = PredId(reg.next_id);
        reg.preds.insert(
            id,
            PredState {
                txn,
                kind,
                bytes: Arc::from(bytes.into_boxed_slice()),
                attachments: Vec::new(),
            },
        );
        reg.by_txn.entry(txn).or_default().push(id);
        id
    }

    /// Attach `pred` to `node` (idempotent). Returns whether a new
    /// attachment was created.
    pub fn attach(&self, pred: PredId, node: NodeKey) -> bool {
        // Claim the attachment in the registry first (atomic idempotence
        // check), then insert into the node shard, then re-check the
        // registry: a concurrent owner termination that raced the shard
        // insert is swept up. Registry and shard are never held together.
        let entry = {
            let mut reg = self.registry.lock();
            let Some(p) = reg.preds.get_mut(&pred) else {
                // Owner already terminated: nothing to protect.
                return false;
            };
            if p.attachments.contains(&node) {
                return false;
            }
            p.attachments.push(node);
            NodeEntry { id: pred, txn: p.txn, kind: p.kind, bytes: p.bytes.clone() }
        };
        {
            // Dedupe at the insert: a replicate(from, node) racing between
            // our registry claim and this push may already have copied the
            // entry here (the registry lists `node`, so replicate's
            // bookkeeping skips it) — pushing unconditionally would leave
            // a duplicate FIFO entry for one predicate.
            let mut sh = self.nodes.lock(&node);
            let list = sh.entry(node).or_default();
            // Historical duplicate-FIFO race, compiled in only under the
            // `mutations` feature and armed at runtime by model-checker
            // self-tests: pushing without the dedupe check duplicates the
            // entry when a replicate already copied it here.
            #[cfg(feature = "mutations")]
            let skip_dedupe = gist_audit::mutation::armed("predlock.attach-skip-dedupe");
            #[cfg(not(feature = "mutations"))]
            let skip_dedupe = false;
            if skip_dedupe || list.iter().all(|e| e.id != pred) {
                list.push(entry);
            }
        }
        self.sweep_if_terminated(pred, node);
        true
    }

    /// Attach a scan predicate to `node` and return the owners of
    /// conflicting *insert* predicates attached **ahead of it** (FIFO
    /// fairness: a scan arriving after a blocked insert queues behind it).
    ///
    /// `conflict(scan_bytes, insert_key_bytes)` is the index's
    /// `consistent()` test.
    ///
    /// Shares [`check_insert`](Self::check_insert)'s transient-staleness
    /// caveat: a returned owner may have just terminated; waiting on its
    /// transaction-id lock then resolves immediately.
    pub fn attach_scan_and_check(
        &self,
        pred: PredId,
        node: NodeKey,
        conflict: &dyn Fn(&[u8], &[u8]) -> bool,
    ) -> Vec<TxnId> {
        let info = {
            let mut reg = self.registry.lock();
            match reg.preds.get_mut(&pred) {
                Some(p) => {
                    let fresh = if p.attachments.contains(&node) {
                        false
                    } else {
                        p.attachments.push(node);
                        true
                    };
                    Some((p.txn, p.kind, p.bytes.clone(), fresh))
                }
                None => None,
            }
        };
        let Some((me, kind, my_bytes, fresh)) = info else { return Vec::new() };
        let mut owners = Vec::new();
        {
            // Conflict scan and self-attach under one shard lock: the
            // node's FIFO list is mutated atomically, exactly as under
            // the old global mutex.
            let mut sh = self.nodes.lock(&node);
            let list = sh.entry(node).or_default();
            for e in list.iter() {
                if e.txn == me || e.kind != PredKind::Insert {
                    continue;
                }
                if conflict(&my_bytes, &e.bytes) && !owners.contains(&e.txn) {
                    owners.push(e.txn);
                }
            }
            // Same dedupe as `attach`: a racing replicate may already have
            // copied this predicate's entry into the node's list.
            if fresh && list.iter().all(|e| e.id != pred) {
                list.push(NodeEntry { id: pred, txn: me, kind, bytes: my_bytes });
            }
            if list.is_empty() {
                sh.remove(&node);
            }
        }
        self.sweep_if_terminated(pred, node);
        owners
    }

    /// Check a new key against the *scan* predicates attached to `node`
    /// (§6 step 6: "check the list of predicates attached to the leaf and
    /// block on the conflicting ones"). Returns conflicting owners in
    /// FIFO order, deduplicated. Touches only `node`'s shard — the hot
    /// insert path never takes the registry.
    ///
    /// **Transient staleness:** this reads the denormalized node-shard
    /// entries only. Between [`release_txn`](Self::release_txn) removing
    /// an owner's predicates from the registry and the per-node sweep
    /// clearing its shard entries, a check can report a conflict naming
    /// an already-terminated owner (impossible under the old global
    /// mutex). Callers must tolerate this: they already do, because they
    /// block via the lock manager on the owner's transaction-id lock,
    /// which a terminated owner has released — the wait resolves
    /// immediately and the caller re-checks. The effect is a transient
    /// spurious conflict, never a missed one.
    pub fn check_insert(
        &self,
        node: NodeKey,
        me: TxnId,
        key_bytes: &[u8],
        conflict: &dyn Fn(&[u8], &[u8]) -> bool,
    ) -> Vec<TxnId> {
        let sh = self.nodes.lock(&node);
        let mut owners = Vec::new();
        if let Some(list) = sh.get(&node) {
            for e in list {
                if e.txn == me || e.kind != PredKind::Scan {
                    continue;
                }
                if conflict(&e.bytes, key_bytes) && !owners.contains(&e.txn) {
                    owners.push(e.txn);
                }
            }
        }
        owners
    }

    /// Snapshot of the predicates attached to `node`.
    pub fn predicates_on(&self, node: NodeKey) -> Vec<Predicate> {
        let sh = self.nodes.lock(&node);
        sh.get(&node)
            .map(|list| {
                list.iter()
                    .map(|e| Predicate {
                        id: e.id,
                        txn: e.txn,
                        kind: e.kind,
                        bytes: e.bytes.clone(),
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Replicate attachments from `from` to `to` for every predicate that
    /// passes `keep` (function 5 of §10.3, used when a node splits: `keep`
    /// tests the predicate against the new sibling's BP, and function 4,
    /// percolation to children on BP expansion). Preserves FIFO order.
    /// Returns the number of new attachments.
    ///
    /// The two node shards are locked in ascending index order, making
    /// the node-pair copy atomic; registry bookkeeping follows with no
    /// shard held, and entries whose owner terminated in between are
    /// swept back out.
    pub fn replicate(
        &self,
        from: NodeKey,
        to: NodeKey,
        keep: &dyn Fn(PredKind, &[u8]) -> bool,
    ) -> usize {
        let inserted: Vec<PredId> = {
            let (mut ga, mut gb) = self.nodes.lock_pair(&from, &to);
            let candidates: Vec<NodeEntry> = ga
                .get(&from)
                .map(|l| l.iter().filter(|e| keep(e.kind, &e.bytes)).cloned().collect())
                .unwrap_or_default();
            if candidates.is_empty() {
                return 0;
            }
            let to_map = match gb.as_mut() {
                Some(g) => &mut **g,
                None => &mut *ga,
            };
            let list = to_map.entry(to).or_default();
            let mut inserted = Vec::new();
            for e in candidates {
                if list.iter().any(|x| x.id == e.id) {
                    continue;
                }
                inserted.push(e.id);
                list.push(e);
            }
            if list.is_empty() {
                to_map.remove(&to);
            }
            inserted
        };
        let mut n = 0;
        let mut dead: Vec<PredId> = Vec::new();
        {
            let mut reg = self.registry.lock();
            for id in &inserted {
                match reg.preds.get_mut(id) {
                    Some(p) => {
                        if !p.attachments.contains(&to) {
                            p.attachments.push(to);
                            n += 1;
                        }
                    }
                    None => dead.push(*id),
                }
            }
        }
        if !dead.is_empty() {
            let mut sh = self.nodes.lock(&to);
            if let Some(list) = sh.get_mut(&to) {
                list.retain(|e| !dead.contains(&e.id));
                if list.is_empty() {
                    sh.remove(&to);
                }
            }
        }
        n
    }

    /// Detach a single predicate from every node and drop it (used for
    /// the §8 unique-insert probe predicates, which are released once the
    /// insert finishes, before transaction end, and for insert
    /// predicates once the insert has succeeded).
    pub fn drop_predicate(&self, pred: PredId) {
        let removed = {
            let mut reg = self.registry.lock();
            let p = reg.preds.remove(&pred);
            if let Some(p) = &p {
                if let Some(list) = reg.by_txn.get_mut(&p.txn) {
                    list.retain(|x| *x != pred);
                    if list.is_empty() {
                        reg.by_txn.remove(&p.txn);
                    }
                }
            }
            p
        };
        if let Some(p) = removed {
            self.detach_from_nodes(pred, &p.attachments);
        }
    }

    /// Detach every predicate from `node` and drop the node's table.
    /// Called when a page is returned to the free pool — a reverted
    /// split's sibling, a drained node — so the page's next tenant does
    /// not inherit attachments that belong to a dead incarnation. The
    /// predicates themselves survive (they remain attached to every
    /// other node, and to their owners until transaction end).
    pub fn purge_node(&self, node: NodeKey) {
        let ids: Vec<PredId> = {
            let mut sh = self.nodes.lock(&node);
            match sh.remove(&node) {
                Some(list) => list.iter().map(|e| e.id).collect(),
                None => return,
            }
        };
        let mut reg = self.registry.lock();
        for id in ids {
            if let Some(p) = reg.preds.get_mut(&id) {
                p.attachments.retain(|n| n != &node);
            }
        }
    }

    /// Remove every predicate owned by `txn` (transaction termination:
    /// "the predicates and their node attachments are only removed when
    /// the owner transaction terminates", §4.3).
    pub fn release_txn(&self, txn: TxnId) {
        let removed: Vec<(PredId, Vec<NodeKey>)> = {
            let mut reg = self.registry.lock();
            let ids = reg.by_txn.remove(&txn).unwrap_or_default();
            ids.into_iter()
                .filter_map(|id| reg.preds.remove(&id).map(|p| (id, p.attachments)))
                .collect()
        };
        for (id, attachments) in removed {
            self.detach_from_nodes(id, &attachments);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> PredStats {
        let (predicates, attachments) = {
            let reg = self.registry.lock();
            (reg.preds.len(), reg.preds.values().map(|p| p.attachments.len()).sum())
        };
        let mut nodes = 0;
        for idx in 0..self.nodes.shard_count() {
            nodes += self.nodes.lock_index(idx).len();
        }
        PredStats { predicates, attachments, nodes }
    }

    // ---- internals ----

    /// Remove `pred`'s entries from the given nodes' shard lists (one
    /// shard lock at a time; removals are idempotent).
    fn detach_from_nodes(&self, pred: PredId, nodes: &[NodeKey]) {
        for node in nodes {
            let mut sh = self.nodes.lock(node);
            if let Some(list) = sh.get_mut(node) {
                list.retain(|e| e.id != pred);
                if list.is_empty() {
                    sh.remove(node);
                }
            }
        }
    }

    /// Close the attach-vs-termination race: the attachment was recorded
    /// in the registry *before* the shard insert, so a termination that
    /// ran in between saw it and removed what existed then — but our
    /// shard insert may have landed after its sweep. If the predicate is
    /// gone now, take the entry back out (idempotent either way).
    fn sweep_if_terminated(&self, pred: PredId, node: NodeKey) {
        let live = self.registry.lock().preds.contains_key(&pred);
        if !live {
            self.detach_from_nodes(pred, &[node]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(p: u32) -> NodeKey {
        (1, PageId(p))
    }

    /// Conflict test used by the tests: byte strings conflict when they
    /// share a first byte.
    fn overlap(a: &[u8], b: &[u8]) -> bool {
        !a.is_empty() && !b.is_empty() && a[0] == b[0]
    }

    #[test]
    fn register_attach_check() {
        let pm = PredicateManager::new();
        let p = pm.register(TxnId(1), PredKind::Scan, vec![7, 7]);
        pm.attach(p, node(1));
        let hits = pm.check_insert(node(1), TxnId(2), &[7, 0], &overlap);
        assert_eq!(hits, vec![TxnId(1)]);
        let misses = pm.check_insert(node(1), TxnId(2), &[8, 0], &overlap);
        assert!(misses.is_empty());
    }

    #[test]
    fn own_predicates_never_conflict() {
        let pm = PredicateManager::new();
        let p = pm.register(TxnId(1), PredKind::Scan, vec![7]);
        pm.attach(p, node(1));
        assert!(pm.check_insert(node(1), TxnId(1), &[7], &overlap).is_empty());
    }

    #[test]
    fn insert_checks_only_scans_and_scan_checks_only_inserts() {
        let pm = PredicateManager::new();
        let ins = pm.register(TxnId(1), PredKind::Insert, vec![7]);
        pm.attach(ins, node(1));
        // An insert by T2 ignores T1's *insert* predicate.
        assert!(pm.check_insert(node(1), TxnId(2), &[7], &overlap).is_empty());
        // But a scan by T2 queues behind it.
        let scan = pm.register(TxnId(2), PredKind::Scan, vec![7]);
        let owners = pm.attach_scan_and_check(scan, node(1), &overlap);
        assert_eq!(owners, vec![TxnId(1)]);
    }

    #[test]
    fn fifo_scan_sees_only_preds_ahead() {
        let pm = PredicateManager::new();
        // Scan attaches first; insert predicate lands after it; the scan's
        // attach-time check saw nothing.
        let scan = pm.register(TxnId(1), PredKind::Scan, vec![9]);
        let owners = pm.attach_scan_and_check(scan, node(1), &overlap);
        assert!(owners.is_empty());
        let ins = pm.register(TxnId(2), PredKind::Insert, vec![9]);
        pm.attach(ins, node(1));
        // A later scan does see the insert predicate ahead of it.
        let scan2 = pm.register(TxnId(3), PredKind::Scan, vec![9]);
        let owners2 = pm.attach_scan_and_check(scan2, node(1), &overlap);
        assert_eq!(owners2, vec![TxnId(2)]);
    }

    #[test]
    fn attach_is_idempotent() {
        let pm = PredicateManager::new();
        let p = pm.register(TxnId(1), PredKind::Scan, vec![1]);
        assert!(pm.attach(p, node(1)));
        assert!(!pm.attach(p, node(1)));
        assert_eq!(pm.stats().attachments, 1);
    }

    #[test]
    fn replicate_filters_by_bp() {
        let pm = PredicateManager::new();
        let a = pm.register(TxnId(1), PredKind::Scan, vec![1]);
        let b = pm.register(TxnId(2), PredKind::Scan, vec![2]);
        pm.attach(a, node(1));
        pm.attach(b, node(1));
        // Split: only predicates whose first byte is 2 are consistent with
        // the new sibling's BP.
        let n = pm.replicate(node(1), node(2), &|_, bytes| bytes[0] == 2);
        assert_eq!(n, 1);
        let on_new = pm.predicates_on(node(2));
        assert_eq!(on_new.len(), 1);
        assert_eq!(on_new[0].txn, TxnId(2));
        // Original attachments stay put (the original node keeps its
        // predicates on split).
        assert_eq!(pm.predicates_on(node(1)).len(), 2);
    }

    #[test]
    fn release_txn_removes_everywhere() {
        let pm = PredicateManager::new();
        let a = pm.register(TxnId(1), PredKind::Scan, vec![1]);
        let b = pm.register(TxnId(1), PredKind::Insert, vec![2]);
        pm.attach(a, node(1));
        pm.attach(a, node(2));
        pm.attach(b, node(1));
        pm.release_txn(TxnId(1));
        assert_eq!(pm.stats(), PredStats::default());
        assert!(pm.predicates_on(node(1)).is_empty());
    }

    #[test]
    fn drop_predicate_is_targeted() {
        let pm = PredicateManager::new();
        let probe = pm.register(TxnId(1), PredKind::Scan, vec![5]);
        let keeper = pm.register(TxnId(1), PredKind::Scan, vec![6]);
        pm.attach(probe, node(1));
        pm.attach(keeper, node(1));
        pm.drop_predicate(probe);
        let left = pm.predicates_on(node(1));
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].id, keeper);
    }

    #[test]
    fn conflicts_deduplicate_owners() {
        let pm = PredicateManager::new();
        let a = pm.register(TxnId(1), PredKind::Scan, vec![3]);
        let b = pm.register(TxnId(1), PredKind::Scan, vec![3, 3]);
        pm.attach(a, node(1));
        pm.attach(b, node(1));
        let owners = pm.check_insert(node(1), TxnId(2), &[3], &overlap);
        assert_eq!(owners, vec![TxnId(1)], "one entry per owner");
    }

    #[test]
    fn global_node_models_pure_predicate_locking() {
        let pm = PredicateManager::new();
        let p = pm.register(TxnId(1), PredKind::Scan, vec![4]);
        pm.attach(p, GLOBAL_NODE);
        let owners = pm.check_insert(GLOBAL_NODE, TxnId(2), &[4], &overlap);
        assert_eq!(owners, vec![TxnId(1)]);
    }

    #[test]
    fn stats_count_correctly() {
        let pm = PredicateManager::new();
        let a = pm.register(TxnId(1), PredKind::Scan, vec![1]);
        let b = pm.register(TxnId(2), PredKind::Insert, vec![2]);
        pm.attach(a, node(1));
        pm.attach(a, node(2));
        pm.attach(b, node(1));
        let s = pm.stats();
        assert_eq!(s.predicates, 2);
        assert_eq!(s.attachments, 3);
        assert_eq!(s.nodes, 2);
    }

    #[test]
    fn single_shard_reproduces_preshard_semantics() {
        // Shard count 1 is exactly the old single-table manager: FIFO
        // attach order, replication and termination behave identically.
        let pm = PredicateManager::with_shards(1);
        assert_eq!(pm.shard_count(), 1);
        assert_eq!(pm.node_shard(&node(1)), 0);
        assert_eq!(pm.node_shard(&node(999)), 0);
        let scan = pm.register(TxnId(1), PredKind::Scan, vec![9]);
        assert!(pm.attach_scan_and_check(scan, node(1), &overlap).is_empty());
        let ins = pm.register(TxnId(2), PredKind::Insert, vec![9]);
        pm.attach(ins, node(1));
        let scan2 = pm.register(TxnId(3), PredKind::Scan, vec![9]);
        assert_eq!(pm.attach_scan_and_check(scan2, node(1), &overlap), vec![TxnId(2)]);
        assert_eq!(pm.replicate(node(1), node(2), &|_, _| true), 3);
        assert_eq!(pm.predicates_on(node(2)).len(), 3);
        pm.release_txn(TxnId(1));
        pm.release_txn(TxnId(2));
        pm.release_txn(TxnId(3));
        assert_eq!(pm.stats(), PredStats::default());
    }

    #[test]
    fn sharded_tables_spread_nodes_and_replicate_across_shards() {
        let pm = PredicateManager::with_shards(8);
        assert_eq!(pm.shard_count(), 8);
        let mut seen = std::collections::HashSet::new();
        for i in 1..=32u32 {
            seen.insert(pm.node_shard(&node(i)));
        }
        assert!(seen.len() >= 4, "sequential nodes collapsed to {} shard(s)", seen.len());
        // Find two nodes in different shards and replicate between them.
        let a = node(1);
        let mut b = node(2);
        let mut i = 3u32;
        while pm.node_shard(&a) == pm.node_shard(&b) {
            b = node(i);
            i += 1;
        }
        let p = pm.register(TxnId(1), PredKind::Scan, vec![4]);
        pm.attach(p, a);
        assert_eq!(pm.replicate(a, b, &|_, _| true), 1, "cross-shard replication");
        assert_eq!(pm.replicate(b, a, &|_, _| true), 0, "reverse is idempotent");
        assert_eq!(pm.predicates_on(b).len(), 1);
        let s = pm.stats();
        assert_eq!((s.predicates, s.attachments, s.nodes), (1, 2, 2));
        pm.release_txn(TxnId(1));
        assert_eq!(pm.stats(), PredStats::default());
    }

    #[test]
    fn replicate_racing_attach_never_duplicates_entries() {
        // Regression: attach() claims the registry, then pushes into the
        // node shard. A replicate(from, to) running in between copies the
        // entry into `to`'s list (the registry already names `to`, so
        // replicate's bookkeeping skips it) and the attach push used to
        // add a second copy — a duplicate FIFO entry for one predicate.
        let pm = std::sync::Arc::new(PredicateManager::with_shards(8));
        for round in 0..200u64 {
            let txn = TxnId(round + 1);
            let p = pm.register(txn, PredKind::Scan, vec![1]);
            pm.attach(p, node(1));
            let t = {
                let pm = pm.clone();
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        pm.replicate(node(1), node(2), &|_, _| true);
                    }
                })
            };
            pm.attach(p, node(2));
            t.join().unwrap();
            let on2 = pm.predicates_on(node(2));
            let unique: std::collections::HashSet<PredId> =
                on2.iter().map(|e| e.id).collect();
            assert_eq!(on2.len(), unique.len(), "round {round}: duplicate FIFO entry");
            pm.release_txn(txn);
        }
        assert_eq!(pm.stats(), PredStats::default());
    }

    #[test]
    fn concurrent_attach_and_release_leave_no_orphans() {
        // Hammer attach/check/replicate/release from several threads; at
        // the end every shard list must be empty (the termination sweep
        // closed every race).
        let pm = std::sync::Arc::new(PredicateManager::with_shards(8));
        let mut handles = Vec::new();
        for t in 1..=4u64 {
            let pm = pm.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200u32 {
                    let txn = TxnId(t * 10_000 + u64::from(i));
                    let p = pm.register(txn, PredKind::Scan, vec![t as u8]);
                    let n = node(i % 16);
                    pm.attach_scan_and_check(p, n, &overlap);
                    pm.attach(p, node((i + 1) % 16));
                    pm.replicate(n, node((i + 2) % 16), &|_, _| true);
                    pm.check_insert(n, txn, &[t as u8], &overlap);
                    pm.release_txn(txn);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = pm.stats();
        assert_eq!(s.predicates, 0, "all predicates released");
        assert_eq!(s.nodes, 0, "no orphaned node entries: {s:?}");
    }
}
