#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Predicate manager (§10.3 of the paper).
//!
//! The hybrid repeatable-read mechanism (§4.3) attaches search predicates
//! *directly to tree nodes* instead of keeping a tree-global predicate
//! list. This component provides exactly the functions §10.3 enumerates:
//!
//! 1. attaching search predicates to nodes,
//! 2. removing a transaction's predicates at termination,
//! 3. checking a node's attached predicates against an insert's new key,
//! 4. replicating attachments at child nodes during BP-update percolation,
//! 5. replicating attachments at sibling nodes during node splits.
//!
//! Its data structures mirror the paper's list: a list of predicates per
//! transaction, a list of node attachments per predicate, and a FIFO list
//! of predicates per node. FIFO matters for starvation freedom: an insert
//! blocked on scan predicates registers its own *insert predicate* so that
//! later scans queue behind it (§10.3, "enforce fair locking behavior by
//! ordering predicates … in a FIFO list and checking each new predicate
//! against those ahead of it").
//!
//! Predicates are opaque byte strings here; the index supplies the
//! conflict test (its `consistent()` extension method — §6: "the function
//! consistent(), which is used to detect conflicting predicates, is the
//! same user-supplied function that is also used … to navigate").
//! Blocking on a predicate is not this component's job: callers block via
//! the lock manager on the owner's transaction-id lock.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use gist_pagestore::PageId;
use gist_wal::TxnId;

/// What a predicate protects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredKind {
    /// A search predicate (protects a search range against phantoms).
    /// Also used for the §8 unique-insert "`= key`" probe predicates.
    Scan,
    /// An insert predicate (the new key), registered so later scans queue
    /// behind a blocked insert instead of starving it.
    Insert,
}

/// Handle to a registered predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(pub u64);

/// A registered predicate (snapshot returned to callers).
#[derive(Debug, Clone)]
pub struct Predicate {
    /// Handle.
    pub id: PredId,
    /// Owning transaction.
    pub txn: TxnId,
    /// Scan or insert.
    pub kind: PredKind,
    /// Index-encoded predicate (a query for scans, a key for inserts).
    pub bytes: Arc<[u8]>,
}

/// A node a predicate can be attached to: `(index id, page)`.
pub type NodeKey = (u32, PageId);

/// Sentinel node used by the pure-predicate-locking baseline (§4.2): one
/// global attachment list for the whole tree.
pub const GLOBAL_NODE: NodeKey = (u32::MAX, PageId::INVALID);

#[derive(Debug)]
struct PredState {
    txn: TxnId,
    kind: PredKind,
    bytes: Arc<[u8]>,
    attachments: Vec<NodeKey>,
}

#[derive(Default)]
struct PmState {
    next_id: u64,
    preds: HashMap<PredId, PredState>,
    /// FIFO attachment list per node.
    nodes: HashMap<NodeKey, Vec<PredId>>,
    by_txn: HashMap<TxnId, Vec<PredId>>,
}

/// Counters kept by the predicate manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredStats {
    /// Currently registered predicates.
    pub predicates: usize,
    /// Total node attachments.
    pub attachments: usize,
    /// Nodes with at least one attachment.
    pub nodes: usize,
}

/// The predicate manager.
#[derive(Default)]
pub struct PredicateManager {
    state: Mutex<PmState>,
}

impl PredicateManager {
    /// Empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a predicate for `txn` (no attachments yet).
    pub fn register(&self, txn: TxnId, kind: PredKind, bytes: Vec<u8>) -> PredId {
        let mut st = self.state.lock();
        st.next_id += 1;
        let id = PredId(st.next_id);
        st.preds.insert(
            id,
            PredState {
                txn,
                kind,
                bytes: Arc::from(bytes.into_boxed_slice()),
                attachments: Vec::new(),
            },
        );
        st.by_txn.entry(txn).or_default().push(id);
        id
    }

    /// Attach `pred` to `node` (idempotent). Returns whether a new
    /// attachment was created.
    pub fn attach(&self, pred: PredId, node: NodeKey) -> bool {
        let mut st = self.state.lock();
        Self::attach_locked(&mut st, pred, node)
    }

    fn attach_locked(st: &mut PmState, pred: PredId, node: NodeKey) -> bool {
        let Some(p) = st.preds.get_mut(&pred) else {
            // Owner already terminated: nothing to protect.
            return false;
        };
        if p.attachments.contains(&node) {
            return false;
        }
        p.attachments.push(node);
        st.nodes.entry(node).or_default().push(pred);
        true
    }

    /// Attach a scan predicate to `node` and return the owners of
    /// conflicting *insert* predicates attached **ahead of it** (FIFO
    /// fairness: a scan arriving after a blocked insert queues behind it).
    ///
    /// `conflict(scan_bytes, insert_key_bytes)` is the index's
    /// `consistent()` test.
    pub fn attach_scan_and_check(
        &self,
        pred: PredId,
        node: NodeKey,
        conflict: &dyn Fn(&[u8], &[u8]) -> bool,
    ) -> Vec<TxnId> {
        let mut st = self.state.lock();
        let (me, my_bytes) = match st.preds.get(&pred) {
            Some(p) => (p.txn, p.bytes.clone()),
            None => return Vec::new(),
        };
        // Conflicts among predicates already attached (= ahead in FIFO
        // order), then attach self.
        let mut owners = Vec::new();
        if let Some(list) = st.nodes.get(&node) {
            for id in list {
                let Some(other) = st.preds.get(id) else { continue };
                if other.txn == me || other.kind != PredKind::Insert {
                    continue;
                }
                if conflict(&my_bytes, &other.bytes) && !owners.contains(&other.txn) {
                    owners.push(other.txn);
                }
            }
        }
        Self::attach_locked(&mut st, pred, node);
        owners
    }

    /// Check a new key against the *scan* predicates attached to `node`
    /// (§6 step 6: "check the list of predicates attached to the leaf and
    /// block on the conflicting ones"). Returns conflicting owners in
    /// FIFO order, deduplicated.
    pub fn check_insert(
        &self,
        node: NodeKey,
        me: TxnId,
        key_bytes: &[u8],
        conflict: &dyn Fn(&[u8], &[u8]) -> bool,
    ) -> Vec<TxnId> {
        let st = self.state.lock();
        let mut owners = Vec::new();
        if let Some(list) = st.nodes.get(&node) {
            for id in list {
                let Some(p) = st.preds.get(id) else { continue };
                if p.txn == me || p.kind != PredKind::Scan {
                    continue;
                }
                if conflict(&p.bytes, key_bytes) && !owners.contains(&p.txn) {
                    owners.push(p.txn);
                }
            }
        }
        owners
    }

    /// Snapshot of the predicates attached to `node`.
    pub fn predicates_on(&self, node: NodeKey) -> Vec<Predicate> {
        let st = self.state.lock();
        st.nodes
            .get(&node)
            .map(|list| {
                list.iter()
                    .filter_map(|id| {
                        st.preds.get(id).map(|p| Predicate {
                            id: *id,
                            txn: p.txn,
                            kind: p.kind,
                            bytes: p.bytes.clone(),
                        })
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Replicate attachments from `from` to `to` for every predicate that
    /// passes `keep` (function 5 of §10.3, used when a node splits: `keep`
    /// tests the predicate against the new sibling's BP, and function 4,
    /// percolation to children on BP expansion). Preserves FIFO order.
    /// Returns the number of new attachments.
    pub fn replicate(
        &self,
        from: NodeKey,
        to: NodeKey,
        keep: &dyn Fn(PredKind, &[u8]) -> bool,
    ) -> usize {
        let mut st = self.state.lock();
        let candidates: Vec<PredId> = st.nodes.get(&from).cloned().unwrap_or_default();
        let mut n = 0;
        for id in candidates {
            let Some(p) = st.preds.get(&id) else { continue };
            if keep(p.kind, &p.bytes) && Self::attach_locked(&mut st, id, to) {
                n += 1;
            }
        }
        n
    }

    /// Detach a single predicate from every node and drop it (used for
    /// the §8 unique-insert probe predicates, which are released once the
    /// insert finishes, before transaction end, and for insert
    /// predicates once the insert has succeeded).
    pub fn drop_predicate(&self, pred: PredId) {
        let mut st = self.state.lock();
        if let Some(p) = st.preds.remove(&pred) {
            for node in &p.attachments {
                if let Some(list) = st.nodes.get_mut(node) {
                    list.retain(|x| *x != pred);
                    if list.is_empty() {
                        st.nodes.remove(node);
                    }
                }
            }
            if let Some(list) = st.by_txn.get_mut(&p.txn) {
                list.retain(|x| *x != pred);
                if list.is_empty() {
                    st.by_txn.remove(&p.txn);
                }
            }
        }
    }

    /// Remove every predicate owned by `txn` (transaction termination:
    /// "the predicates and their node attachments are only removed when
    /// the owner transaction terminates", §4.3).
    pub fn release_txn(&self, txn: TxnId) {
        let mut st = self.state.lock();
        let ids = st.by_txn.remove(&txn).unwrap_or_default();
        for id in ids {
            if let Some(p) = st.preds.remove(&id) {
                for node in &p.attachments {
                    if let Some(list) = st.nodes.get_mut(node) {
                        list.retain(|x| *x != id);
                        if list.is_empty() {
                            st.nodes.remove(node);
                        }
                    }
                }
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> PredStats {
        let st = self.state.lock();
        PredStats {
            predicates: st.preds.len(),
            attachments: st.preds.values().map(|p| p.attachments.len()).sum(),
            nodes: st.nodes.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(p: u32) -> NodeKey {
        (1, PageId(p))
    }

    /// Conflict test used by the tests: byte strings conflict when they
    /// share a first byte.
    fn overlap(a: &[u8], b: &[u8]) -> bool {
        !a.is_empty() && !b.is_empty() && a[0] == b[0]
    }

    #[test]
    fn register_attach_check() {
        let pm = PredicateManager::new();
        let p = pm.register(TxnId(1), PredKind::Scan, vec![7, 7]);
        pm.attach(p, node(1));
        let hits = pm.check_insert(node(1), TxnId(2), &[7, 0], &overlap);
        assert_eq!(hits, vec![TxnId(1)]);
        let misses = pm.check_insert(node(1), TxnId(2), &[8, 0], &overlap);
        assert!(misses.is_empty());
    }

    #[test]
    fn own_predicates_never_conflict() {
        let pm = PredicateManager::new();
        let p = pm.register(TxnId(1), PredKind::Scan, vec![7]);
        pm.attach(p, node(1));
        assert!(pm.check_insert(node(1), TxnId(1), &[7], &overlap).is_empty());
    }

    #[test]
    fn insert_checks_only_scans_and_scan_checks_only_inserts() {
        let pm = PredicateManager::new();
        let ins = pm.register(TxnId(1), PredKind::Insert, vec![7]);
        pm.attach(ins, node(1));
        // An insert by T2 ignores T1's *insert* predicate.
        assert!(pm.check_insert(node(1), TxnId(2), &[7], &overlap).is_empty());
        // But a scan by T2 queues behind it.
        let scan = pm.register(TxnId(2), PredKind::Scan, vec![7]);
        let owners = pm.attach_scan_and_check(scan, node(1), &overlap);
        assert_eq!(owners, vec![TxnId(1)]);
    }

    #[test]
    fn fifo_scan_sees_only_preds_ahead() {
        let pm = PredicateManager::new();
        // Scan attaches first; insert predicate lands after it; the scan's
        // attach-time check saw nothing.
        let scan = pm.register(TxnId(1), PredKind::Scan, vec![9]);
        let owners = pm.attach_scan_and_check(scan, node(1), &overlap);
        assert!(owners.is_empty());
        let ins = pm.register(TxnId(2), PredKind::Insert, vec![9]);
        pm.attach(ins, node(1));
        // A later scan does see the insert predicate ahead of it.
        let scan2 = pm.register(TxnId(3), PredKind::Scan, vec![9]);
        let owners2 = pm.attach_scan_and_check(scan2, node(1), &overlap);
        assert_eq!(owners2, vec![TxnId(2)]);
    }

    #[test]
    fn attach_is_idempotent() {
        let pm = PredicateManager::new();
        let p = pm.register(TxnId(1), PredKind::Scan, vec![1]);
        assert!(pm.attach(p, node(1)));
        assert!(!pm.attach(p, node(1)));
        assert_eq!(pm.stats().attachments, 1);
    }

    #[test]
    fn replicate_filters_by_bp() {
        let pm = PredicateManager::new();
        let a = pm.register(TxnId(1), PredKind::Scan, vec![1]);
        let b = pm.register(TxnId(2), PredKind::Scan, vec![2]);
        pm.attach(a, node(1));
        pm.attach(b, node(1));
        // Split: only predicates whose first byte is 2 are consistent with
        // the new sibling's BP.
        let n = pm.replicate(node(1), node(2), &|_, bytes| bytes[0] == 2);
        assert_eq!(n, 1);
        let on_new = pm.predicates_on(node(2));
        assert_eq!(on_new.len(), 1);
        assert_eq!(on_new[0].txn, TxnId(2));
        // Original attachments stay put (the original node keeps its
        // predicates on split).
        assert_eq!(pm.predicates_on(node(1)).len(), 2);
    }

    #[test]
    fn release_txn_removes_everywhere() {
        let pm = PredicateManager::new();
        let a = pm.register(TxnId(1), PredKind::Scan, vec![1]);
        let b = pm.register(TxnId(1), PredKind::Insert, vec![2]);
        pm.attach(a, node(1));
        pm.attach(a, node(2));
        pm.attach(b, node(1));
        pm.release_txn(TxnId(1));
        assert_eq!(pm.stats(), PredStats::default());
        assert!(pm.predicates_on(node(1)).is_empty());
    }

    #[test]
    fn drop_predicate_is_targeted() {
        let pm = PredicateManager::new();
        let probe = pm.register(TxnId(1), PredKind::Scan, vec![5]);
        let keeper = pm.register(TxnId(1), PredKind::Scan, vec![6]);
        pm.attach(probe, node(1));
        pm.attach(keeper, node(1));
        pm.drop_predicate(probe);
        let left = pm.predicates_on(node(1));
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].id, keeper);
    }

    #[test]
    fn conflicts_deduplicate_owners() {
        let pm = PredicateManager::new();
        let a = pm.register(TxnId(1), PredKind::Scan, vec![3]);
        let b = pm.register(TxnId(1), PredKind::Scan, vec![3, 3]);
        pm.attach(a, node(1));
        pm.attach(b, node(1));
        let owners = pm.check_insert(node(1), TxnId(2), &[3], &overlap);
        assert_eq!(owners, vec![TxnId(1)], "one entry per owner");
    }

    #[test]
    fn global_node_models_pure_predicate_locking() {
        let pm = PredicateManager::new();
        let p = pm.register(TxnId(1), PredKind::Scan, vec![4]);
        pm.attach(p, GLOBAL_NODE);
        let owners = pm.check_insert(GLOBAL_NODE, TxnId(2), &[4], &overlap);
        assert_eq!(owners, vec![TxnId(1)]);
    }

    #[test]
    fn stats_count_correctly() {
        let pm = PredicateManager::new();
        let a = pm.register(TxnId(1), PredKind::Scan, vec![1]);
        let b = pm.register(TxnId(2), PredKind::Insert, vec![2]);
        pm.attach(a, node(1));
        pm.attach(a, node(2));
        pm.attach(b, node(1));
        let s = pm.stats();
        assert_eq!(s.predicates, 2);
        assert_eq!(s.attachments, 3);
        assert_eq!(s.nodes, 2);
    }
}
