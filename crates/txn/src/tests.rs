//! Transaction-manager tests over the toy cell resource manager.

use std::sync::Arc;

use parking_lot::Mutex;

use gist_lockmgr::{LockManager, LockMode, LockName};
use gist_pagestore::PageId;
use gist_predlock::{PredKind, PredicateManager};
use gist_wal::recovery::{RecoveryError, RecoveryHandler};
use gist_wal::{LogManager, LogRecord, Lsn, Payload, RecordBody, TxnId};

use crate::{SavepointId, TxnError, TxnManager};

/// Toy resource manager: an array of u64 cells; payload encodes
/// `cell(u32), new(u64), old(u64)`.
struct Cells {
    cells: Mutex<Vec<(u64, Lsn)>>,
}

impl Cells {
    fn new(n: usize) -> Self {
        Cells { cells: Mutex::new(vec![(0, Lsn::NULL); n]) }
    }

    fn payload(cell: u32, new: u64, old: u64) -> Payload {
        let mut b = Vec::new();
        b.extend_from_slice(&cell.to_le_bytes());
        b.extend_from_slice(&new.to_le_bytes());
        b.extend_from_slice(&old.to_le_bytes());
        Payload::new(vec![cell], b)
    }

    fn decode(b: &[u8]) -> (u32, u64, u64) {
        (
            u32::from_le_bytes(b[0..4].try_into().unwrap()),
            u64::from_le_bytes(b[4..12].try_into().unwrap()),
            u64::from_le_bytes(b[12..20].try_into().unwrap()),
        )
    }

    fn set(&self, mgr: &TxnManager, txn: TxnId, cell: u32, new: u64) -> Lsn {
        let mut cells = self.cells.lock();
        let old = cells[cell as usize].0;
        let lsn = mgr
            .log_update(txn, RecordBody::Payload(Self::payload(cell, new, old)))
            .unwrap();
        cells[cell as usize] = (new, lsn);
        lsn
    }

    fn get(&self, cell: u32) -> u64 {
        self.cells.lock()[cell as usize].0
    }
}

impl RecoveryHandler for Cells {
    fn redo(&self, lsn: Lsn, payload: &Payload) -> Result<bool, RecoveryError> {
        if payload.bytes.is_empty() {
            return Ok(false);
        }
        let (cell, new, _) = Self::decode(&payload.bytes);
        let mut cells = self.cells.lock();
        if cells[cell as usize].1 < lsn {
            cells[cell as usize] = (new, lsn);
            return Ok(true);
        }
        Ok(false)
    }

    fn undo(
        &self,
        _rec: &LogRecord,
        payload: &Payload,
        _restart: bool,
        log_clr: &mut dyn FnMut(Payload) -> Lsn,
    ) -> Result<(), RecoveryError> {
        let (cell, _, old) = Self::decode(&payload.bytes);
        let clr_lsn = log_clr(Self::payload(cell, old, 0));
        let mut cells = self.cells.lock();
        cells[cell as usize] = (old, clr_lsn);
        Ok(())
    }
}

fn setup() -> (Arc<TxnManager>, Cells, Arc<LogManager>, Arc<LockManager>) {
    let log = Arc::new(LogManager::new());
    let locks = Arc::new(LockManager::new());
    let preds = Arc::new(PredicateManager::new());
    let mgr = Arc::new(TxnManager::new(log.clone(), locks.clone(), preds));
    (mgr, Cells::new(8), log, locks)
}

#[test]
fn begin_takes_own_id_lock() {
    let (mgr, _cells, _log, locks) = setup();
    let t = mgr.begin();
    assert_eq!(locks.holds(t, LockName::Txn(t)), Some(LockMode::X));
    assert!(mgr.is_active(t));
}

#[test]
fn commit_releases_locks_and_predicates() {
    let (mgr, cells, log, locks) = setup();
    let preds = mgr.preds().clone();
    let t = mgr.begin();
    cells.set(&mgr, t, 0, 11);
    let p = preds.register(t, PredKind::Scan, vec![1]);
    preds.attach(p, (1, PageId(1)));
    mgr.commit(t).unwrap();
    assert!(!mgr.is_active(t));
    assert!(locks.holds(t, LockName::Txn(t)).is_none());
    assert_eq!(preds.stats().predicates, 0);
    // The end record after the commit is unforced; the commit record
    // itself must be durable (last_lsn is the TxnEnd, one past it).
    assert!(log.flushed_lsn().0 >= log.last_lsn().0 - 1, "commit forced its record");
    assert_eq!(cells.get(0), 11);
}

#[test]
fn abort_undoes_updates() {
    let (mgr, cells, _log, _locks) = setup();
    let t = mgr.begin();
    cells.set(&mgr, t, 0, 11);
    cells.set(&mgr, t, 1, 22);
    mgr.abort(t, &cells).unwrap();
    assert_eq!(cells.get(0), 0);
    assert_eq!(cells.get(1), 0);
    assert!(!mgr.is_active(t));
}

#[test]
fn double_commit_is_an_error() {
    let (mgr, _cells, _log, _locks) = setup();
    let t = mgr.begin();
    mgr.commit(t).unwrap();
    assert_eq!(mgr.commit(t), Err(TxnError::NotActive(t)));
}

#[test]
fn savepoint_partial_rollback() {
    let (mgr, cells, _log, _locks) = setup();
    let t = mgr.begin();
    cells.set(&mgr, t, 0, 1);
    let sp = mgr.savepoint(t).unwrap();
    cells.set(&mgr, t, 1, 2);
    cells.set(&mgr, t, 0, 3);
    mgr.rollback_to_savepoint(t, sp, &cells).unwrap();
    assert_eq!(cells.get(0), 1, "pre-savepoint update survives");
    assert_eq!(cells.get(1), 0, "post-savepoint update undone");
    assert!(mgr.is_active(t), "transaction still running");
    // Can keep working and commit.
    cells.set(&mgr, t, 2, 9);
    mgr.commit(t).unwrap();
    assert_eq!(cells.get(2), 9);
}

#[test]
fn savepoint_can_be_rolled_back_to_twice() {
    let (mgr, cells, _log, _locks) = setup();
    let t = mgr.begin();
    let sp = mgr.savepoint(t).unwrap();
    cells.set(&mgr, t, 0, 5);
    mgr.rollback_to_savepoint(t, sp, &cells).unwrap();
    assert_eq!(cells.get(0), 0);
    cells.set(&mgr, t, 0, 6);
    mgr.rollback_to_savepoint(t, sp, &cells).unwrap();
    assert_eq!(cells.get(0), 0);
    mgr.commit(t).unwrap();
}

#[test]
fn later_savepoints_discarded_by_rollback() {
    let (mgr, cells, _log, _locks) = setup();
    let t = mgr.begin();
    let sp1 = mgr.savepoint(t).unwrap();
    cells.set(&mgr, t, 0, 1);
    let sp2 = mgr.savepoint(t).unwrap();
    mgr.rollback_to_savepoint(t, sp1, &cells).unwrap();
    assert_eq!(
        mgr.rollback_to_savepoint(t, sp2, &cells),
        Err(TxnError::NoSuchSavepoint(sp2))
    );
    mgr.commit(t).unwrap();
}

#[test]
fn unknown_savepoint_rejected() {
    let (mgr, cells, _log, _locks) = setup();
    let t = mgr.begin();
    assert_eq!(
        mgr.rollback_to_savepoint(t, SavepointId(99), &cells),
        Err(TxnError::NoSuchSavepoint(SavepointId(99)))
    );
    mgr.commit(t).unwrap();
}

#[test]
fn abort_after_savepoint_undoes_everything() {
    let (mgr, cells, _log, _locks) = setup();
    let t = mgr.begin();
    cells.set(&mgr, t, 0, 1);
    let _sp = mgr.savepoint(t).unwrap();
    cells.set(&mgr, t, 1, 2);
    mgr.abort(t, &cells).unwrap();
    assert_eq!(cells.get(0), 0);
    assert_eq!(cells.get(1), 0);
}

#[test]
fn nta_survives_abort() {
    let (mgr, cells, _log, _locks) = setup();
    let t = mgr.begin();
    cells.set(&mgr, t, 0, 1);
    let nta = mgr.begin_nta(t).unwrap();
    cells.set(&mgr, t, 5, 555);
    mgr.end_nta(t, nta).unwrap();
    cells.set(&mgr, t, 1, 2);
    mgr.abort(t, &cells).unwrap();
    assert_eq!(cells.get(0), 0);
    assert_eq!(cells.get(1), 0);
    assert_eq!(cells.get(5), 555, "structure modification not rolled back");
}

#[test]
fn savepoint_pins_signaling_locks() {
    let (mgr, _cells, _log, locks) = setup();
    let t = mgr.begin();
    let node = LockName::Node { index: 1, page: PageId(4) };
    locks.lock(t, node, LockMode::S).unwrap();
    assert!(!mgr.is_pinned(t, node));
    mgr.savepoint(t).unwrap();
    assert!(mgr.is_pinned(t, node), "existing signaling lock pinned");
    let other = LockName::Node { index: 1, page: PageId(5) };
    locks.lock(t, other, LockMode::S).unwrap();
    assert!(!mgr.is_pinned(t, other), "later lock not pinned");
    mgr.commit(t).unwrap();
}

#[test]
fn oldest_active_begin_lsn_tracks_table() {
    let (mgr, cells, _log, _locks) = setup();
    assert_eq!(mgr.oldest_active_begin_lsn(), Lsn::MAX);
    let t1 = mgr.begin();
    let t2 = mgr.begin();
    cells.set(&mgr, t2, 0, 1);
    let oldest = mgr.oldest_active_begin_lsn();
    assert!(oldest <= mgr.last_lsn(t1).unwrap());
    mgr.commit(t1).unwrap();
    let after = mgr.oldest_active_begin_lsn();
    assert!(after > oldest, "oldest advances when the old txn ends");
    mgr.commit(t2).unwrap();
    assert_eq!(mgr.oldest_active_begin_lsn(), Lsn::MAX);
}

#[test]
fn wait_for_txn_blocks_until_owner_ends() {
    let (mgr, _cells, _log, _locks) = setup();
    let owner = mgr.begin();
    let waiter = mgr.begin();
    let mgr2 = mgr.clone();
    let t = std::thread::spawn(move || mgr2.wait_for_txn(waiter, owner));
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(!t.is_finished(), "waiter parked on the owner's id");
    mgr.commit(owner).unwrap();
    t.join().unwrap().unwrap();
    mgr.commit(waiter).unwrap();
}

#[test]
fn checkpoint_lists_active_txns() {
    let (mgr, _cells, log, _locks) = setup();
    let t1 = mgr.begin();
    let _t2 = mgr.begin();
    mgr.checkpoint();
    let cp = log.last_checkpoint().unwrap();
    match log.get(cp).body {
        RecordBody::Checkpoint { active_txns, .. } => {
            assert_eq!(active_txns.len(), 2);
            assert!(active_txns.iter().any(|(t, _)| *t == t1));
        }
        other => panic!("expected checkpoint, got {other:?}"),
    }
}

#[test]
fn is_certainly_committed_semantics() {
    let (mgr, cells, _log, _locks) = setup();
    let t1 = mgr.begin();
    assert!(!mgr.is_certainly_committed(t1), "active txn is in doubt");
    mgr.commit(t1).unwrap();
    assert!(mgr.is_certainly_committed(t1));
    let t2 = mgr.begin();
    cells.set(&mgr, t2, 0, 1);
    mgr.abort(t2, &cells).unwrap();
    // Aborted txns also leave the table, but their marks were undone, so
    // treating "gone" as committed is safe for delete-mark GC.
    assert!(mgr.is_certainly_committed(t2));
}
