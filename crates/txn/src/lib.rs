#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Transaction manager: lifecycle, 2PL integration, savepoints.
//!
//! Ties the substrates together for the paper's protocols:
//!
//! - **begin** assigns a [`TxnId`], writes `TxnBegin`, and takes the X
//!   lock on the transaction's own id that §10.3 assumes ("every
//!   transaction acquires an X-mode lock on its own ID when it starts
//!   up") — this is what lets other operations "block on a predicate" by
//!   S-locking that id.
//! - **commit** forces the log (`TxnCommit` + flush), writes `TxnEnd`,
//!   then releases predicate locks and record/signaling locks — strict
//!   two-phase locking with predicate attachments held to transaction end
//!   (§4.3).
//! - **abort** writes `TxnAbort`, performs *logical undo* through the
//!   caller-supplied [`RecoveryHandler`] (the GiST layer), writes
//!   `TxnEnd`, then releases everything.
//! - **savepoints** (§10.2): partial rollback to a recorded LSN keeps the
//!   transaction (and its locks) alive; signaling locks existing at the
//!   savepoint are *pinned* so they are not released when the node is
//!   later visited — the restored cursor stacks still reference those
//!   nodes.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use gist_commitpipe::{CommitPipeline, PipeError};
use gist_lockmgr::{LockError, LockManager, LockMode, LockName};
use gist_pagestore::PageId;
use gist_predlock::PredicateManager;
use gist_wal::recovery::{rollback, RecoveryHandler, RollbackKind};
use gist_wal::{LogManager, Lsn, NestedTopAction, Payload, RecordBody, TxnId};

pub use gist_commitpipe::Durability;

/// Per-transaction options ([`TxnManager::begin_with`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct TxnOptions {
    /// How long commit waits for the commit record to become durable
    /// (see [`Durability`]).
    pub durability: Durability,
}

/// A leaf page that a transaction left delete-marked entries on —
/// physical reclamation is deferred to the maintenance daemon, which
/// receives these at commit through the registered [`GcSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GcCandidate {
    /// Index the leaf belongs to.
    pub index: u32,
    /// The leaf holding delete-marked entries.
    pub leaf: PageId,
    /// The parent seen during the deleting descent, if any — a hint for
    /// BP shrinking and drain-based node deletion, never trusted blindly.
    pub parent_hint: Option<PageId>,
}

/// Receiver for garbage-collection candidates handed off at commit.
///
/// Implemented by the maintenance daemon. The transaction manager calls
/// `committed` *after* the commit record is forced and all locks are
/// released, so the sink may immediately attempt physical reclamation
/// under the Commit_LSN fast path. Candidates of aborting transactions
/// are dropped — their delete marks are undone by rollback.
pub trait GcSink: Send + Sync {
    /// `txn` committed having delete-marked entries on these leaves.
    fn committed(&self, txn: TxnId, candidates: Vec<GcCandidate>);
}

/// Observer fired exactly once when a transaction leaves the table —
/// after its end record is logged and the entry removed, on *every*
/// termination path: commit, owner abort, and watchdog teardown.
///
/// Registered by the embedder (`Db`) to release the admission-control
/// credit bound to the transaction; because abort covers the watchdog
/// path, a credit can never outlive its transaction no matter how it
/// dies.
pub trait TxnEndObserver: Send + Sync {
    /// `txn` terminated and was removed from the table.
    fn txn_ended(&self, txn: TxnId);
}

/// State of a transaction in the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnStatus {
    /// Running.
    Active,
    /// Commit record written and forced — the point of no return. The
    /// entry stays in the table only until [`TxnManager`] finishes the
    /// end record and lock release; an `abort` arriving in that window
    /// (a caller that lost the commit acknowledgement) *completes* the
    /// commit instead of undoing it.
    Committed,
    /// Abort decided; rollback in progress.
    Aborting,
}

/// Savepoint handle (transaction-local, monotonically increasing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SavepointId(pub u32);

#[derive(Debug)]
struct TxnInfo {
    status: TxnStatus,
    begin_lsn: Lsn,
    last_lsn: Lsn,
    savepoints: Vec<(SavepointId, Lsn)>,
    next_savepoint: u32,
    /// Signaling locks pinned by savepoints (§10.2): never released
    /// before transaction end.
    pinned_nodes: HashSet<LockName>,
    /// Leaves this transaction delete-marked entries on; handed to the
    /// [`GcSink`] at commit, dropped at abort.
    gc_candidates: Vec<GcCandidate>,
    /// Must-abort: an operation panicked mid-flight (its [`OpGuard`]
    /// unwound), so shadow state may be torn. Further operations and
    /// commit are refused; `abort` still works and clears everything.
    poisoned: bool,
    /// The watchdog selected this transaction for abort. Set under the
    /// table lock so no new operation can slip in while the watchdog is
    /// rolling the victim back outside the lock.
    doomed: bool,
    /// Operations currently inside an [`OpGuard`] scope. The watchdog
    /// never dooms a transaction with in-flight operations — "idle"
    /// means *between* operations, not parked inside one.
    ops_in_flight: u32,
    /// Last time an operation entered or left. Watchdog idle clock.
    last_activity: Instant,
    /// How long commit waits on the pipeline's durable horizon.
    durability: Durability,
}

/// Errors from transaction operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// Unknown or already-terminated transaction.
    NotActive(TxnId),
    /// Unknown savepoint.
    NoSuchSavepoint(SavepointId),
    /// Undo failed (propagated from the recovery handler).
    Undo(String),
    /// Lock acquisition failed (deadlock victim or timeout).
    Lock(LockError),
    /// The maintenance watchdog aborted this transaction for idling past
    /// the configured deadline. Retryable: begin a fresh transaction.
    AbortedByWatchdog(TxnId),
    /// The transaction is poisoned (an operation panicked mid-flight);
    /// only `abort` is accepted.
    MustAbort(TxnId),
    /// A chaos crash point injected this failure (`chaos` feature).
    Injected(&'static str),
    /// The commit pipeline's durable horizon never reached this LSN
    /// within the park timeout (flusher dead or fenced). The commit's
    /// outcome is unknown — like a lost acknowledgement.
    PipelineStalled(Lsn),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::NotActive(t) => write!(f, "transaction {t} is not active"),
            TxnError::NoSuchSavepoint(s) => write!(f, "no such savepoint {s:?}"),
            TxnError::Undo(e) => write!(f, "undo failed: {e}"),
            TxnError::Lock(e) => write!(f, "{e}"),
            TxnError::AbortedByWatchdog(t) => {
                write!(f, "transaction {t} was aborted by the idle-transaction watchdog")
            }
            TxnError::MustAbort(t) => {
                write!(f, "transaction {t} is poisoned by a mid-operation panic; abort it")
            }
            TxnError::Injected(p) => write!(f, "chaos injection at crash point {p:?}"),
            TxnError::PipelineStalled(lsn) => {
                write!(f, "commit pipeline stalled before lsn {lsn} became durable")
            }
        }
    }
}

impl std::error::Error for TxnError {}

impl From<LockError> for TxnError {
    fn from(e: LockError) -> Self {
        TxnError::Lock(e)
    }
}

impl From<PipeError> for TxnError {
    fn from(e: PipeError) -> Self {
        match e {
            PipeError::Injected(p) => TxnError::Injected(p),
            PipeError::Stalled(lsn) => TxnError::PipelineStalled(lsn),
        }
    }
}

/// The transaction manager.
pub struct TxnManager {
    log: Arc<LogManager>,
    /// Group-commit pipeline over `log`. Owned here so every commit path
    /// parks on it; the embedder (`Db::build`) starts and stops its
    /// background flusher. Until started, requests are served inline.
    pipeline: Arc<CommitPipeline>,
    /// Durability mode for transactions begun without explicit options.
    default_durability: Mutex<Durability>,
    locks: Arc<LockManager>,
    preds: Arc<PredicateManager>,
    table: Mutex<HashMap<TxnId, TxnInfo>>,
    next_txn: Mutex<u64>,
    /// Weak so the daemon (which holds an `Arc<TxnManager>` for
    /// checkpointing) and the manager don't keep each other alive.
    gc_sink: Mutex<Option<std::sync::Weak<dyn GcSink>>>,
    /// End-of-transaction observer (admission-credit release). Weak for
    /// the same cycle-breaking reason as `gc_sink`.
    end_observer: Mutex<Option<std::sync::Weak<dyn TxnEndObserver>>>,
    /// Transactions the watchdog aborted that left the table before the
    /// victim thread noticed. Consumed by the victim's next call (its
    /// operations report [`TxnError::AbortedByWatchdog`]; its own
    /// `abort` succeeds as a no-op). A victim that never returns leaks
    /// one id here — bounded by the watchdog's own abort count.
    watchdog_tombstones: Mutex<HashSet<TxnId>>,
}

impl TxnManager {
    /// Manager over the shared log, lock manager and predicate manager.
    pub fn new(
        log: Arc<LogManager>,
        locks: Arc<LockManager>,
        preds: Arc<PredicateManager>,
    ) -> Self {
        TxnManager {
            pipeline: CommitPipeline::new(log.clone()),
            default_durability: Mutex::new(Durability::Immediate),
            log,
            locks,
            preds,
            table: Mutex::new(HashMap::new()),
            next_txn: Mutex::new(0),
            gc_sink: Mutex::new(None),
            end_observer: Mutex::new(None),
            watchdog_tombstones: Mutex::new(HashSet::new()),
        }
    }

    /// Register the receiver for commit-time GC candidates (the
    /// maintenance daemon). Replaces any previous sink.
    pub fn set_gc_sink(&self, sink: std::sync::Weak<dyn GcSink>) {
        *self.gc_sink.lock() = Some(sink);
    }

    /// Register the end-of-transaction observer. Replaces any previous
    /// observer.
    pub fn set_end_observer(&self, obs: std::sync::Weak<dyn TxnEndObserver>) {
        *self.end_observer.lock() = Some(obs);
    }

    /// Fire the end observer for a transaction that just left the table.
    fn notify_ended(&self, txn: TxnId) {
        let obs = self.end_observer.lock().as_ref().and_then(|w| w.upgrade());
        if let Some(obs) = obs {
            obs.txn_ended(txn);
        }
    }

    /// Remember that `txn` delete-marked entries on a leaf, for deferred
    /// physical reclamation after commit. Duplicates are cheap and
    /// deduplicated here so long marking transactions don't flood the
    /// daemon.
    pub fn note_gc_candidate(&self, txn: TxnId, cand: GcCandidate) {
        let mut table = self.table.lock();
        if let Some(info) = table.get_mut(&txn) {
            if !info.gc_candidates.iter().any(|c| c.index == cand.index && c.leaf == cand.leaf) {
                info.gc_candidates.push(cand);
            }
        }
    }

    /// The shared log manager.
    pub fn log(&self) -> &Arc<LogManager> {
        &self.log
    }

    /// The group-commit pipeline (the embedder starts/stops its flusher
    /// and reads its stats).
    pub fn pipeline(&self) -> &Arc<CommitPipeline> {
        &self.pipeline
    }

    /// Durability mode for transactions begun via [`TxnManager::begin`].
    pub fn set_default_durability(&self, mode: Durability) {
        *self.default_durability.lock() = mode;
    }

    /// The shared lock manager.
    pub fn locks(&self) -> &Arc<LockManager> {
        &self.locks
    }

    /// The shared predicate manager.
    pub fn preds(&self) -> &Arc<PredicateManager> {
        &self.preds
    }

    /// Start a transaction with the manager's default durability.
    pub fn begin(&self) -> TxnId {
        self.begin_with(TxnOptions { durability: *self.default_durability.lock() })
    }

    /// Start a transaction with explicit per-transaction options.
    pub fn begin_with(&self, opts: TxnOptions) -> TxnId {
        let id = {
            let mut n = self.next_txn.lock();
            *n += 1;
            TxnId(*n)
        };
        let begin_lsn = self.log.append(id, Lsn::NULL, RecordBody::TxnBegin);
        self.table.lock().insert(
            id,
            TxnInfo {
                status: TxnStatus::Active,
                begin_lsn,
                last_lsn: begin_lsn,
                savepoints: Vec::new(),
                next_savepoint: 0,
                pinned_nodes: HashSet::new(),
                gc_candidates: Vec::new(),
                poisoned: false,
                doomed: false,
                ops_in_flight: 0,
                last_activity: Instant::now(),
                durability: opts.durability,
            },
        );
        // §10.3: X lock on the own id, so others can block on this txn.
        if let Err(e) = self.locks.lock(id, LockName::Txn(id), LockMode::X) {
            unreachable!("own-id lock can never conflict: {e}");
        }
        id
    }

    /// Append a content log record for `txn`, maintaining its backchain.
    /// Returns the record's LSN.
    pub fn log_update(&self, txn: TxnId, body: RecordBody) -> Result<Lsn, TxnError> {
        let mut table = self.table.lock();
        let info = table.get_mut(&txn).ok_or(TxnError::NotActive(txn))?;
        let lsn = self.log.append(txn, info.last_lsn, body);
        info.last_lsn = lsn;
        Ok(lsn)
    }

    /// Append a compensation record (CLR) for `txn`. `redo` re-applies
    /// the revert at restart (repeat history); `undo_next` makes any
    /// later rollback resume *below* the records the compensation
    /// neutralizes, so they are never undone a second time.
    ///
    /// This is the live-failure counterpart of the CLRs the rollback
    /// driver writes: an atomic unit of work (a node split, §9.1) that
    /// fails halfway reverts its applied changes under the latches it
    /// still holds and logs the revert here, leaving the unit a no-op on
    /// every path — live abort, savepoint rollback, and restart undo.
    pub fn log_compensation(
        &self,
        txn: TxnId,
        undo_next: Lsn,
        redo: Payload,
    ) -> Result<Lsn, TxnError> {
        let mut table = self.table.lock();
        let info = table.get_mut(&txn).ok_or(TxnError::NotActive(txn))?;
        let lsn = self.log.append(txn, info.last_lsn, RecordBody::Clr { undo_next, redo });
        info.last_lsn = lsn;
        Ok(lsn)
    }

    /// Start a nested top action for `txn` (§9.1).
    pub fn begin_nta(&self, txn: TxnId) -> Result<NestedTopAction, TxnError> {
        let table = self.table.lock();
        let info = table.get(&txn).ok_or(TxnError::NotActive(txn))?;
        Ok(self.log.begin_nta(info.last_lsn))
    }

    /// Finish a nested top action for `txn`: writes the dummy CLR and
    /// forces it through the commit pipeline.
    ///
    /// The force must happen before the unit's latches are released —
    /// once its pages can reach disk, the fact that the unit completed
    /// must be durable too, otherwise restart would undo a structure
    /// modification that concurrent operations have already built upon.
    /// Routing it through the pipeline (instead of an inline flush) lets
    /// the terminator share a device sync with whatever commits and
    /// units are in flight; with no flusher running the barrier degrades
    /// to the old synchronous flush.
    pub fn end_nta(&self, txn: TxnId, nta: NestedTopAction) -> Result<Lsn, TxnError> {
        let lsn = {
            let mut table = self.table.lock();
            let info = table.get_mut(&txn).ok_or(TxnError::NotActive(txn))?;
            let lsn = self.log.end_nta(txn, info.last_lsn, nta);
            info.last_lsn = lsn;
            lsn
        };
        // Barrier outside the table lock: parking here must not block
        // unrelated begin/commit traffic.
        self.pipeline.barrier(lsn)?;
        Ok(lsn)
    }

    /// Commit: append the commit record through the group-commit
    /// pipeline, park until it is durable per the transaction's
    /// [`Durability`] mode (the point of no return), then write the end
    /// record and release predicates and locks. The force and the
    /// completion are separate steps so that a caller dying *after* the
    /// commit record is durable (the `"commit.after_wal_flush"` crash
    /// point) leaves a transaction that any later `abort` or watchdog
    /// pass completes rather than undoes.
    pub fn commit(&self, txn: TxnId) -> Result<(), TxnError> {
        let (commit_lsn, durability) = {
            let mut table = self.table.lock();
            let info = match table.get_mut(&txn) {
                Some(info) => info,
                None => return Err(self.terminated_error(txn)),
            };
            if info.poisoned {
                return Err(TxnError::MustAbort(txn));
            }
            if info.doomed {
                return Err(TxnError::AbortedByWatchdog(txn));
            }
            let commit_lsn = self.pipeline.append_commit(txn, info.last_lsn)?;
            info.last_lsn = commit_lsn;
            info.status = TxnStatus::Committed;
            (commit_lsn, info.durability)
        };
        // Park outside the table lock: a whole batch of committers must
        // be able to reach the pipeline so one fsync covers all of them.
        chaos::point("commit.before_durable_wait")?;
        self.pipeline.commit_durable(commit_lsn, durability)?;
        chaos::point("commit.after_wal_flush")?;
        self.finish_commit(txn);
        Ok(())
    }

    /// Second half of commit, idempotent: end record, table removal,
    /// predicate and lock release, GC hand-off. Safe to call again for a
    /// transaction that already finished (no-op).
    fn finish_commit(&self, txn: TxnId) {
        let gc = {
            let mut table = self.table.lock();
            let Some(info) = table.get(&txn) else { return };
            // The end record is not forced: it only saves restart an undo
            // it would skip anyway, so the pipeline's idle sweep (or the
            // next commit's fsync) carrying it out is soon enough.
            self.log.append(txn, info.last_lsn, RecordBody::TxnEnd);
            table.remove(&txn).map(|i| i.gc_candidates).unwrap_or_default()
        };
        self.preds.release_txn(txn);
        self.locks.release_all(txn);
        self.notify_ended(txn);
        // Hand GC work to the daemon only after every lock is gone, so
        // reclamation can't deadlock against this transaction's remains.
        if !gc.is_empty() {
            let sink = self.gc_sink.lock().as_ref().and_then(|w| w.upgrade());
            if let Some(sink) = sink {
                sink.committed(txn, gc);
            }
        }
    }

    /// Abort: logical undo through `handler`, then end and release.
    ///
    /// Absorbs three racy shapes instead of erroring: a transaction whose
    /// commit record is already durable is *completed* (the caller lost
    /// the acknowledgement, not the commit); one that is already rolling
    /// back elsewhere (watchdog vs. owner race) returns `Ok` and lets
    /// that rollback finish; and one the watchdog already tore down
    /// returns `Ok`, consuming its tombstone.
    pub fn abort(&self, txn: TxnId, handler: &dyn RecoveryHandler) -> Result<(), TxnError> {
        chaos::point("abort.before_undo")?;
        let last_lsn = {
            let mut table = self.table.lock();
            let info = match table.get_mut(&txn) {
                Some(info) => info,
                None => {
                    return if self.watchdog_tombstones.lock().remove(&txn) {
                        Ok(())
                    } else {
                        Err(TxnError::NotActive(txn))
                    };
                }
            };
            match info.status {
                TxnStatus::Committed => {
                    let (commit_lsn, durability) = (info.last_lsn, info.durability);
                    drop(table);
                    // Lost ack: the commit record is already in the log,
                    // but the dying caller may not have reached its
                    // durability wait — honor the promise before
                    // completing, so "abort finishes the commit" means a
                    // commit that survives a crash right after this call.
                    self.pipeline.commit_durable(commit_lsn, durability)?;
                    self.finish_commit(txn);
                    return Ok(());
                }
                TxnStatus::Aborting => return Ok(()),
                TxnStatus::Active => {}
            }
            info.status = TxnStatus::Aborting;
            let abort_lsn = self.log.append(txn, info.last_lsn, RecordBody::TxnAbort);
            info.last_lsn = abort_lsn;
            abort_lsn
        };
        // Undo outside the table lock: logical undo latches pages and may
        // take time.
        let chain_end = rollback(&self.log, handler, txn, last_lsn, Lsn::NULL, RollbackKind::Abort)
            .map_err(|e| TxnError::Undo(e.0))?;
        {
            let mut table = self.table.lock();
            // Unforced, like the commit-side end record: losing an abort's
            // end record only costs restart a re-undo of already-undone
            // work (CLRs make that idempotent).
            self.log.append(txn, chain_end, RecordBody::TxnEnd);
            table.remove(&txn);
        }
        self.preds.release_txn(txn);
        self.locks.release_all(txn);
        self.notify_ended(txn);
        Ok(())
    }

    /// Establish a savepoint (§10.2). The caller (cursor layer) snapshots
    /// its stacks alongside.
    pub fn savepoint(&self, txn: TxnId) -> Result<SavepointId, TxnError> {
        let mut table = self.table.lock();
        let info = table.get_mut(&txn).ok_or(TxnError::NotActive(txn))?;
        info.next_savepoint += 1;
        let id = SavepointId(info.next_savepoint);
        let lsn = self.log.append(txn, info.last_lsn, RecordBody::Savepoint { id: id.0 });
        info.last_lsn = lsn;
        info.savepoints.push((id, lsn));
        // Pin the signaling locks existing now: they must survive later
        // visits so a restored cursor's stacked pointers stay protected.
        for name in self.locks.held_by(txn) {
            if matches!(name, LockName::Node { .. }) {
                info.pinned_nodes.insert(name);
            }
        }
        Ok(id)
    }

    /// Roll back to `sp`, undoing everything logged after it. The
    /// transaction stays active; locks and predicates are retained.
    /// Savepoints established after `sp` are discarded; `sp` itself
    /// remains valid (can be rolled back to again).
    pub fn rollback_to_savepoint(
        &self,
        txn: TxnId,
        sp: SavepointId,
        handler: &dyn RecoveryHandler,
    ) -> Result<(), TxnError> {
        let (last_lsn, sp_lsn) = {
            let table = self.table.lock();
            let info = table.get(&txn).ok_or(TxnError::NotActive(txn))?;
            let sp_lsn = info
                .savepoints
                .iter()
                .find(|(id, _)| *id == sp)
                .map(|(_, l)| *l)
                .ok_or(TxnError::NoSuchSavepoint(sp))?;
            (info.last_lsn, sp_lsn)
        };
        let chain_end =
            rollback(&self.log, handler, txn, last_lsn, sp_lsn, RollbackKind::Savepoint)
                .map_err(|e| TxnError::Undo(e.0))?;
        let mut table = self.table.lock();
        let info = table.get_mut(&txn).ok_or(TxnError::NotActive(txn))?;
        info.last_lsn = chain_end;
        info.savepoints.retain(|(id, _)| *id <= sp);
        Ok(())
    }

    /// Whether a signaling lock was pinned by a savepoint (if so, the
    /// visiting operation must not release it early).
    pub fn is_pinned(&self, txn: TxnId, name: LockName) -> bool {
        self.table
            .lock()
            .get(&txn)
            .map(|i| i.pinned_nodes.contains(&name))
            .unwrap_or(false)
    }

    /// Whether `txn` is still in the table (active or aborting).
    pub fn is_active(&self, txn: TxnId) -> bool {
        self.table.lock().contains_key(&txn)
    }

    /// Whether `txn` has definitely committed. Transactions leave the
    /// table only after their end record: an ended transaction whose
    /// updates are still visible (e.g. a delete-marked entry) must have
    /// committed, because an abort would have undone the mark first.
    pub fn is_certainly_committed(&self, txn: TxnId) -> bool {
        !self.table.lock().contains_key(&txn)
    }

    /// Smallest `begin_lsn` among active transactions, or [`Lsn::MAX`]
    /// when none are active. Used for the Commit_LSN fast path of garbage
    /// collection (\[Moh90b\], §7.1 footnote 11): a page whose LSN is below
    /// this cannot hold any uncommitted entry.
    pub fn oldest_active_begin_lsn(&self) -> Lsn {
        self.table
            .lock()
            .values()
            .map(|i| i.begin_lsn)
            .min()
            .unwrap_or(Lsn::MAX)
    }

    /// Last LSN of `txn`'s backchain.
    pub fn last_lsn(&self, txn: TxnId) -> Option<Lsn> {
        self.table.lock().get(&txn).map(|i| i.last_lsn)
    }

    /// Write a fuzzy checkpoint record with a caller-supplied dirty-page
    /// table (§ ARIES). Capture discipline, enforced by the caller (the
    /// maintenance daemon):
    ///
    /// 1. read `scan_start = log.last_lsn()` **first**;
    /// 2. then capture `dirty_pages` from the buffer pool;
    /// 3. then this method captures the transaction table and appends.
    ///
    /// Mutators append their log record and mark the frame dirty under
    /// the same page latch, so any dirtying the DPT capture missed has an
    /// LSN > `scan_start` and is re-observed by the analysis scan.
    pub fn checkpoint_with(&self, scan_start: Lsn, dirty_pages: Vec<(u32, Lsn)>) -> Lsn {
        let active: Vec<(TxnId, Lsn)> =
            self.table.lock().iter().map(|(t, i)| (*t, i.last_lsn)).collect();
        let lsn = self.log.append(
            TxnId::NONE,
            Lsn::NULL,
            RecordBody::Checkpoint { scan_start, active_txns: active, dirty_pages },
        );
        // Force through the pipeline so the checkpoint is on disk before
        // the maintenance daemon trims anything that relies on it. A
        // stalled pipeline leaves the checkpoint volatile, which is safe:
        // restart just falls back to the previous durable one.
        let _ = self.pipeline.barrier(lsn);
        lsn
    }

    /// Write a fuzzy checkpoint record without dirty-page knowledge.
    ///
    /// `scan_start` is pinned to the log start: with an empty dirty-page
    /// table, claiming anything later would let redo skip pages dirtied
    /// before the checkpoint. Restart still benefits from the transaction
    /// table; use [`TxnManager::checkpoint_with`] (via the maintenance
    /// daemon) to actually bound the scans.
    pub fn checkpoint(&self) -> Lsn {
        self.checkpoint_with(Lsn(1), Vec::new())
    }

    /// Block until `owner` terminates ("blocking on a predicate",
    /// §10.3): S-lock the owner's id, then release it immediately.
    pub fn wait_for_txn(&self, me: TxnId, owner: TxnId) -> Result<(), LockError> {
        self.locks.lock(me, LockName::Txn(owner), LockMode::S)?;
        self.locks.unlock(me, LockName::Txn(owner));
        Ok(())
    }

    /// Number of transactions currently in the table.
    pub fn active_count(&self) -> usize {
        self.table.lock().len()
    }

    /// The error for a transaction that is no longer in the table:
    /// [`TxnError::AbortedByWatchdog`] if the watchdog tore it down
    /// (tombstone present, left for the owner's `abort` to consume),
    /// plain [`TxnError::NotActive`] otherwise.
    fn terminated_error(&self, txn: TxnId) -> TxnError {
        if self.watchdog_tombstones.lock().contains(&txn) {
            TxnError::AbortedByWatchdog(txn)
        } else {
            TxnError::NotActive(txn)
        }
    }

    /// Enter an operation scope for `txn`. Refuses poisoned (must-abort)
    /// and watchdog-doomed transactions. While the returned [`OpGuard`]
    /// is live the watchdog will not select `txn` (it is not idle), and
    /// if the operation panics the guard's unwind path marks `txn`
    /// poisoned so further work is refused until `abort`.
    pub fn op_enter(&self, txn: TxnId) -> Result<OpGuard<'_>, TxnError> {
        let mut table = self.table.lock();
        let info = match table.get_mut(&txn) {
            Some(info) => info,
            None => return Err(self.terminated_error(txn)),
        };
        if info.poisoned {
            return Err(TxnError::MustAbort(txn));
        }
        if info.doomed {
            return Err(TxnError::AbortedByWatchdog(txn));
        }
        if info.status != TxnStatus::Active {
            return Err(TxnError::NotActive(txn));
        }
        info.ops_in_flight += 1;
        info.last_activity = Instant::now();
        Ok(OpGuard { mgr: self, txn, done: false })
    }

    /// Leave an operation scope: `poison` marks the transaction
    /// must-abort (the unwind path).
    fn op_exit(&self, txn: TxnId, poison: bool) {
        let mut table = self.table.lock();
        if let Some(info) = table.get_mut(&txn) {
            info.ops_in_flight = info.ops_in_flight.saturating_sub(1);
            info.last_activity = Instant::now();
            if poison {
                info.poisoned = true;
            }
        }
    }

    /// Whether `txn` is poisoned (must-abort).
    pub fn is_poisoned(&self, txn: TxnId) -> bool {
        self.table.lock().get(&txn).map(|i| i.poisoned).unwrap_or(false)
    }

    /// One watchdog pass: abort every Active transaction with no
    /// operation in flight whose last activity is at least
    /// `idle_deadline` ago. Victims are marked *doomed* under the table
    /// lock — from that point their own operations are refused with
    /// [`TxnError::AbortedByWatchdog`] — then rolled back outside it
    /// through `handler`, releasing their locks, FIFO insert predicates
    /// and attached scan predicates so blocked queues drain. Returns the
    /// aborted ids.
    pub fn watchdog_scan(
        &self,
        idle_deadline: Duration,
        handler: &dyn RecoveryHandler,
    ) -> Vec<TxnId> {
        let now = Instant::now();
        let victims: Vec<TxnId> = {
            let mut table = self.table.lock();
            table
                .iter_mut()
                .filter(|(_, i)| {
                    i.status == TxnStatus::Active
                        && !i.doomed
                        && i.ops_in_flight == 0
                        && now.duration_since(i.last_activity) >= idle_deadline
                })
                .map(|(t, i)| {
                    i.doomed = true;
                    *t
                })
                .collect()
        };
        let mut aborted = Vec::new();
        for t in victims {
            // Tombstone first so the owner sees AbortedByWatchdog (not a
            // bare NotActive) the moment the table entry disappears.
            self.watchdog_tombstones.lock().insert(t);
            match self.abort(t, handler) {
                Ok(()) => aborted.push(t),
                Err(_) => {
                    // Rollback failed; leave the tombstone so the owner
                    // still learns why, but don't count the victim.
                    // (The transaction stays doomed: nothing new starts.)
                }
            }
        }
        aborted
    }
}

/// RAII operation scope from [`TxnManager::op_enter`]. Call
/// [`OpGuard::complete`] on every normal exit (success *or* clean
/// error); dropping the guard without completing it — i.e. a panic
/// unwinding through the operation — poisons the transaction.
pub struct OpGuard<'a> {
    mgr: &'a TxnManager,
    txn: TxnId,
    done: bool,
}

impl OpGuard<'_> {
    /// Normal exit: the operation either succeeded or failed cleanly
    /// (its error path released everything it took).
    pub fn complete(mut self) {
        self.done = true;
        self.mgr.op_exit(self.txn, false);
    }
}

impl Drop for OpGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.mgr.op_exit(self.txn, true);
        }
    }
}

#[cfg(feature = "chaos")]
mod chaos {
    /// Crash point on the transaction paths; injections surface as
    /// [`TxnError::Injected`](super::TxnError::Injected).
    pub(crate) fn point(name: &'static str) -> Result<(), super::TxnError> {
        gist_chaos::point(name).map_err(|e| super::TxnError::Injected(e.0))
    }
}

#[cfg(not(feature = "chaos"))]
mod chaos {
    /// Crash points compile to nothing without the `chaos` feature.
    #[inline(always)]
    pub(crate) fn point(_name: &'static str) -> Result<(), super::TxnError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests;
