#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # gist-striped — the shared sharding utility
//!
//! The paper's whole point (§3, §5) is that B-link-style traversal needs
//! *no* global coordination beyond the NSN counter — so none of the
//! synchronization layers around the tree protocol may funnel every
//! request through one mutex either. This crate provides the one
//! abstraction the buffer pool's frame table, the lock manager's queues
//! and the predicate manager's node tables all shard onto:
//! [`Striped<T>`], a power-of-two array of independently locked shards
//! addressed by a **stable hash** of the caller's key.
//!
//! Properties the layers rely on:
//!
//! - **Stable addressing** — [`stable_hash`] is a fixed FNV-1a/fmix64
//!   combination, independent of `RandomState`, so a key maps to the
//!   same shard for the lifetime of a `Striped` and tests can construct
//!   deliberately colliding key sets.
//! - **Power-of-two shard count** — index extraction is a mask, and
//!   [`default_shard_count`] picks `next_pow2(2 × cores)` so the table
//!   out-provisions the hardware's true concurrency.
//! - **Ordered cross-shard acquisition** — the rare operations that need
//!   two shards at once (split-time predicate replication, signaling-lock
//!   replication) go through [`Striped::lock_pair`], which locks in
//!   ascending index order; whole-table sweeps use ascending
//!   [`Striped::lock_index`] loops. Under the `latch-audit` feature every
//!   acquisition is reported to `gist-audit`, whose `shard-order` rule
//!   panics on a descending (deadlock-capable) acquisition.
//! - **Shard count 1 degenerates to the old layout** — a single shard is
//!   exactly the pre-sharding global `Mutex<…>`, which the per-layer
//!   semantics tests exploit.

use std::hash::{Hash, Hasher};

use gist_sync::{Mutex, MutexGuard};

mod audit;

/// A deterministic, `RandomState`-independent hasher: FNV-1a over the
/// `Hash` byte stream, finished with Murmur3's fmix64 avalanche so that
/// low-entropy keys (sequential page ids, RIDs on one heap page) still
/// disperse across the low bits used for shard selection.
#[derive(Debug, Clone)]
pub struct StableHasher(u64);

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for StableHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        // Murmur3 fmix64: full-width avalanche so masking off low bits
        // samples every input bit.
        let mut h = self.0;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^= h >> 33;
        h
    }
}

/// Stable hash of `key` (see [`StableHasher`]).
pub fn stable_hash<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut h = StableHasher::default();
    key.hash(&mut h);
    h.finish()
}

/// Stable hash of a raw byte slice, folding eight bytes per FNV-1a step
/// (same constants as [`StableHasher`], same fmix64 finish). This is the
/// bulk-data variant used for page and WAL-record checksums: hashing a
/// word per multiply keeps the cost of checksumming an 8 KiB page well
/// under the cost of the I/O it guards, and — unlike `stable_hash(&[u8])`
/// — no length prefix from the `Hash` impl leaks into the digest, so the
/// value is reproducible from the on-disk bytes alone.
pub fn stable_hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let mut w = [0u8; 8];
        w.copy_from_slice(c);
        h ^= u64::from_le_bytes(w);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for &b in chunks.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // fmix64, as in `StableHasher::finish`.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// The smallest power of two `>= n` (and `>= 1`).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// The default shard count: `next_pow2(2 × available cores)`, clamped to
/// at most 256 so degenerate container limits cannot blow the table up.
pub fn default_shard_count() -> usize {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    next_pow2(2 * cores).min(256)
}

/// A power-of-two array of independently locked shards addressed by a
/// stable hash. See the crate docs for the discipline the accessors
/// enforce.
pub struct Striped<T> {
    shards: Box<[Mutex<T>]>,
    mask: u64,
    /// gist-audit layer id isolating this table's shard events from other
    /// striped tables in the process (0 when auditing is off).
    audit_layer: u64,
}

impl<T> Striped<T> {
    /// Table with `count` shards (rounded up to a power of two; `0` means
    /// [`default_shard_count`]), each initialized by `init`.
    pub fn new(count: usize, init: impl Fn() -> T) -> Striped<T> {
        let count = if count == 0 { default_shard_count() } else { next_pow2(count) };
        let shards: Vec<Mutex<T>> = (0..count).map(|_| Mutex::new(init())).collect();
        Striped {
            shards: shards.into_boxed_slice(),
            mask: (count - 1) as u64,
            audit_layer: audit::new_layer_id(),
        }
    }

    /// Table with `count` shards of `T::default()`.
    pub fn with_default(count: usize) -> Striped<T>
    where
        T: Default,
    {
        Striped::new(count, T::default)
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` maps to.
    pub fn index_of<K: Hash + ?Sized>(&self, key: &K) -> usize {
        (stable_hash(key) & self.mask) as usize
    }

    /// Lock the shard owning `key`.
    pub fn lock<K: Hash + ?Sized>(&self, key: &K) -> ShardGuard<'_, T> {
        self.lock_index(self.index_of(key))
    }

    /// Lock shard `index` directly (whole-table sweeps iterate indices in
    /// ascending order, which keeps cross-shard acquisition acyclic).
    pub fn lock_index(&self, index: usize) -> ShardGuard<'_, T> {
        audit::shard_lock_acquired(self.audit_layer, index);
        ShardGuard { guard: self.shards[index].lock(), layer: self.audit_layer, index }
    }

    /// Lock the shards owning `a` and `b` in ascending index order — the
    /// only deadlock-free way to hold two shards of one table. When both
    /// keys share a shard the second guard is `None`; the guards are
    /// returned in **key order** (`a`'s shard first), whatever the
    /// locking order was.
    pub fn lock_pair<K: Hash + ?Sized>(
        &self,
        a: &K,
        b: &K,
    ) -> (ShardGuard<'_, T>, Option<ShardGuard<'_, T>>) {
        let ia = self.index_of(a);
        let ib = self.index_of(b);
        if ia == ib {
            (self.lock_index(ia), None)
        } else if ia < ib {
            let ga = self.lock_index(ia);
            let gb = self.lock_index(ib);
            (ga, Some(gb))
        } else {
            let gb = self.lock_index(ib);
            let ga = self.lock_index(ia);
            (ga, Some(gb))
        }
    }
}

/// RAII guard on one shard; releases (and reports to the audit layer) on
/// drop.
pub struct ShardGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    layer: u64,
    index: usize,
}

impl<'a, T> ShardGuard<'a, T> {
    /// Index of the locked shard.
    pub fn shard_index(&self) -> usize {
        self.index
    }

    /// The raw `MutexGuard`, for condition-variable waits
    /// (`Condvar::wait_for` needs the guard itself). The wait's internal
    /// unlock/relock is invisible to the audit layer, which is sound: the
    /// waiting thread acquires nothing while parked, so no ordering edge
    /// is missed.
    pub fn inner_mut(&mut self) -> &mut MutexGuard<'a, T> {
        &mut self.guard
    }
}

impl<T> std::ops::Deref for ShardGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for ShardGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for ShardGuard<'_, T> {
    fn drop(&mut self) {
        audit::shard_lock_released(self.layer, self.index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Arc;

    #[test]
    fn stable_hash_is_deterministic_and_disperses() {
        assert_eq!(stable_hash(&42u32), stable_hash(&42u32));
        assert_ne!(stable_hash(&1u32), stable_hash(&2u32));
        // Sequential keys must not all land in one shard.
        let s: Striped<()> = Striped::with_default(8);
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u32 {
            seen.insert(s.index_of(&i));
        }
        assert!(seen.len() >= 4, "sequential keys collapsed to {} shard(s)", seen.len());
    }

    #[test]
    fn stable_hash_bytes_matches_itself_and_spreads() {
        let page = vec![7u8; 8192];
        assert_eq!(stable_hash_bytes(&page), stable_hash_bytes(&page));
        let mut flipped = page.clone();
        flipped[4096] ^= 1;
        assert_ne!(stable_hash_bytes(&page), stable_hash_bytes(&flipped));
        // Tail handling: lengths not divisible by eight still digest
        // every byte.
        assert_ne!(stable_hash_bytes(b"abcdefghi"), stable_hash_bytes(b"abcdefghj"));
        assert_ne!(stable_hash_bytes(b""), stable_hash_bytes(b"\0"));
    }

    #[test]
    fn next_pow2_rounds_up() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(8), 8);
        assert_eq!(next_pow2(9), 16);
    }

    #[test]
    fn shard_count_rounds_and_zero_means_default() {
        let s: Striped<u32> = Striped::with_default(5);
        assert_eq!(s.shard_count(), 8);
        let d: Striped<u32> = Striped::with_default(0);
        assert_eq!(d.shard_count(), default_shard_count());
        assert!(d.shard_count().is_power_of_two());
    }

    #[test]
    fn keyed_access_hits_the_computed_shard() {
        let s: Striped<Vec<u32>> = Striped::with_default(4);
        for i in 0..32u32 {
            s.lock(&i).push(i);
        }
        let mut total = 0;
        for idx in 0..s.shard_count() {
            let g = s.lock_index(idx);
            for &v in g.iter() {
                assert_eq!(s.index_of(&v), idx, "value {v} stored in wrong shard");
                total += 1;
            }
        }
        assert_eq!(total, 32);
    }

    #[test]
    fn lock_pair_orders_and_collapses() {
        let s: Striped<u32> = Striped::with_default(8);
        // Find two keys in distinct shards and two sharing one.
        let mut distinct = None;
        let mut same = None;
        for a in 0..64u32 {
            for b in (a + 1)..64u32 {
                if s.index_of(&a) != s.index_of(&b) {
                    distinct.get_or_insert((a, b));
                } else {
                    same.get_or_insert((a, b));
                }
            }
        }
        let (a, b) = distinct.expect("some pair differs");
        {
            let (ga, gb) = s.lock_pair(&a, &b);
            assert_eq!(ga.shard_index(), s.index_of(&a), "guards in key order");
            assert_eq!(gb.expect("two shards").shard_index(), s.index_of(&b));
        }
        let (a, b) = same.expect("some pair collides");
        let (ga, gb) = s.lock_pair(&a, &b);
        assert_eq!(ga.shard_index(), s.index_of(&a));
        assert!(gb.is_none(), "same shard yields one guard");
    }

    #[test]
    fn single_shard_serializes_everything() {
        let s: Striped<u64> = Striped::with_default(1);
        assert_eq!(s.shard_count(), 1);
        for i in 0..100u32 {
            assert_eq!(s.index_of(&i), 0);
        }
    }

    #[test]
    fn concurrent_distinct_shards_do_not_corrupt() {
        let s: Arc<Striped<HashMap<u32, u32>>> = Arc::new(Striped::with_default(8));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500u32 {
                    let k = t * 10_000 + i;
                    s.lock(&k).insert(k, i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut total = 0;
        for idx in 0..s.shard_count() {
            total += s.lock_index(idx).len();
        }
        assert_eq!(total, 2_000);
    }
}
