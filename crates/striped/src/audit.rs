//! Hooks into the gist-audit dynamic discipline analyzer.
//!
//! With the `latch-audit` feature every shard-mutex acquisition/release
//! is reported to `gist_audit`'s thread-local shadow state, which
//! enforces the ascending cross-shard acquisition order (`shard-order`
//! rule). Without it the hooks are inlined no-ops.

#[cfg(feature = "latch-audit")]
pub(crate) use gist_audit::{shard_lock_acquired, shard_lock_released};

/// Fresh audit layer id for one striped table (0 when auditing is off,
/// so independent tables never alias in the shadow state).
#[cfg(feature = "latch-audit")]
pub(crate) fn new_layer_id() -> u64 {
    gist_audit::new_instance_id()
}

#[cfg(not(feature = "latch-audit"))]
mod noop {
    #[inline(always)]
    pub(crate) fn new_layer_id() -> u64 {
        0
    }

    #[inline(always)]
    pub(crate) fn shard_lock_acquired(_layer: u64, _index: usize) {}

    #[inline(always)]
    pub(crate) fn shard_lock_released(_layer: u64, _index: usize) {}
}

#[cfg(not(feature = "latch-audit"))]
pub(crate) use noop::*;
