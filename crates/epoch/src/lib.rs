#![forbid(unsafe_code)]

//! Quiescent-state (epoch-based) reclamation for the optimistic read
//! path.
//!
//! The latched protocol keeps a deleted node alive with §7.2 signaling
//! locks: a drain only proceeds once no operation has the node's pointer
//! stacked. The optimistic path takes no locks at all, so it needs a
//! different liveness guarantee — this crate provides the classic
//! epoch/QSBR one:
//!
//! - Every optimistic traversal runs inside a [`Guard`] obtained from
//!   [`EpochGc::pin`]. The guard stamps the thread's *slot* with the
//!   current global epoch; dropping it clears the slot.
//! - Resources that must not be recycled under a live reader — a
//!   drained page's slot on the free list, an evicted buffer frame —
//!   are not freed directly but [`EpochGc::retire`]d: the free callback
//!   is parked in a bin stamped with the global epoch.
//! - A retired callback only runs once every pinned slot has moved past
//!   its stamp epoch ([`EpochGc::try_collect`]); with no reader pinned
//!   it runs immediately, so single-threaded behavior is unchanged.
//!
//! The guard protects *logical identity*, not memory: all data is safe
//! Rust behind `Arc`s, so nothing dangles — but a page id reallocated
//! to a new tenant while a reader still chases a copied pointer to it
//! would make the reader accept the tenant's content as its node. The
//! pin makes that reallocation impossible until the reader unpins; the
//! reader instead observes the drained (empty, available-flagged) page
//! and skips it, exactly as the signaling-lock protocol would have
//! arranged.
//!
//! Pins are expected to be short (one traversal, never across a
//! blocking wait — the audit layer's `optimistic-unpinned` /
//! `latch-in-optimistic` rules enforce the discipline); the bin is
//! collected opportunistically on every retire and by the maintenance
//! daemon's sync sweeps.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

#[cfg(any(feature = "latch-audit", feature = "mutations"))]
use gist_audit as audit_crate;

/// A deferred reclamation callback.
type Retired = Box<dyn FnOnce() + Send>;

/// Microseconds since a process-wide base instant, offset by 1 so the
/// value is never 0 (0 is the "unpinned" sentinel in pin timestamps).
fn now_micros() -> u64 {
    static BASE: OnceLock<Instant> = OnceLock::new();
    (BASE.get_or_init(Instant::now).elapsed().as_micros() as u64).saturating_add(1)
}

/// Per-thread pin slot: 0 = quiescent, otherwise the global epoch the
/// thread pinned at (nested pins share the outermost stamp).
struct Slot {
    epoch: AtomicU64,
    /// Nesting depth of live guards on the owning thread (only that
    /// thread writes it, so a plain atomic is enough bookkeeping).
    depth: AtomicU64,
    /// [`now_micros`] at the outermost pin, 0 when quiescent. The stall
    /// detector reads it to age the oldest live pin.
    pinned_at: AtomicU64,
}

/// Point-in-time reclamation counters ([`EpochGc::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Current global epoch.
    pub global_epoch: u64,
    /// Callbacks retired so far (lifetime total).
    pub retired: u64,
    /// Callbacks actually run (lifetime total).
    pub reclaimed: u64,
    /// Callbacks still parked in the bin.
    pub pending: u64,
    /// Threads currently pinned.
    pub pinned_threads: u64,
    /// `global_epoch - min(pinned epoch)` — how far the slowest live
    /// reader lags the present (0 with no reader pinned).
    pub epoch_lag: u64,
    /// Bytes accounted to callbacks still parked in the bin.
    pub pending_bytes: u64,
    /// Configured bin byte cap (`0` = unlimited).
    pub cap_bytes: u64,
    /// Age of the oldest live pin in microseconds (0 with none pinned).
    pub oldest_pin_micros: u64,
    /// Whether the domain is currently in the stalled regime.
    pub stalled: bool,
    /// Healthy→stalled transitions observed (lifetime total).
    pub stalls: u64,
    /// Forced epoch advances performed by the stall defense.
    pub forced_advances: u64,
}

/// One reclamation domain (one per [`Db`-like] owner). Cheap to clone
/// through an `Arc`; all methods take `&self`.
pub struct EpochGc {
    /// Global epoch, advanced by [`EpochGc::try_collect`] whenever no
    /// pinned slot still sits at the current value.
    global: AtomicU64,
    /// Every slot ever registered (one per thread that pinned; threads
    /// are few and slots are two words, so no unregistration).
    slots: Mutex<Vec<Arc<Slot>>>,
    /// Retired callbacks, each stamped with the epoch at retire time and
    /// the caller's byte estimate for what the callback frees.
    bin: Mutex<Vec<(u64, u64, Retired)>>,
    retired: AtomicU64,
    reclaimed: AtomicU64,
    /// Bytes currently accounted to the bin (estimates supplied through
    /// [`EpochGc::retire_sized`]; plain [`EpochGc::retire`] counts 0).
    bin_bytes: AtomicU64,
    /// Bin byte cap; at or above it the domain reports stalled. `0`
    /// (default) disables the cap.
    cap_bytes: AtomicU64,
    /// Pin-age budget in microseconds; an older live pin marks the
    /// domain stalled. `0` (default) disables the budget.
    stall_age_micros: AtomicU64,
    /// Whether the last stall evaluation was positive (edge detector for
    /// the `stalls` counter).
    stalled_flag: AtomicBool,
    stalls: AtomicU64,
    forced_advances: AtomicU64,
    /// gist-audit instance id (0 when auditing is off).
    #[cfg_attr(not(feature = "latch-audit"), allow(dead_code))]
    audit_id: u64,
}

impl std::fmt::Debug for EpochGc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochGc").field("stats", &self.stats()).finish()
    }
}

thread_local! {
    /// This thread's slot in each domain it has pinned, keyed by the
    /// domain's audit/instance identity (the `Arc` pointer survives the
    /// domain: stale entries are inert).
    static SLOTS: std::cell::RefCell<Vec<(usize, Arc<Slot>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

impl Default for EpochGc {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochGc {
    /// A fresh domain at epoch 1 with an empty bin.
    pub fn new() -> EpochGc {
        EpochGc {
            global: AtomicU64::new(1),
            slots: Mutex::new(Vec::new()),
            bin: Mutex::new(Vec::new()),
            retired: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
            bin_bytes: AtomicU64::new(0),
            cap_bytes: AtomicU64::new(0),
            stall_age_micros: AtomicU64::new(0),
            stalled_flag: AtomicBool::new(false),
            stalls: AtomicU64::new(0),
            forced_advances: AtomicU64::new(0),
            audit_id: {
                #[cfg(feature = "latch-audit")]
                {
                    audit_crate::new_instance_id()
                }
                #[cfg(not(feature = "latch-audit"))]
                {
                    0
                }
            },
        }
    }

    /// The calling thread's slot in this domain, registering one on
    /// first use. Domain identity is the `EpochGc` allocation address,
    /// which is stable for the owning `Arc`'s lifetime.
    fn my_slot(self: &Arc<Self>) -> Arc<Slot> {
        let key = Arc::as_ptr(self) as usize;
        SLOTS.with(|cell| {
            let mut local = cell.borrow_mut();
            if let Some((_, s)) = local.iter().find(|(k, _)| *k == key) {
                return s.clone();
            }
            let slot = Arc::new(Slot {
                epoch: AtomicU64::new(0),
                depth: AtomicU64::new(0),
                pinned_at: AtomicU64::new(0),
            });
            self.slots.lock().push(slot.clone());
            local.push((key, slot.clone()));
            slot
        })
    }

    /// Pin the calling thread: until the returned [`Guard`] drops, no
    /// callback retired from now on will run. Reentrant — nested pins
    /// keep the outermost stamp.
    pub fn pin(self: &Arc<Self>) -> Guard {
        let slot = self.my_slot();
        if slot.depth.load(Ordering::Relaxed) == 0 {
            // Stamp, then re-read the global epoch: if a collector
            // advanced it between the load and the store it may have
            // missed this pin, but the re-check makes the stamp at most
            // one epoch stale, which the collection rule (strictly
            // older than every pin) already tolerates.
            let e = self.global.load(Ordering::SeqCst);
            slot.epoch.store(e, Ordering::SeqCst);
            slot.pinned_at.store(now_micros(), Ordering::Relaxed);
        }
        slot.depth.fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "latch-audit")]
        audit_crate::epoch_pinned(self.audit_id);
        Guard { gc: self.clone(), slot }
    }

    /// Defer `free` until every epoch pinned right now has unpinned.
    /// With nothing pinned the callback runs inline, so untouched
    /// single-threaded paths keep their eager-free behavior.
    pub fn retire(self: &Arc<Self>, free: impl FnOnce() + Send + 'static) {
        self.retire_sized(0, free);
    }

    /// [`EpochGc::retire`] with a byte estimate of what `free` releases,
    /// charged against the bin cap until the callback runs. Callers that
    /// park sizeable resources (evicted buffer frames) use this so the
    /// stall detector can bound the bin by memory, not just count.
    pub fn retire_sized(self: &Arc<Self>, bytes: u64, free: impl FnOnce() + Send + 'static) {
        self.retired.fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "mutations")]
        if audit_crate::mutation::armed("epoch.skip-retire") {
            // Mutation: the historical bug shape — free eagerly, as the
            // pre-epoch drain path did, recycling pages under live
            // optimistic readers.
            self.reclaimed.fetch_add(1, Ordering::Relaxed);
            free();
            return;
        }
        let e = self.global.load(Ordering::SeqCst);
        self.bin_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.bin.lock().push((e, bytes, Box::new(free)));
        self.try_collect();
        // Over the cap even after collecting: the bin is hostage to a
        // live pin. Force the epoch forward so everything retired from
        // here on is stamped past that pin and frees the moment it
        // unpins, instead of queueing behind the stalled generation.
        if self.is_stalled() {
            self.force_advance();
        }
    }

    /// Advance the global epoch if possible and run every callback whose
    /// stamp is strictly older than all current pins. Returns how many
    /// callbacks ran.
    pub fn try_collect(self: &Arc<Self>) -> usize {
        #[cfg(feature = "latch-audit")]
        audit_crate::epoch_collect(self.audit_id);
        let global = self.global.load(Ordering::SeqCst);
        let min_pinned = self.min_pinned();
        // Advance once every live pin has observed the current epoch, so
        // the next collect can tell old pins (stuck below `global`) from
        // readers that arrived after the garbage was already unlinked.
        if min_pinned.map(|m| m >= global).unwrap_or(true) {
            let _ = self.global.compare_exchange(
                global,
                global + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
        }
        // Safe horizon: every callback stamped before the oldest live
        // pin predates anything that pin could still reference.
        let horizon = self.min_pinned().unwrap_or(u64::MAX);
        let ready: Vec<Retired> = {
            let mut bin = self.bin.lock();
            let mut ready = Vec::new();
            let mut freed_bytes = 0u64;
            bin.retain_mut(|(stamp, bytes, cb)| {
                if *stamp < horizon {
                    // retain_mut gives &mut; swap the box out with a
                    // no-op so the closure can move to `ready`.
                    let cb = std::mem::replace(cb, Box::new(|| {}));
                    freed_bytes += *bytes;
                    ready.push(cb);
                    false
                } else {
                    true
                }
            });
            if freed_bytes > 0 {
                self.bin_bytes.fetch_sub(freed_bytes, Ordering::Relaxed);
            }
            ready
        };
        let n = ready.len();
        self.reclaimed.fetch_add(n as u64, Ordering::Relaxed);
        for cb in ready {
            cb();
        }
        n
    }

    /// Configure the stall defense: a bin holding at least `cap_bytes`
    /// of pending frees, or a live pin older than `stall_age`, flips the
    /// domain into the stalled regime ([`EpochGc::is_stalled`]). Either
    /// knob at zero disables that trigger (both default to disabled).
    pub fn set_limits(&self, cap_bytes: u64, stall_age: Duration) {
        self.cap_bytes.store(cap_bytes, Ordering::Relaxed);
        self.stall_age_micros.store(stall_age.as_micros() as u64, Ordering::Relaxed);
    }

    /// Age of the oldest live pin, if any thread is pinned.
    pub fn oldest_pin_age(&self) -> Option<Duration> {
        let oldest = self
            .slots
            .lock()
            .iter()
            .map(|s| s.pinned_at.load(Ordering::Relaxed))
            .filter(|&t| t != 0)
            .min()?;
        Some(Duration::from_micros(now_micros().saturating_sub(oldest)))
    }

    /// Whether the domain is in the stalled regime: the bin is at its
    /// byte cap, or the oldest live pin has outlived its age budget.
    /// The embedder reacts by flipping optimistic reads to the latched
    /// fallback (no new pins) and forcing the epoch forward — it never
    /// frees under a live pin, so safety is untouched. Transitions into
    /// the regime are counted for `stats().stalls`.
    pub fn is_stalled(&self) -> bool {
        let cap = self.cap_bytes.load(Ordering::Relaxed);
        let over_cap = cap != 0 && self.bin_bytes.load(Ordering::Relaxed) >= cap;
        let budget = self.stall_age_micros.load(Ordering::Relaxed);
        let over_age = budget != 0
            && self
                .oldest_pin_age()
                .map(|age| age.as_micros() as u64 >= budget)
                .unwrap_or(false);
        let stalled = over_cap || over_age;
        if stalled != self.stalled_flag.swap(stalled, Ordering::Relaxed) && stalled {
            self.stalls.fetch_add(1, Ordering::Relaxed);
        }
        stalled
    }

    /// Quiescence-assisted advance for the stall defense: push the
    /// global epoch forward unconditionally, then collect. A live pin
    /// still fences everything it could reference (the collection
    /// horizon stays `min(pinned)`), but new retirees land in a fresh
    /// generation and the advance condition cannot wedge behind a
    /// reader that will never re-observe the current epoch.
    pub fn force_advance(self: &Arc<Self>) -> usize {
        self.forced_advances.fetch_add(1, Ordering::Relaxed);
        self.global.fetch_add(1, Ordering::SeqCst);
        self.try_collect()
    }

    /// The smallest epoch any thread is currently pinned at.
    fn min_pinned(&self) -> Option<u64> {
        self.slots
            .lock()
            .iter()
            .map(|s| s.epoch.load(Ordering::SeqCst))
            .filter(|&e| e != 0)
            .min()
    }

    /// Reclamation counters.
    pub fn stats(&self) -> EpochStats {
        let global = self.global.load(Ordering::SeqCst);
        let (pinned, min) = {
            let slots = self.slots.lock();
            let pinned =
                slots.iter().filter(|s| s.epoch.load(Ordering::SeqCst) != 0).count() as u64;
            let min = slots
                .iter()
                .map(|s| s.epoch.load(Ordering::SeqCst))
                .filter(|&e| e != 0)
                .min();
            (pinned, min)
        };
        EpochStats {
            global_epoch: global,
            retired: self.retired.load(Ordering::Relaxed),
            reclaimed: self.reclaimed.load(Ordering::Relaxed),
            pending: self.bin.lock().len() as u64,
            pinned_threads: pinned,
            epoch_lag: min.map(|m| global.saturating_sub(m)).unwrap_or(0),
            pending_bytes: self.bin_bytes.load(Ordering::Relaxed),
            cap_bytes: self.cap_bytes.load(Ordering::Relaxed),
            oldest_pin_micros: self
                .oldest_pin_age()
                .map(|d| d.as_micros() as u64)
                .unwrap_or(0),
            stalled: self.is_stalled(),
            stalls: self.stalls.load(Ordering::Relaxed),
            forced_advances: self.forced_advances.load(Ordering::Relaxed),
        }
    }
}

/// An active pin (see [`EpochGc::pin`]). `!Send` by construction intent:
/// it references the pinning thread's slot, so keep it on that thread.
pub struct Guard {
    /// Keeps the domain (and with it the slot registry the pinned slot
    /// lives in) alive for the guard's whole life; only read directly by
    /// the audit hooks.
    #[cfg_attr(not(feature = "latch-audit"), allow(dead_code))]
    gc: Arc<EpochGc>,
    slot: Arc<Slot>,
}

impl Drop for Guard {
    fn drop(&mut self) {
        if self.slot.depth.fetch_sub(1, Ordering::Relaxed) == 1 {
            self.slot.epoch.store(0, Ordering::SeqCst);
            self.slot.pinned_at.store(0, Ordering::Relaxed);
        }
        #[cfg(feature = "latch-audit")]
        audit_crate::epoch_unpinned(self.gc.audit_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn unpinned_retire_runs_inline() {
        let gc = Arc::new(EpochGc::new());
        let ran = Arc::new(AtomicBool::new(false));
        let r = ran.clone();
        gc.retire(move || r.store(true, Ordering::SeqCst));
        assert!(ran.load(Ordering::SeqCst), "no pin → eager free");
        let s = gc.stats();
        assert_eq!((s.retired, s.reclaimed, s.pending), (1, 1, 0));
    }

    #[test]
    fn pinned_reader_defers_reclamation() {
        let gc = Arc::new(EpochGc::new());
        let guard = gc.pin();
        let ran = Arc::new(AtomicBool::new(false));
        let r = ran.clone();
        gc.retire(move || r.store(true, Ordering::SeqCst));
        for _ in 0..4 {
            gc.try_collect();
        }
        assert!(!ran.load(Ordering::SeqCst), "pinned → deferred");
        assert_eq!(gc.stats().pending, 1);
        assert!(gc.stats().epoch_lag >= 1, "collector advanced past the pin");
        drop(guard);
        gc.try_collect();
        assert!(ran.load(Ordering::SeqCst), "unpin → reclaimed");
        assert_eq!(gc.stats().pending, 0);
    }

    #[test]
    fn nested_pins_share_one_stamp() {
        let gc = Arc::new(EpochGc::new());
        let outer = gc.pin();
        let stamp = outer.slot.epoch.load(Ordering::SeqCst);
        let inner = gc.pin();
        assert_eq!(inner.slot.epoch.load(Ordering::SeqCst), stamp);
        drop(inner);
        assert_eq!(outer.slot.epoch.load(Ordering::SeqCst), stamp, "outer still pinned");
        drop(outer);
        assert_eq!(gc.stats().pinned_threads, 0);
    }

    #[test]
    fn later_pins_do_not_block_older_garbage() {
        let gc = Arc::new(EpochGc::new());
        let ran = Arc::new(AtomicBool::new(false));
        let r = ran.clone();
        {
            let _g = gc.pin();
            gc.retire(move || r.store(true, Ordering::SeqCst));
        }
        // A reader that pins *after* the retire unpinned must not keep
        // the old callback hostage forever.
        let _late = gc.pin();
        gc.try_collect();
        gc.try_collect();
        assert!(ran.load(Ordering::SeqCst), "old garbage freed under a late pin");
    }

    #[test]
    fn byte_cap_marks_stall_and_recovers() {
        let gc = Arc::new(EpochGc::new());
        gc.set_limits(1024, Duration::ZERO);
        assert!(!gc.is_stalled());
        let guard = gc.pin();
        for _ in 0..4 {
            gc.retire_sized(512, || {});
        }
        let s = gc.stats();
        assert!(s.stalled, "2 KiB pending under a pin vs a 1 KiB cap");
        assert_eq!(s.pending_bytes, 2048);
        assert_eq!(s.stalls, 1, "one healthy→stalled transition");
        assert!(s.forced_advances >= 1, "stall defense forces the epoch on");
        drop(guard);
        gc.try_collect();
        let s = gc.stats();
        assert!(!s.stalled, "unpin drains the bin and clears the stall");
        assert_eq!(s.pending_bytes, 0);
    }

    #[test]
    fn pin_age_budget_marks_stall() {
        let gc = Arc::new(EpochGc::new());
        gc.set_limits(0, Duration::from_millis(5));
        assert!(gc.oldest_pin_age().is_none());
        let guard = gc.pin();
        assert!(!gc.is_stalled(), "fresh pin is within budget");
        std::thread::sleep(Duration::from_millis(10));
        assert!(gc.oldest_pin_age().unwrap() >= Duration::from_millis(5));
        assert!(gc.is_stalled(), "pin outlived its age budget");
        drop(guard);
        assert!(!gc.is_stalled());
        assert_eq!(gc.stats().stalls, 1);
    }

    #[test]
    fn forced_advance_keeps_the_horizon_safe() {
        let gc = Arc::new(EpochGc::new());
        let guard = gc.pin();
        let ran = Arc::new(AtomicBool::new(false));
        let r = ran.clone();
        gc.retire(move || r.store(true, Ordering::SeqCst));
        let before = gc.stats().global_epoch;
        gc.force_advance();
        assert!(gc.stats().global_epoch > before, "advance is unconditional");
        assert!(!ran.load(Ordering::SeqCst), "live pin still fences its garbage");
        drop(guard);
        gc.try_collect();
        assert!(ran.load(Ordering::SeqCst));
    }

    #[test]
    fn cross_thread_pin_blocks_collection() {
        let gc = Arc::new(EpochGc::new());
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
        let gc2 = gc.clone();
        let h = std::thread::spawn(move || {
            let _g = gc2.pin();
            ready_tx.send(()).unwrap();
            rx.recv().unwrap();
        });
        ready_rx.recv().unwrap();
        let ran = Arc::new(AtomicBool::new(false));
        let r = ran.clone();
        gc.retire(move || r.store(true, Ordering::SeqCst));
        gc.try_collect();
        assert!(!ran.load(Ordering::SeqCst), "remote pin defers");
        tx.send(()).unwrap();
        h.join().unwrap();
        gc.try_collect();
        assert!(ran.load(Ordering::SeqCst));
    }
}
