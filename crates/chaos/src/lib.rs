//! Operation-level chaos injection for the GiST stack.
//!
//! The storage layer already has a fault shim (`pagestore::fault`) that
//! damages *pages*; this crate kills *operations*. A fixed catalog of
//! named crash points ([`CATALOG`]) is threaded through the insert,
//! delete, cursor, transaction and maintenance code paths. Each point is
//! a single call:
//!
//! ```ignore
//! chaos::point("insert.split.after_sibling_write")?;
//! ```
//!
//! Disarmed (the normal state) a point is one relaxed atomic load.
//! Armed, it can panic the calling thread, return an injection error
//! that propagates like any other failure, delay, or yield — letting a
//! harness prove the §3/§7 claims of the paper: an operation may die
//! between the sibling write and the parent install and every other
//! thread keeps going, with logical undo cleaning up the corpse.
//!
//! Consumers compile their `chaos::point` shim to a no-op constant when
//! their `chaos` feature is off; this crate only exists behind that
//! feature. All state is process-global so a test can arm a point in one
//! thread and have a worker elsewhere trip it; tests that arm points
//! must serialize against each other (see `tests/chaos_ops.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Every crash point that exists in the source tree, one entry per
/// `chaos::point("...")` call site. The `chaos-point-registry` lint rule
/// cross-checks this list against the code: a call site whose name is
/// missing here, a duplicated call-site name, or a stale entry with no
/// call site all fail the lint.
pub const CATALOG: &[&str] = &[
    "insert.before_descent",
    "insert.before_leaf_add",
    "insert.after_leaf_add",
    "insert.before_predicate_check",
    "insert.split.after_sibling_write",
    "insert.split.before_parent_install",
    "insert.split.after_parent_install",
    "delete.before_mark",
    "delete.after_mark",
    "cursor.after_register",
    "cursor.before_next",
    "commit.after_wal_flush",
    "abort.before_undo",
    "maint.before_gc",
    // Group-commit pipeline (crates/commitpipe). The first fires on the
    // committer's thread between LSN reservation and record fill (Error
    // heals the hole with a Noop filler; Panic leaves it for the durable
    // horizon to fence). The other two bracket the flusher's fsync.
    "commitpipe.append.post_reserve_pre_fill",
    "commitpipe.flusher.post_fill_pre_fsync",
    "commitpipe.flusher.post_fsync_pre_wakeup",
    // Overload-resilience points (ISSUE 9). `Delay` actions model the
    // three stall shapes the degradation layer must absorb: a flusher
    // that stops draining batches, an optimistic reader that holds its
    // epoch pin far past a traversal's natural length, and a committer
    // that dawdles between appending its commit record and parking on
    // the durable horizon.
    "commitpipe.flusher.stall",
    "cursor.optimistic.pinned",
    "commit.before_durable_wait",
    // Serving-layer points (ISSUE 10): kill a session right after
    // accept, between decode and dispatch, or before the reply hits
    // the wire; the drain point fires per force-aborted straggler
    // (cleanup is unconditional — the injection is only counted).
    "serve.session.after_accept",
    "serve.session.before_dispatch",
    "serve.session.before_reply",
    "serve.drain.before_force_abort",
];

/// What an armed crash point does to the thread that reaches it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosAction {
    /// Panic the calling thread (simulates a code bug / kill mid-op).
    Panic,
    /// Return [`ChaosInjected`], which consumers surface as an error.
    Error,
    /// Sleep for the given number of milliseconds, then continue.
    Delay(u64),
    /// Yield the scheduler slice, then continue.
    Yield,
}

/// The error a point armed with [`ChaosAction::Error`] returns; carries
/// the point name so failures are attributable in test output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosInjected(pub &'static str);

impl std::fmt::Display for ChaosInjected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chaos injection at crash point {:?}", self.0)
    }
}

impl std::error::Error for ChaosInjected {}

/// One armed entry: the action plus how many more times it fires.
/// `remaining == None` means "every time until disarmed".
#[derive(Clone, Copy, Debug)]
struct Trigger {
    action: ChaosAction,
    remaining: Option<u32>,
}

#[derive(Default)]
struct Registry {
    armed: HashMap<&'static str, Trigger>,
    fired: HashMap<&'static str, u64>,
}

/// Fast-path gate: `point()` returns immediately unless something is
/// armed. Kept in sync with `Registry::armed` under the registry mutex.
static ANY_ARMED: AtomicBool = AtomicBool::new(false);

static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();

fn registry() -> MutexGuard<'static, Registry> {
    // A panic *while holding* this mutex is impossible by construction
    // (the Panic action fires after the guard is dropped), but the
    // armed thread dies by design, so recover from poisoning anyway.
    REGISTRY
        .get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A crash point. Call sites pass a `&'static str` that MUST appear in
/// [`CATALOG`] (the lint enforces this statically; arming enforces it
/// dynamically). Returns `Err(ChaosInjected)` when armed with
/// [`ChaosAction::Error`]; panics when armed with [`ChaosAction::Panic`].
#[inline]
pub fn point(name: &'static str) -> Result<(), ChaosInjected> {
    if !ANY_ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    point_slow(name)
}

#[cold]
fn point_slow(name: &'static str) -> Result<(), ChaosInjected> {
    let action = {
        let mut reg = registry();
        let Some(trigger) = reg.armed.get_mut(name) else { return Ok(()) };
        let action = trigger.action;
        let expired = match trigger.remaining.as_mut() {
            Some(n) => {
                *n -= 1;
                *n == 0
            }
            None => false,
        };
        if expired {
            reg.armed.remove(name);
            if reg.armed.is_empty() {
                ANY_ARMED.store(false, Ordering::Relaxed);
            }
        }
        *reg.fired.entry(name).or_insert(0) += 1;
        action
        // Registry guard dropped here — the panic below never poisons
        // it while armed entries remain for other threads.
    };
    match action {
        ChaosAction::Panic => panic!("chaos: armed panic at crash point {name:?}"),
        ChaosAction::Error => Err(ChaosInjected(name)),
        ChaosAction::Delay(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(())
        }
        ChaosAction::Yield => {
            std::thread::yield_now();
            Ok(())
        }
    }
}

fn arm_trigger(name: &'static str, trigger: Trigger) {
    assert!(
        CATALOG.contains(&name),
        "chaos: {name:?} is not a cataloged crash point (see chaos::CATALOG)"
    );
    let mut reg = registry();
    reg.armed.insert(name, trigger);
    ANY_ARMED.store(true, Ordering::Relaxed);
}

/// Arm `name` to perform `action` every time it is reached, until
/// [`disarm`]/[`disarm_all`]. Panics if `name` is not in [`CATALOG`].
pub fn arm(name: &'static str, action: ChaosAction) {
    arm_trigger(name, Trigger { action, remaining: None });
}

/// Arm `name` to fire exactly `times` times, then auto-disarm. The
/// usual harness shape is `arm_times(p, ChaosAction::Panic, 1)`: one
/// victim dies, every retry and peer passes through untouched.
pub fn arm_times(name: &'static str, action: ChaosAction, times: u32) {
    assert!(times > 0, "chaos: arm_times needs times >= 1");
    arm_trigger(name, Trigger { action, remaining: Some(times) });
}

/// Disarm a single point (no-op if it was not armed).
pub fn disarm(name: &'static str) {
    let mut reg = registry();
    reg.armed.remove(name);
    if reg.armed.is_empty() {
        ANY_ARMED.store(false, Ordering::Relaxed);
    }
}

/// Disarm every point and clear the fired counters. Harnesses call this
/// between scenarios so state never leaks across tests.
pub fn disarm_all() {
    let mut reg = registry();
    reg.armed.clear();
    reg.fired.clear();
    ANY_ARMED.store(false, Ordering::Relaxed);
}

/// How many times `name` has fired since the last [`disarm_all`].
pub fn fired(name: &'static str) -> u64 {
    registry().fired.get(name).copied().unwrap_or(0)
}

/// Total fires across all points since the last [`disarm_all`].
pub fn total_fired() -> u64 {
    registry().fired.values().sum()
}

/// SplitMix64 — the standard 64-bit mixer; deterministic and seedable.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministically arm a subset of the catalog from `seed`, replacing
/// any existing schedule. Two runs with the same seed arm the same
/// points with the same actions. Seeded schedules use only the
/// *recoverable* actions — `Error`, `Delay`, `Yield` — so a seeded soak
/// keeps all of its worker threads (arming `Panic` is an explicit,
/// per-point decision). Returns the armed `(point, action)` pairs.
pub fn schedule_from_seed(seed: u64) -> Vec<(&'static str, ChaosAction)> {
    disarm_all();
    let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
    let mut armed = Vec::new();
    for &name in CATALOG {
        let roll = splitmix64(&mut state);
        // Arm roughly half the catalog per seed.
        if roll & 1 == 0 {
            continue;
        }
        let action = match (roll >> 1) % 4 {
            0 => ChaosAction::Error,
            1 => ChaosAction::Delay(1 + (roll >> 3) % 3),
            _ => ChaosAction::Yield,
        };
        // Errors are one-shot so seeded workloads converge; delays and
        // yields are persistent schedule perturbation.
        match action {
            ChaosAction::Error => arm_times(name, action, 1 + ((roll >> 5) % 3) as u32),
            _ => arm(name, action),
        }
        armed.push((name, action));
    }
    armed
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex as StdMutex, OnceLock as StdOnceLock};

    /// The registry is process-global; serialize tests touching it.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: StdOnceLock<StdMutex<()>> = StdOnceLock::new();
        GATE.get_or_init(StdMutex::default)
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn disarmed_points_are_silent() {
        let _g = serial();
        disarm_all();
        for &name in CATALOG {
            assert_eq!(point(name), Ok(()));
        }
        assert_eq!(total_fired(), 0);
    }

    #[test]
    fn catalog_names_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &name in CATALOG {
            assert!(seen.insert(name), "duplicate catalog entry {name:?}");
        }
        assert!(CATALOG.len() >= 12, "issue requires >= 12 crash points");
    }

    #[test]
    fn error_arm_fires_and_counts() {
        let _g = serial();
        disarm_all();
        arm("delete.after_mark", ChaosAction::Error);
        assert_eq!(point("delete.after_mark"), Err(ChaosInjected("delete.after_mark")));
        assert_eq!(point("delete.before_mark"), Ok(()));
        assert_eq!(fired("delete.after_mark"), 1);
        disarm_all();
        assert_eq!(point("delete.after_mark"), Ok(()));
    }

    #[test]
    fn arm_times_auto_disarms() {
        let _g = serial();
        disarm_all();
        arm_times("commit.after_wal_flush", ChaosAction::Error, 2);
        assert!(point("commit.after_wal_flush").is_err());
        assert!(point("commit.after_wal_flush").is_err());
        assert_eq!(point("commit.after_wal_flush"), Ok(()));
        assert_eq!(fired("commit.after_wal_flush"), 2);
        // The registry emptied, so the fast path gate is closed again.
        assert!(!ANY_ARMED.load(Ordering::Relaxed));
    }

    #[test]
    fn panic_arm_panics_without_poisoning_registry() {
        let _g = serial();
        disarm_all();
        arm_times("insert.before_descent", ChaosAction::Panic, 1);
        let result = std::panic::catch_unwind(|| point("insert.before_descent"));
        assert!(result.is_err());
        // The registry must still be usable after the armed panic.
        assert_eq!(fired("insert.before_descent"), 1);
        assert_eq!(point("insert.before_descent"), Ok(()));
        disarm_all();
    }

    #[test]
    fn delay_and_yield_continue() {
        let _g = serial();
        disarm_all();
        arm("cursor.before_next", ChaosAction::Delay(1));
        arm("cursor.after_register", ChaosAction::Yield);
        assert_eq!(point("cursor.before_next"), Ok(()));
        assert_eq!(point("cursor.after_register"), Ok(()));
        assert_eq!(fired("cursor.before_next"), 1);
        assert_eq!(fired("cursor.after_register"), 1);
        disarm_all();
    }

    #[test]
    #[should_panic(expected = "not a cataloged crash point")]
    fn arming_unknown_point_panics() {
        arm("no.such.point", ChaosAction::Error);
    }

    #[test]
    fn seeded_schedule_is_deterministic_and_recoverable() {
        let _g = serial();
        let a = schedule_from_seed(1);
        let b = schedule_from_seed(1);
        assert_eq!(a, b, "same seed must arm the same schedule");
        let c = schedule_from_seed(2);
        assert_ne!(a, c, "different seeds should differ (true for 1 vs 2)");
        for (name, action) in &c {
            assert!(CATALOG.contains(name));
            assert_ne!(*action, ChaosAction::Panic, "seeded schedules never panic");
        }
        assert!(!a.is_empty() && !c.is_empty());
        disarm_all();
    }
}
