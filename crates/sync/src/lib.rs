#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # gist-sync — audit-instrumented synchronization wrappers
//!
//! Thin wrappers over the `parking_lot` primitives that the hot-path
//! crates (lockmgr, predlock, commitpipe, wal, striped) are required to
//! use instead of constructing raw mutexes/rwlocks/condvars — the
//! `no-raw-std-sync` gist-lint rule enforces this statically. The point
//! of the indirection is the deterministic model checker (`crates/mc`):
//!
//! - **Normally** (no scheduler registered, or the `latch-audit` feature
//!   off) every operation is a direct passthrough to `parking_lot`.
//! - **Under an exploration** (a [`gist_audit::mc::McScheduler`] is
//!   registered and the calling thread is one of its managed tasks)
//!   every operation becomes a cooperative yield point and all blocking
//!   is *virtualized*: `lock` spins on `try_lock` with virtual parking
//!   between attempts, and condvar waits park on the scheduler with
//!   *virtual* timeouts — no OS-level blocking, no real time, so the
//!   scheduler fully controls the interleaving and can replay a
//!   recorded schedule byte-for-byte. Acquire/release operations also
//!   feed the vector-clock happens-before race detector.
//!
//! Each object carries a process-unique id so the schedule trace and
//! the race reports can name the exact mutex/condvar involved.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

#[cfg(feature = "latch-audit")]
use gist_audit::mc::{self, McObj, McOp, McScheduler, ObjKind};

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed) + 1
}

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

/// Instrumented mutual exclusion over `T` (see the crate docs).
pub struct Mutex<T: ?Sized> {
    #[cfg_attr(not(feature = "latch-audit"), allow(dead_code))]
    id: u64,
    inner: parking_lot::Mutex<T>,
}

impl<T> Mutex<T> {
    /// New mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex { id: next_id(), inner: parking_lot::Mutex::new(value) }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking (or virtually parking) until held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "latch-audit")]
        if let Some(s) = mc::scheduler() {
            let inner = self.lock_virtual(&*s);
            return MutexGuard { lock: self, inner: Some(inner) };
        }
        MutexGuard { lock: self, inner: Some(self.inner.lock()) }
    }

    /// Acquire the mutex if it is free right now (a yield point under
    /// the scheduler, but never a virtual park).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        #[cfg(feature = "latch-audit")]
        if let Some(s) = mc::scheduler() {
            let obj = McObj::new(ObjKind::Mutex, self.id);
            s.yield_point(McOp::MutexLock, obj, "mutex-try-lock");
            let g = self.inner.try_lock()?;
            s.acquire(obj);
            return Some(MutexGuard { lock: self, inner: Some(g) });
        }
        let g = self.inner.try_lock()?;
        Some(MutexGuard { lock: self, inner: Some(g) })
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    /// Cooperative acquisition loop under the virtual scheduler: yield
    /// before each attempt, park on the mutex object between failed
    /// attempts (an unlock unparks all waiters, who re-race the lock —
    /// the schedule decides the winner deterministically).
    #[cfg(feature = "latch-audit")]
    fn lock_virtual(&self, s: &dyn McScheduler) -> parking_lot::MutexGuard<'_, T> {
        let obj = McObj::new(ObjKind::Mutex, self.id);
        loop {
            s.yield_point(McOp::MutexLock, obj, "mutex-lock");
            if let Some(g) = self.inner.try_lock() {
                s.acquire(obj);
                return g;
            }
            s.park(obj, None);
        }
    }
}

/// Guard returned by [`Mutex::lock`]; releases (and reports) on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg_attr(not(feature = "latch-audit"), allow(dead_code))]
    lock: &'a Mutex<T>,
    // Option so condvar waits can temporarily give the lock up.
    inner: Option<parking_lot::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match self.inner.as_ref() {
            Some(g) => g,
            // `inner` is only None *inside* a condvar wait, which holds
            // `&mut` on this guard for its whole duration — no deref can
            // observe the gap.
            None => unreachable!("mutex guard dereferenced during a condvar wait"),
        }
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match self.inner.as_mut() {
            Some(g) => g,
            None => unreachable!("mutex guard dereferenced during a condvar wait"),
        }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "latch-audit")]
        if self.inner.is_some() {
            if let Some(s) = mc::scheduler() {
                let obj = McObj::new(ObjKind::Mutex, self.lock.id);
                s.release(obj);
                self.inner = None;
                s.unpark(obj, true);
                s.yield_point(McOp::MutexUnlock, obj, "mutex-unlock");
            }
        }
        // Dropping `inner` (if still present) performs the real unlock.
    }
}

// ---------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------

/// Result of a timed wait.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Instrumented condition variable working with [`MutexGuard`].
///
/// Under the virtual scheduler, waits park on the scheduler with a
/// *virtual* timeout: if every task is parked, the scheduler advances
/// virtual time to the earliest deadline instead of sleeping, so a
/// schedule that loses a wakeup is detected as a deterministic virtual
/// timeout (or deadlock), never as a flaky slow test.
pub struct Condvar {
    #[cfg_attr(not(feature = "latch-audit"), allow(dead_code))]
    id: u64,
    inner: parking_lot::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub fn new() -> Self {
        Condvar { id: next_id(), inner: parking_lot::Condvar::new() }
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        #[cfg(feature = "latch-audit")]
        if let Some(s) = mc::scheduler() {
            self.wait_virtual(&*s, guard, None);
            return;
        }
        match guard.inner.as_mut() {
            Some(g) => self.inner.wait(g),
            // A wait borrows the guard mutably, so it cannot overlap the
            // other emptier of `inner` (another wait on the same guard).
            None => unreachable!("condvar wait on an emptied guard"),
        }
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        #[cfg(feature = "latch-audit")]
        if let Some(s) = mc::scheduler() {
            let notified = self.wait_virtual(&*s, guard, Some(timeout));
            return WaitTimeoutResult(!notified);
        }
        let res = match guard.inner.as_mut() {
            Some(g) => self.inner.wait_for(g, timeout),
            None => unreachable!("condvar wait on an emptied guard"),
        };
        WaitTimeoutResult(res.timed_out())
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Wake one waiter (park order under the scheduler).
    pub fn notify_one(&self) {
        #[cfg(feature = "latch-audit")]
        if let Some(s) = mc::scheduler() {
            let obj = McObj::new(ObjKind::Condvar, self.id);
            s.yield_point(McOp::CvNotify, obj, "cv-notify-one");
            s.release(obj);
            s.unpark(obj, false);
        }
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        #[cfg(feature = "latch-audit")]
        if let Some(s) = mc::scheduler() {
            let obj = McObj::new(ObjKind::Condvar, self.id);
            s.yield_point(McOp::CvNotify, obj, "cv-notify-all");
            s.release(obj);
            s.unpark(obj, true);
        }
        self.inner.notify_all();
    }

    /// Virtualized wait: release the mutex and park in one model-atomic
    /// step (no yield point separates them, so a notify cannot slip
    /// between the unlock and the park registration — matching the
    /// atomicity `parking_lot` guarantees), then cooperatively
    /// reacquire the mutex. Returns whether the wait was notified.
    #[cfg(feature = "latch-audit")]
    fn wait_virtual<T>(
        &self,
        s: &dyn McScheduler,
        guard: &mut MutexGuard<'_, T>,
        timeout: Option<Duration>,
    ) -> bool {
        let mobj = McObj::new(ObjKind::Mutex, guard.lock.id);
        let cobj = McObj::new(ObjKind::Condvar, self.id);
        s.release(mobj);
        guard.inner = None;
        s.unpark(mobj, true);
        let notified = s.park(cobj, timeout);
        if notified {
            // Happens-before edge from the notifier to the wakeup.
            s.acquire(cobj);
        }
        guard.inner = Some(guard.lock.lock_virtual(s));
        notified
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

// ---------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------

/// Instrumented reader/writer lock (plain guards only; the buffer
/// pool's Arc-owned frame latches stay on `parking_lot` directly and
/// are covered by the audit latch hooks instead).
pub struct RwLock<T: ?Sized> {
    #[cfg_attr(not(feature = "latch-audit"), allow(dead_code))]
    id: u64,
    inner: parking_lot::RwLock<T>,
}

impl<T> RwLock<T> {
    /// New lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock { id: next_id(), inner: parking_lot::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire in shared mode.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "latch-audit")]
        if let Some(s) = mc::scheduler() {
            let obj = McObj::new(ObjKind::RwLock, self.id);
            loop {
                s.yield_point(McOp::RwRead, obj, "rwlock-read");
                if let Some(g) = self.inner.try_read() {
                    s.acquire(obj);
                    return RwLockReadGuard { lock: self, inner: Some(g) };
                }
                s.park(obj, None);
            }
        }
        RwLockReadGuard { lock: self, inner: Some(self.inner.read()) }
    }

    /// Acquire in exclusive mode.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "latch-audit")]
        if let Some(s) = mc::scheduler() {
            let obj = McObj::new(ObjKind::RwLock, self.id);
            loop {
                s.yield_point(McOp::RwWrite, obj, "rwlock-write");
                if let Some(g) = self.inner.try_write() {
                    s.acquire(obj);
                    return RwLockWriteGuard { lock: self, inner: Some(g) };
                }
                s.park(obj, None);
            }
        }
        RwLockWriteGuard { lock: self, inner: Some(self.inner.write()) }
    }
}

/// Shared guard borrowed from an [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg_attr(not(feature = "latch-audit"), allow(dead_code))]
    lock: &'a RwLock<T>,
    inner: Option<parking_lot::RwLockReadGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match self.inner.as_ref() {
            Some(g) => g,
            // `inner` is only taken in Drop; no deref can follow it.
            None => unreachable!("rwlock read guard dereferenced after drop"),
        }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "latch-audit")]
        if self.inner.is_some() {
            if let Some(s) = mc::scheduler() {
                let obj = McObj::new(ObjKind::RwLock, self.lock.id);
                // A read-release also joins into the object clock, so a
                // later writer is ordered after every reader it excludes
                // (conservative over-ordering, never a false race).
                s.release(obj);
                self.inner = None;
                s.unpark(obj, true);
                s.yield_point(McOp::RwUnlock, obj, "rwlock-read-unlock");
            }
        }
    }
}

/// Exclusive guard borrowed from an [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg_attr(not(feature = "latch-audit"), allow(dead_code))]
    lock: &'a RwLock<T>,
    inner: Option<parking_lot::RwLockWriteGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match self.inner.as_ref() {
            Some(g) => g,
            None => unreachable!("rwlock write guard dereferenced after drop"),
        }
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match self.inner.as_mut() {
            Some(g) => g,
            None => unreachable!("rwlock write guard dereferenced after drop"),
        }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "latch-audit")]
        if self.inner.is_some() {
            if let Some(s) = mc::scheduler() {
                let obj = McObj::new(ObjKind::RwLock, self.lock.id);
                s.release(obj);
                self.inner = None;
                s.unpark(obj, true);
                s.yield_point(McOp::RwUnlock, obj, "rwlock-write-unlock");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_passthrough_roundtrip() {
        let m = Mutex::new(0);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
        assert!(m.try_lock().is_some());
        let _held = m.lock();
        assert!(m.try_lock().is_none());
    }

    #[test]
    fn condvar_passthrough_times_out_and_wakes() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)).timed_out());
        drop(g);

        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            assert!(!cv.wait_for(&mut g, Duration::from_secs(10)).timed_out());
        }
        drop(g);
        h.join().unwrap();
    }

    #[test]
    fn rwlock_passthrough_shares_and_excludes() {
        let l = RwLock::new(5);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
