//! Maintenance subsystem: cost of physical reclamation when it runs as a
//! foreground sweep on the deleting thread vs. handed to the maintenance
//! daemon post-commit (drained synchronously here so Criterion measures
//! the same work without thread-scheduling noise).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use gist_bench::{btree_db, wl_rid};
use gist_core::DbConfig;

const N: i64 = 5_000;

fn loaded_tree() -> (std::sync::Arc<gist_core::Db>, std::sync::Arc<gist_core::GistIndex<gist_am::BtreeExt>>) {
    let (db, idx) = btree_db(DbConfig::default());
    let txn = db.begin();
    for k in 0..N {
        idx.insert(txn, &k, wl_rid(k as u64)).unwrap();
    }
    db.commit(txn).unwrap();
    (db, idx)
}

/// Delete every other key, then reclaim with a foreground `vacuum_sync`
/// on the caller's thread — the pre-daemon behavior.
fn bench_foreground_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("maint");
    g.sample_size(10);
    g.bench_function("foreground_sweep", |b| {
        b.iter_batched(
            loaded_tree,
            |(db, idx)| {
                let txn = db.begin();
                for k in 0..N / 2 {
                    idx.delete(txn, &(k * 2), wl_rid((k * 2) as u64)).unwrap();
                }
                db.commit(txn).unwrap();
                let txn = db.begin();
                let rep = idx.vacuum_sync(txn).unwrap();
                db.commit(txn).unwrap();
                assert_eq!(rep.entries_removed as i64, N / 2);
            },
            BatchSize::PerIteration,
        );
    });
    g.finish();
}

/// Same deletes, but commit hands the candidates to the daemon and the
/// reclamation happens leaf-by-leaf off the queue (drained here with
/// `maint_sync`). Measures the targeted-GC path incl. queue overhead.
fn bench_background_gc(c: &mut Criterion) {
    let mut g = c.benchmark_group("maint");
    g.sample_size(10);
    g.bench_function("background_gc_drained", |b| {
        b.iter_batched(
            loaded_tree,
            |(db, idx)| {
                let txn = db.begin();
                for k in 0..N / 2 {
                    idx.delete(txn, &(k * 2), wl_rid((k * 2) as u64)).unwrap();
                }
                db.commit(txn).unwrap();
                db.maint_sync();
                assert_eq!(idx.stats().unwrap().marked_entries, 0);
            },
            BatchSize::PerIteration,
        );
    });
    g.finish();
}

/// The deleting transaction's own latency when reclamation is deferred:
/// the commit returns before any physical removal happens. This is the
/// foreground win the daemon buys.
fn bench_delete_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("maint");
    g.sample_size(10);
    g.bench_function("delete_commit_only_deferred", |b| {
        b.iter_batched(
            loaded_tree,
            |(db, idx)| {
                let txn = db.begin();
                for k in 0..N / 2 {
                    idx.delete(txn, &(k * 2), wl_rid((k * 2) as u64)).unwrap();
                }
                db.commit(txn).unwrap();
                // Reclamation intentionally left to the daemon.
            },
            BatchSize::PerIteration,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_foreground_sweep, bench_background_gc, bench_delete_latency);
criterion_main!(benches);
