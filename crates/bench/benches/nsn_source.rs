//! E10 — Criterion form: insert cost under the three NSN configurations
//! (§10.1). The interesting delta is the descent's "memorize the global
//! counter" read, which in `WalLsn + parent-LSN` mode touches no shared
//! counter at all below the root.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use gist_bench::{btree_db, run_for, wl_rid};
use gist_core::{DbConfig, IsolationLevel, NsnSource};

fn bench_nsn(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_nsn_source_4T_insert");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(5));
    let variants: [(&str, NsnSource, bool); 3] = [
        ("dedicated_counter", NsnSource::DedicatedCounter, false),
        ("wal_lsn_global", NsnSource::WalLsn, false),
        ("wal_lsn_parent", NsnSource::WalLsn, true),
    ];
    for (name, source, parent_opt) in variants {
        g.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let (db, idx) = btree_db(DbConfig {
                    nsn_source: source,
                    memorize_parent_lsn: parent_opt,
                    isolation: IsolationLevel::Latching,
                    ..DbConfig::default()
                });
                let txn = db.begin();
                for k in 0..5_000i64 {
                    idx.insert(txn, &(k << 16), wl_rid(k as u64)).unwrap();
                }
                db.commit(txn).unwrap();
                let window =
                    Duration::from_millis(40).mul_f64((iters as f64 / 10.0).max(1.0));
                let (db2, idx2) = (db.clone(), idx.clone());
                let tp = run_for(4, window, move |t, i| {
                    let k = ((t as i64) << 48) + ((i as i64) << 1) + 1;
                    let txn = db2.begin();
                    match idx2.insert(txn, &k, wl_rid(7_000_000 + ((t as u64) << 40) + i)) {
                        Ok(()) => db2.commit(txn).unwrap(),
                        Err(e) if e.is_retryable() => db2.abort(txn).unwrap(),
                        Err(e) => panic!("{e}"),
                    }
                });
                tp.elapsed.div_f64(tp.ops.max(1) as f64).mul_f64(iters as f64)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_nsn);
criterion_main!(benches);
