//! E5 — Criterion form: link protocol vs. conservative latching under a
//! fixed concurrent mixed load (4 threads, 50/50). The experiments
//! binary sweeps the full thread/mix grid; this bench pins one point for
//! regression tracking.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use gist_am::I64Query;
use gist_bench::{baseline_tree, run_for, wl_rid, XorShift};
use gist_core::baseline::BaselineProtocol;

fn bench_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_protocols_4T_5050");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(6));
    for (name, protocol) in [
        ("link", BaselineProtocol::Link),
        ("subtree_x", BaselineProtocol::FullPathX),
        ("tree_rwlock", BaselineProtocol::TreeRwLock),
    ] {
        g.bench_function(name, |b| {
            b.iter_custom(|iters| {
                // One timed window per iteration batch: run the mixed
                // workload for a duration proportional to iters, report
                // the elapsed time so criterion normalizes per "op".
                let tree = baseline_tree(protocol, Duration::ZERO);
                for k in 0..10_000i64 {
                    tree.insert(&(k * 2), wl_rid(k as u64)).unwrap();
                }
                let window = Duration::from_millis(50).mul_f64(iters as f64 / 10.0).max(Duration::from_millis(50));
                let tree2 = tree.clone();
                let tp = run_for(4, window, move |t, i| {
                    let mut rng = XorShift::new((t as u64 + 1) * 97 + i);
                    if rng.below(2) == 0 {
                        let k = 1_000_000 + ((t as i64) << 40) + i as i64;
                        tree2.insert(&k, wl_rid(9_000_000 + ((t as u64) << 32) + i)).unwrap();
                    } else {
                        let lo = rng.below(19_000) as i64;
                        let _ = tree2.search(&I64Query::range(lo, lo + 50)).unwrap();
                    }
                });
                // Normalize: duration per requested iteration count.
                tp.elapsed.div_f64((tp.ops.max(1)) as f64).mul_f64(iters as f64)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
