//! Micro-benchmarks of the primitive index operations (single-threaded
//! cost floor the protocol experiments build on).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use gist_am::I64Query;
use gist_bench::{btree_db, wl_rid};
use gist_core::DbConfig;

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("ops");
    g.sample_size(20);
    g.bench_function("insert_committed_txn", |b| {
        let (db, idx) = btree_db(DbConfig::default());
        let mut k = 0i64;
        b.iter(|| {
            let txn = db.begin();
            idx.insert(txn, &k, wl_rid(k as u64)).unwrap();
            db.commit(txn).unwrap();
            k += 1;
        });
    });
    g.bench_function("insert_batched_txn_of_100", |b| {
        let (db, idx) = btree_db(DbConfig::default());
        let mut k = 0i64;
        b.iter(|| {
            let txn = db.begin();
            for _ in 0..100 {
                idx.insert(txn, &k, wl_rid(k as u64)).unwrap();
                k += 1;
            }
            db.commit(txn).unwrap();
        });
    });
    g.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("ops");
    g.sample_size(30);
    let (db, idx) = btree_db(DbConfig::default());
    let txn = db.begin();
    for k in 0..50_000i64 {
        idx.insert(txn, &k, wl_rid(k as u64)).unwrap();
    }
    db.commit(txn).unwrap();
    g.bench_function("point_search_50k_tree", |b| {
        let mut k = 0i64;
        b.iter(|| {
            let txn = db.begin();
            let hits = idx.search(txn, &I64Query::eq(k % 50_000)).unwrap();
            db.commit(txn).unwrap();
            assert_eq!(hits.len(), 1);
            k += 7919;
        });
    });
    g.bench_function("range_scan_100_of_50k", |b| {
        let mut lo = 0i64;
        b.iter(|| {
            let txn = db.begin();
            let hits = idx.search(txn, &I64Query::range(lo, lo + 99)).unwrap();
            db.commit(txn).unwrap();
            assert_eq!(hits.len(), 100);
            lo = (lo + 997) % 49_900;
        });
    });
    g.finish();
}

fn bench_delete(c: &mut Criterion) {
    let mut g = c.benchmark_group("ops");
    g.sample_size(10);
    g.bench_function("logical_delete", |b| {
        b.iter_batched(
            || {
                let (db, idx) = btree_db(DbConfig::default());
                let txn = db.begin();
                for k in 0..1_000i64 {
                    idx.insert(txn, &k, wl_rid(k as u64)).unwrap();
                }
                db.commit(txn).unwrap();
                (db, idx, 0i64)
            },
            |(db, idx, _)| {
                let txn = db.begin();
                for k in 0..100i64 {
                    idx.delete(txn, &k, wl_rid(k as u64)).unwrap();
                }
                db.commit(txn).unwrap();
            },
            BatchSize::PerIteration,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_insert, bench_search, bench_delete);
criterion_main!(benches);
