//! E8 — Criterion form: vacuum cost (physical removal + BP shrinking)
//! for a tree with half its entries committed-deleted.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use gist_bench::{btree_db, wl_rid};
use gist_core::DbConfig;

fn bench_vacuum(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_gc");
    g.sample_size(10);
    for n in [2_000i64, 10_000] {
        g.bench_function(format!("vacuum_{n}_half_deleted"), |b| {
            b.iter_batched(
                || {
                    let (db, idx) = btree_db(DbConfig::default());
                    let txn = db.begin();
                    for k in 0..n {
                        idx.insert(txn, &k, wl_rid(k as u64)).unwrap();
                    }
                    db.commit(txn).unwrap();
                    let txn = db.begin();
                    for k in 0..n / 2 {
                        idx.delete(txn, &(k * 2), wl_rid((k * 2) as u64)).unwrap();
                    }
                    db.commit(txn).unwrap();
                    (db, idx)
                },
                |(db, idx)| {
                    let txn = db.begin();
                    let rep = idx.vacuum_sync(txn).unwrap();
                    db.commit(txn).unwrap();
                    assert_eq!(rep.entries_removed as i64, n / 2);
                },
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();
}

/// The opportunistic path: inserts into full leaves trigger in-place GC
/// instead of splits when marked entries are reclaimable.
fn bench_opportunistic(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_gc");
    g.sample_size(10);
    g.bench_function("insert_into_reclaimable_leaf", |b| {
        b.iter_batched(
            || {
                let (db, idx) = btree_db(DbConfig::default());
                let txn = db.begin();
                for k in 0..400i64 {
                    idx.insert(txn, &k, wl_rid(k as u64)).unwrap();
                }
                db.commit(txn).unwrap();
                let txn = db.begin();
                for k in 0..200i64 {
                    idx.delete(txn, &k, wl_rid(k as u64)).unwrap();
                }
                db.commit(txn).unwrap();
                (db, idx, 0i64)
            },
            |(db, idx, _)| {
                let txn = db.begin();
                for k in 0..100i64 {
                    idx.insert(txn, &(1_000 + k), wl_rid(10_000 + k as u64)).unwrap();
                }
                db.commit(txn).unwrap();
            },
            BatchSize::PerIteration,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_vacuum, bench_opportunistic);
criterion_main!(benches);
