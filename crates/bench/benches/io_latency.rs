//! E6 — Criterion form: per-search latch-hold time with simulated page
//! I/O. The coupling reader holds ancestor latches across child fetches;
//! the link reader never does. With a cold-ish pool and 200 µs reads the
//! difference shows up directly in search latency under concurrency.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gist_am::I64Query;
use gist_bench::{baseline_tree, run_for, wl_rid, XorShift};
use gist_core::baseline::BaselineProtocol;

fn bench_io(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_io_latency_4T");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(5));
    for (name, protocol) in
        [("link", BaselineProtocol::Link), ("coupling", BaselineProtocol::FullPathX)]
    {
        g.bench_with_input(BenchmarkId::new(name, "200us"), &protocol, |b, &protocol| {
            b.iter_custom(|iters| {
                let tree = baseline_tree(protocol, Duration::from_micros(200));
                for k in 0..3_000i64 {
                    tree.insert(&k, wl_rid(k as u64)).unwrap();
                }
                let window =
                    Duration::from_millis(40).mul_f64((iters as f64 / 10.0).max(1.0));
                let tree2 = tree.clone();
                let tp = run_for(4, window, move |t, i| {
                    let mut rng = XorShift::new((t as u64 + 1) * 13 + i);
                    let lo = rng.below(2_900) as i64;
                    let _ = tree2.search(&I64Query::range(lo, lo + 20)).unwrap();
                });
                tp.elapsed.div_f64(tp.ops.max(1) as f64).mul_f64(iters as f64)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_io);
criterion_main!(benches);
