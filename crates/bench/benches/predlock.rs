//! E7 — Criterion form: the predicate-check cost at the heart of §4.2 vs
//! §4.3. Measures `check_insert` directly against attachment lists of
//! growing size — the paper's point that "every check must go through
//! the entire tree-global list" in pure predicate locking, while the
//! hybrid scheme checks only the target leaf's (short) list.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gist_pagestore::PageId;
use gist_predlock::{PredKind, PredicateManager, GLOBAL_NODE};
use gist_wal::TxnId;

/// Byte-range conflict function mimicking a B-tree `consistent()`.
fn conflict(scan: &[u8], key: &[u8]) -> bool {
    let lo = i64::from_le_bytes(scan[0..8].try_into().unwrap());
    let hi = i64::from_le_bytes(scan[8..16].try_into().unwrap());
    let k = i64::from_le_bytes(key[0..8].try_into().unwrap());
    lo <= k && k <= hi
}

fn range_bytes(lo: i64, hi: i64) -> Vec<u8> {
    let mut b = lo.to_le_bytes().to_vec();
    b.extend_from_slice(&hi.to_le_bytes());
    b
}

fn bench_check(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_predicate_check");
    for n_preds in [1usize, 16, 64, 256, 1024] {
        // Pure-global shape: all predicates on one list.
        g.bench_with_input(BenchmarkId::new("global_list", n_preds), &n_preds, |b, &n| {
            let pm = PredicateManager::new();
            for i in 0..n {
                let p = pm.register(
                    TxnId(i as u64 + 1),
                    PredKind::Scan,
                    range_bytes(i as i64 * 100, i as i64 * 100 + 50),
                );
                pm.attach(p, GLOBAL_NODE);
            }
            let key = (-42i64).to_le_bytes().to_vec(); // matches nothing
            b.iter(|| {
                let hits = pm.check_insert(GLOBAL_NODE, TxnId(0), &key, &conflict);
                assert!(hits.is_empty());
            });
        });
        // Hybrid shape: predicates spread over many leaves; the insert
        // checks just its target leaf (list length ≈ n / leaves).
        g.bench_with_input(BenchmarkId::new("per_leaf_list", n_preds), &n_preds, |b, &n| {
            let pm = PredicateManager::new();
            let leaves = 64u32;
            for i in 0..n {
                let p = pm.register(
                    TxnId(i as u64 + 1),
                    PredKind::Scan,
                    range_bytes(i as i64 * 100, i as i64 * 100 + 50),
                );
                pm.attach(p, (1, PageId(i as u32 % leaves)));
            }
            let key = (-42i64).to_le_bytes().to_vec();
            b.iter(|| {
                let hits = pm.check_insert((1, PageId(7)), TxnId(0), &key, &conflict);
                assert!(hits.is_empty());
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_check);
criterion_main!(benches);
