//! E4 — Criterion form: restart time for a fixed crash image
//! (redo-dominated: 5k committed inserts, no surviving pages).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use std::sync::Arc;

use gist_am::BtreeExt;
use gist_bench::wl_rid;
use gist_core::{Db, DbConfig, GistIndex, IndexOptions};
use gist_pagestore::InMemoryStore;
use gist_wal::LogManager;

fn crash_image(n: i64) -> (Arc<InMemoryStore>, Arc<LogManager>) {
    let store = Arc::new(InMemoryStore::new());
    let log = Arc::new(LogManager::new());
    let db = Db::open(store.clone(), log.clone(), DbConfig::default()).unwrap();
    let idx = GistIndex::create(db.clone(), "t", BtreeExt, IndexOptions::default()).unwrap();
    let txn = db.begin();
    for k in 0..n {
        idx.insert(txn, &k, wl_rid(k as u64)).unwrap();
    }
    db.commit(txn).unwrap();
    let loser = db.begin();
    for k in n..n + 100 {
        idx.insert(loser, &k, wl_rid(k as u64)).unwrap();
    }
    db.log().flush_all();
    db.crash();
    (store, log)
}

fn bench_restart(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_restart");
    g.sample_size(10);
    for n in [1_000i64, 5_000] {
        g.bench_function(format!("redo_{n}_committed_undo_100"), |b| {
            b.iter_batched(
                || crash_image(n),
                |(store, log)| {
                    // Restart consumes the durable image; pages rebuilt in
                    // a fresh pool each time.
                    let fresh_log = Arc::new(LogManager::new());
                    for rec in log.scan_from(gist_wal::Lsn(1)) {
                        fresh_log.append(rec.txn, rec.prev_lsn, rec.body.clone());
                    }
                    fresh_log.flush_all();
                    let (db, report) =
                        Db::restart(store, fresh_log, DbConfig::default()).unwrap();
                    assert_eq!(report.outcome.losers.len(), 1);
                    drop(db);
                },
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_restart);
criterion_main!(benches);
