#![forbid(unsafe_code)]

//! Experiment harness: workload generators and runners shared by the
//! Criterion benches and the `experiments` binary.
//!
//! Every experiment from DESIGN.md (E1–E12) has a runner here that
//! returns structured rows; the binary formats them as the tables
//! recorded in EXPERIMENTS.md. Absolute numbers depend on the host; the
//! *shapes* (who wins, by what factor, where curves cross) are the
//! reproduction targets.

pub mod experiments;
pub mod harness;
pub mod workload;

pub use experiments::*;
pub use harness::*;
pub use workload::*;
