//! Shared scaffolding for the `bench_*` acceptance binaries.
//!
//! Every bench binary needs the same three pieces: a preloaded database
//! over an (optionally latency-injected) store, a thread ramp that runs
//! one cell per thread count, and a hand-rolled JSON report written next
//! to the repo root. They used to be copy-pasted per binary; this module
//! is the single copy.

use std::sync::Arc;
use std::time::Duration;

use gist_am::BtreeExt;
use gist_core::{Db, DbConfig, GistIndex, IndexOptions};
use gist_pagestore::{InMemoryStore, PageStore, SimulatedLatencyStore};
use gist_wal::LogManager;

use crate::workload::wl_rid;

/// Keys preloaded by [`preloaded_db`] callers that use the defaults
/// (spaced by [`KEY_STRIDE`] so range searches hit a few).
pub const PRELOAD: i64 = 20_000;
/// Spacing between preloaded keys.
pub const KEY_STRIDE: i64 = 10;
/// Pool frames — far below the ~70-leaf preloaded working set, so
/// traversals miss and simulated I/O actually happens.
pub const POOL_CAPACITY: usize = 8;
/// Simulated device read latency for the latency-injected cells.
pub const READ_LATENCY: Duration = Duration::from_micros(120);
/// Measurement window per cell.
pub const WINDOW: Duration = Duration::from_millis(700);
/// The standard thread ramp.
pub const RAMP_THREADS: [usize; 4] = [1, 2, 4, 8];

/// An in-memory store behind a simulated per-read device latency
/// (`Duration::ZERO` returns the raw store).
pub fn latency_store(read_latency: Duration) -> Arc<dyn PageStore> {
    let inner = InMemoryStore::new();
    if read_latency.is_zero() {
        Arc::new(inner)
    } else {
        Arc::new(SimulatedLatencyStore::new(Box::new(inner), read_latency, Duration::ZERO))
    }
}

/// Open a database + B-tree index over `store` and preload `preload`
/// keys spaced by `stride` in one committed transaction.
pub fn preloaded_db(
    store: Arc<dyn PageStore>,
    config: DbConfig,
    preload: i64,
    stride: i64,
) -> (Arc<Db>, Arc<GistIndex<BtreeExt>>) {
    let db = Db::open(store, Arc::new(LogManager::new()), config).expect("open db");
    let idx = GistIndex::create(db.clone(), "bench", BtreeExt, IndexOptions::default())
        .expect("create index");
    let txn = db.begin();
    for k in 0..preload {
        idx.insert(txn, &(k * stride), wl_rid(k as u64)).expect("preload");
    }
    db.commit(txn).expect("preload commit");
    (db, idx)
}

/// The standard miss-heavy setup: latency-injected store, tiny pool,
/// [`PRELOAD`] keys at [`KEY_STRIDE`]. The caller's `config` supplies
/// everything else (shards, durability, ...); `pool_capacity` and
/// `lock_timeout` should normally be [`POOL_CAPACITY`] and ~30 s.
pub fn latency_db(config: DbConfig) -> (Arc<Db>, Arc<GistIndex<BtreeExt>>) {
    preloaded_db(latency_store(READ_LATENCY), config, PRELOAD, KEY_STRIDE)
}

/// Run `cell` once per thread count and collect `(threads, cell result)`.
pub fn ramp<T>(threads: &[usize], mut cell: impl FnMut(usize) -> T) -> Vec<(usize, T)> {
    threads.iter().map(|&t| (t, cell(t))).collect()
}

const HIST_BUCKETS: usize = 32;

/// A thread-safe power-of-two latency histogram: `record` is one
/// relaxed atomic increment, percentiles come back as the bucket's
/// upper bound in microseconds. The same shape the commit pipeline uses
/// internally, shared here so every bench reports p50/p99/p999 from one
/// implementation instead of per-binary copies.
#[derive(Debug)]
pub struct LatencyHist {
    buckets: [std::sync::atomic::AtomicU64; HIST_BUCKETS],
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHist {
    /// Empty histogram.
    pub fn new() -> Self {
        LatencyHist { buckets: std::array::from_fn(|_| std::sync::atomic::AtomicU64::new(0)) }
    }

    /// Record one sample.
    pub fn record(&self, latency: Duration) {
        self.record_us(latency.as_micros() as u64);
    }

    /// Record one sample given directly in microseconds.
    pub fn record_us(&self, micros: u64) {
        use std::sync::atomic::Ordering;
        let b = (64 - micros.leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        use std::sync::atomic::Ordering;
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0.0..=1.0`) in microseconds, as the matching
    /// bucket's upper bound; 0 when empty.
    pub fn percentile_us(&self, q: f64) -> u64 {
        use std::sync::atomic::Ordering;
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let need = ((total as f64) * q).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= need {
                return 1u64 << i;
            }
        }
        1u64 << (HIST_BUCKETS - 1)
    }

    /// Median, in microseconds.
    pub fn p50_us(&self) -> u64 {
        self.percentile_us(0.50)
    }

    /// 99th percentile, in microseconds.
    pub fn p99_us(&self) -> u64 {
        self.percentile_us(0.99)
    }

    /// 99.9th percentile — the overload benches' hang detector: parked
    /// waiters that only move on timeout expiry show up here long before
    /// they dent the mean.
    pub fn p999_us(&self) -> u64 {
        self.percentile_us(0.999)
    }
}

/// One hand-rolled JSON object, built field by field (the repo vendors
/// no serde; the report format is simple enough not to need it).
#[derive(Debug, Clone, Default)]
pub struct JsonObj(String);

impl JsonObj {
    /// Empty object.
    pub fn new() -> Self {
        JsonObj(String::new())
    }

    fn key(&mut self, name: &str) {
        if !self.0.is_empty() {
            self.0.push_str(", ");
        }
        self.0.push('"');
        self.0.push_str(name);
        self.0.push_str("\": ");
    }

    /// Add a string field (caller guarantees no quotes/backslashes —
    /// labels here are static identifiers).
    pub fn str(mut self, name: &str, value: &str) -> Self {
        self.key(name);
        self.0.push('"');
        self.0.push_str(value);
        self.0.push('"');
        self
    }

    /// Add an integer field.
    pub fn int(mut self, name: &str, value: i128) -> Self {
        self.key(name);
        self.0.push_str(&value.to_string());
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, name: &str, value: bool) -> Self {
        self.key(name);
        self.0.push_str(if value { "true" } else { "false" });
        self
    }

    /// Add a float field with `decimals` fractional digits.
    pub fn num(mut self, name: &str, value: f64, decimals: usize) -> Self {
        self.key(name);
        self.0.push_str(&format!("{value:.decimals$}"));
        self
    }

    /// Add a field whose value is already-rendered JSON.
    pub fn raw(mut self, name: &str, value: &str) -> Self {
        self.key(name);
        self.0.push_str(value);
        self
    }

    /// Render as `{...}`.
    pub fn render(&self) -> String {
        format!("{{{}}}", self.0)
    }
}

/// Accumulates a bench report — head fields, a `"results"` array, tail
/// fields — and writes it as pretty-printed JSON.
#[derive(Debug)]
pub struct JsonReport {
    head: Vec<(String, String)>,
    results: Vec<String>,
    tail: Vec<(String, String)>,
}

impl JsonReport {
    /// New report; records the bench name and the host core count.
    pub fn new(bench: &str) -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        JsonReport {
            head: vec![
                ("bench".into(), format!("\"{bench}\"")),
                ("cores".into(), cores.to_string()),
            ],
            results: Vec::new(),
            tail: Vec::new(),
        }
    }

    /// Add a top-level field before `"results"` (raw JSON value).
    pub fn head(&mut self, name: &str, value: impl Into<String>) -> &mut Self {
        self.head.push((name.to_string(), value.into()));
        self
    }

    /// Add a top-level field after `"results"` (raw JSON value).
    pub fn tail(&mut self, name: &str, value: impl Into<String>) -> &mut Self {
        self.tail.push((name.to_string(), value.into()));
        self
    }

    /// Append one result object.
    pub fn push(&mut self, obj: JsonObj) -> &mut Self {
        self.results.push(obj.render());
        self
    }

    /// Render the whole report.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (name, value) in &self.head {
            out.push_str(&format!("  \"{name}\": {value},\n"));
        }
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str("    ");
            out.push_str(r);
            out.push_str(if i + 1 < self.results.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]");
        for (name, value) in &self.tail {
            out.push_str(&format!(",\n  \"{name}\": {value}"));
        }
        out.push_str("\n}\n");
        out
    }

    /// Write the report to `path` and announce it on stdout.
    pub fn write(&self, path: &str) {
        std::fs::write(path, self.render()).expect("write json");
        println!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_shape() {
        let mut rep = JsonReport::new("demo");
        rep.head("config", JsonObj::new().int("window_ms", 700).render());
        rep.push(JsonObj::new().str("mode", "a").int("threads", 4).num("ops_per_sec", 123.456, 1));
        rep.push(JsonObj::new().str("mode", "b").bool("ok", true));
        rep.tail("speedup", "2.500");
        let s = rep.render();
        assert!(s.starts_with("{\n  \"bench\": \"demo\",\n  \"cores\": "));
        assert!(s.contains("\"config\": {\"window_ms\": 700},"));
        assert!(s.contains("    {\"mode\": \"a\", \"threads\": 4, \"ops_per_sec\": 123.5},\n"));
        assert!(s.contains("    {\"mode\": \"b\", \"ok\": true}\n"));
        assert!(s.ends_with("  ],\n  \"speedup\": 2.500\n}\n"));
    }

    #[test]
    fn ramp_visits_each_thread_count_in_order() {
        let out = ramp(&[1, 2, 4], |t| t * 10);
        assert_eq!(out, vec![(1, 10), (2, 20), (4, 40)]);
    }

    #[test]
    fn latency_hist_percentiles_are_bucket_upper_bounds() {
        let h = LatencyHist::new();
        assert_eq!(h.percentile_us(0.5), 0, "empty histogram reads 0");
        for _ in 0..999 {
            h.record_us(100); // bucket 7 → upper bound 128
        }
        h.record_us(10_000); // bucket 14 → upper bound 16384
        assert_eq!(h.count(), 1000);
        assert_eq!(h.p50_us(), 128);
        assert_eq!(h.p99_us(), 128);
        assert_eq!(h.p999_us(), 128, "999/1000 samples sit at or below 128µs");
        assert_eq!(h.percentile_us(1.0), 16_384, "the outlier owns the max");
    }
}
