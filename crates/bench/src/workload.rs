//! Workload generation and common setup helpers.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gist_am::BtreeExt;
use gist_core::baseline::{BaselineProtocol, SimpleTree};
use gist_core::{Db, DbConfig, GistIndex, IndexOptions};
use gist_pagestore::{
    BufferPool, InMemoryStore, PageAllocator, PageId, PageStore, Rid, SimulatedLatencyStore,
};
use gist_wal::LogManager;

/// Deterministic xorshift PRNG (no external dependency needed in the hot
/// path; `rand` is used by the richer generators below).
#[derive(Debug, Clone)]
pub struct XorShift(pub u64);

impl XorShift {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Skewed (approximately zipfian via repeated halving): favors low
    /// values.
    pub fn skewed(&mut self, n: u64) -> u64 {
        let mut range = n;
        let mut base = 0u64;
        while range > 1 && self.below(4) != 0 {
            range /= 2;
        }
        if range == 0 {
            range = 1;
        }
        base += self.below(range);
        base
    }
}

/// A unique RID for workload item `n` (RIDs must be distinct across the
/// whole run).
pub fn wl_rid(n: u64) -> Rid {
    Rid::new(PageId(1_000_000 + (n >> 16) as u32), (n & 0xFFFF) as u16)
}

/// Fresh in-memory database + B-tree index.
pub fn btree_db(config: DbConfig) -> (Arc<Db>, Arc<GistIndex<BtreeExt>>) {
    let store = Arc::new(InMemoryStore::new());
    let log = Arc::new(LogManager::new());
    let db = Db::open(store, log, config).expect("open db");
    let idx = GistIndex::create(db.clone(), "bench", BtreeExt, IndexOptions::default())
        .expect("create index");
    (db, idx)
}

/// Fresh baseline tree over an optionally latency-injected store.
pub fn baseline_tree(
    protocol: BaselineProtocol,
    read_latency: Duration,
) -> Arc<SimpleTree<BtreeExt>> {
    let inner = InMemoryStore::new();
    let store: Arc<dyn PageStore> = if read_latency.is_zero() {
        Arc::new(inner)
    } else {
        Arc::new(SimulatedLatencyStore::new(Box::new(inner), read_latency, Duration::ZERO))
    };
    // Tiny pool so simulated I/O actually happens on traversals.
    let capacity = if read_latency.is_zero() { 4096 } else { 8 };
    let pool = BufferPool::new(store, capacity);
    let alloc = Arc::new(PageAllocator::new(0));
    SimpleTree::create(pool, alloc, BtreeExt, protocol).expect("create tree")
}

/// Throughput measurement outcome.
#[derive(Debug, Clone, Copy)]
pub struct Throughput {
    /// Operations completed.
    pub ops: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
}

impl Throughput {
    /// Operations per second.
    pub fn per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64()
    }
}

/// Run `threads` workers for `duration`; each calls `op(thread_id, i)`
/// repeatedly. Returns total completed ops.
pub fn run_for<F>(threads: usize, duration: Duration, op: F) -> Throughput
where
    F: Fn(usize, u64) + Send + Sync + 'static,
{
    let op = Arc::new(op);
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let (op, stop, total) = (op.clone(), stop.clone(), total.clone());
        handles.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                op(t, i);
                i += 1;
            }
            total.fetch_add(i, Ordering::Relaxed);
        }));
    }
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    Throughput { ops: total.load(Ordering::Relaxed), elapsed: t0.elapsed() }
}

/// A table row: label plus named numeric columns (printed by the
/// `experiments` binary and recorded in EXPERIMENTS.md).
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (e.g. "4 threads / 50% insert").
    pub label: String,
    /// `(column name, value)` pairs.
    pub cols: Vec<(String, f64)>,
}

impl Row {
    /// Build a row.
    pub fn new(label: impl Into<String>) -> Self {
        Row { label: label.into(), cols: Vec::new() }
    }

    /// Add a column.
    pub fn col(mut self, name: &str, value: f64) -> Self {
        self.cols.push((name.to_string(), value));
        self
    }
}

/// Render rows as an aligned text table.
pub fn render_table(title: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    if rows.is_empty() {
        out.push_str("(no rows)\n");
        return out;
    }
    let col_names: Vec<&String> = rows[0].cols.iter().map(|(n, _)| n).collect();
    let label_w = rows.iter().map(|r| r.label.len()).max().unwrap().max(8);
    out.push_str(&format!("{:label_w$}", ""));
    for n in &col_names {
        out.push_str(&format!(" | {:>12}", n));
    }
    out.push('\n');
    out.push_str(&"-".repeat(label_w + col_names.len() * 15));
    out.push('\n');
    for r in rows {
        out.push_str(&format!("{:label_w$}", r.label));
        for (_, v) in &r.cols {
            if v.abs() >= 1000.0 {
                out.push_str(&format!(" | {:>12.0}", v));
            } else {
                out.push_str(&format!(" | {:>12.2}", v));
            }
        }
        out.push('\n');
    }
    out
}
