//! Multi-threaded throughput benchmark for the sharded synchronization
//! layers (partitioned buffer pool, striped lock manager, per-node
//! predicate tables).
//!
//! Runs search / insert / mixed workloads at 1, 2, 4 and 8 threads over
//! a latency-injected store (so page misses model real I/O and threads
//! can overlap them) with a buffer pool much smaller than the working
//! set. Each cell is run twice: `shards = 1`, which reproduces the
//! pre-refactor global-mutex structure exactly (the in-PR baseline), and
//! `shards = 16`, the partitioned configuration. Results are written to
//! `BENCH_shard.json` and printed as a table.
//!
//! Usage: `cargo run --release -p gist-bench --bin bench_shard [out.json]`

use std::sync::Arc;
use std::time::Duration;

use gist_am::{BtreeExt, I64Query};
use gist_bench::{run_for, render_table, wl_rid, Row, XorShift};
use gist_core::{Db, DbConfig, GistIndex, IndexOptions};
use gist_pagestore::{InMemoryStore, PageStore, SimulatedLatencyStore};
use gist_wal::LogManager;

/// Preloaded keys (spaced by `KEY_STRIDE` so range searches hit a few).
const PRELOAD: i64 = 20_000;
const KEY_STRIDE: i64 = 10;
/// Pool frames — far below the ~70-leaf working set, so traversals miss.
const POOL_CAPACITY: usize = 8;
/// Simulated read latency per page miss.
const READ_LATENCY: Duration = Duration::from_micros(120);
/// Measurement window per cell.
const WINDOW: Duration = Duration::from_millis(700);

const THREADS: [usize; 4] = [1, 2, 4, 8];
const WORKLOADS: [&str; 3] = ["search", "insert", "mixed"];

fn fresh_db(shards: usize) -> (Arc<Db>, Arc<GistIndex<BtreeExt>>) {
    let store: Arc<dyn PageStore> = Arc::new(SimulatedLatencyStore::new(
        Box::new(InMemoryStore::new()),
        READ_LATENCY,
        Duration::ZERO,
    ));
    let log = Arc::new(LogManager::new());
    let config = DbConfig {
        pool_capacity: POOL_CAPACITY,
        sync_shards: shards,
        lock_timeout: Duration::from_secs(30),
        ..DbConfig::default()
    };
    let db = Db::open(store, log, config).expect("open db");
    let idx = GistIndex::create(db.clone(), "bench", BtreeExt, IndexOptions::default())
        .expect("create index");
    let txn = db.begin();
    for k in 0..PRELOAD {
        idx.insert(txn, &(k * KEY_STRIDE), wl_rid(k as u64)).expect("preload");
    }
    db.commit(txn).expect("preload commit");
    (db, idx)
}

/// One workload operation: begin / op / commit, aborting on error (a
/// lock timeout or deadlock abort must not wedge the worker).
fn one_op(
    db: &Arc<Db>,
    idx: &Arc<GistIndex<BtreeExt>>,
    workload: &str,
    thread: usize,
    i: u64,
) {
    let mut rng = XorShift::new(0x9E37_79B9 ^ (thread as u64) << 32 ^ i.wrapping_mul(0x2545_F491));
    let insert = match workload {
        "insert" => true,
        "search" => false,
        _ => i.is_multiple_of(2),
    };
    let txn = db.begin();
    let outcome = if insert {
        // Thread-unique RIDs; keys spread across the whole preloaded
        // range so inserts land on random leaves.
        let k = rng.below((PRELOAD * KEY_STRIDE) as u64) as i64;
        idx.insert(txn, &k, wl_rid(10_000_000 + thread as u64 * 1_000_000_000 + i))
    } else {
        let lo = rng.below((PRELOAD * KEY_STRIDE) as u64) as i64;
        idx.search(txn, &I64Query::range(lo, lo + 5 * KEY_STRIDE)).map(|_| ())
    };
    match outcome {
        Ok(()) => db.commit(txn).expect("commit"),
        Err(_) => {
            let _ = db.abort(txn);
        }
    }
}

fn run_cell(shards: usize, workload: &'static str, threads: usize) -> f64 {
    let (db, idx) = fresh_db(shards);
    let tp = run_for(threads, WINDOW, move |t, i| one_op(&db, &idx, workload, t, i));
    tp.per_sec()
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_shard.json".to_string());
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let mut rows = Vec::new();
    let mut json_results = String::new();
    let mut cell = |shards: usize, workload: &'static str| -> Vec<f64> {
        let mut per_thread = Vec::new();
        let mut row = Row::new(format!("{workload} / {shards} shard(s)"));
        for &t in &THREADS {
            let ops = run_cell(shards, workload, t);
            if !json_results.is_empty() {
                json_results.push_str(",\n");
            }
            json_results.push_str(&format!(
                "    {{\"shards\": {shards}, \"workload\": \"{workload}\", \"threads\": {t}, \"ops_per_sec\": {ops:.1}}}"
            ));
            row = row.col(&format!("{t}T ops/s"), ops);
            per_thread.push(ops);
        }
        rows.push(row);
        per_thread
    };

    let mut mixed_scaling = (0.0, 0.0); // (single-shard, sharded)
    for &shards in &[1usize, 16] {
        for workload in WORKLOADS {
            let per_thread = cell(shards, workload);
            if workload == "mixed" {
                let scale = per_thread[3] / per_thread[0];
                if shards == 1 {
                    mixed_scaling.0 = scale;
                } else {
                    mixed_scaling.1 = scale;
                }
            }
        }
    }

    println!("{}", render_table("Sharded synchronization throughput", &rows));
    println!(
        "mixed 8T/1T scaling: baseline (1 shard) {:.2}x, sharded (16) {:.2}x",
        mixed_scaling.0, mixed_scaling.1
    );

    let json = format!(
        "{{\n  \"bench\": \"shard_throughput\",\n  \"cores\": {cores},\n  \"config\": {{\"preload_keys\": {PRELOAD}, \"pool_capacity\": {POOL_CAPACITY}, \"read_latency_us\": {}, \"window_ms\": {}}},\n  \"baseline\": \"shards=1 (pre-refactor global-mutex structure)\",\n  \"results\": [\n{json_results}\n  ],\n  \"mixed_scaling_8t_over_1t\": {{\"shards_1\": {:.3}, \"shards_16\": {:.3}}}\n}}\n",
        READ_LATENCY.as_micros(),
        WINDOW.as_millis(),
        mixed_scaling.0,
        mixed_scaling.1,
    );
    std::fs::write(&out_path, json).expect("write json");
    println!("wrote {out_path}");

    assert!(
        mixed_scaling.1 >= 2.0,
        "acceptance: sharded mixed workload must scale >= 2x from 1T to 8T (got {:.2}x)",
        mixed_scaling.1
    );
}
