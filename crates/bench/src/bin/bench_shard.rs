//! Multi-threaded throughput benchmark for the sharded synchronization
//! layers (partitioned buffer pool, striped lock manager, per-node
//! predicate tables).
//!
//! Runs search / insert / mixed workloads at 1, 2, 4 and 8 threads over
//! a latency-injected store (so page misses model real I/O and threads
//! can overlap them) with a buffer pool much smaller than the working
//! set. Each cell is run twice: `shards = 1`, which reproduces the
//! pre-refactor global-mutex structure exactly (the in-PR baseline), and
//! `shards = 16`, the partitioned configuration. Results are written to
//! `BENCH_shard.json` and printed as a table.
//!
//! Usage: `cargo run --release -p gist-bench --bin bench_shard [out.json]`

use std::sync::Arc;
use std::time::Duration;

use gist_am::{BtreeExt, I64Query};
use gist_bench::harness::{
    latency_db, ramp, JsonObj, JsonReport, KEY_STRIDE, POOL_CAPACITY, PRELOAD, RAMP_THREADS,
    READ_LATENCY, WINDOW,
};
use gist_bench::{render_table, run_for, wl_rid, Row, XorShift};
use gist_core::{Db, DbConfig, GistIndex};

const WORKLOADS: [&str; 3] = ["search", "insert", "mixed"];

fn fresh_db(shards: usize) -> (Arc<Db>, Arc<GistIndex<BtreeExt>>) {
    latency_db(DbConfig {
        pool_capacity: POOL_CAPACITY,
        sync_shards: shards,
        lock_timeout: Duration::from_secs(30),
        ..DbConfig::default()
    })
}

/// One workload operation: begin / op / commit, aborting on error (a
/// lock timeout or deadlock abort must not wedge the worker).
fn one_op(
    db: &Arc<Db>,
    idx: &Arc<GistIndex<BtreeExt>>,
    workload: &str,
    thread: usize,
    i: u64,
) {
    let mut rng = XorShift::new(0x9E37_79B9 ^ (thread as u64) << 32 ^ i.wrapping_mul(0x2545_F491));
    let insert = match workload {
        "insert" => true,
        "search" => false,
        _ => i.is_multiple_of(2),
    };
    let txn = db.begin();
    let outcome = if insert {
        // Thread-unique RIDs; keys spread across the whole preloaded
        // range so inserts land on random leaves.
        let k = rng.below((PRELOAD * KEY_STRIDE) as u64) as i64;
        idx.insert(txn, &k, wl_rid(10_000_000 + thread as u64 * 1_000_000_000 + i))
    } else {
        let lo = rng.below((PRELOAD * KEY_STRIDE) as u64) as i64;
        idx.search(txn, &I64Query::range(lo, lo + 5 * KEY_STRIDE)).map(|_| ())
    };
    match outcome {
        Ok(()) => db.commit(txn).expect("commit"),
        Err(_) => {
            let _ = db.abort(txn);
        }
    }
}

fn run_cell(shards: usize, workload: &'static str, threads: usize) -> f64 {
    let (db, idx) = fresh_db(shards);
    let tp = run_for(threads, WINDOW, move |t, i| one_op(&db, &idx, workload, t, i));
    tp.per_sec()
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_shard.json".to_string());
    let mut report = JsonReport::new("shard_throughput");
    report.head(
        "config",
        JsonObj::new()
            .int("preload_keys", PRELOAD as i128)
            .int("pool_capacity", POOL_CAPACITY as i128)
            .int("read_latency_us", READ_LATENCY.as_micros() as i128)
            .int("window_ms", WINDOW.as_millis() as i128)
            .render(),
    );
    report.head("baseline", "\"shards=1 (pre-refactor global-mutex structure)\"");

    let mut rows = Vec::new();
    let mut mixed_scaling = (0.0, 0.0); // (single-shard, sharded)
    for &shards in &[1usize, 16] {
        for workload in WORKLOADS {
            let mut row = Row::new(format!("{workload} / {shards} shard(s)"));
            let per_thread = ramp(&RAMP_THREADS, |t| {
                let ops = run_cell(shards, workload, t);
                report.push(
                    JsonObj::new()
                        .int("shards", shards as i128)
                        .str("workload", workload)
                        .int("threads", t as i128)
                        .num("ops_per_sec", ops, 1),
                );
                row.cols.push((format!("{t}T ops/s"), ops));
                ops
            });
            rows.push(row);
            if workload == "mixed" {
                let scale = per_thread[3].1 / per_thread[0].1;
                if shards == 1 {
                    mixed_scaling.0 = scale;
                } else {
                    mixed_scaling.1 = scale;
                }
            }
        }
    }

    println!("{}", render_table("Sharded synchronization throughput", &rows));
    println!(
        "mixed 8T/1T scaling: baseline (1 shard) {:.2}x, sharded (16) {:.2}x",
        mixed_scaling.0, mixed_scaling.1
    );

    report.tail(
        "mixed_scaling_8t_over_1t",
        JsonObj::new()
            .num("shards_1", mixed_scaling.0, 3)
            .num("shards_16", mixed_scaling.1, 3)
            .render(),
    );
    report.write(&out_path);

    assert!(
        mixed_scaling.1 >= 2.0,
        "acceptance: sharded mixed workload must scale >= 2x from 1T to 8T (got {:.2}x)",
        mixed_scaling.1
    );
}
