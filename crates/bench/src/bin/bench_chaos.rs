//! Cost of the chaos crash-point gate when nothing is armed.
//!
//! The PR-5 acceptance bound: a `--features chaos` build with every
//! point disarmed must stay within **1%** of the no-feature build on an
//! insert/search hot loop. Two measurements support that:
//!
//! 1. **Hot-loop throughput** — a mixed insert + range-search workload,
//!    measured as compiled. Built *without* the `chaos` feature the
//!    points don't exist (true baseline); built *with* it every
//!    operation crosses several disarmed gates.
//! 2. **Gate microbench** (chaos builds only) — the per-call cost of a
//!    disarmed `chaos::point()` (one relaxed atomic load on the fast
//!    path), multiplied by a conservative points-per-operation count and
//!    divided by the measured per-operation time. This in-process ratio
//!    is the asserted acceptance number: unlike a cross-binary
//!    throughput delta it is immune to run-to-run machine noise.
//!
//! Results are written to `BENCH_chaos.json` and printed as a table.
//!
//! Usage:
//!   cargo run --release -p gist-bench --features chaos --bin bench_chaos [out.json]
//!   cargo run --release -p gist-bench --bin bench_chaos [out.json]   # baseline

use gist_am::I64Query;
use gist_bench::harness::{JsonObj, JsonReport, WINDOW};
use gist_bench::{btree_db, render_table, run_for, wl_rid, Row};
use gist_core::DbConfig;

const THREADS: [usize; 2] = [1, 4];
/// Disarmed-gate microbench iterations.
#[cfg(feature = "chaos")]
const GATE_ITERS: u64 = 50_000_000;
/// Conservative gate crossings per workload operation: descent +
/// predicate check + leaf add (before/after) + commit on the insert
/// path, cursor register + next on the search path.
#[cfg(feature = "chaos")]
const POINTS_PER_OP: f64 = 7.0;

/// Mixed hot loop: every iteration commits one insert; every eighth also
/// runs a short range search (so both the insert points and the cursor
/// points sit on the measured path).
fn run_workload(threads: usize) -> f64 {
    let (db, idx) = btree_db(DbConfig::default());
    let tp = run_for(threads, WINDOW, move |t, i| {
        let k = (t as i64) * 1_000_000_000 + i as i64;
        let txn = db.begin();
        idx.insert(txn, &k, wl_rid(k as u64)).expect("insert");
        if i % 8 == 0 {
            idx.search(txn, &I64Query::range(k - 16, k)).expect("search");
        }
        db.commit(txn).expect("commit");
    });
    tp.per_sec()
}

/// Per-call cost of a disarmed crash point, in nanoseconds.
#[cfg(feature = "chaos")]
fn gate_ns_per_call() -> f64 {
    use std::hint::black_box;
    let t0 = std::time::Instant::now();
    for _ in 0..GATE_ITERS {
        black_box(gist_chaos::point(black_box("insert.before_descent"))).expect("disarmed");
    }
    t0.elapsed().as_nanos() as f64 / GATE_ITERS as f64
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_chaos.json".to_string());
    let mode = if cfg!(feature = "chaos") { "disarmed" } else { "baseline" };
    let mut report = JsonReport::new("chaos_gate_overhead");
    report.head("mode", format!("\"{mode}\""));
    report.head(
        "config",
        JsonObj::new()
            .int("window_ms", WINDOW.as_millis() as i128)
            .int("search_every", 8)
            .render(),
    );

    let mut rows = Vec::new();
    let mut per_op_ns = f64::INFINITY;
    for &t in &THREADS {
        let ops = run_workload(t);
        // Per-thread service time: how long one operation occupies one
        // worker (the denominator the gate cost is compared against).
        let op_ns = 1e9 / (ops / t as f64);
        per_op_ns = per_op_ns.min(op_ns);
        report.push(
            JsonObj::new()
                .str("mode", mode)
                .int("threads", t as i128)
                .num("ops_per_sec", ops, 1)
                .num("ns_per_op", op_ns, 1),
        );
        rows.push(Row::new(format!("{mode} / {t}T")).col("ops/s", ops).col("ns/op", op_ns));
    }

    #[cfg(feature = "chaos")]
    let overhead_pct = {
        let gate_ns = gate_ns_per_call();
        // Worst case: the fastest measured operation paying the full
        // per-op gate budget.
        let pct = gate_ns * POINTS_PER_OP / per_op_ns * 100.0;
        rows.push(
            Row::new("disarmed gate")
                .col("ns/call", gate_ns)
                .col("calls/op", POINTS_PER_OP)
                .col("overhead %", pct),
        );
        report.tail("gate_ns_per_call", format!("{gate_ns:.4}"));
        report.tail("points_per_op", format!("{POINTS_PER_OP}"));
        report.tail("disarmed_overhead_pct", format!("{pct:.4}"));
        report.tail(
            "acceptance",
            "\"disarmed chaos gates must cost < 1% of hot-loop operation time\"",
        );
        pct
    };
    #[cfg(not(feature = "chaos"))]
    report.tail(
        "note",
        "\"baseline build: chaos points compiled out; rerun with --features chaos for the gated numbers\"",
    );

    println!("{}", render_table("Chaos gate overhead (disarmed)", &rows));
    report.write(&out_path);

    #[cfg(feature = "chaos")]
    assert!(
        overhead_pct < 1.0,
        "acceptance: disarmed chaos gates must cost < 1% of hot-loop operation \
         time (got {overhead_pct:.3}%)"
    );
}
