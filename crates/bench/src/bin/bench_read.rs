//! Read-path throughput benchmark: optimistic latch-free traversal vs
//! the latched baseline.
//!
//! Runs a search-only workload and a 90/10 read-mostly mix at 1, 2, 4
//! and 8 threads over a latency-injected store, once with
//! `optimistic_reads` on and once with it off (the pre-optimistic
//! latched traversal, bit-for-bit the old code path). The pool is
//! deliberately tiny relative to the preloaded tree, so most traversed
//! pages miss and the measurement exposes how each protocol behaves
//! under pool pressure with real device latency. The latched path must
//! bring every page into the pool: each miss pins a frame and holds its
//! X latch across the simulated read, so at high thread counts the
//! loaders pin the whole pool, eviction stalls hunting for unpinned
//! victims, and throughput convoys — the paper's "no latches held
//! during I/Os" pathology at the buffer-manager layer. The optimistic
//! path's misses bypass the pool entirely (a validated direct store
//! read into a private copy: no frame, no pin, no eviction pressure),
//! so its reads overlap their I/O freely and throughput scales with
//! the thread count. Results are written to `BENCH_read.json` and
//! printed as a table.
//!
//! Usage: `cargo run --release -p gist-bench --bin bench_read [out.json]`

use std::sync::Arc;
use std::time::Duration;

use gist_am::{BtreeExt, I64Query};
use gist_bench::harness::{
    latency_db, ramp, JsonObj, JsonReport, KEY_STRIDE, PRELOAD, RAMP_THREADS, READ_LATENCY,
    WINDOW,
};
use gist_bench::{render_table, run_for, wl_rid, Row, XorShift};
use gist_core::{Db, DbConfig, GistIndex, IsolationLevel};

const WORKLOADS: [&str; 2] = ["search", "read_mostly"];
/// Frames: far below the preloaded tree (~80 pages), so traversals
/// miss constantly and the protocols are compared under pool pressure
/// (see the module doc). Matching the 8-thread ramp peak makes the
/// latched convoy sharpest: eight concurrent loaders can pin every
/// frame in the pool.
const POOL_FRAMES: usize = 8;

fn fresh_db(optimistic: bool) -> (Arc<Db>, Arc<GistIndex<BtreeExt>>) {
    let (db, idx) = latency_db(DbConfig {
        pool_capacity: POOL_FRAMES,
        optimistic_reads: optimistic,
        // Latch-only isolation (the protocol-benchmark level): no record
        // or predicate locks, so the measurement isolates the traversal
        // synchronization this bench compares.
        isolation: IsolationLevel::Latching,
        lock_timeout: Duration::from_secs(30),
        ..DbConfig::default()
    });
    // Warm the pool: one full-range scan touches every node, paying the
    // simulated read latency exactly once per page.
    let txn = db.begin();
    idx.search(txn, &I64Query::range(0, PRELOAD * KEY_STRIDE)).expect("warmup scan");
    db.commit(txn).expect("warmup commit");
    (db, idx)
}

/// One workload operation: begin / op / commit, aborting on error (a
/// lock timeout or deadlock abort must not wedge the worker).
fn one_op(
    db: &Arc<Db>,
    idx: &Arc<GistIndex<BtreeExt>>,
    workload: &str,
    thread: usize,
    i: u64,
) {
    let mut rng = XorShift::new(0x9E37_79B9 ^ (thread as u64) << 32 ^ i.wrapping_mul(0x2545_F491));
    let insert = workload == "read_mostly" && i % 10 == 9;
    let txn = db.begin();
    let outcome = if insert {
        let k = rng.below((PRELOAD * KEY_STRIDE) as u64) as i64;
        idx.insert(txn, &k, wl_rid(10_000_000 + thread as u64 * 1_000_000_000 + i))
    } else {
        let lo = rng.below((PRELOAD * KEY_STRIDE) as u64) as i64;
        idx.search(txn, &I64Query::range(lo, lo + 5 * KEY_STRIDE)).map(|_| ())
    };
    match outcome {
        Ok(()) => db.commit(txn).expect("commit"),
        Err(_) => {
            let _ = db.abort(txn);
        }
    }
}

fn run_cell(optimistic: bool, workload: &'static str, threads: usize) -> f64 {
    let (db, idx) = fresh_db(optimistic);
    let tp = run_for(threads, WINDOW, move |t, i| one_op(&db, &idx, workload, t, i));
    tp.per_sec()
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_read.json".to_string());
    let mut report = JsonReport::new("read_path_throughput");
    report.head(
        "config",
        JsonObj::new()
            .int("preload_keys", PRELOAD as i128)
            .int("pool_capacity", POOL_FRAMES as i128)
            .int("read_latency_us", READ_LATENCY.as_micros() as i128)
            .int("window_ms", WINDOW.as_millis() as i128)
            .render(),
    );
    report.head("baseline", "\"optimistic_reads=false (latched traversal)\"");

    let mut rows = Vec::new();
    // (workload, optimistic?) -> per-thread throughputs.
    let mut search_curves: [(Vec<f64>, &str); 2] = [(Vec::new(), "latched"), (Vec::new(), "optimistic")];
    for &optimistic in &[false, true] {
        let mode = if optimistic { "optimistic" } else { "latched" };
        for workload in WORKLOADS {
            let mut row = Row::new(format!("{workload} / {mode}"));
            let per_thread = ramp(&RAMP_THREADS, |t| {
                let ops = run_cell(optimistic, workload, t);
                report.push(
                    JsonObj::new()
                        .str("mode", mode)
                        .str("workload", workload)
                        .int("threads", t as i128)
                        .num("ops_per_sec", ops, 1),
                );
                row.cols.push((format!("{t}T ops/s"), ops));
                ops
            });
            rows.push(row);
            if workload == "search" {
                search_curves[usize::from(optimistic)].0 =
                    per_thread.iter().map(|(_, ops)| *ops).collect();
            }
        }
    }

    println!("{}", render_table("Read-path throughput", &rows));
    let latched_8t = search_curves[0].0[3];
    let optimistic_8t = search_curves[1].0[3];
    let speedup = optimistic_8t / latched_8t;
    println!("search 8T: optimistic {optimistic_8t:.0} ops/s vs latched {latched_8t:.0} ops/s ({speedup:.2}x)");

    report.tail(
        "search_8t_speedup_vs_latched",
        JsonObj::new().num("speedup", speedup, 3).render(),
    );
    report.write(&out_path);

    let curve = &search_curves[1].0;
    for w in curve.windows(2) {
        assert!(
            w[1] >= w[0],
            "acceptance: optimistic search throughput must be monotone non-decreasing \
             across the thread ramp (got {curve:?})",
        );
    }
    assert!(
        speedup >= 1.5,
        "acceptance: optimistic search at 8T must be >= 1.5x the latched baseline \
         (got {speedup:.2}x)",
    );
}
