//! Read-path cost of the storage-robustness layer.
//!
//! Two questions, answered as throughput deltas on a miss-heavy search
//! workload (pool far smaller than the working set, so every traversal
//! loads pages from the store and each load runs the on-load checksum
//! verification):
//!
//! 1. **Checksum verification** — the same database is driven with
//!    `verify_checksums` on (the default) and off. Cells run over a raw
//!    in-memory store (worst case: verification competes only with a
//!    memcpy) and over a latency-injected store modelling a real device,
//!    where the acceptance bound applies: **< 5% overhead**.
//! 2. **Disarmed fault shim** — the same workload through a disarmed
//!    `FaultStore` wrapper, to show the injection layer is free when not
//!    injecting (it must be: it ships in the default test builds).
//!
//! Results are written to `BENCH_fault.json` and printed as a table.
//!
//! Usage: `cargo run --release -p gist-bench --bin bench_fault [out.json]`

use std::sync::Arc;
use std::time::Duration;

use gist_am::{BtreeExt, I64Query};
use gist_bench::harness::{
    latency_store, preloaded_db, JsonObj, JsonReport, KEY_STRIDE, POOL_CAPACITY, PRELOAD,
    READ_LATENCY, WINDOW,
};
use gist_bench::{render_table, run_for, Row, XorShift};
use gist_core::{Db, DbConfig, GistIndex};
use gist_pagestore::{FaultStore, InMemoryStore, PageStore};

const THREADS: [usize; 2] = [1, 4];

#[derive(Clone, Copy, PartialEq)]
enum StoreKind {
    Raw,
    Latency,
    DisarmedFaults,
}

impl StoreKind {
    fn label(self) -> &'static str {
        match self {
            StoreKind::Raw => "raw",
            StoreKind::Latency => "latency",
            StoreKind::DisarmedFaults => "disarmed-faultstore",
        }
    }

    fn build(self) -> Arc<dyn PageStore> {
        match self {
            StoreKind::Raw => latency_store(Duration::ZERO),
            StoreKind::Latency => latency_store(READ_LATENCY),
            // Never armed: measures the pure interposition cost.
            StoreKind::DisarmedFaults => FaultStore::new(Arc::new(InMemoryStore::new())),
        }
    }
}

fn fresh_db(kind: StoreKind, verify: bool) -> (Arc<Db>, Arc<GistIndex<BtreeExt>>) {
    let config = DbConfig {
        pool_capacity: POOL_CAPACITY,
        lock_timeout: Duration::from_secs(30),
        ..DbConfig::default()
    };
    let (db, idx) = preloaded_db(kind.build(), config, PRELOAD, KEY_STRIDE);
    // Every store image carries a stamped checksum before measurement.
    db.pool().flush_all().expect("flush");
    db.pool().sync_store().expect("sync");
    db.pool().set_verify_checksums(verify);
    (db, idx)
}

fn run_cell(kind: StoreKind, verify: bool, threads: usize) -> f64 {
    let (db, idx) = fresh_db(kind, verify);
    let tp = run_for(threads, WINDOW, move |t, i| {
        let mut rng =
            XorShift::new(0x9E37_79B9 ^ (t as u64) << 32 ^ i.wrapping_mul(0x2545_F491));
        let lo = rng.below((PRELOAD * KEY_STRIDE) as u64) as i64;
        let txn = db.begin();
        match idx.search(txn, &I64Query::range(lo, lo + 5 * KEY_STRIDE)) {
            Ok(_) => db.commit(txn).expect("commit"),
            Err(_) => {
                let _ = db.abort(txn);
            }
        }
    });
    tp.per_sec()
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_fault.json".to_string());
    let mut report = JsonReport::new("fault_layer_overhead");
    report.head(
        "config",
        JsonObj::new()
            .int("preload_keys", PRELOAD as i128)
            .int("pool_capacity", POOL_CAPACITY as i128)
            .int("read_latency_us", READ_LATENCY.as_micros() as i128)
            .int("window_ms", WINDOW.as_millis() as i128)
            .render(),
    );
    let result = |kind: StoreKind, verify: bool, t: usize, ops: f64| {
        JsonObj::new()
            .str("store", kind.label())
            .bool("verify_checksums", verify)
            .int("threads", t as i128)
            .num("ops_per_sec", ops, 1)
    };

    let mut rows = Vec::new();
    // verify-off baselines, then verify-on, per store kind and thread count.
    let mut overhead_latency = Vec::new();
    let mut overhead_raw = Vec::new();
    for kind in [StoreKind::Raw, StoreKind::Latency] {
        for &t in &THREADS {
            let off = run_cell(kind, false, t);
            let on = run_cell(kind, true, t);
            report.push(result(kind, false, t, off));
            report.push(result(kind, true, t, on));
            let pct = (off - on) / off * 100.0;
            rows.push(
                Row::new(format!("{} / {t}T", kind.label()))
                    .col("verify-off ops/s", off)
                    .col("verify-on ops/s", on)
                    .col("overhead %", pct),
            );
            match kind {
                StoreKind::Raw => overhead_raw.push(pct),
                StoreKind::Latency => overhead_latency.push(pct),
                StoreKind::DisarmedFaults => unreachable!(),
            }
        }
    }
    // Disarmed fault shim vs the raw store (both with verification on,
    // the shipping configuration).
    let mut shim_pcts = Vec::new();
    for &t in &THREADS {
        let raw = run_cell(StoreKind::Raw, true, t);
        let shim = run_cell(StoreKind::DisarmedFaults, true, t);
        report.push(result(StoreKind::DisarmedFaults, true, t, shim));
        let pct = (raw - shim) / raw * 100.0;
        rows.push(
            Row::new(format!("fault shim / {t}T"))
                .col("raw ops/s", raw)
                .col("shim ops/s", shim)
                .col("overhead %", pct),
        );
        shim_pcts.push(pct);
    }

    println!("{}", render_table("Storage robustness read-path overhead", &rows));

    let max_latency_overhead =
        overhead_latency.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    report.tail(
        "checksum_overhead_pct",
        JsonObj::new()
            .raw("raw", &format!("{overhead_raw:?}"))
            .raw("latency", &format!("{overhead_latency:?}"))
            .render(),
    );
    report.tail("disarmed_shim_overhead_pct", format!("{shim_pcts:?}"));
    report.tail(
        "acceptance",
        "\"checksum overhead on the latency store must stay under 5%\"",
    );
    report.tail("max_latency_overhead_pct", format!("{max_latency_overhead:.3}"));
    report.write(&out_path);

    assert!(
        max_latency_overhead < 5.0,
        "acceptance: checksum verification must cost < 5% of read throughput \
         on the latency-modelled store (got {max_latency_overhead:.2}%)"
    );
}
