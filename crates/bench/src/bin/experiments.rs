//! Regenerate every experiment table (E1–E12, see DESIGN.md §4).
//!
//! ```sh
//! cargo run --release -p gist-bench --bin experiments            # all, full config
//! cargo run --release -p gist-bench --bin experiments -- --quick # CI-sized
//! cargo run --release -p gist-bench --bin experiments -- e5 e7   # a subset
//! ```

use gist_bench::{
    e10_nsn, e11_phantoms, e12_savepoints, e1_figure1, e2_link_chases, e3_overlap, e4_recovery,
    e5_protocols, e6_io_latency, e7_predicates, e8_gc, e9_unique, render_table, ExpConfig, Row,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cfg = if quick { ExpConfig::quick() } else { ExpConfig::full() };
    let selected: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    let want = |id: &str| selected.is_empty() || selected.contains(&id);

    type Experiment = (&'static str, &'static str, Box<dyn Fn() -> Vec<Row>>);
    let experiments: Vec<Experiment> = vec![
        (
            "e1",
            "E1 — Figure 1/2: lost key without links vs. rightlink recovery",
            Box::new(e1_figure1),
        ),
        (
            "e2",
            "E2 — rightlink chases per search vs. concurrent writers",
            Box::new(move || e2_link_chases(cfg)),
        ),
        (
            "e3",
            "E3 — Figure 5: sibling predicate overlap (non-partitioning key space)",
            Box::new(e3_overlap),
        ),
        ("e4", "E4 — Table 1: restart recovery cost and correctness", Box::new(e4_recovery)),
        (
            "e5",
            "E5 — protocol scaling: link vs. subtree-X vs. tree-rwlock",
            Box::new(move || e5_protocols(cfg)),
        ),
        (
            "e6",
            "E6 — latches across I/O: search throughput vs. simulated disk latency",
            Box::new(move || e6_io_latency(cfg)),
        ),
        (
            "e7",
            "E7 — hybrid vs. pure predicate locking: insert cost vs. active scanners",
            Box::new(move || e7_predicates(cfg)),
        ),
        ("e8", "E8 — logical delete + garbage collection lifecycle", Box::new(e8_gc)),
        (
            "e9",
            "E9 — unique-index insert races (§8 deadlock resolution)",
            Box::new(move || e9_unique(cfg)),
        ),
        ("e10", "E10 — NSN source ablation (§10.1)", Box::new(move || e10_nsn(cfg))),
        (
            "e11",
            "E11 — repeatable read: phantom count under concurrent inserts",
            Box::new(move || e11_phantoms(cfg)),
        ),
        ("e12", "E12 — savepoint partial-rollback cost (§10.2)", Box::new(e12_savepoints)),
    ];

    println!(
        "# GiST concurrency & recovery experiments ({} mode)\n",
        if quick { "quick" } else { "full" }
    );
    for (id, title, runner) in experiments {
        if !want(id) {
            continue;
        }
        let t0 = std::time::Instant::now();
        let rows = runner();
        println!("{}", render_table(title, &rows));
        println!("({id} took {:.1}s)\n", t0.elapsed().as_secs_f64());
    }
}
