//! Overload resilience: goodput and tail latency under admission
//! oversubscription, with WAL backpressure and epoch caps engaged.
//!
//! Two cells run the same transaction — one async-durability insert
//! plus a ~100µs in-transaction hold, the shape of a short OLTP unit of
//! work — through `Db::run_txn` (shed → backoff → retry) for a fixed
//! window:
//!
//! * **peak** — exactly `CAPACITY` worker threads against an admission
//!   cap of `CAPACITY`: the controller is full but never oversubscribed;
//!   this is the goodput ceiling.
//! * **oversub_4x** — `4 × CAPACITY` workers against the same cap: three
//!   quarters of the offered load must park or shed at admission. A
//!   well-behaved controller keeps goodput at the ceiling (the extra
//!   threads wait their turn) instead of collapsing under thrash.
//!
//! The WAL backpressure gate and the epoch retire-bin caps are armed
//! with deliberately tight limits, and the report carries their
//! counters so a regression that starts leaning on the escalation paths
//! (inline flushes, forced advances) is visible even while the
//! acceptance still passes.
//!
//! Acceptance:
//! * goodput at 4× oversubscription ≥ **80%** of peak;
//! * the volatile log tail stays bounded by the backpressure limit
//!   (plus one in-flight reservation per worker);
//! * the epoch retire bin stays under its byte cap.
//!
//! Results are written to `BENCH_overload.json`.
//!
//! Usage: `cargo run --release -p gist-bench --bin bench_overload [out.json]`
//!
//! With `BENCH_OVERLOAD_SMOKE=1` (the `verify.sh` tier-2 gate) the
//! window shrinks; cells and assertions are unchanged.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gist_bench::harness::{
    latency_store, preloaded_db, JsonObj, JsonReport, LatencyHist, WINDOW,
};
use gist_bench::{render_table, run_for, wl_rid, Row, XorShift};
use gist_core::{AdmissionConfig, DbConfig, Durability, RobustnessStats};

/// Admission credits — the in-flight transaction ceiling for both cells.
const CAPACITY: usize = 4;
/// Offered-load multiplier for the oversubscribed cell.
const OVERSUB: usize = 4;
/// How long a shedding `try_begin` parks before giving up.
const ADMIT_TIMEOUT: Duration = Duration::from_millis(50);
/// In-transaction hold: the credit is occupied this long per txn, so
/// throughput is admission-bound, not allocator-bound.
const TXN_HOLD: Duration = Duration::from_micros(100);
/// Volatile-log-tail cap (records) for the backpressure gate — tight
/// enough that async committers outrun the flusher between idle sweeps
/// and actually hit the gate (the point of the bench is to measure the
/// defenses engaged, not dormant).
const BP_LIMIT: u64 = 64;
/// Backpressure park budget before the inline-flush escalation.
const BP_TIMEOUT: Duration = Duration::from_millis(5);
/// Epoch retire-bin byte cap.
const EPOCH_CAP: u64 = 1 << 20;
/// Simulated WAL device sync latency — enough that the flusher visibly
/// trails async committers and the backpressure gate has work to do.
const SYNC_LATENCY: Duration = Duration::from_micros(100);
/// Keys preloaded before measurement.
const PRELOAD: i64 = 2_000;

struct CellResult {
    goodput: f64,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
    stats: RobustnessStats,
}

fn run_cell(threads: usize, window: Duration) -> CellResult {
    let config = DbConfig {
        pool_capacity: 4_096,
        lock_timeout: Duration::from_secs(30),
        durability: Durability::Async,
        admission: AdmissionConfig {
            max_in_flight: CAPACITY,
            admit_timeout: ADMIT_TIMEOUT,
        },
        wal_backpressure_limit: BP_LIMIT,
        wal_backpressure_timeout: BP_TIMEOUT,
        epoch_cap_bytes: EPOCH_CAP,
        ..DbConfig::default()
    };
    let (db, idx) = preloaded_db(latency_store(Duration::ZERO), config, PRELOAD, 1);
    db.log().set_sync_latency(SYNC_LATENCY);
    let hist = Arc::new(LatencyHist::new());
    let worker_db = db.clone();
    let worker_hist = hist.clone();
    let tp = run_for(threads, window, move |t, i| {
        let mut rng = XorShift::new(0xC0FF_EE00 ^ (t as u64) << 32 ^ i.wrapping_mul(0x9E37));
        let k = PRELOAD + rng.below(1 << 30) as i64;
        let t0 = Instant::now();
        worker_db
            .run_txn(|txn| {
                idx.insert(txn, &k, wl_rid((2u64 << 40) | ((t as u64) << 32) | i))?;
                // The unit of work: the transaction owns its admission
                // credit (and its locks) for the hold.
                std::thread::sleep(TXN_HOLD);
                Ok(())
            })
            .expect("run_txn under overload");
        worker_hist.record(t0.elapsed());
    });
    let stats = db.robustness_stats();
    db.shutdown().expect("shutdown");
    CellResult {
        goodput: tp.per_sec(),
        p50_us: hist.p50_us(),
        p99_us: hist.p99_us(),
        p999_us: hist.p999_us(),
        stats,
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_overload.json".to_string());
    let smoke = std::env::var("BENCH_OVERLOAD_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let window = if smoke { Duration::from_millis(400) } else { WINDOW };

    let mut report = JsonReport::new("overload_resilience");
    report.head(
        "config",
        JsonObj::new()
            .int("capacity", CAPACITY as i128)
            .int("oversub", OVERSUB as i128)
            .int("admit_timeout_ms", ADMIT_TIMEOUT.as_millis() as i128)
            .int("txn_hold_us", TXN_HOLD.as_micros() as i128)
            .int("wal_bp_limit", BP_LIMIT as i128)
            .int("epoch_cap_bytes", EPOCH_CAP as i128)
            .int("window_ms", window.as_millis() as i128)
            .bool("smoke", smoke)
            .render(),
    );

    let cells = [("peak", CAPACITY), ("oversub_4x", CAPACITY * OVERSUB)];
    let mut rows = vec![
        Row::new("goodput txn/s".to_string()),
        Row::new("p999 µs".to_string()),
    ];
    let mut goodputs = Vec::new();
    for (label, threads) in cells {
        let r = run_cell(threads, window);
        let s = &r.stats;
        report.push(
            JsonObj::new()
                .str("cell", label)
                .int("threads", threads as i128)
                .num("goodput_per_sec", r.goodput, 1)
                .int("latency_p50_us", r.p50_us as i128)
                .int("latency_p99_us", r.p99_us as i128)
                .int("latency_p999_us", r.p999_us as i128)
                .int("admission_shed", s.admission.shed as i128)
                .int("admission_parked", s.admission.parked as i128)
                .int("admission_forced", s.admission.forced as i128)
                .int("txn_retries", s.txn_retries as i128)
                .int("retries_exhausted", s.retries_exhausted as i128)
                .int("wal_bp_parks", s.wal_bp_parks as i128)
                .int("wal_bp_stalls", s.wal_bp_stalls as i128)
                .int("wal_bp_backlog", s.wal_bp_backlog as i128)
                .int("epoch_pending_bytes", s.epoch_pending_bytes as i128)
                .int("epoch_forced_advances", s.epoch_forced_advances as i128)
                .str("health", s.health.label()),
        );
        rows[0].cols.push((label.to_string(), r.goodput));
        rows[1].cols.push((label.to_string(), r.p999_us as f64));
        // Memory-bound acceptance, checked per cell: the volatile log
        // tail may exceed the gate only by the reservations already
        // past it (one per worker), the retire bin never by more than
        // the cap (the stall regime stops growth at the cap itself).
        assert!(
            s.wal_bp_backlog <= BP_LIMIT + threads as u64,
            "{label}: log tail {} records exceeds backpressure bound {}",
            s.wal_bp_backlog,
            BP_LIMIT + threads as u64
        );
        assert!(
            s.epoch_pending_bytes <= EPOCH_CAP,
            "{label}: retire bin {} bytes exceeds cap {EPOCH_CAP}",
            s.epoch_pending_bytes
        );
        goodputs.push(r.goodput);
    }

    println!("{}", render_table("Overload resilience (admission cap 4)", &rows));
    let ratio = goodputs[1] / goodputs[0];
    println!("oversub_4x/peak goodput: {:.1}%", ratio * 100.0);

    report.tail("goodput_ratio", format!("{ratio:.3}"));
    report.tail(
        "acceptance",
        "\"goodput at 4x admission oversubscription must stay >= 80% of peak; \
         log tail and retire bin stay under their caps\"",
    );
    report.write(&out_path);

    assert!(
        ratio >= 0.8,
        "acceptance: goodput at 4x oversubscription must stay >= 80% of peak \
         (got {:.1}%)",
        ratio * 100.0
    );
}
