//! Serving-layer disconnect storm: tail latency and cleanup hygiene
//! while clients die mid-transaction.
//!
//! Eight client threads hammer a [`Server`] over in-memory pipe
//! transports. Each iteration is one short session — `Begin`, a few
//! inserts, a read, `Commit` — except that roughly a third of the
//! sessions are **killed mid-transaction** (the client vanishes without
//! aborting), and the admission cap is set well below the offered
//! concurrency so `Begin` sheds as retryable `Busy` under load.
//!
//! What the bench prices:
//!
//! * per-request latency over the full wire path (encode → frame →
//!   pipe → decode → dispatch → reply), with the p999 as the hang
//!   detector — a session stuck on a dead peer shows up there first;
//! * teardown throughput: every killed session must release its
//!   transaction, locks, predicates and admission credit while the
//!   storm keeps running.
//!
//! Acceptance:
//! * the engine reads **healthy** after drain;
//! * zero leaked transactions / credits / predicate entries;
//! * `Busy` responses were counted (shedding engaged, not queueing);
//! * p999 request latency stays under the client call deadline
//!   (nothing served by timeout expiry).
//!
//! Results are written to `BENCH_serve.json`.
//!
//! Usage: `cargo run --release -p gist-bench --bin bench_serve [out.json]`
//!
//! With `BENCH_SERVE_SMOKE=1` (the `verify.sh` tier-2 gate) the window
//! shrinks; cells and assertions are unchanged.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gist_bench::harness::{latency_store, preloaded_db, JsonObj, JsonReport, LatencyHist, WINDOW};
use gist_bench::{run_for, XorShift};
use gist_core::{AdmissionConfig, DbConfig};
use gist_serve::{pipe_pair, Client, ServeConfig, Server};
use gist_wire::{Request, Response};

/// Storm client threads.
const THREADS: usize = 8;
/// Admission credits — well under [`THREADS`] so `Begin` sheds.
const CAPACITY: usize = 3;
/// Per-call client deadline; the p999 acceptance bound.
const CALL_DEADLINE: Duration = Duration::from_millis(500);
/// Inserts per session before the commit-or-kill decision.
const INSERTS: u64 = 4;
/// One session in `KILL_ONE_IN` dies mid-transaction.
const KILL_ONE_IN: u64 = 3;
/// Keys preloaded before the storm.
const PRELOAD: i64 = 1_000;

struct StormCounters {
    sessions: AtomicU64,
    kills: AtomicU64,
    commits: AtomicU64,
    begin_give_ups: AtomicU64,
    errors: AtomicU64,
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_serve.json".to_string());
    let smoke = std::env::var("BENCH_SERVE_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let window = if smoke { Duration::from_millis(400) } else { WINDOW };

    let config = DbConfig {
        admission: AdmissionConfig {
            max_in_flight: CAPACITY,
            admit_timeout: Duration::from_millis(2),
        },
        ..DbConfig::default()
    };
    let (db, idx) = preloaded_db(latency_store(Duration::ZERO), config, PRELOAD, 1);
    let server = Server::new(
        db.clone(),
        ServeConfig {
            read_slice: Duration::from_millis(5),
            idle_deadline: Duration::from_secs(2),
            write_deadline: Duration::from_millis(250),
            drain_deadline: Duration::from_secs(1),
            busy_retry_ms: 2,
        },
    );
    server.register_index(idx);

    let hist = Arc::new(LatencyHist::new());
    let counters = Arc::new(StormCounters {
        sessions: AtomicU64::new(0),
        kills: AtomicU64::new(0),
        commits: AtomicU64::new(0),
        begin_give_ups: AtomicU64::new(0),
        errors: AtomicU64::new(0),
    });

    let srv = server.clone();
    let (h2, c2) = (hist.clone(), counters.clone());
    let tp = run_for(THREADS, window, move |t, i| {
        let mut rng = XorShift::new(0x5E12_4E00 ^ ((t as u64) << 40) ^ i.wrapping_mul(0x9E37));
        let (server_end, client_end) = pipe_pair();
        // The session thread is detached; teardown runs on it regardless.
        let _ = srv.serve_conn(Box::new(server_end));
        let mut client = Client::new(Box::new(client_end), CALL_DEADLINE);
        c2.sessions.fetch_add(1, Ordering::Relaxed);

        let call = |client: &mut Client, req: &Request| -> Option<Response> {
            let t0 = Instant::now();
            let rsp = client.call(req).ok();
            h2.record(t0.elapsed());
            rsp
        };

        // Begin with bounded Busy retries: shed load backs off, never parks.
        let mut begun = false;
        for _ in 0..5 {
            match call(&mut client, &Request::Begin) {
                Some(Response::Begun) => {
                    begun = true;
                    break;
                }
                Some(Response::Busy { retry_after_ms }) => {
                    std::thread::sleep(Duration::from_millis(u64::from(retry_after_ms)));
                }
                _ => {
                    c2.errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
        if !begun {
            c2.begin_give_ups.fetch_add(1, Ordering::Relaxed);
            return;
        }

        let mut first_key = 0i64;
        for n in 0..INSERTS {
            let key = PRELOAD + rng.below(1 << 30) as i64;
            if n == 0 {
                first_key = key;
            }
            let req = Request::Insert {
                index: "bench".into(),
                key,
                payload: vec![n as u8; 32],
            };
            match call(&mut client, &req) {
                Some(Response::Ok) => {}
                _ => {
                    // Lock conflict or worse: the server aborted the txn;
                    // this session is done.
                    c2.errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
        // Read-your-writes probe: preloaded rows carry synthetic rids
        // with no heap backing, so only storm-inserted keys are readable.
        match call(&mut client, &Request::Get { index: "bench".into(), key: first_key }) {
            Some(Response::Rows { rows, .. }) if !rows.is_empty() => {}
            _ => {
                c2.errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }

        if rng.below(KILL_ONE_IN) == 0 {
            // The storm: vanish mid-transaction. Teardown must release
            // the txn, its locks, and the admission credit.
            c2.kills.fetch_add(1, Ordering::Relaxed);
            drop(client);
            return;
        }
        match call(&mut client, &Request::Commit) {
            Some(Response::Ok) => {
                c2.commits.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                c2.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        client.close();
    });

    // Give straggler session threads their teardown window, then drain.
    let report_drain = server.drain();
    let sstats = server.stats();
    let rstats = db.robustness_stats();
    let health = db.health();

    let sessions = counters.sessions.load(Ordering::Relaxed);
    let kills = counters.kills.load(Ordering::Relaxed);
    let commits = counters.commits.load(Ordering::Relaxed);
    let give_ups = counters.begin_give_ups.load(Ordering::Relaxed);
    let errors = counters.errors.load(Ordering::Relaxed);

    let mut report = JsonReport::new("serve_disconnect_storm");
    report.head(
        "config",
        JsonObj::new()
            .int("threads", THREADS as i128)
            .int("admission_capacity", CAPACITY as i128)
            .int("call_deadline_ms", CALL_DEADLINE.as_millis() as i128)
            .int("kill_one_in", KILL_ONE_IN as i128)
            .int("window_ms", window.as_millis() as i128)
            .bool("smoke", smoke)
            .render(),
    );
    report.push(
        JsonObj::new()
            .str("cell", "storm")
            .num("sessions_per_sec", tp.per_sec(), 1)
            .int("sessions", sessions as i128)
            .int("kills_mid_txn", kills as i128)
            .int("commits", commits as i128)
            .int("begin_give_ups", give_ups as i128)
            .int("client_errors", errors as i128)
            .int("requests", sstats.requests as i128)
            .int("busy_sheds", sstats.busy_sheds as i128)
            .int("teardown_aborts", sstats.teardown_aborts as i128)
            .int("drain_forced_aborts", sstats.drain_forced_aborts as i128)
            .int("io_errors", sstats.io_errors as i128)
            .int("latency_p50_us", hist.p50_us() as i128)
            .int("latency_p99_us", hist.p99_us() as i128)
            .int("latency_p999_us", hist.p999_us() as i128)
            .int("admission_shed", rstats.admission.shed as i128)
            .int("active_txns_after", db.txns().active_count() as i128)
            .int("credits_after", rstats.admission.in_flight as i128)
            .str("health", health.label()),
    );

    println!(
        "storm: {} sessions ({:.0}/s), {} killed mid-txn, {} commits, {} busy sheds, \
         {} teardown aborts, p50/p99/p999 = {}/{}/{} µs",
        sessions,
        tp.per_sec(),
        kills,
        commits,
        sstats.busy_sheds,
        sstats.teardown_aborts,
        hist.p50_us(),
        hist.p99_us(),
        hist.p999_us(),
    );
    println!(
        "after drain: health={}, active txns={}, credits in flight={}, forced aborts={}",
        health.label(),
        db.txns().active_count(),
        rstats.admission.in_flight,
        report_drain.forced_aborts,
    );

    report.tail(
        "acceptance",
        "\"healthy after drain; zero leaked txns/credits/predicates; Busy counted; \
         p999 under the call deadline\"",
    );
    report.write(&out_path);

    // Acceptance: the engine survived the storm with nothing leaked and
    // nothing served by timeout expiry.
    assert_eq!(health.label(), "healthy", "engine degraded: {:?}", health.reasons());
    assert_eq!(db.txns().active_count(), 0, "leaked transactions");
    assert_eq!(rstats.admission.in_flight, 0, "leaked admission credits");
    let ps = db.preds().stats();
    assert_eq!((ps.predicates, ps.attachments, ps.nodes), (0, 0, 0), "leaked predicates: {ps:?}");
    assert!(kills > 0, "the storm never killed a session; raise the window");
    assert!(
        sstats.busy_sheds > 0,
        "admission never shed through the wire; the cap is not binding"
    );
    let p999 = hist.p999_us();
    assert!(
        u128::from(p999) < CALL_DEADLINE.as_micros(),
        "p999 request latency {p999}µs at the call deadline — something served by timeout"
    );
    db.shutdown().expect("shutdown");
}
