//! Group-commit pipeline throughput: committed transactions per second
//! under each durability mode, against a per-commit-sync baseline.
//!
//! The WAL device is given a simulated per-sync latency (`fsync_to`
//! sleeps once per issued sync, serialized — the model of a commodity
//! disk's write barrier). Four configurations run a commit-heavy
//! workload (one insert per transaction) at 1, 2, 4 and 8 threads:
//!
//! * **sync** — `group_commit: false`, `Durability::Immediate`: the
//!   pre-pipeline behaviour, every commit issues its own device sync.
//!   This is the in-PR baseline.
//! * **immediate** — pipeline on, `Durability::Immediate`: committers
//!   park, the flusher syncs whatever has accumulated (natural batching
//!   under concurrency, no added latency).
//! * **batched** — `Durability::Batched { window }`: the flusher may
//!   linger up to the window so more committers join each sync.
//! * **async** — `Durability::Async`: commit returns at fill; the
//!   flusher's idle sweep bounds the loss window.
//!
//! Acceptance: **batched at 8 threads ≥ 5× sync at 8 threads**.
//! Results are written to `BENCH_commit.json` and printed as a table.
//!
//! Usage: `cargo run --release -p gist-bench --bin bench_commit [out.json]`
//!
//! With `BENCH_COMMIT_SMOKE=1` (the `verify.sh` tier-2 gate) only the
//! baseline and the batched mode run, at 1 and 8 threads with a shorter
//! window — the acceptance assertion is unchanged.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gist_bench::harness::{
    latency_store, preloaded_db, ramp, JsonObj, JsonReport, LatencyHist, KEY_STRIDE, PRELOAD,
    RAMP_THREADS, WINDOW,
};
use gist_bench::{render_table, run_for, wl_rid, Row, XorShift};
use gist_core::{DbConfig, Durability, RobustnessStats, TxnOptions};

/// Simulated device latency per issued WAL sync — a commodity-disk
/// barrier, deliberately large enough to dominate scheduler noise (the
/// simulated device sleeps, so on few-core hosts other workers still
/// overlap CPU work with it, exactly like real I/O).
const SYNC_LATENCY: Duration = Duration::from_millis(1);
/// Extra linger the batched mode allows per sync.
const BATCH_WINDOW: Duration = Duration::from_micros(200);
/// Pool big enough that the growing tree never evicts inside the window
/// (an eviction writeback would charge a WAL barrier to a worker).
const POOL_CAPACITY: usize = 65_536;

#[derive(Clone, Copy)]
enum Mode {
    Sync,
    Immediate,
    Batched,
    Async,
}

impl Mode {
    const ALL: [Mode; 4] = [Mode::Sync, Mode::Immediate, Mode::Batched, Mode::Async];

    fn label(self) -> &'static str {
        match self {
            Mode::Sync => "sync",
            Mode::Immediate => "immediate",
            Mode::Batched => "batched",
            Mode::Async => "async",
        }
    }

    fn group_commit(self) -> bool {
        !matches!(self, Mode::Sync)
    }

    fn durability(self) -> Durability {
        match self {
            Mode::Sync | Mode::Immediate => Durability::Immediate,
            Mode::Batched => Durability::Batched { window: BATCH_WINDOW },
            Mode::Async => Durability::Async,
        }
    }
}

/// One cell: fresh database, commit-heavy workload, committed-txn/s plus
/// the pipeline's own counters.
fn run_cell(mode: Mode, threads: usize, window: Duration) -> (f64, RobustnessStats, u64) {
    // Preload with a free device (setup is not the measurement), then
    // dial in the simulated sync cost for the measured window.
    let config = DbConfig {
        pool_capacity: POOL_CAPACITY,
        lock_timeout: Duration::from_secs(30),
        group_commit: mode.group_commit(),
        ..DbConfig::default()
    };
    let (db, idx) = preloaded_db(latency_store(Duration::ZERO), config, PRELOAD, KEY_STRIDE);
    db.log().set_sync_latency(SYNC_LATENCY);
    let durability = mode.durability();
    let worker_db = db.clone();
    // End-to-end commit-call latency (not just the pipeline's park time):
    // the p999 is the tail a client actually observes.
    let hist = Arc::new(LatencyHist::new());
    let worker_hist = hist.clone();
    let tp = run_for(threads, window, move |t, i| {
        // Random keys inside the preloaded range: the leaf bounding
        // predicates already cover them, so the steady state measures the
        // commit protocol, not BP-update / split units of work.
        let mut rng =
            XorShift::new(0x9E37_79B9 ^ (t as u64) << 32 ^ i.wrapping_mul(0x2545_F491));
        let k = rng.below((PRELOAD * KEY_STRIDE) as u64) as i64;
        let txn = worker_db.begin_with(TxnOptions { durability });
        idx.insert(txn, &k, wl_rid((1u64 << 40) | ((t as u64) << 32) | i)).expect("insert");
        let t0 = Instant::now();
        worker_db.commit(txn).expect("commit");
        worker_hist.record(t0.elapsed());
    });
    let stats = db.robustness_stats();
    db.shutdown().expect("shutdown");
    (tp.per_sec(), stats, hist.p999_us())
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_commit.json".to_string());
    let smoke = std::env::var("BENCH_COMMIT_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let modes: &[Mode] = if smoke { &[Mode::Sync, Mode::Batched] } else { &Mode::ALL };
    let threads: &[usize] = if smoke { &[1, 8] } else { &RAMP_THREADS };
    let window = if smoke { Duration::from_millis(400) } else { WINDOW };

    let mut report = JsonReport::new("commit_pipeline_throughput");
    report.head(
        "config",
        JsonObj::new()
            .int("wal_sync_latency_us", SYNC_LATENCY.as_micros() as i128)
            .int("batch_window_us", BATCH_WINDOW.as_micros() as i128)
            .int("window_ms", window.as_millis() as i128)
            .bool("smoke", smoke)
            .render(),
    );
    report.head("baseline", "\"sync (group_commit off: one device sync per commit)\"");

    let mut rows = Vec::new();
    let mut sync_8t = 0.0;
    let mut batched_8t = 0.0;
    for &mode in modes {
        let mut row = Row::new(format!("{} commits/s", mode.label()));
        let per_thread = ramp(threads, |t| {
            let (ops, stats, p999) = run_cell(mode, t, window);
            report.push(
                JsonObj::new()
                    .str("mode", mode.label())
                    .int("threads", t as i128)
                    .num("commits_per_sec", ops, 1)
                    .int("wal_batches_flushed", stats.wal_batches_flushed as i128)
                    .num("wal_mean_batch_size", stats.wal_mean_batch_size, 2)
                    .int("commit_wait_p50_us", stats.commit_wait_p50_us as i128)
                    .int("commit_wait_p99_us", stats.commit_wait_p99_us as i128)
                    .int("commit_call_p999_us", p999 as i128),
            );
            row.cols.push((format!("{t}T"), ops));
            ops
        });
        rows.push(row);
        // The acceptance comparison reads the highest thread count (8).
        if let Mode::Sync = mode {
            sync_8t = per_thread.last().unwrap().1;
        }
        if let Mode::Batched = mode {
            batched_8t = per_thread.last().unwrap().1;
        }
    }

    println!("{}", render_table("Commit pipeline throughput (committed txn/s)", &rows));
    let speedup = batched_8t / sync_8t;
    println!("batched/sync at 8T: {speedup:.2}x");

    report.tail("batched_over_sync_8t", format!("{speedup:.3}"));
    report.tail(
        "acceptance",
        "\"batched group commit at 8 threads must deliver >= 5x the per-commit-sync baseline\"",
    );
    report.write(&out_path);

    assert!(
        speedup >= 5.0,
        "acceptance: batched group commit at 8 threads must deliver >= 5x \
         the per-commit-sync baseline (got {speedup:.2}x)"
    );
}
