//! Experiment runners E1–E12 (see DESIGN.md §4 for the index).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gist_am::{BtreeExt, I64Query, Rect, RtreeExt};
use gist_core::baseline::BaselineProtocol;
use gist_core::check::check_tree;
use gist_core::ext::GistExtension;
use gist_core::{
    Db, DbConfig, GistError, GistIndex, IndexOptions, IsolationLevel, NsnSource, PredicateMode,
};
use gist_pagestore::{InMemoryStore, PageId};
use gist_wal::LogManager;

use crate::workload::{baseline_tree, btree_db, run_for, wl_rid, Row, XorShift};

/// Knobs shared by all experiments (quick mode for CI, full mode for
/// EXPERIMENTS.md).
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Per-measurement wall-clock duration.
    pub measure: Duration,
    /// Thread counts swept by scaling experiments.
    pub threads: &'static [usize],
    /// Preloaded keys for throughput experiments.
    pub preload: i64,
}

impl ExpConfig {
    /// Small and fast (unit-test scale).
    pub fn quick() -> Self {
        ExpConfig {
            measure: Duration::from_millis(300),
            threads: &[1, 2, 4],
            preload: 20_000,
        }
    }

    /// The configuration used for EXPERIMENTS.md.
    pub fn full() -> Self {
        ExpConfig {
            measure: Duration::from_millis(1500),
            threads: &[1, 2, 4, 8, 16],
            preload: 50_000,
        }
    }
}

// --------------------------------------------------------------------
// E1 — Figure 1: lost key without links (scripted interleaving).
// --------------------------------------------------------------------

/// Returns (found_without_links, found_with_links).
pub fn e1_figure1() -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, protocol) in
        [("no-link (Fig 1)", BaselineProtocol::NoLink), ("link (Fig 2)", BaselineProtocol::Link)]
    {
        let tree = baseline_tree(BaselineProtocol::Link, Duration::ZERO);
        // Build a two-level tree; every key multiple of 10.
        let mut k = 0i64;
        loop {
            tree.insert(&(k * 10), wl_rid(k as u64)).unwrap();
            k += 1;
            if k > 100 {
                break;
            }
        }
        let probe = (k - 1) * 10;
        // Stale snapshot: remember where the probe lives now (the stacked
        // pointer of Figure 1) with the memorized counter 0.
        let stale_leaf = {
            let mut found = None;
            let mut queue = vec![tree.root()];
            // Find the leaf currently holding the probe.
            while let Some(pid) = queue.pop() {
                let tree_pool = tree_pool(&tree);
                let g = tree_pool.fetch_read(pid).unwrap();
                if g.is_leaf() {
                    if leaf_keys(&g).contains(&probe) {
                        found = Some(pid);
                    }
                } else {
                    for (_, cell) in g.iter_cells().filter(|(s, _)| *s != 0) {
                        queue.push(gist_core::InternalEntry::decode(cell).child);
                    }
                }
            }
            found.expect("probe somewhere")
        };
        // Force that leaf to split by stuffing nearby keys.
        let pool = tree_pool(&tree);
        let before_nsn = pool.fetch_read(stale_leaf).unwrap().nsn();
        let mut filler = probe - 1;
        loop {
            tree.insert(&filler, wl_rid(500_000 + filler as u64)).unwrap();
            filler -= 1;
            let g = pool.fetch_read(stale_leaf).unwrap();
            if g.nsn() > before_nsn && !leaf_keys(&g).contains(&probe) {
                break;
            }
            if filler < probe - 5_000 {
                break;
            }
        }
        // Resume the "search" from the stale pointer.
        let mut found = 0u64;
        let mut visit = vec![(stale_leaf, 0u64)];
        while let Some((pid, mem)) = visit.pop() {
            if pid.is_invalid() {
                continue;
            }
            let g = pool.fetch_read(pid).unwrap();
            if protocol == BaselineProtocol::Link && g.nsn() > mem {
                visit.push((g.rightlink(), mem));
            }
            if g.is_leaf() && leaf_keys(&g).contains(&probe) {
                found += 1;
            }
        }
        rows.push(Row::new(name).col("probe found", found as f64));
    }
    rows
}

fn tree_pool<E: GistExtension>(
    tree: &gist_core::baseline::SimpleTree<E>,
) -> Arc<gist_pagestore::BufferPool> {
    tree.pool().clone()
}

fn leaf_keys(page: &gist_pagestore::Page) -> Vec<i64> {
    page.iter_cells()
        .filter(|(s, _)| *s != 0)
        .map(|(_, cell)| {
            let e = gist_core::LeafEntry::decode(cell);
            i64::from_le_bytes(e.key_bytes[..8].try_into().unwrap())
        })
        .collect()
}

// --------------------------------------------------------------------
// E2 — rightlink-chase frequency vs. writer pressure.
// --------------------------------------------------------------------

/// Concurrent link-mode inserts + searches; counts rightlink chases.
pub fn e2_link_chases(cfg: ExpConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for &writers in cfg.threads {
        let tree = baseline_tree(BaselineProtocol::Link, Duration::ZERO);
        for k in 0..5_000i64 {
            tree.insert(&k, wl_rid(k as u64)).unwrap();
        }
        tree.link_chases.store(0, Ordering::SeqCst);
        let searches = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..writers {
            let (tree, stop) = (tree.clone(), stop.clone());
            handles.push(std::thread::spawn(move || {
                let mut i = 0u64;
                let mut rng = XorShift::new(t as u64 * 101 + 3);
                while !stop.load(Ordering::Relaxed) {
                    // Duplicate keys *inside* the scanned region: splits
                    // happen under the readers' feet.
                    let k = rng.below(5_000) as i64;
                    tree.insert(&k, wl_rid(1_000_000 + t as u64 * 100_000_000 + i)).unwrap();
                    i += 1;
                }
            }));
        }
        for _ in 0..2 {
            let (tree, stop, searches) = (tree.clone(), stop.clone(), searches.clone());
            handles.push(std::thread::spawn(move || {
                let mut rng = XorShift::new(42);
                while !stop.load(Ordering::Relaxed) {
                    let lo = rng.below(4_000) as i64;
                    let hits = tree.search(&I64Query::range(lo, lo + 500)).unwrap();
                    assert!(hits.len() >= 500, "baseline keys always found");
                    searches.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        std::thread::sleep(cfg.measure);
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        let chases = tree.link_chases.load(Ordering::SeqCst);
        let s = searches.load(Ordering::SeqCst).max(1);
        rows.push(
            Row::new(format!("{writers} writers"))
                .col("searches", s as f64)
                .col("chases", chases as f64)
                .col("chases/search", chases as f64 / s as f64),
        );
    }
    rows
}

// --------------------------------------------------------------------
// E3 — Figure 5: sibling-predicate overlap in a non-partitioning tree.
// --------------------------------------------------------------------

/// Builds an R-tree and counts internal nodes whose sibling entries
/// overlap (ambiguous repositioning).
pub fn e3_overlap() -> Vec<Row> {
    let store = Arc::new(InMemoryStore::new());
    let log = Arc::new(LogManager::new());
    let db = Db::open(store, log, DbConfig::default()).unwrap();
    let idx = GistIndex::create(db.clone(), "r", RtreeExt, IndexOptions::default()).unwrap();
    let txn = db.begin();
    let mut rng = XorShift::new(7);
    for i in 0..3_000u64 {
        let x = rng.below(1000) as f64;
        let y = rng.below(1000) as f64;
        let r = Rect::new(x, y, x + 80.0, y + 80.0);
        idx.insert(txn, &r, wl_rid(i)).unwrap();
    }
    db.commit(txn).unwrap();

    let mut internal_nodes = 0u64;
    let mut nodes_with_overlap = 0u64;
    let mut pairs = 0u64;
    let mut overlapping = 0u64;
    let mut queue = vec![idx.root().unwrap()];
    let mut seen = std::collections::HashSet::new();
    while let Some(pid) = queue.pop() {
        if pid.is_invalid() || !seen.insert(pid) {
            continue;
        }
        let g = db.pool().fetch_read(pid).unwrap();
        queue.push(g.rightlink());
        if g.is_leaf() {
            continue;
        }
        internal_nodes += 1;
        let ext = RtreeExt;
        let entries: Vec<(Rect, PageId)> = g
            .iter_cells()
            .filter(|(s, _)| *s != 0)
            .map(|(_, cell)| {
                let e = gist_core::InternalEntry::decode(cell);
                (ext.decode_pred(&e.pred_bytes), e.child)
            })
            .collect();
        let mut any = false;
        for i in 0..entries.len() {
            queue.push(entries[i].1);
            for j in i + 1..entries.len() {
                pairs += 1;
                if entries[i].0.overlaps(&entries[j].0) {
                    overlapping += 1;
                    any = true;
                }
            }
        }
        if any {
            nodes_with_overlap += 1;
        }
    }
    vec![Row::new("R-tree, 3000 rects")
        .col("internal nodes", internal_nodes as f64)
        .col("w/ overlap", nodes_with_overlap as f64)
        .col("entry pairs", pairs as f64)
        .col("overlapping", overlapping as f64)
        .col("overlap %", 100.0 * overlapping as f64 / pairs.max(1) as f64)]
}

// --------------------------------------------------------------------
// E4 — Table 1: restart cost and correctness vs. workload size.
// --------------------------------------------------------------------

/// Crash after committing `n` keys (plus one loser txn); measure restart.
pub fn e4_recovery() -> Vec<Row> {
    let mut rows = Vec::new();
    for n in [1_000i64, 5_000, 20_000] {
        let store = Arc::new(InMemoryStore::new());
        let log = Arc::new(LogManager::new());
        let db = Db::open(store.clone(), log.clone(), DbConfig::default()).unwrap();
        let idx =
            GistIndex::create(db.clone(), "t", BtreeExt, IndexOptions::default()).unwrap();
        let txn = db.begin();
        for k in 0..n {
            idx.insert(txn, &k, wl_rid(k as u64)).unwrap();
        }
        db.commit(txn).unwrap();
        let loser = db.begin();
        for k in n..n + 200 {
            idx.insert(loser, &k, wl_rid(k as u64)).unwrap();
        }
        db.log().flush_all();
        db.crash();

        let t0 = Instant::now();
        let (db2, report) = Db::restart(store, log, DbConfig::default()).unwrap();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let idx2 = GistIndex::open(db2.clone(), "t", BtreeExt).unwrap();
        let txn = db2.begin();
        let visible = idx2.search(txn, &I64Query::range(0, n + 1000)).unwrap().len();
        db2.commit(txn).unwrap();
        assert_eq!(visible as i64, n, "exactly committed keys");
        check_tree(&idx2).unwrap().assert_ok();
        rows.push(
            Row::new(format!("{n} committed + 200 loser"))
                .col("restart ms", ms)
                .col("redo applied", report.outcome.redo_applied as f64)
                .col("CLRs", report.outcome.clrs_written as f64)
                .col("visible", visible as f64),
        );
    }
    rows
}

// --------------------------------------------------------------------
// E5 — link protocol vs. conservative latching, throughput scaling.
// --------------------------------------------------------------------

/// Throughput vs. threads for three protocols and three mixes.
pub fn e5_protocols(cfg: ExpConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for (mix_name, insert_pct) in [("100% insert", 100u64), ("50/50", 50), ("100% search", 0)] {
        for (proto_name, protocol) in [
            ("link", BaselineProtocol::Link),
            ("subtree-X", BaselineProtocol::FullPathX),
            ("tree-rwlock", BaselineProtocol::TreeRwLock),
        ] {
            for &threads in cfg.threads {
                let tree = baseline_tree(protocol, Duration::ZERO);
                for k in 0..cfg.preload {
                    tree.insert(&(k * 2), wl_rid(k as u64)).unwrap();
                }
                let preload = cfg.preload;
                let tp = {
                    let tree = tree.clone();
                    run_for(threads, cfg.measure, move |t, i| {
                        let mut rng = XorShift::new((t as u64 + 1) * 0x9E37 + i);
                        if rng.below(100) < insert_pct {
                            let k = preload * 2 + ((t as i64) << 40) + i as i64;
                            tree.insert(&k, wl_rid(2_000_000 + ((t as u64) << 32) + i))
                                .unwrap();
                        } else {
                            let lo = rng.below(preload as u64 * 2) as i64;
                            let _ = tree.search(&I64Query::range(lo, lo + 50)).unwrap();
                        }
                    })
                };
                rows.push(
                    Row::new(format!("{mix_name} / {proto_name} / {threads}T"))
                        .col("ops/s", tp.per_sec()),
                );
            }
        }
    }
    rows
}

// --------------------------------------------------------------------
// E6 — latches across I/O: simulated disk latency.
// --------------------------------------------------------------------

/// Mixed throughput under simulated per-page read latency. The paper's
/// claim is that the link protocol "completely avoids holding node locks
/// during I/Os": its readers and writers overlap their page waits, while
/// a subtree-latching writer keeps its X path latched across child
/// fetches, serializing everyone behind the simulated disk. Note this
/// effect does NOT require multiple cores — a sleep releases the CPU, so
/// whoever is *not* blocked on a latch gets to run.
pub fn e6_io_latency(cfg: ExpConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for latency_us in [0u64, 200, 1000] {
        for (proto_name, protocol) in
            [("link", BaselineProtocol::Link), ("coupling", BaselineProtocol::FullPathX)]
        {
            let tree = baseline_tree(protocol, Duration::from_micros(latency_us));
            for k in 0..5_000i64 {
                tree.insert(&(k * 2), wl_rid(k as u64)).unwrap();
            }
            // 1 writer + 3 readers.
            let tp = {
                let tree = tree.clone();
                run_for(4, cfg.measure, move |t, i| {
                    let mut rng = XorShift::new((t as u64 + 1) * 31 + i);
                    if t == 0 {
                        let k = rng.below(10_000) as i64;
                        tree.insert(&k, wl_rid(1_000_000 + i)).unwrap();
                    } else {
                        let lo = rng.below(9_900) as i64;
                        let _ = tree.search(&I64Query::range(lo, lo + 20)).unwrap();
                    }
                })
            };
            rows.push(
                Row::new(format!("{latency_us}us / {proto_name} / 1W+3R"))
                    .col("ops/s", tp.per_sec()),
            );
        }
    }
    rows
}

// --------------------------------------------------------------------
// E7 — hybrid vs. pure predicate locking.
// --------------------------------------------------------------------

/// Insert throughput with `n` long-running scanners holding predicates
/// over *disjoint* ranges far from the insert region.
pub fn e7_predicates(cfg: ExpConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for (mode_name, mode) in
        [("hybrid", PredicateMode::Hybrid), ("pure-global", PredicateMode::PureGlobal)]
    {
        for scanners in [0usize, 64, 512, 2048] {
            let (db, idx) = btree_db(DbConfig {
                predicate_mode: mode,
                ..DbConfig::default()
            });
            let txn = db.begin();
            for k in 0..10_000i64 {
                idx.insert(txn, &k, wl_rid(k as u64)).unwrap();
            }
            db.commit(txn).unwrap();
            // Long-running scanners, each holding a predicate over its own
            // 10-key range (all < 10_000).
            let mut scan_txns = Vec::new();
            for s in 0..scanners {
                let txn = db.begin();
                let lo = (s as i64) * (10_000 / scanners.max(1) as i64);
                let _ = idx.search(txn, &I64Query::range(lo, lo + 10)).unwrap();
                scan_txns.push(txn);
            }
            // Inserts far outside every scanned range: the hybrid scheme
            // never meets a predicate; the global list is checked every
            // time in pure mode.
            let counter = Arc::new(AtomicU64::new(0));
            let tp = {
                let (db, idx, counter) = (db.clone(), idx.clone(), counter.clone());
                run_for(2, cfg.measure, move |t, _| {
                    let i = counter.fetch_add(1, Ordering::Relaxed);
                    let k = 1_000_000 + i as i64;
                    let txn = db.begin();
                    match idx.insert(txn, &k, wl_rid(3_000_000 + ((t as u64) << 32) + i)) {
                        Ok(()) => db.commit(txn).unwrap(),
                        Err(e) if e.is_retryable() => db.abort(txn).unwrap(),
                        Err(e) => panic!("{e}"),
                    }
                })
            };
            for txn in scan_txns {
                db.commit(txn).unwrap();
            }
            rows.push(
                Row::new(format!("{mode_name} / {scanners} scanners"))
                    .col("inserts/s", tp.per_sec()),
            );
        }
    }
    rows
}

// --------------------------------------------------------------------
// E8 — logical delete + garbage collection.
// --------------------------------------------------------------------

/// Space lifecycle: insert, delete half, observe marked entries, vacuum,
/// observe reclamation.
pub fn e8_gc() -> Vec<Row> {
    let (db, idx) = btree_db(DbConfig::default());
    let n = 20_000i64;
    let txn = db.begin();
    for k in 0..n {
        idx.insert(txn, &k, wl_rid(k as u64)).unwrap();
    }
    db.commit(txn).unwrap();
    let s0 = idx.stats().unwrap();
    let mut rows =
        vec![Row::new("after insert")
            .col("live", s0.live_entries as f64)
            .col("marked", s0.marked_entries as f64)
            .col("nodes", s0.nodes as f64)
            .col("free pages", db.alloc().free_count() as f64)];

    let txn = db.begin();
    for k in 0..n / 2 {
        idx.delete(txn, &(k * 2), wl_rid((k * 2) as u64)).unwrap();
    }
    db.commit(txn).unwrap();
    let s1 = idx.stats().unwrap();
    rows.push(
        Row::new("after delete half")
            .col("live", s1.live_entries as f64)
            .col("marked", s1.marked_entries as f64)
            .col("nodes", s1.nodes as f64)
            .col("free pages", db.alloc().free_count() as f64),
    );

    let txn = db.begin();
    let t0 = Instant::now();
    let rep = idx.vacuum_sync(txn).unwrap();
    let vac_ms = t0.elapsed().as_secs_f64() * 1e3;
    db.commit(txn).unwrap();
    let s2 = idx.stats().unwrap();
    rows.push(
        Row::new(format!("after vacuum ({vac_ms:.1} ms, {} removed)", rep.entries_removed))
            .col("live", s2.live_entries as f64)
            .col("marked", s2.marked_entries as f64)
            .col("nodes", s2.nodes as f64)
            .col("free pages", db.alloc().free_count() as f64),
    );
    check_tree(&idx).unwrap().assert_ok();
    rows
}

// --------------------------------------------------------------------
// E9 — unique-insert races.
// --------------------------------------------------------------------

/// `threads` workers race to insert the same fresh keys; exactly one
/// winner per key, losers see UniqueViolation, races resolve as
/// deadlocks.
pub fn e9_unique(cfg: ExpConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for &threads in cfg.threads {
        if threads < 2 {
            continue;
        }
        let store = Arc::new(InMemoryStore::new());
        let log = Arc::new(LogManager::new());
        let db = Db::open(store, log, DbConfig::default()).unwrap();
        let idx =
            GistIndex::create(db.clone(), "u", BtreeExt, IndexOptions { unique: true }).unwrap();
        let keys = 50i64;
        let successes = Arc::new(AtomicU64::new(0));
        let violations = Arc::new(AtomicU64::new(0));
        let retries = Arc::new(AtomicU64::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(threads));
        let t0 = Instant::now();
        let mut handles = Vec::new();
        for t in 0..threads {
            let (db, idx) = (db.clone(), idx.clone());
            let (successes, violations, retries, barrier) =
                (successes.clone(), violations.clone(), retries.clone(), barrier.clone());
            handles.push(std::thread::spawn(move || {
                for k in 0..keys {
                    // All racers attack the same key at the same moment.
                    barrier.wait();
                    loop {
                        let txn = db.begin();
                        match idx.insert(txn, &k, wl_rid(((t as u64) << 32) + k as u64)) {
                            Ok(()) => {
                                db.commit(txn).unwrap();
                                successes.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(GistError::UniqueViolation) => {
                                db.abort(txn).unwrap();
                                violations.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(e) if e.is_retryable() => {
                                db.abort(txn).unwrap();
                                retries.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("{e}"),
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let elapsed = t0.elapsed().as_secs_f64();
        assert_eq!(successes.load(Ordering::Relaxed), keys as u64);
        rows.push(
            Row::new(format!("{threads} racers"))
                .col("winners", successes.load(Ordering::Relaxed) as f64)
                .col("violations", violations.load(Ordering::Relaxed) as f64)
                .col("deadlock retries", retries.load(Ordering::Relaxed) as f64)
                .col("secs", elapsed),
        );
    }
    rows
}

// --------------------------------------------------------------------
// E10 — NSN source ablation.
// --------------------------------------------------------------------

/// Insert throughput under the three NSN configurations (§10.1).
pub fn e10_nsn(cfg: ExpConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    let variants: [(&str, NsnSource, bool); 3] = [
        ("dedicated counter", NsnSource::DedicatedCounter, false),
        ("wal-lsn (global read)", NsnSource::WalLsn, false),
        ("wal-lsn + parent-lsn", NsnSource::WalLsn, true),
    ];
    for (name, source, parent_opt) in variants {
        for &threads in cfg.threads {
            let (db, idx) = btree_db(DbConfig {
                nsn_source: source,
                memorize_parent_lsn: parent_opt,
                isolation: IsolationLevel::Latching,
                ..DbConfig::default()
            });
            let txn = db.begin();
            for k in 0..10_000i64 {
                idx.insert(txn, &(k << 20), wl_rid(k as u64)).unwrap();
            }
            db.commit(txn).unwrap();
            let tp = {
                let (db, idx) = (db.clone(), idx.clone());
                run_for(threads, cfg.measure, move |t, i| {
                    let k = ((t as i64) << 50) + ((i as i64) << 1) + 1;
                    let txn = db.begin();
                    match idx.insert(txn, &k, wl_rid(4_000_000 + ((t as u64) << 40) + i)) {
                        Ok(()) => db.commit(txn).unwrap(),
                        Err(e) if e.is_retryable() => db.abort(txn).unwrap(),
                        Err(e) => panic!("{e}"),
                    }
                })
            };
            rows.push(Row::new(format!("{name} / {threads}T")).col("inserts/s", tp.per_sec()));
        }
    }
    rows
}

// --------------------------------------------------------------------
// E11 — repeatable read: phantom counting.
// --------------------------------------------------------------------

/// Scan a range twice per transaction while writers insert into it;
/// count result-set differences (phantoms). Degree 3 must show zero.
pub fn e11_phantoms(cfg: ExpConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, isolation) in [
        ("degree 3 (hybrid)", IsolationLevel::RepeatableRead),
        ("latching only", IsolationLevel::Latching),
    ] {
        let (db, idx) = btree_db(DbConfig { isolation, ..DbConfig::default() });
        let txn = db.begin();
        for k in 0..2_000i64 {
            idx.insert(txn, &(k * 10), wl_rid(k as u64)).unwrap();
        }
        db.commit(txn).unwrap();

        let stop = Arc::new(AtomicBool::new(false));
        let phantoms = Arc::new(AtomicU64::new(0));
        let scans = Arc::new(AtomicU64::new(0));
        let writer_ops = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for w in 0..2u64 {
            let (db, idx, stop, writer_ops) =
                (db.clone(), idx.clone(), stop.clone(), writer_ops.clone());
            handles.push(std::thread::spawn(move || {
                let mut i = 0u64;
                let mut rng = XorShift::new(w * 7 + 1);
                while !stop.load(Ordering::Relaxed) {
                    // Insert *inside* the scanned key space (odd keys).
                    let k = rng.below(20_000) as i64;
                    let txn = db.begin();
                    match idx.insert(txn, &k, wl_rid(5_000_000 + (w << 40) + i)) {
                        Ok(()) => {
                            db.commit(txn).unwrap();
                            writer_ops.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) if e.is_retryable() => db.abort(txn).unwrap(),
                        Err(e) => panic!("{e}"),
                    }
                    i += 1;
                }
            }));
        }
        for r in 0..2u64 {
            let (db, idx, stop, phantoms, scans) =
                (db.clone(), idx.clone(), stop.clone(), phantoms.clone(), scans.clone());
            handles.push(std::thread::spawn(move || {
                let mut rng = XorShift::new(r * 13 + 5);
                while !stop.load(Ordering::Relaxed) {
                    let lo = rng.below(19_000) as i64;
                    let q = I64Query::range(lo, lo + 200);
                    let txn = db.begin();
                    let a = match idx.search(txn, &q) {
                        Ok(v) => v,
                        Err(e) if e.is_retryable() => {
                            db.abort(txn).unwrap();
                            continue;
                        }
                        Err(e) => panic!("{e}"),
                    };
                    let b = match idx.search(txn, &q) {
                        Ok(v) => v,
                        Err(e) if e.is_retryable() => {
                            db.abort(txn).unwrap();
                            continue;
                        }
                        Err(e) => panic!("{e}"),
                    };
                    if a.len() != b.len() {
                        phantoms.fetch_add(1, Ordering::Relaxed);
                    }
                    scans.fetch_add(1, Ordering::Relaxed);
                    db.commit(txn).unwrap();
                }
            }));
        }
        std::thread::sleep(cfg.measure.max(Duration::from_millis(500)));
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        rows.push(
            Row::new(name)
                .col("double-scans", scans.load(Ordering::Relaxed) as f64)
                .col("phantoms", phantoms.load(Ordering::Relaxed) as f64)
                .col("writer inserts", writer_ops.load(Ordering::Relaxed) as f64),
        );
    }
    rows
}

// --------------------------------------------------------------------
// E12 — savepoint partial-rollback cost.
// --------------------------------------------------------------------

/// Time to roll back to a savepoint as a function of the operations
/// logged after it.
pub fn e12_savepoints() -> Vec<Row> {
    let mut rows = Vec::new();
    for ops in [100i64, 1_000, 5_000] {
        let (db, idx) = btree_db(DbConfig::default());
        let txn = db.begin();
        for k in 0..1_000i64 {
            idx.insert(txn, &k, wl_rid(k as u64)).unwrap();
        }
        let sp = db.savepoint(txn).unwrap();
        for k in 0..ops {
            idx.insert(txn, &(10_000 + k), wl_rid(6_000_000 + k as u64)).unwrap();
        }
        let t0 = Instant::now();
        db.rollback_to_savepoint(txn, sp).unwrap();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let visible = idx.search(txn, &I64Query::range(0, 1_000_000)).unwrap().len();
        db.commit(txn).unwrap();
        assert_eq!(visible, 1_000);
        rows.push(
            Row::new(format!("{ops} ops after savepoint"))
                .col("rollback ms", ms)
                .col("ms/op", ms / ops as f64),
        );
    }
    rows
}
